//! Cross-crate storage pipeline: compute a permutation column on real
//! generator output, store it in every layout, and verify the paper's
//! size hierarchy end to end.

use distance_permutations::core::survey::{survey_database, SurveyConfig};
use distance_permutations::datasets::dictionary::{generate_words, language_profiles};
use distance_permutations::datasets::uniform_unit_cube;
use distance_permutations::metric::{Levenshtein, L2};
use distance_permutations::permutation::huffman::entropy_bits;
use distance_permutations::permutation::{
    distance_permutation, Codebook, HuffmanPermStore, PackedPermStore, Permutation, RawPermStore,
};
use distance_permutations::theory::euclidean::storage_bits;

fn column(db: &[Vec<f64>], k: usize) -> Vec<Permutation> {
    let sites: Vec<Vec<f64>> = db[..k].to_vec();
    db.iter().map(|y| distance_permutation(&L2, &sites, y)).collect()
}

#[test]
fn all_layouts_roundtrip_identically() {
    let db = uniform_unit_cube(8_000, 3, 1);
    let perms = column(&db, 9);
    let raw = RawPermStore::from_permutations(9, &perms);
    let packed = PackedPermStore::from_permutations(&perms);
    let huff = HuffmanPermStore::from_permutations(&perms);
    assert!(raw.iter().eq(perms.iter().copied()));
    assert!(packed.iter().eq(perms.iter().copied()));
    assert!(huff.iter().eq(perms.iter().copied()));
}

#[test]
fn size_hierarchy_matches_the_paper() {
    // entropy ≤ huffman < codebook-bits + 1 ≤ raw bits; and the codebook
    // width is bounded by the Theorem 7 storage bound ⌈log₂ N_{d,2}(k)⌉.
    let db = uniform_unit_cube(30_000, 2, 2);
    let perms = column(&db, 8);
    let raw = RawPermStore::from_permutations(8, &perms);
    let packed = PackedPermStore::from_permutations(&perms);
    let huff = HuffmanPermStore::from_permutations(&perms);

    let codebook: Codebook = perms.iter().copied().collect();
    let mut freqs = vec![0u64; codebook.len()];
    for p in &perms {
        freqs[codebook.id_of(p).unwrap() as usize] += 1;
    }
    let h = entropy_bits(&freqs);

    assert!(h <= huff.mean_bits() + 1e-9);
    assert!(huff.mean_bits() < h + 1.0);
    assert!(huff.mean_bits() <= f64::from(packed.bits_per_element()) + 1.0);
    assert!(packed.bits_per_element() <= raw.bits_per_element());
    // Theorem 7: id width never exceeds ⌈log₂ N_{2,2}(8)⌉ = ⌈log₂ 351⌉ = 9.
    assert!(packed.bits_per_element() <= storage_bits(2, 8).unwrap());
}

#[test]
fn survey_agrees_with_hand_built_stores() {
    let db = uniform_unit_cube(5_000, 2, 3);
    let cfg = SurveyConfig { ks: vec![6], seed: 0x5EED, rho_pairs: 2_000, reference: None };
    let s = survey_database(&L2, &db, &cfg);
    let k6 = &s.per_k[0];

    // Rebuild the same column from the survey's own site choice.
    let sites: Vec<Vec<f64>> = k6.site_ids.iter().map(|&i| db[i].clone()).collect();
    let perms: Vec<Permutation> = db.iter().map(|y| distance_permutation(&L2, &sites, y)).collect();
    let packed = PackedPermStore::from_permutations(&perms);
    let huff = HuffmanPermStore::from_permutations(&perms);

    assert_eq!(packed.distinct(), k6.report.distinct);
    assert_eq!(packed.bits_per_element(), k6.codebook_bits);
    assert!((huff.mean_bits() - k6.huffman_bits).abs() < 1e-9);
}

#[test]
fn string_column_through_the_same_pipeline() {
    let profiles = language_profiles();
    let german = profiles.iter().find(|p| p.name == "german").unwrap();
    let words = generate_words(german, 4_000, 7);
    let sites: Vec<String> = words[..7].to_vec();
    let perms: Vec<Permutation> =
        words.iter().map(|w| distance_permutation(&Levenshtein, &sites, w)).collect();
    let packed = PackedPermStore::from_permutations(&perms);
    let huff = HuffmanPermStore::from_permutations(&perms);
    assert!(packed.iter().eq(perms.iter().copied()));
    assert!(huff.iter().eq(perms.iter().copied()));
    // Discrete metrics tie often; the distinct count must stay below the
    // unrestricted 7! and the stores agree on it.
    assert!(packed.distinct() < 5_040);
    assert_eq!(packed.distinct(), huff.distinct());
}
