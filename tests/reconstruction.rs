//! Cross-crate: Buneman reconstruction is transparent to the paper's
//! measurement — a reconstructed tree realises the *same distance
//! permutations* as the space it was rebuilt from, because it realises
//! the same metric (doubled uniformly, which preserves every comparison
//! and tie).

use distance_permutations::metric::reconstruct::reconstruct_tree;
use distance_permutations::metric::Metric;
use distance_permutations::metric::{PrefixDistance, Tree};
use distance_permutations::permutation::counter::count_distinct;
use distance_permutations::permutation::distance_permutation;
use distance_permutations::theory::tree_bound;

#[test]
fn reconstruction_preserves_distance_permutations_on_random_trees() {
    for seed in [3u64, 17, 99] {
        let t = Tree::random(300, 5, seed);
        let leaves: Vec<usize> = t.vertices().filter(|&v| t.neighbours(v).len() == 1).collect();
        assert!(leaves.len() >= 8, "seed {seed} produced too few leaves");
        let rec = reconstruct_tree(leaves.len(), |i, j| t.distance(leaves[i], leaves[j]))
            .expect("leaf metric of a tree is a tree metric");

        let k = 6usize;
        let orig_sites: Vec<usize> = leaves[..k].to_vec();
        let a = count_distinct(&t.metric(), &orig_sites, &leaves);

        let rec_sites: Vec<usize> = (0..k).map(|i| rec.vertex_of[i]).collect();
        let rec_db: Vec<usize> = (0..leaves.len()).map(|i| rec.vertex_of[i]).collect();
        let b = count_distinct(&rec.tree.metric(), &rec_sites, &rec_db);

        assert_eq!(a, b, "seed {seed}: reconstruction changed the count");
        assert!(a as u128 <= tree_bound(k as u32));
    }
}

#[test]
fn reconstruction_preserves_individual_permutations_for_prefix_words() {
    let words: Vec<String> =
        ["", "a", "ab", "abc", "abd", "abde", "b", "ba", "bac", "c"].map(String::from).to_vec();
    let d = |i: usize, j: usize| u64::from(PrefixDistance.distance(&words[i], &words[j]));
    let rec = reconstruct_tree(words.len(), d).expect("prefix metric is a tree metric");

    let site_idx = [0usize, 3, 6, 9];
    let word_sites: Vec<String> = site_idx.iter().map(|&i| words[i].clone()).collect();
    let tree_sites: Vec<usize> = site_idx.iter().map(|&i| rec.vertex_of[i]).collect();
    let metric = rec.tree.metric();
    for (i, w) in words.iter().enumerate() {
        let p_direct = distance_permutation(&PrefixDistance, &word_sites, w);
        let p_tree = distance_permutation(&metric, &tree_sites, &rec.vertex_of[i]);
        assert_eq!(p_direct, p_tree, "word {w:?}");
    }
}

#[test]
fn corollary5_path_survives_reconstruction_roundtrip() {
    // Rebuild the Corollary 5 path from its own metric and check the
    // bound is still achieved exactly.
    let (tree, sites) = distance_permutations::theory::corollary5_path(6);
    let all: Vec<usize> = tree.vertices().collect();
    let rec = reconstruct_tree(all.len(), |i, j| tree.distance(all[i], all[j]))
        .expect("path metric is a tree metric");
    // A path needs no Steiner vertices.
    assert_eq!(rec.steiner_count, 0);
    let rec_sites: Vec<usize> = sites.iter().map(|&s| rec.vertex_of[s]).collect();
    let rec_db: Vec<usize> = all.iter().map(|&v| rec.vertex_of[v]).collect();
    let count = count_distinct(&rec.tree.metric(), &rec_sites, &rec_db);
    assert_eq!(count as u128, tree_bound(6));
}
