//! Cross-crate consistency of the truncated-permutation (prefix) layer:
//! the one-pass counter in dp-core, the index in dp-index, and the
//! ceilings in dp-theory must all agree on §2's refinement chain.

use distance_permutations::core::orders::{count_distinct_prefixes, refinement_chain, PrefixKind};
use distance_permutations::datasets::uniform_unit_cube;
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::PrefixPermIndex;
use distance_permutations::metric::{LInf, L1, L2};
use distance_permutations::theory::cake::binomial;
use distance_permutations::theory::prefixes::{
    falling_factorial, ordered_prefix_bound, unordered_prefix_bound,
};

fn setup(d: usize, n: usize, k: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let db = uniform_unit_cube(n, d, seed);
    let sites: Vec<Vec<f64>> = db[..k].to_vec();
    (db, sites)
}

#[test]
fn core_counter_and_index_agree_at_every_length() {
    let (db, _) = setup(3, 4_000, 7, 1);
    for l in 1..=7usize {
        let idx = PrefixPermIndex::build(L2, db.clone(), 7, l, PivotSelection::Prefix);
        let sites: Vec<Vec<f64>> = idx.site_ids().iter().map(|&i| db[i].clone()).collect();
        let direct = count_distinct_prefixes(&L2, &sites, &db, l.min(7), PrefixKind::Ordered);
        assert_eq!(idx.distinct_prefixes(), direct, "l = {l}");
    }
}

#[test]
fn counts_respect_both_theory_ceilings() {
    for d in 1..=3usize {
        let (db, sites) = setup(d, 10_000, 8, d as u64 + 10);
        for l in 1..=8usize {
            let ordered = count_distinct_prefixes(&L2, &sites, &db, l, PrefixKind::Ordered);
            let unordered = count_distinct_prefixes(&L2, &sites, &db, l, PrefixKind::Unordered);
            let ob = ordered_prefix_bound(d as u32, 8, l as u32).unwrap();
            let ub = unordered_prefix_bound(d as u32, 8, l as u32).unwrap();
            assert!(ordered as u128 <= ob, "d={d} l={l}: {ordered} > {ob}");
            assert!(unordered as u128 <= ub, "d={d} l={l}: {unordered} > {ub}");
            assert!(unordered <= ordered);
            // Pure combinatorics: ordered count ≤ k·(k−1)···(k−l+1).
            assert!(ordered as u128 <= falling_factorial(8, l as u32).unwrap());
            assert!(unordered as u128 <= binomial(8, l as u64).unwrap());
        }
    }
}

#[test]
fn chain_is_monotone_under_every_lp_metric() {
    let (db, sites) = setup(2, 8_000, 6, 23);
    let l2_chain = refinement_chain(&L2, &sites, &db, 6);
    for chain in
        [refinement_chain(&L1, &sites, &db, 6), l2_chain, refinement_chain(&LInf, &sites, &db, 6)]
    {
        for w in chain.windows(2) {
            assert!(w[0] <= w[1], "refinement must not merge cells: {chain:?}");
        }
        assert_eq!(chain[0], 6, "all six Voronoi cells occupied at this density");
    }
}

#[test]
fn one_dimensional_chain_saturates_at_c_k_2_plus_1() {
    // In 1-D the full count is C(k,2)+1 (Theorem 7 row 1); the prefix
    // chain must reach it and stop there.
    let (db, sites) = setup(1, 20_000, 6, 9);
    let chain = refinement_chain(&L2, &sites, &db, 6);
    let full = *chain.last().unwrap();
    assert!(full as u128 <= 16, "C(6,2)+1 = 16, got {full}");
    assert!(full >= 14, "dense 1-D data should hit nearly all cells: {full}");
}

#[test]
fn prefix_index_storage_never_exceeds_full_permutation_index() {
    let db = uniform_unit_cube(5_000, 3, 31);
    let full = PrefixPermIndex::build(L2, db.clone(), 10, 10, PivotSelection::Prefix);
    let mut prev_raw = 0u64;
    for l in 1..=10usize {
        let idx = PrefixPermIndex::build(L2, db.clone(), 10, l, PivotSelection::Prefix);
        assert!(idx.storage_bits_raw() >= prev_raw, "raw bits monotone in l");
        assert!(idx.storage_bits_raw() <= full.storage_bits_raw());
        assert!(
            idx.storage_bits_codebook() <= full.storage_bits_codebook() + 64,
            "codebook bits essentially monotone (table rounding slack)"
        );
        prev_raw = idx.storage_bits_raw();
    }
}
