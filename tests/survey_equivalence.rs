//! Flat-engine survey equivalence: `survey_database_flat` must
//! reproduce `survey_database` **bit for bit** — ρ, every per-k
//! distinct/total/occupancy, every storage-cost column (including the
//! floating-point Huffman and entropy sums), the site ids, and the
//! dimension estimate — for every vector metric, at any thread count,
//! and on both sides of *both* packed-key cutovers: u64 → u128 at
//! `PACKED_MAX_K` = 12 and u128 → hash at `WIDE_MAX_K` = 25.  The flat
//! survey is the engine behind `distperm survey` on vector files, so
//! any divergence here is a user-visible wrong answer.

use distance_permutations::core::survey_flat::{
    survey_database_flat, survey_database_flat_parallel,
};
use distance_permutations::core::{
    count_permutations, count_permutations_flat, survey_database, DatabaseSurvey, SurveyConfig,
};
use distance_permutations::datasets::vectors::{uniform_unit_cube, uniform_unit_cube_flat};
use distance_permutations::metric::{BatchDistance, L2Squared, LInf, Lp, Metric, L1, L2};
use distance_permutations::permutation::compute::{PACKED_MAX_K, WIDE_MAX_K};
use proptest::prelude::*;

/// Asserts every field of the two reports equal, f64s compared by bits.
fn assert_bit_identical(generic: &DatabaseSurvey, flat: &DatabaseSurvey, tag: &str) {
    assert_eq!(generic.n, flat.n, "{tag}: n");
    assert_eq!(generic.rho.to_bits(), flat.rho.to_bits(), "{tag}: rho");
    assert_eq!(
        generic.dimension_estimate.map(f64::to_bits),
        flat.dimension_estimate.map(f64::to_bits),
        "{tag}: dimension estimate"
    );
    assert_eq!(generic.per_k.len(), flat.per_k.len(), "{tag}: row count");
    for (g, f) in generic.per_k.iter().zip(flat.per_k.iter()) {
        let tag = format!("{tag}, k = {}", g.k);
        assert_eq!(g.k, f.k, "{tag}: k");
        assert_eq!(g.site_ids, f.site_ids, "{tag}: site ids");
        assert_eq!(g.report.distinct, f.report.distinct, "{tag}: distinct");
        assert_eq!(g.report.total, f.report.total, "{tag}: total");
        assert_eq!(
            g.report.mean_occupancy.to_bits(),
            f.report.mean_occupancy.to_bits(),
            "{tag}: occupancy"
        );
        assert_eq!(g.naive_bits, f.naive_bits, "{tag}: naive bits");
        assert_eq!(g.raw_bits, f.raw_bits, "{tag}: raw bits");
        assert_eq!(g.codebook_bits, f.codebook_bits, "{tag}: codebook bits");
        assert_eq!(g.huffman_bits.to_bits(), f.huffman_bits.to_bits(), "{tag}: huffman bits");
        assert_eq!(g.entropy_bits.to_bits(), f.entropy_bits.to_bits(), "{tag}: entropy bits");
        assert_eq!(g.min_euclidean_dim, f.min_euclidean_dim, "{tag}: min Euclidean dim");
    }
}

/// Runs one generic-vs-flat comparison for a metric implementing both
/// the per-point and the batched interface.
fn check_metric<M>(metric: &M, n: usize, d: usize, seed: u64, cfg: &SurveyConfig, tag: &str)
where
    M: BatchDistance + Metric<Vec<f64>> + Sync,
{
    let nested = uniform_unit_cube(n, d, seed);
    let flat = uniform_unit_cube_flat(n, d, seed);
    let generic = survey_database(metric, &nested, cfg);
    assert_bit_identical(&generic, &survey_database_flat(metric, &flat, cfg), tag);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random shapes, every vector metric: the flat survey is
    // bit-identical to the generic one.
    #[test]
    fn flat_survey_matches_generic_for_every_metric(
        n in 60usize..400,
        d in 1usize..6,
        seed in 0u64..1_000_000,
        k1 in 1usize..14,
        k2 in 1usize..14,
        survey_seed in 0u64..1_000_000,
    ) {
        let ks: Vec<usize> = vec![k1.min(n), k2.min(n)];
        let cfg = SurveyConfig { ks, seed: survey_seed, rho_pairs: 400, reference: None };
        check_metric(&L1, n, d, seed, &cfg, "L1");
        check_metric(&L2, n, d, seed, &cfg, "L2");
        check_metric(&L2Squared, n, d, seed, &cfg, "L2^2");
        check_metric(&LInf, n, d, seed, &cfg, "Linf");
        check_metric(&Lp::new(2.5), n, d, seed, &cfg, "L2.5");
    }

    // The parallel flat survey is bit-identical to the sequential flat
    // survey (and hence to the generic one) at 1, 2 and 4 threads.
    #[test]
    fn parallel_flat_survey_is_bit_identical_at_any_thread_count(
        n in 1100usize..2200, // above the sequential-fallback cutoff
        d in 1usize..5,
        seed in 0u64..1_000_000,
        k in 1usize..14,
    ) {
        let cfg = SurveyConfig { ks: vec![k], rho_pairs: 300, ..Default::default() };
        let flat = uniform_unit_cube_flat(n, d, seed);
        let nested = uniform_unit_cube(n, d, seed);
        let generic = survey_database(&L2, &nested, &cfg);
        for threads in [1usize, 2, 4] {
            let par = survey_database_flat_parallel(&L2, &flat, &cfg, threads);
            assert_bit_identical(&generic, &par, &format!("threads = {threads}"));
        }
    }
}

/// One k across a counting cutover: the flat engine (whatever width or
/// fallback serves this k) must agree with the per-point hash path in
/// every count field, and the full survey (freq tables, Huffman and
/// entropy f64 sums) must be bit-identical sequentially and at 1, 2 and
/// 4 threads.
fn check_cutover_k(k: usize, n: usize, d: usize) {
    let nested = uniform_unit_cube(n, d, 97);
    let flat = uniform_unit_cube_flat(n, d, 97);
    let sites_nested = uniform_unit_cube(k, d, 98);
    let sites_flat = uniform_unit_cube_flat(k, d, 98);
    let hash = count_permutations(&L2, &sites_nested, &nested);
    let fast = count_permutations_flat(&L2, &sites_flat, &flat);
    assert_eq!(fast.distinct, hash.distinct, "k = {k}: distinct");
    assert_eq!(fast.total, hash.total, "k = {k}: total");
    assert_eq!(fast.mean_occupancy.to_bits(), hash.mean_occupancy.to_bits(), "k = {k}: occupancy");
    let cfg = SurveyConfig { ks: vec![k], rho_pairs: 300, ..Default::default() };
    let generic = survey_database(&L2, &nested, &cfg);
    assert_bit_identical(&generic, &survey_database_flat(&L2, &flat, &cfg), "survey");
    for threads in [1usize, 2, 4] {
        assert_bit_identical(
            &generic,
            &survey_database_flat_parallel(&L2, &flat, &cfg, threads),
            &format!("survey, k = {k}, {threads} threads"),
        );
    }
}

/// Regression for the k = 12 → 13 key-width boundary: PACKED_MAX_K is
/// the largest k the u64 sort+scan counter handles; k = 13 crosses onto
/// the u128 wide path.  Both sides of the seam must agree with the
/// per-point hash-based path in every report field — an off-by-one in
/// the cutover, the 5-bit packing, or the lexicographic reordering
/// would show up exactly here.
#[test]
fn u64_u128_cutover_boundary_agrees_with_hash_path() {
    assert_eq!(PACKED_MAX_K, 12, "boundary test tracks the u64 packing cutoff");
    // n large enough that the parallel variants really split.
    for k in [11usize, 12, 13, 14] {
        check_cutover_k(k, 1600, 5);
    }
}

/// Regression for the k = 25 → 26 boundary: WIDE_MAX_K is the largest k
/// any packed width handles; k = 26 falls back to the hash counter.
/// Same bit-identity contract on both sides of the seam.
#[test]
fn u128_hash_cutover_boundary_agrees_with_hash_path() {
    assert_eq!(WIDE_MAX_K, 25, "boundary test tracks the u128 packing cutoff");
    for k in [24usize, 25, 26] {
        check_cutover_k(k, 1600, 5);
    }
}

/// Duplicate-heavy regression for the radix sorted-run pipeline: on a
/// 1-D database with few sites almost every permutation repeats, so the
/// packed key buffer is long runs of equal keys — exactly where a radix
/// pass-skip bug, a run-length scan bug, or a sorted-chunk merge bug in
/// the parallel collector would corrupt counts while uniform data stays
/// green.  k = 2 additionally leaves every high radix digit constant.
#[test]
fn duplicate_heavy_low_dimensional_data_agrees_across_engines() {
    let n = 3000; // above the parallel fallback cutoff
    for k in [2usize, 3, 6] {
        let nested = uniform_unit_cube(n, 1, 1234);
        let flat = uniform_unit_cube_flat(n, 1, 1234);
        let cfg = SurveyConfig { ks: vec![k], rho_pairs: 400, ..Default::default() };
        let generic = survey_database(&L2, &nested, &cfg);
        // 1-D, k sites: at most C(k,2)+1 distinct permutations — heavy
        // duplication by construction.
        assert!(generic.per_k[0].report.distinct <= k * (k - 1) / 2 + 1);
        assert_bit_identical(&generic, &survey_database_flat(&L2, &flat, &cfg), "sequential");
        for threads in [2usize, 3, 4] {
            assert_bit_identical(
                &generic,
                &survey_database_flat_parallel(&L2, &flat, &cfg, threads),
                &format!("k = {k}, threads = {threads}"),
            );
        }
    }
}

/// String databases keep working through the generic engine only — the
/// survey façade did not change its behaviour for non-vector data.
#[test]
fn generic_survey_still_serves_string_data() {
    use distance_permutations::metric::Levenshtein;
    let words: Vec<String> = (0..200).map(|i| format!("word{:04}", i * 37 % 977)).collect();
    let cfg = SurveyConfig { ks: vec![4], rho_pairs: 500, ..Default::default() };
    let s = survey_database(&Levenshtein, &words, &cfg);
    assert_eq!(s.n, 200);
    assert!(s.per_k[0].report.distinct >= 1);
}
