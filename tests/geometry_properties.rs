//! Property-based tests tying the exact geometry to the exact theory:
//! the arrangement counter can never exceed the Theorem 7 recurrence, and
//! the 1-D midpoint counter can never exceed C(k,2)+1, for *any* site
//! configuration — degenerate or not.

use distance_permutations::geometry::arrangement::euclidean_cells;
use distance_permutations::geometry::oned::{exact_count_1d, midpoints_1d};
use distance_permutations::geometry::Line;
use distance_permutations::theory::{cake_pieces, n_euclidean, tree_bound};
use proptest::prelude::*;

fn arb_sites(k: usize, spread: i64) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::btree_set((-spread..spread, -spread..spread), k)
        .prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn euclidean_cells_never_exceed_theorem7(sites in arb_sites(5, 50)) {
        let cells = euclidean_cells(&sites);
        let bound = n_euclidean(2, sites.len() as u32).unwrap();
        prop_assert!(cells <= bound, "{cells} > {bound} for {sites:?}");
        prop_assert!(cells >= 2, "two distinct sites always split the plane");
    }

    #[test]
    fn euclidean_cells_monotone_under_site_addition(sites in arb_sites(6, 40)) {
        // Adding a site (= adding bisectors) can never merge cells.
        for k in 2..sites.len() {
            prop_assert!(
                euclidean_cells(&sites[..k]) <= euclidean_cells(&sites[..=k])
            );
        }
    }

    #[test]
    fn one_d_count_bounded_and_consistent(sites in prop::collection::btree_set(-1000i64..1000, 2..9)) {
        let sites: Vec<i64> = sites.into_iter().collect();
        let count = exact_count_1d(&sites);
        let k = sites.len() as u32;
        prop_assert!(count <= tree_bound(k));
        // Count is exactly #distinct midpoints + 1.
        prop_assert_eq!(count, midpoints_1d(&sites).len() as u128 + 1);
    }

    #[test]
    fn arrangement_count_bounded_by_cake_numbers(sites in arb_sites(5, 30)) {
        // The raw cake bound S_2(C(k,2)) dominates the corrected count.
        let k = sites.len() as u64;
        let cells = euclidean_cells(&sites);
        let cake = cake_pieces(2, k * (k - 1) / 2).unwrap();
        prop_assert!(cells <= cake);
    }

    #[test]
    fn bisector_canonicalisation_is_stable(
        a in (-100i64..100, -100i64..100),
        b in (-100i64..100, -100i64..100),
    ) {
        prop_assume!(a != b);
        let l1 = Line::bisector(a, b);
        let l2 = Line::bisector(b, a);
        prop_assert_eq!(l1, l2);
        // The midpoint (doubled coordinates to stay integral) lies on it.
        let mx = distance_permutations::geometry::Rat::new((a.0 + b.0) as i128, 2);
        let my = distance_permutations::geometry::Rat::new((a.1 + b.1) as i128, 2);
        prop_assert!(l1.contains(mx, my));
    }

    #[test]
    fn line_intersection_is_symmetric_and_on_both(
        a in (1i128..50, -50i128..50, -50i128..50),
        b in (1i128..50, -50i128..50, -50i128..50),
    ) {
        let la = Line::new(a.0, a.1, a.2);
        let lb = Line::new(b.0, b.1, b.2);
        match (la.intersect(&lb), lb.intersect(&la)) {
            (Some(p), Some(q)) => {
                prop_assert_eq!(p, q);
                prop_assert!(la.contains(p.0, p.1));
                prop_assert!(lb.contains(p.0, p.1));
            }
            (None, None) => prop_assert!(la.parallel(&lb)),
            _ => prop_assert!(false, "asymmetric intersection"),
        }
    }
}
