//! Cross-crate index consistency through the unified `ProximityIndex`
//! API: every exact index must agree with the linear scan on every
//! query, across point types and metrics; parallel batch serving must be
//! bit-identical to sequential serving; a reused searcher session must
//! answer exactly like a fresh one; and the distperm index's counting
//! must agree with the direct counter.

use distance_permutations::datasets::dictionary::{generate_words, language_profiles};
use distance_permutations::datasets::documents::{generate_documents, long_profile};
use distance_permutations::datasets::{uniform_unit_cube, VectorSet};
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::serve::{
    query_batch, query_batch_approx, query_batch_parallel, query_batch_parallel_approx,
    ApproxRequest, Request,
};
use distance_permutations::index::{
    Aesa, AnyIndex, BkTree, DistPermIndex, FlatDistPermIndex, GhTree, IAesa, IndexSpec, Laesa,
    LinearScan, PrefixPermIndex, ProximityIndex, Searcher, VpTree,
};
use distance_permutations::metric::{CosineDistance, F64Dist, Levenshtein, L1, L2};
use distance_permutations::permutation::counter::count_distinct;
use std::borrow::Borrow;

#[test]
fn all_exact_indexes_agree_on_vectors() {
    let pts = uniform_unit_cube(300, 3, 1);
    let queries = uniform_unit_cube(20, 3, 2);
    let scan = LinearScan::new(L2, pts.clone());
    let aesa = Aesa::build(L2, pts.clone());
    let laesa = Laesa::build(L2, pts.clone(), 8, PivotSelection::MaxMin);
    let iaesa = IAesa::build(L2, pts.clone(), 8, PivotSelection::MaxMin);
    let vp = VpTree::build(L2, pts.clone());
    let gh = GhTree::build(L2, pts.clone());
    let dp = DistPermIndex::build(L2, pts, 8, PivotSelection::MaxMin);
    for q in &queries {
        let truth = scan.knn(q, 4);
        assert_eq!(aesa.query_knn(q, 4).0, truth, "AESA");
        assert_eq!(laesa.query_knn(q, 4).0, truth, "LAESA");
        assert_eq!(iaesa.query_knn(q, 4).0, truth, "iAESA");
        assert_eq!(vp.query_knn(q, 4).0, truth, "VP-tree");
        assert_eq!(gh.query_knn(q, 4).0, truth, "GH-tree");
        assert_eq!(dp.query_knn(q, 4).0, truth, "distperm full budget");
    }
}

#[test]
fn all_exact_indexes_agree_on_range_queries_l1() {
    let pts = uniform_unit_cube(250, 2, 3);
    let queries = uniform_unit_cube(15, 2, 4);
    let scan = LinearScan::new(L1, pts.clone());
    let aesa = Aesa::build(L1, pts.clone());
    let laesa = Laesa::build(L1, pts.clone(), 6, PivotSelection::MaxMin);
    let vp = VpTree::build(L1, pts.clone());
    let gh = GhTree::build(L1, pts);
    for q in &queries {
        for r in [0.1, 0.3, 0.8] {
            let radius = F64Dist::new(r);
            let truth = scan.range(q, radius);
            assert_eq!(aesa.query_range(q, radius).0, truth, "AESA r={r}");
            assert_eq!(laesa.query_range(q, radius).0, truth, "LAESA r={r}");
            assert_eq!(vp.query_range(q, radius).0, truth, "VP r={r}");
            assert_eq!(gh.query_range(q, radius).0, truth, "GH r={r}");
        }
    }
}

#[test]
fn indexes_agree_on_dictionaries() {
    let words = generate_words(&language_profiles()[4], 300, 5);
    let queries = generate_words(&language_profiles()[4], 15, 6);
    let scan = LinearScan::new(Levenshtein, words.clone());
    let vp = VpTree::build(Levenshtein, words.clone());
    let gh = GhTree::build(Levenshtein, words.clone());
    let laesa = Laesa::build(Levenshtein, words, 6, PivotSelection::MaxMin);
    for q in &queries {
        let truth = scan.knn(q, 3);
        assert_eq!(vp.query_knn(q, 3).0, truth);
        assert_eq!(gh.query_knn(q, 3).0, truth);
        assert_eq!(laesa.query_knn(q, 3).0, truth);
    }
}

#[test]
fn indexes_agree_on_documents() {
    let docs = generate_documents(long_profile(), 150, 7);
    let queries = generate_documents(long_profile(), 10, 8);
    let scan = LinearScan::new(CosineDistance, docs.clone());
    let vp = VpTree::build(CosineDistance, docs.clone());
    let aesa = Aesa::build(CosineDistance, docs);
    for q in &queries {
        let truth = scan.knn(q, 3);
        assert_eq!(vp.query_knn(q, 3).0, truth);
        assert_eq!(aesa.query_knn(q, 3).0, truth);
    }
}

#[test]
fn distperm_counting_is_consistent_with_direct_counter() {
    let words = generate_words(&language_profiles()[0], 500, 9);
    let idx = DistPermIndex::build(Levenshtein, words.clone(), 7, PivotSelection::Prefix);
    let sites: Vec<String> = words[..7].to_vec();
    assert_eq!(idx.distinct_permutations(), count_distinct(&Levenshtein, &sites, &words));
    // The ASCII export has one line per word and as many distinct lines
    // as distinct permutations (the paper's sort|uniq|wc pipeline).
    let text = idx.export_ascii();
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), words.len());
    lines.sort_unstable();
    lines.dedup();
    assert_eq!(lines.len(), idx.distinct_permutations());
}

/// Property (a): `query_batch_parallel` returns bit-identical results
/// *and stats* to sequential serving, for any thread count, including
/// thread counts that do not divide the batch and exceed it.
fn check_parallel_matches_sequential<P, Q, I>(name: &str, index: &I, queries: &[Q], k: usize)
where
    P: ?Sized,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
{
    let request = Request::Knn { k };
    let seq = query_batch(index, queries, request);
    assert_eq!(seq.len(), queries.len(), "{name}: one response per query");
    for threads in [2usize, 3, 8, 100] {
        let par = query_batch_parallel(index, queries, request, threads);
        assert_eq!(par, seq, "{name}: parallel({threads}) != sequential");
    }
}

/// Property (a) for range requests.
fn check_parallel_matches_sequential_range<P, Q, I>(
    name: &str,
    index: &I,
    queries: &[Q],
    radius: I::Dist,
) where
    P: ?Sized,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
{
    let request = Request::Range { radius };
    let seq = query_batch(index, queries, request);
    for threads in [2usize, 5] {
        let par = query_batch_parallel(index, queries, request, threads);
        assert_eq!(par, seq, "{name}: parallel range({threads}) != sequential");
    }
}

/// Property (b): a searcher session serving its i-th query answers
/// exactly (results and stats) like a fresh session would.
fn check_reused_searcher_matches_fresh<P, Q, I>(
    name: &str,
    index: &I,
    queries: &[Q],
    k: usize,
    radius: I::Dist,
) where
    P: ?Sized,
    Q: Borrow<P>,
    I: ProximityIndex<P>,
{
    let mut reused = index.searcher();
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            reused.knn(q.borrow(), k),
            index.searcher().knn(q.borrow(), k),
            "{name}: reused knn diverges at query {i}"
        );
        assert_eq!(
            reused.range(q.borrow(), radius),
            index.searcher().range(q.borrow(), radius),
            "{name}: reused range diverges at query {i}"
        );
    }
}

#[test]
fn parallel_serving_and_searcher_reuse_hold_for_every_vector_index() {
    let pts = uniform_unit_cube(220, 3, 10);
    let queries = uniform_unit_cube(17, 3, 11);
    let radius = F64Dist::new(0.4);

    // The eight generic structures, through the build-by-spec dispatcher.
    let specs = [
        IndexSpec::Linear,
        IndexSpec::Aesa,
        IndexSpec::Laesa { k: 6 },
        IndexSpec::IAesa { k: 6 },
        IndexSpec::DistPerm { k: 6 },
        IndexSpec::PrefixPerm { k: 6, prefix_len: 3 },
        IndexSpec::VpTree,
        IndexSpec::GhTree,
    ];
    for spec in specs {
        let idx = AnyIndex::build(spec, L2, pts.clone(), PivotSelection::MaxMin).unwrap();
        let name = spec.name();
        check_parallel_matches_sequential(&name, &idx, &queries, 3);
        check_parallel_matches_sequential_range(&name, &idx, &queries, radius);
        check_reused_searcher_matches_fresh(&name, &idx, &queries, 3, radius);
    }

    // Flat storage: same properties over `&[f64]` rows.
    let flat =
        FlatDistPermIndex::build(L2, VectorSet::from_nested(&pts), 6, PivotSelection::MaxMin, 2);
    let qset = VectorSet::from_nested(&queries);
    let rows: Vec<&[f64]> = qset.rows().collect();
    check_parallel_matches_sequential::<[f64], _, _>("flatperm", &flat, &rows, 3);
    check_parallel_matches_sequential_range::<[f64], _, _>("flatperm", &flat, &rows, radius);
    check_reused_searcher_matches_fresh::<[f64], _, _>("flatperm", &flat, &rows, 3, radius);
}

#[test]
fn parallel_serving_and_searcher_reuse_hold_for_string_indexes() {
    let words = generate_words(&language_profiles()[1], 250, 12);
    let queries = generate_words(&language_profiles()[1], 13, 13);

    let bk = BkTree::build(Levenshtein, words.clone());
    check_parallel_matches_sequential("bktree", &bk, &queries, 3);
    check_parallel_matches_sequential_range("bktree", &bk, &queries, 2u32);
    check_reused_searcher_matches_fresh("bktree", &bk, &queries, 3, 2u32);

    let dp = DistPermIndex::build(Levenshtein, words, 7, PivotSelection::MaxMin);
    check_parallel_matches_sequential("distperm/levenshtein", &dp, &queries, 3);
    check_reused_searcher_matches_fresh("distperm/levenshtein", &dp, &queries, 3, 2u32);
}

#[test]
fn budgeted_parallel_serving_matches_sequential_for_the_permutation_family() {
    let pts = uniform_unit_cube(400, 3, 14);
    let queries = uniform_unit_cube(19, 3, 15);
    let knn_req = ApproxRequest::Knn { k: 2, frac: 0.1 };
    let range_req = ApproxRequest::Range { radius: F64Dist::new(0.3), frac: 0.25 };

    let dp = DistPermIndex::build(L2, pts.clone(), 8, PivotSelection::MaxMin);
    let pre = PrefixPermIndex::build(L2, pts.clone(), 8, 4, PivotSelection::MaxMin);
    for threads in [2usize, 7] {
        assert_eq!(
            query_batch_parallel_approx(&dp, &queries, knn_req, threads),
            query_batch_approx(&dp, &queries, knn_req),
            "distperm approx knn, {threads} threads"
        );
        assert_eq!(
            query_batch_parallel_approx(&pre, &queries, range_req, threads),
            query_batch_approx(&pre, &queries, range_req),
            "prefixperm approx range, {threads} threads"
        );
    }

    let flat =
        FlatDistPermIndex::build(L2, VectorSet::from_nested(&pts), 8, PivotSelection::MaxMin, 2);
    let qset = VectorSet::from_nested(&queries);
    let rows: Vec<&[f64]> = qset.rows().collect();
    let seq = query_batch_approx::<[f64], _, _>(&flat, &rows, knn_req);
    assert_eq!(
        query_batch_parallel_approx::<[f64], _, _>(&flat, &rows, knn_req, 3),
        seq,
        "flatperm approx knn"
    );
    // Budgeted serving agrees with the one-shot inherent surface.
    for (q, (neighbors, _)) in queries.iter().zip(&seq) {
        assert_eq!(neighbors, &flat.knn_approx(q, 2, 0.1));
    }
}

#[test]
fn reused_approx_searcher_matches_fresh_session() {
    let pts = uniform_unit_cube(350, 2, 16);
    let queries = uniform_unit_cube(15, 2, 17);
    let dp = DistPermIndex::build(L2, pts.clone(), 9, PivotSelection::MaxMin);
    let pre = PrefixPermIndex::build(L2, pts, 9, 4, PivotSelection::MaxMin);
    let mut dp_session = dp.searcher();
    let mut pre_session = pre.searcher();
    for q in &queries {
        assert_eq!(dp_session.knn_approx(q, 3, 0.15), dp.searcher().knn_approx(q, 3, 0.15));
        assert_eq!(pre_session.knn_approx(q, 3, 0.15), pre.searcher().knn_approx(q, 3, 0.15));
        let radius = F64Dist::new(0.25);
        assert_eq!(
            dp_session.range_approx(q, radius, 0.4),
            dp.searcher().range_approx(q, radius, 0.4)
        );
        assert_eq!(
            pre_session.range_approx(q, radius, 0.4),
            pre.searcher().range_approx(q, radius, 0.4)
        );
    }
}

#[test]
fn searcher_sessions_are_send() {
    fn assert_send<T: Send>(_: &T) {}
    let pts = uniform_unit_cube(40, 2, 18);
    let scan = LinearScan::new(L2, pts.clone());
    assert_send(&scan.searcher());
    let aesa = Aesa::build(L2, pts.clone());
    assert_send(&aesa.searcher());
    let vp = VpTree::build(L2, pts.clone());
    assert_send(&vp.searcher());
    let dp = DistPermIndex::build(L2, pts.clone(), 5, PivotSelection::Prefix);
    assert_send(&dp.searcher());
    let any = AnyIndex::build(IndexSpec::GhTree, L2, pts, PivotSelection::Prefix).unwrap();
    assert_send(&any.searcher());
}
