//! Cross-crate index consistency: every exact index must agree with the
//! linear scan on every query, across point types and metrics; the
//! distperm index's counting must agree with the direct counter.

use distance_permutations::datasets::dictionary::{generate_words, language_profiles};
use distance_permutations::datasets::documents::{generate_documents, long_profile};
use distance_permutations::datasets::uniform_unit_cube;
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::{Aesa, DistPermIndex, GhTree, IAesa, Laesa, LinearScan, VpTree};
use distance_permutations::metric::{CosineDistance, F64Dist, Levenshtein, L1, L2};
use distance_permutations::permutation::counter::count_distinct;

#[test]
fn all_exact_indexes_agree_on_vectors() {
    let pts = uniform_unit_cube(300, 3, 1);
    let queries = uniform_unit_cube(20, 3, 2);
    let scan = LinearScan::new(pts.clone());
    let aesa = Aesa::build(L2, pts.clone());
    let laesa = Laesa::build(L2, pts.clone(), 8, PivotSelection::MaxMin);
    let iaesa = IAesa::build(L2, pts.clone(), 8, PivotSelection::MaxMin);
    let vp = VpTree::build(L2, pts.clone());
    let gh = GhTree::build(L2, pts.clone());
    let dp = DistPermIndex::build(L2, pts, 8, PivotSelection::MaxMin);
    for q in &queries {
        let truth = scan.knn(&L2, q, 4);
        assert_eq!(aesa.knn(q, 4), truth, "AESA");
        assert_eq!(laesa.knn(q, 4), truth, "LAESA");
        assert_eq!(iaesa.knn(q, 4), truth, "iAESA");
        assert_eq!(vp.knn(q, 4), truth, "VP-tree");
        assert_eq!(gh.knn(q, 4), truth, "GH-tree");
        assert_eq!(dp.knn_approx(q, 4, 1.0), truth, "distperm full budget");
    }
}

#[test]
fn all_exact_indexes_agree_on_range_queries_l1() {
    let pts = uniform_unit_cube(250, 2, 3);
    let queries = uniform_unit_cube(15, 2, 4);
    let scan = LinearScan::new(pts.clone());
    let aesa = Aesa::build(L1, pts.clone());
    let laesa = Laesa::build(L1, pts.clone(), 6, PivotSelection::MaxMin);
    let vp = VpTree::build(L1, pts.clone());
    let gh = GhTree::build(L1, pts);
    for q in &queries {
        for r in [0.1, 0.3, 0.8] {
            let radius = F64Dist::new(r);
            let truth = scan.range(&L1, q, radius);
            assert_eq!(aesa.range(q, radius), truth, "AESA r={r}");
            assert_eq!(laesa.range(q, radius), truth, "LAESA r={r}");
            assert_eq!(vp.range(q, radius), truth, "VP r={r}");
            assert_eq!(gh.range(q, radius), truth, "GH r={r}");
        }
    }
}

#[test]
fn indexes_agree_on_dictionaries() {
    let words = generate_words(&language_profiles()[4], 300, 5);
    let queries = generate_words(&language_profiles()[4], 15, 6);
    let scan = LinearScan::new(words.clone());
    let vp = VpTree::build(Levenshtein, words.clone());
    let gh = GhTree::build(Levenshtein, words.clone());
    let laesa = Laesa::build(Levenshtein, words, 6, PivotSelection::MaxMin);
    for q in &queries {
        let truth = scan.knn(&Levenshtein, q, 3);
        assert_eq!(vp.knn(q, 3), truth);
        assert_eq!(gh.knn(q, 3), truth);
        assert_eq!(laesa.knn(q, 3), truth);
    }
}

#[test]
fn indexes_agree_on_documents() {
    let docs = generate_documents(long_profile(), 150, 7);
    let queries = generate_documents(long_profile(), 10, 8);
    let scan = LinearScan::new(docs.clone());
    let vp = VpTree::build(CosineDistance, docs.clone());
    let aesa = Aesa::build(CosineDistance, docs);
    for q in &queries {
        let truth = scan.knn(&CosineDistance, q, 3);
        assert_eq!(vp.knn(q, 3), truth);
        assert_eq!(aesa.knn(q, 3), truth);
    }
}

#[test]
fn distperm_counting_is_consistent_with_direct_counter() {
    let words = generate_words(&language_profiles()[0], 500, 9);
    let idx = DistPermIndex::build(Levenshtein, words.clone(), 7, PivotSelection::Prefix);
    let sites: Vec<String> = words[..7].to_vec();
    assert_eq!(idx.distinct_permutations(), count_distinct(&Levenshtein, &sites, &words));
    // The ASCII export has one line per word and as many distinct lines
    // as distinct permutations (the paper's sort|uniq|wc pipeline).
    let text = idx.export_ascii();
    let mut lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), words.len());
    lines.sort_unstable();
    lines.dedup();
    assert_eq!(lines.len(), idx.distinct_permutations());
}
