//! Failure injection and degenerate inputs across the workspace.
//!
//! The paper's definition is total — Π_y exists for every y, every site
//! multiset, every metric — so the library must be too: duplicate sites,
//! all-identical databases, k = 1, ties everywhere.  Invalid *numerics*
//! (NaN) must be rejected loudly, never silently mis-sorted.

use distance_permutations::core::count::count_permutations;
use distance_permutations::core::survey::{survey_database, SurveyConfig};
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::{DistPermIndex, LinearScan, PrefixPermIndex};
use distance_permutations::metric::{F64Dist, Levenshtein, Metric, L2};
use distance_permutations::permutation::{distance_permutation, Permutation};

#[test]
fn duplicate_sites_tie_break_by_index() {
    // Two identical sites: every point is equidistant from both, so the
    // tie-break puts the lower index first — always.
    let sites = vec![vec![0.3, 0.3], vec![0.3, 0.3], vec![0.9, 0.1]];
    let db = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.3, 0.3]];
    for y in &db {
        let p = distance_permutation(&L2, &sites, y);
        let pos0 = p.position_of(0).unwrap();
        let pos1 = p.position_of(1).unwrap();
        assert!(pos0 < pos1, "site 0 must precede its duplicate: {p}");
    }
    // With two of three sites identical, at most 2·1 = 2 orderings of the
    // distinct pair remain (times 1 for the forced tie) = 3 patterns max;
    // actually the duplicates are adjacent, so ≤ 3 distinct permutations.
    let r = count_permutations(&L2, &sites, &db);
    assert!(r.distinct <= 3);
}

#[test]
fn query_point_equal_to_a_site() {
    let sites = vec![vec![0.0], vec![1.0], vec![2.0]];
    let p = distance_permutation(&L2, &sites, &vec![1.0]);
    assert_eq!(p.as_slice(), &[1, 0, 2], "self first, then lower index on the 0/2 tie");
}

#[test]
fn k_equals_one_always_identity() {
    let sites = vec![vec![0.5, 0.5]];
    let db: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, -(i as f64)]).collect();
    let r = count_permutations(&L2, &sites, &db);
    assert_eq!(r.distinct, 1);
    assert_eq!(distance_permutation(&L2, &sites, &db[7]), Permutation::identity(1));
}

#[test]
fn all_identical_database_yields_one_permutation() {
    let db = vec![vec![0.25, 0.75]; 100];
    let sites = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]];
    let r = count_permutations(&L2, &sites, &db);
    assert_eq!(r.distinct, 1);
    assert!((r.mean_occupancy - 100.0).abs() < 1e-12);
}

#[test]
fn colinear_equidistant_grid_ties_are_deterministic() {
    // An integer grid with sites placed symmetrically: masses of exact
    // ties; the count must be reproducible run to run.
    let db: Vec<Vec<f64>> =
        (0..20).flat_map(|x| (0..20).map(move |y| vec![x as f64, y as f64])).collect();
    let sites = vec![vec![5.0, 5.0], vec![14.0, 5.0], vec![5.0, 14.0], vec![14.0, 14.0]];
    let a = count_permutations(&L2, &sites, &db).distinct;
    let b = count_permutations(&L2, &sites, &db).distinct;
    assert_eq!(a, b);
    assert!(a <= 18, "4 sites in the plane: at most 18 cells, got {a}");
}

#[test]
#[should_panic(expected = "NaN")]
fn nan_distance_is_rejected() {
    let _ = F64Dist::new(f64::NAN);
}

#[test]
#[should_panic]
fn dimension_mismatch_is_rejected() {
    let _ = L2.distance(&[0.0, 0.0][..], &[1.0][..]);
}

#[test]
fn empty_strings_are_valid_points() {
    let sites = vec![String::new(), "abc".to_string(), "a".to_string()];
    let p = distance_permutation(&Levenshtein, &sites, &String::new());
    assert_eq!(p.get(0), 0, "the empty string is closest to itself");
    let db = vec![String::new(), "ab".to_string(), "abcd".to_string()];
    let r = count_permutations(&Levenshtein, &sites, &db);
    assert!(r.distinct >= 2);
}

#[test]
fn indexes_accept_duplicate_heavy_databases() {
    let mut db = vec![vec![0.5, 0.5]; 40];
    db.extend((0..10).map(|i| vec![i as f64 / 10.0, 0.1]));
    let scan = LinearScan::new(L2, db.clone());
    let idx = DistPermIndex::build(L2, db.clone(), 4, PivotSelection::MaxMin);
    let pre = PrefixPermIndex::build(L2, db, 4, 2, PivotSelection::MaxMin);
    let q = vec![0.49, 0.51];
    assert_eq!(idx.knn_approx(&q, 5, 1.0), scan.knn(&q, 5));
    assert_eq!(pre.knn_approx(&q, 5, 1.0), scan.knn(&q, 5));
}

#[test]
fn zero_length_prefix_index_degenerates_gracefully() {
    let db = vec![vec![0.0], vec![0.4], vec![0.9], vec![1.3]];
    let scan = LinearScan::new(L2, db.clone());
    let pre = PrefixPermIndex::build(L2, db, 2, 0, PivotSelection::Prefix);
    assert_eq!(pre.distinct_prefixes(), 1, "empty prefixes are all equal");
    assert_eq!(pre.storage_bits_raw(), 0);
    // Full-budget search stays exact even with an uninformative index.
    let q = vec![0.5];
    assert_eq!(pre.knn_approx(&q, 2, 1.0), scan.knn(&q, 2));
}

#[test]
fn survey_handles_two_point_database() {
    let db = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
    let cfg = SurveyConfig { ks: vec![1, 2], rho_pairs: 10, ..Default::default() };
    let s = survey_database(&L2, &db, &cfg);
    assert_eq!(s.n, 2);
    assert_eq!(s.per_k[0].report.distinct, 1);
    assert!(s.per_k[1].report.distinct <= 2);
}

#[test]
fn unit_distance_ties_under_levenshtein_stay_within_factorial() {
    // Short strings over a tiny alphabet: distances take few values, so
    // ties dominate; counts must respect k! regardless.
    let db: Vec<String> =
        (0..200).map(|i| format!("{}{}", ["a", "b"][i % 2], ["x", "y", "z"][i % 3])).collect();
    let sites: Vec<String> = db[..5].to_vec();
    let r = count_permutations(&Levenshtein, &sites, &db);
    assert!(r.distinct <= 120);
    assert!(r.distinct >= 1);
}
