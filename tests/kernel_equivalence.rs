//! Strip-mined kernel equivalence: the 4-wide register-tiled
//! `BatchDistance::batch_distances` must be **bit-for-bit** equal to the
//! row-at-a-time reference kernel and to the scalar `Metric::distance`
//! path — for all five vector metrics, every remainder shape (n mod 4,
//! k mod 4), non-finite inputs, and through every flat consumer
//! (permutation scans, counting, the flat index) at 1/2/4 threads.
//!
//! `scripts/check.sh` also runs this suite under `--release`, where the
//! optimized-float codegen actually exercises the vectorized tiles —
//! the configuration in which strip-kernel bit-identity could really
//! break.

use distance_permutations::core::count::{
    count_permutations, count_permutations_flat, count_permutations_flat_parallel,
};
use distance_permutations::datasets::VectorSet;
use distance_permutations::index::{DistPermIndex, FlatDistPermIndex};
use distance_permutations::metric::{
    BatchDistance, F64Dist, L2Squared, LInf, Lp, Metric, TransposedSites, L1, L2,
};
use distance_permutations::permutation::compute::{
    database_permutations, database_permutations_flat, database_permutations_flat_parallel,
};
use proptest::prelude::*;

/// Deterministic irregular filler covering both signs.
fn weyl_rows(n: usize, dim: usize, salt: u64) -> Vec<f64> {
    (0..n * dim)
        .map(|i| {
            let t = ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ salt) >> 11) as f64
                / (1u64 << 53) as f64;
            t * 40.0 - 20.0
        })
        .collect()
}

/// Runs one metric through strip, rowwise and scalar on one shape and
/// asserts all three agree to the bit.
fn assert_kernel_equivalence<M: BatchDistance>(
    metric: &M,
    rows: &[f64],
    site_rows: &[f64],
    dim: usize,
    tag: &str,
) {
    let sites = TransposedSites::from_rows(site_rows, dim);
    let (n, k) = (rows.len() / dim.max(1), sites.k());
    let mut strip = vec![f64::NAN; n * k];
    let mut rowwise = vec![f64::NAN; n * k];
    metric.batch_distances(rows, &sites, &mut strip);
    metric.batch_distances_rowwise(rows, &sites, &mut rowwise);
    for r in 0..n {
        for j in 0..k {
            let (s, w) = (strip[r * k + j], rowwise[r * k + j]);
            if s.is_nan() || w.is_nan() {
                // NaN-ness must agree, but payload bits are
                // codegen-defined (scalar and vector instructions may
                // generate different quiet-NaN patterns); NaN distances
                // panic at every public API boundary regardless.
                assert!(s.is_nan() && w.is_nan(), "{tag}: NaN disagreement at ({r}, {j})");
                continue;
            }
            assert_eq!(s.to_bits(), w.to_bits(), "{tag}: strip vs rowwise at ({r}, {j})");
            let scalar =
                metric.distance(&rows[r * dim..(r + 1) * dim], &site_rows[j * dim..(j + 1) * dim]);
            assert_eq!(F64Dist::new(s), scalar, "{tag}: strip vs scalar at ({r}, {j})");
        }
    }
}

fn for_all_metrics(rows: &[f64], site_rows: &[f64], dim: usize, tag: &str) {
    assert_kernel_equivalence(&L1, rows, site_rows, dim, &format!("{tag} L1"));
    assert_kernel_equivalence(&L2, rows, site_rows, dim, &format!("{tag} L2"));
    assert_kernel_equivalence(&L2Squared, rows, site_rows, dim, &format!("{tag} L2sq"));
    assert_kernel_equivalence(&LInf, rows, site_rows, dim, &format!("{tag} LInf"));
    assert_kernel_equivalence(&Lp::new(2.5), rows, site_rows, dim, &format!("{tag} Lp2.5"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Every (n, k, dim) shape — including all 16 (n mod 4, k mod 4)
    // remainder combinations over time — keeps the three kernels
    // bit-identical for all five metrics (plus a random-exponent Lp).
    #[test]
    fn kernels_agree_on_random_shapes(
        n in 0usize..40,
        k in 0usize..14,
        dim in 1usize..9,
        p in 1.0f64..6.0,
        salt in 0u64..1000,
    ) {
        let rows = weyl_rows(n, dim, salt);
        let site_rows = weyl_rows(k, dim, salt ^ 0xABCD);
        for_all_metrics(&rows, &site_rows, dim, "shape");
        assert_kernel_equivalence(&Lp::new(p), &rows, &site_rows, dim, "shape Lp-rand");
    }

    // Non-finite coordinates (NaN, ±∞) propagate through the strip and
    // rowwise kernels identically — and identically to the scalar fold
    // wherever the scalar result is representable (non-NaN).
    #[test]
    fn kernels_agree_on_non_finite_inputs(
        n in 1usize..10,
        k in 1usize..10,
        dim in 1usize..5,
        salt in 0u64..1000,
        positions in prop::collection::vec((0usize..64, 0usize..3), 1..8),
    ) {
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let mut rows = weyl_rows(n, dim, salt);
        let mut site_rows = weyl_rows(k, dim, salt ^ 0xF00D);
        for &(pos, which) in &positions {
            let (ri, si) = (pos % rows.len(), (pos * 7) % site_rows.len());
            rows[ri] = specials[which];
            site_rows[si] = specials[which];
        }
        for_all_metrics(&rows, &site_rows, dim, "non-finite");
    }

    // Degenerate shapes — k = 0, n = 0, n < k, k ≫ n — keep the flat
    // permutation scan, the flat counter, and the parallel variants
    // bit-identical to the nested per-point path at 1/2/4 threads.
    #[test]
    fn degenerate_shapes_match_nested_path(
        n in 0usize..24,
        k in 0usize..16,
        dim in 1usize..5,
        salt in 0u64..1000,
    ) {
        let db = weyl_rows(n, dim, salt);
        let site_rows = weyl_rows(k, dim, salt ^ 0xBEEF);
        let sites_t = TransposedSites::from_rows(&site_rows, dim);
        let nested_db: Vec<Vec<f64>> = db.chunks_exact(dim).map(<[f64]>::to_vec).collect();
        let nested_sites: Vec<Vec<f64>> =
            site_rows.chunks_exact(dim).map(<[f64]>::to_vec).collect();

        let nested = database_permutations(&L2Squared, &nested_sites, &nested_db);
        let flat = database_permutations_flat(&L2Squared, &sites_t, &db);
        prop_assert_eq!(&flat, &nested);
        for threads in [1usize, 2, 4] {
            let par = database_permutations_flat_parallel(&L2Squared, &sites_t, &db, threads);
            prop_assert_eq!(&par, &nested, "threads = {}", threads);
        }

        let db_set = VectorSet::from_raw(dim, db);
        let sites_set = VectorSet::from_raw(dim, site_rows);
        let nested_count = count_permutations(&L2Squared, &nested_sites, &nested_db);
        prop_assert_eq!(&count_permutations_flat(&L2Squared, &sites_set, &db_set), &nested_count);
        for threads in [1usize, 2, 4] {
            prop_assert_eq!(
                &count_permutations_flat_parallel(&L2Squared, &sites_set, &db_set, threads),
                &nested_count,
                "threads = {}", threads
            );
        }
    }
}

/// The full flat == nested counting equivalence for **all five metrics
/// at 1/2/4 threads** on a shape large enough to cross the parallel
/// cutoff and exercise every strip/tile remainder (n mod 4 = 3,
/// k mod 4 = 1).
#[test]
fn counting_bit_identity_all_metrics_at_1_2_4_threads() {
    let (n, k, dim) = (2051usize, 9usize, 6usize);
    let db = weyl_rows(n, dim, 41);
    let site_rows = weyl_rows(k, dim, 42);
    let db_set = VectorSet::from_raw(dim, db.clone());
    let sites_set = VectorSet::from_raw(dim, site_rows.clone());
    let nested_db: Vec<Vec<f64>> = db.chunks_exact(dim).map(<[f64]>::to_vec).collect();
    let nested_sites: Vec<Vec<f64>> = site_rows.chunks_exact(dim).map(<[f64]>::to_vec).collect();

    fn check<M: BatchDistance + Metric<Vec<f64>, Dist = F64Dist> + Sync>(
        metric: &M,
        sites_set: &VectorSet,
        db_set: &VectorSet,
        nested_sites: &[Vec<f64>],
        nested_db: &[Vec<f64>],
        tag: &str,
    ) {
        let nested = count_permutations(metric, nested_sites, nested_db);
        for threads in [1usize, 2, 4] {
            let flat = count_permutations_flat_parallel(metric, sites_set, db_set, threads);
            assert_eq!(flat, nested, "{tag}, threads = {threads}");
        }
    }
    check(&L1, &sites_set, &db_set, &nested_sites, &nested_db, "L1");
    check(&L2, &sites_set, &db_set, &nested_sites, &nested_db, "L2");
    check(&L2Squared, &sites_set, &db_set, &nested_sites, &nested_db, "L2sq");
    check(&LInf, &sites_set, &db_set, &nested_sites, &nested_db, "LInf");
    check(&Lp::new(3.5), &sites_set, &db_set, &nested_sites, &nested_db, "Lp3.5");
}

/// The flat index's batched candidate measurement answers exactly like
/// the generic per-point index, including on tie-heavy integer grids.
#[test]
fn flat_index_batched_measurement_matches_generic() {
    let (n, dim) = (257usize, 3usize);
    // Integer grid coordinates force distance ties; the batched
    // measurement must resolve them exactly like the scalar path.
    let db: Vec<f64> = (0..n * dim).map(|i| ((i * 2654435761) % 5) as f64).collect();
    let nested: Vec<Vec<f64>> = db.chunks_exact(dim).map(<[f64]>::to_vec).collect();
    let flat = VectorSet::from_raw(dim, db);
    let site_ids = vec![3usize, 77, 140, 9, 201];
    let generic = DistPermIndex::build_with_sites(L2, nested.clone(), site_ids.clone());
    let flat_idx = FlatDistPermIndex::build_with_sites(L2, flat, site_ids, 2);
    for (qi, q) in nested.iter().step_by(41).enumerate() {
        for frac in [0.1f64, 0.5, 1.0] {
            assert_eq!(
                flat_idx.knn_approx(q, 4, frac),
                generic.knn_approx(q, 4, frac),
                "query {qi}, frac {frac}"
            );
            let radius = F64Dist::new(2.0);
            assert_eq!(
                flat_idx.range_approx(q, radius, frac),
                generic.range_approx(q, radius, frac),
                "range: query {qi}, frac {frac}"
            );
        }
    }
}

/// Budgeted scans at the clamp boundaries (budget ≈ n, k ≥ n, n = 0)
/// answer without panicking and identically on flat and generic indexes.
#[test]
fn budget_clamp_boundaries_answer_identically() {
    let (n, dim) = (17usize, 2usize);
    let db = weyl_rows(n, dim, 77);
    let nested: Vec<Vec<f64>> = db.chunks_exact(dim).map(<[f64]>::to_vec).collect();
    let flat = VectorSet::from_raw(dim, db);
    let site_ids = vec![0usize, 5, 11];
    let generic = DistPermIndex::build_with_sites(L2, nested.clone(), site_ids.clone());
    let flat_idx = FlatDistPermIndex::build_with_sites(L2, flat, site_ids, 1);
    let q = &nested[3];
    // k at n − 1, n, n + 1 and far beyond; frac at 0 and 1.
    for k in [n - 1, n, n + 1, 4 * n] {
        for frac in [0.0f64, 1.0] {
            let got = flat_idx.knn_approx(q, k, frac);
            assert_eq!(got, generic.knn_approx(q, k, frac), "k = {k}, frac = {frac}");
            assert_eq!(got.len(), k.min(n), "k = {k}, frac = {frac}");
        }
    }
    // Empty index: any k, any frac.
    let empty = FlatDistPermIndex::build_with_sites(L2, VectorSet::new(dim), vec![], 1);
    for k in [0usize, 1, 5] {
        assert!(empty.knn_approx(&nested[0], k, 0.5).is_empty());
    }
    let empty_generic = DistPermIndex::build_with_sites(L2, Vec::<Vec<f64>>::new(), vec![]);
    for k in [0usize, 1, 5] {
        assert!(empty_generic.knn_approx(&nested[0], k, 0.5).is_empty());
    }
}

/// The flat engine's panic contract on unrepresentable shapes: dim-0
/// sites with a non-empty database must refuse loudly (the nested
/// engine can represent width-0 points; flat storage cannot recover a
/// row count).
#[test]
fn zero_dim_sites_with_nonempty_database_panic_loudly() {
    let sites_t = TransposedSites::from_rows(&[], 0);
    let err =
        std::panic::catch_unwind(|| database_permutations_flat(&L2Squared, &sites_t, &[1.0, 2.0]))
            .expect_err("dim-0 sites over a non-empty database must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(std::string::ToString::to_string))
        .unwrap_or_default();
    assert!(msg.contains("dim 0"), "panic message should name the dim-0 contract: {msg}");
}
