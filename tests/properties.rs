//! Property-based tests (proptest) over the workspace's core invariants.

use distance_permutations::metric::{
    axioms::check_metric, Hamming, LInf, Levenshtein, Metric, PrefixDistance, L1, L2,
};
use distance_permutations::permutation::lehmer::{factorial, rank, unrank};
use distance_permutations::permutation::permdist::{
    kendall_tau, max_footrule, max_kendall, spearman_footrule,
};
use distance_permutations::permutation::{distance_permutation, Permutation};
use proptest::prelude::*;

fn arb_vector(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, d)
}

fn arb_permutation(k: usize) -> impl Strategy<Value = Permutation> {
    Just(k).prop_perturb(move |k, mut rng| {
        let mut items: Vec<u8> = (0..k as u8).collect();
        for i in (1..items.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
        Permutation::from_slice(&items).expect("shuffled identity is a permutation")
    })
}

proptest! {
    #[test]
    fn distance_permutation_is_always_valid(
        sites in prop::collection::vec(arb_vector(3), 2..10),
        query in arb_vector(3),
    ) {
        let p = distance_permutation(&L2, &sites, &query);
        prop_assert_eq!(p.len(), sites.len());
        // from_slice revalidates: round-trip must succeed.
        prop_assert!(Permutation::from_slice(p.as_slice()).is_ok());
        // Distances really are sorted.
        let d = |i: u8| L2.distance(&sites[i as usize][..], &query[..]);
        for w in p.as_slice().windows(2) {
            prop_assert!(d(w[0]) <= d(w[1]));
            if d(w[0]) == d(w[1]) {
                prop_assert!(w[0] < w[1], "tie must break by index");
            }
        }
    }

    #[test]
    fn permutation_of_permuted_sites_is_consistent(
        sites in prop::collection::vec(arb_vector(2), 3..8),
        query in arb_vector(2),
    ) {
        // Reversing the site list relabels the permutation accordingly
        // (up to tie-breaking, which generic f64 data almost never hits).
        let p = distance_permutation(&L2, &sites, &query);
        let reversed: Vec<Vec<f64>> = sites.iter().rev().cloned().collect();
        let q = distance_permutation(&L2, &reversed, &query);
        let k = sites.len() as u8;
        let relabeled: Vec<u8> = q.as_slice().iter().map(|&e| k - 1 - e).collect();
        prop_assert_eq!(p.as_slice(), &relabeled[..]);
    }

    #[test]
    fn rank_unrank_roundtrip(p in arb_permutation(9)) {
        let r = rank(&p);
        prop_assert!(r < factorial(9));
        prop_assert_eq!(unrank(9, r), p);
    }

    #[test]
    fn permutation_distances_are_metrics(
        a in arb_permutation(7),
        b in arb_permutation(7),
        c in arb_permutation(7),
    ) {
        // Identity, symmetry, triangle, and range.
        prop_assert_eq!(kendall_tau(&a, &a), 0);
        prop_assert_eq!(spearman_footrule(&a, &a), 0);
        prop_assert_eq!(kendall_tau(&a, &b), kendall_tau(&b, &a));
        prop_assert_eq!(spearman_footrule(&a, &b), spearman_footrule(&b, &a));
        prop_assert!(kendall_tau(&a, &b) <= kendall_tau(&a, &c) + kendall_tau(&c, &b));
        prop_assert!(
            spearman_footrule(&a, &b)
                <= spearman_footrule(&a, &c) + spearman_footrule(&c, &b)
        );
        prop_assert!(kendall_tau(&a, &b) <= max_kendall(7));
        prop_assert!(spearman_footrule(&a, &b) <= max_footrule(7));
        // Diaconis–Graham: K <= F <= 2K.
        let k = kendall_tau(&a, &b);
        let f = spearman_footrule(&a, &b);
        prop_assert!(k <= f && f <= 2 * k);
    }

    #[test]
    fn vector_metric_axioms_hold(points in prop::collection::vec(arb_vector(4), 3..7)) {
        prop_assert!(check_metric(&L1, &points, 1e-9).is_ok());
        prop_assert!(check_metric(&L2, &points, 1e-9).is_ok());
        prop_assert!(check_metric(&LInf, &points, 1e-9).is_ok());
    }

    #[test]
    fn string_metric_axioms_hold(
        words in prop::collection::vec("[a-d]{0,8}", 3..7),
    ) {
        prop_assert!(check_metric(&Levenshtein, &words, 0.0).is_ok());
        prop_assert!(check_metric(&PrefixDistance, &words, 0.0).is_ok());
        prop_assert!(check_metric(&Hamming, &words, 0.0).is_ok());
    }

    #[test]
    fn lp_metrics_are_ordered(a in arb_vector(5), b in arb_vector(5)) {
        // L1 >= L2 >= Linf pointwise, and all are within d x Linf.
        let d1 = L1.distance(&a[..], &b[..]).get();
        let d2 = L2.distance(&a[..], &b[..]).get();
        let di = LInf.distance(&a[..], &b[..]).get();
        prop_assert!(d1 >= d2 - 1e-9);
        prop_assert!(d2 >= di - 1e-9);
        prop_assert!(d1 <= 5.0 * di + 1e-9);
    }
}
