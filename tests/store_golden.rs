//! Golden-fixture pinning for the store format.
//!
//! A version-1 container's bytes are a public contract: once written,
//! any reader of any future workspace revision must load it and answer
//! identically.  These tests pin a small committed store file
//! (`tests/fixtures/golden_v1.dps`) three ways — its exact bytes are
//! reproduced by today's writer, today's reader loads it and answers a
//! fixed query set with pinned results, and a version-bumped copy
//! (`tests/fixtures/golden_wrong_version.dps`) fails with precisely the
//! version-mismatch error.
//!
//! If the format changes intentionally, bump `FORMAT_VERSION` and
//! regenerate with `cargo test --test store_golden -- --ignored bless`
//! — a bytes-differ failure here without a version bump is a silent
//! format break.

use distance_permutations::datasets::VectorSet;
use distance_permutations::index::FlatDistPermIndex;
use distance_permutations::metric::{Distance, Lp};
use distance_permutations::store::{
    fnv1a64, load_store, read_store, store_to_bytes, StoreError, StoredIndex, FORMAT_VERSION,
};
use std::path::PathBuf;

/// The golden database: 12 deterministic 2-D points (a fixed literal,
/// not generator output, so the fixture never depends on RNG details).
fn golden_db() -> Vec<Vec<f64>> {
    (0..12)
        .map(|i| {
            let i = i as f64;
            vec![(0.37 * i + 0.11 * i * i).fract(), (0.73 * i + 0.05 * i * i * i).fract()]
        })
        .collect()
}

/// The golden index: explicit sites, Lp(2.5) so the metric-parameter
/// field is exercised, sequential build.
fn golden_index() -> FlatDistPermIndex<Lp> {
    FlatDistPermIndex::build_with_sites(
        Lp::new(2.5),
        VectorSet::from_nested(&golden_db()),
        vec![0, 5, 9],
        1,
    )
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Serializes k-NN answers canonically (id, dist bits, little-endian)
/// and digests them, so one pinned u64 covers the full answer set.
fn answer_digest(index: &FlatDistPermIndex<Lp>) -> u64 {
    let queries = [[0.1f64, 0.9], [0.5, 0.5], [0.95, 0.05], [0.33, 0.67]];
    let mut canon = Vec::new();
    let mut session = index.session();
    for q in &queries {
        let (neighbors, stats) = session.knn_approx(q, 3, 1.0);
        canon.extend_from_slice(&stats.metric_evals.to_le_bytes());
        for n in neighbors {
            canon.extend_from_slice(&(n.id as u64).to_le_bytes());
            canon.extend_from_slice(&n.dist.to_f64().to_bits().to_le_bytes());
        }
    }
    fnv1a64(&canon)
}

/// Pinned FNV-1a 64 digest of the golden store's bytes.
const GOLDEN_BYTES_DIGEST: u64 = 0x54AB_B4B3_14F7_FA94;

/// Pinned digest of the golden index's answers to the fixed query set.
const GOLDEN_ANSWER_DIGEST: u64 = 0x3EFF_4346_6C23_0B63;

#[test]
fn golden_store_bytes_are_reproduced_exactly() {
    let committed = std::fs::read(fixture_path("golden_v1.dps")).expect("committed fixture");
    let regenerated = store_to_bytes(&golden_index());
    assert_eq!(fnv1a64(&committed), GOLDEN_BYTES_DIGEST, "committed fixture was modified");
    assert_eq!(
        regenerated, committed,
        "writer output changed for identical input — a silent format break \
         (bump FORMAT_VERSION and re-bless if intentional)"
    );
}

#[test]
fn golden_store_loads_and_answers_identically() {
    let loaded = load_store(&fixture_path("golden_v1.dps")).expect("golden store loads");
    let index = match loaded {
        StoredIndex::Lp(index) => index,
        other => panic!("golden store is Lp(2.5), got {}", other.metric_tag().name()),
    };
    assert_eq!((index.len(), index.k(), index.points().dim()), (12, 3, 2));
    assert_eq!(index.site_ids(), &[0, 5, 9]);
    assert_eq!(index.metric().p().to_bits(), 2.5f64.to_bits());
    assert_eq!(answer_digest(&index), GOLDEN_ANSWER_DIGEST, "loaded answers drifted");
    assert_eq!(answer_digest(&golden_index()), GOLDEN_ANSWER_DIGEST, "built answers drifted");
}

#[test]
fn wrong_version_fixture_reports_version_mismatch() {
    let bytes = std::fs::read(fixture_path("golden_wrong_version.dps")).expect("committed fixture");
    match read_store(&bytes) {
        Err(StoreError::UnsupportedVersion { found }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// Regenerates both fixtures and prints the digests to pin.  Ignored in
/// normal runs; the documented re-bless path after an intentional
/// format-version bump.
#[test]
#[ignore = "fixture generator, run explicitly to re-bless"]
fn bless() {
    let bytes = store_to_bytes(&golden_index());
    std::fs::create_dir_all(fixture_path("")).expect("fixture dir");
    std::fs::write(fixture_path("golden_v1.dps"), &bytes).expect("write golden");

    // The wrong-version twin: version bumped, header checksum (bytes
    // 56..64, over 0..56) recomputed so the version check itself is what
    // fires rather than the checksum.
    let mut wrong = bytes.clone();
    wrong[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let sum = fnv1a64(&wrong[..56]);
    wrong[56..64].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(fixture_path("golden_wrong_version.dps"), &wrong).expect("write wrong-version");

    println!("GOLDEN_BYTES_DIGEST:  {:#018X}", fnv1a64(&bytes));
    println!("GOLDEN_ANSWER_DIGEST: {:#018X}", answer_digest(&golden_index()));
}
