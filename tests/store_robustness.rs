//! Adversarial durability suite for the on-disk store
//! (`scripts/check.sh` also runs this under `--release`).
//!
//! The contract under test: the `dp-store` reader is **total**.
//! Truncation at *every* byte prefix and corruption at *every* byte
//! offset must yield a typed [`StoreError`] — never a panic, and never
//! a silently wrong answer.  The canonical layout makes the sweep
//! exhaustive: every byte of a valid file is either a validated header/
//! TOC/META field, payload covered by an FNV-1a checksum (which detects
//! every single-byte substitution with certainty, not probability), or
//! padding the reader requires to be zero.

use distance_permutations::datasets::{uniform_unit_cube, VectorSet};
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::FlatDistPermIndex;
use distance_permutations::metric::L2;
use distance_permutations::store::{
    read_store, store_to_bytes, StoreError, FORMAT_VERSION, HEADER_LEN,
};
use proptest::prelude::*;

fn store_image() -> Vec<u8> {
    let db = uniform_unit_cube(40, 2, 0xD15C);
    let index =
        FlatDistPermIndex::build(L2, VectorSet::from_nested(&db), 5, PivotSelection::MaxMin, 1);
    store_to_bytes(&index)
}

/// Recomputes the header checksum after a deliberate header edit, so a
/// test can reach validation steps *past* the checksum.
fn fix_header_checksum(bytes: &mut [u8]) {
    let sum = distance_permutations::store::fnv1a64(&bytes[..56]);
    bytes[56..64].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn every_truncation_prefix_is_a_typed_error() {
    let bytes = store_image();
    assert!(read_store(&bytes).is_ok(), "the uncorrupted image must read");
    for len in 0..bytes.len() {
        let Err(err) = read_store(&bytes[..len]) else {
            panic!("prefix of {len}/{} bytes read successfully", bytes.len())
        };
        // Truncation is structural: it must surface as a length-class
        // error, not as a payload-content complaint.
        match err {
            StoreError::TooShort { .. }
            | StoreError::LengthMismatch { .. }
            | StoreError::BadLayout { .. } => {}
            other => panic!("prefix {len}: unexpected error class {other}"),
        }
    }
}

#[test]
fn every_single_byte_corruption_is_a_typed_error() {
    let bytes = store_image();
    for offset in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= flip;
            assert!(
                read_store(&corrupt).is_err(),
                "flipping byte {offset} with {flip:#04x} read back successfully"
            );
        }
    }
}

#[test]
fn error_classes_match_the_corrupted_region() {
    let bytes = store_image();

    // Magic.
    let mut c = bytes.clone();
    c[0] ^= 0xFF;
    assert!(matches!(read_store(&c), Err(StoreError::BadMagic { .. })));

    // Version: diagnosed before the header checksum so a future-format
    // file reports its version rather than a checksum mismatch.
    let mut c = bytes.clone();
    c[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    fix_header_checksum(&mut c);
    assert!(matches!(
        read_store(&c),
        Err(StoreError::UnsupportedVersion { found }) if found == FORMAT_VERSION + 1
    ));

    // Endianness tag, as a byte-swapped writer would produce it.
    let mut c = bytes.clone();
    c[12..16].reverse();
    fix_header_checksum(&mut c);
    assert!(matches!(read_store(&c), Err(StoreError::BadEndianness { .. })));

    // Any other header byte: the header checksum.
    let mut c = bytes.clone();
    c[33] ^= 0x01;
    assert!(matches!(read_store(&c), Err(StoreError::HeaderChecksum { .. })));

    // Recorded length vs. reality (checksum fixed up to get past it).
    let mut c = bytes.clone();
    let wrong = (bytes.len() as u64 + 64).to_le_bytes();
    c[32..40].copy_from_slice(&wrong);
    fix_header_checksum(&mut c);
    assert!(matches!(read_store(&c), Err(StoreError::LengthMismatch { .. })));

    // TOC byte: the TOC checksum.
    let mut c = bytes.clone();
    c[HEADER_LEN as usize + 9] ^= 0x10;
    assert!(matches!(read_store(&c), Err(StoreError::TocChecksum { .. })));

    // Payload byte: that section's checksum.
    let mut c = bytes.clone();
    let last = c.len() - 1;
    c[last] ^= 0x04;
    assert!(matches!(read_store(&c), Err(StoreError::SectionChecksum { .. })));

    // Trailing garbage is not silently ignored.
    let mut c = bytes.clone();
    c.push(0);
    assert!(matches!(read_store(&c), Err(StoreError::LengthMismatch { .. })));

    // The degenerate prefixes.
    assert!(matches!(read_store(&[]), Err(StoreError::TooShort { actual: 0 })));
    assert!(matches!(read_store(&bytes[..63]), Err(StoreError::TooShort { actual: 63 })));
}

#[test]
fn loading_a_missing_file_is_io_not_panic() {
    let err =
        distance_permutations::store::load_store(std::path::Path::new("/nonexistent/store.dps"))
            .expect_err("missing file must fail");
    assert!(matches!(err, StoreError::Io(_)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Multi-byte random corruption: any number of scattered edits that
    // actually change bytes must be caught.
    #[test]
    fn random_multi_byte_corruption_is_caught(
        edits in proptest::collection::vec((0usize..4096, 1u8..=255), 1..16),
    ) {
        let bytes = store_image();
        let mut corrupt = bytes.clone();
        for (offset, flip) in edits {
            let offset = offset % corrupt.len();
            corrupt[offset] ^= flip;
        }
        if corrupt != bytes {
            prop_assert!(read_store(&corrupt).is_err());
        }
    }

    // Random splices (replace a range with arbitrary bytes, possibly
    // resizing the file) never panic; they may only error or — if the
    // splice reproduces the original bytes — succeed identically.
    #[test]
    fn random_splices_never_panic(
        start in 0usize..4096,
        replacement in proptest::collection::vec(any::<u8>(), 0..256),
        cut in 0usize..256,
    ) {
        let bytes = store_image();
        let start = start % bytes.len();
        let end = (start + cut).min(bytes.len());
        let mut spliced = Vec::with_capacity(bytes.len());
        spliced.extend_from_slice(&bytes[..start]);
        spliced.extend_from_slice(&replacement);
        spliced.extend_from_slice(&bytes[end..]);
        if spliced != bytes {
            prop_assert!(read_store(&spliced).is_err());
        }
    }
}
