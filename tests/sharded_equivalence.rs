//! Streaming/fused-engine equivalence: the fused rank+pack tile and the
//! sharded streaming counter are *optimisations*, not approximations.
//!
//! Two contracts are pinned here, both bit-for-bit:
//!
//! * **fused == phase-separated** — the fused tile (distance lanes go
//!   register → packed key with no intermediate rank rows) must produce
//!   exactly the keys obtained by computing every permutation first and
//!   packing it afterwards, for every `n mod 4` tail shape and on both
//!   sides of both key-width cutovers;
//! * **sharded == in-memory** — counting through bounded shards merged
//!   as sorted runs must reproduce the buffer-everything engine in every
//!   survey field, including the floating-point Huffman and entropy
//!   sums, for degenerate shard sizes (1, n-1, n, n+1) and any thread
//!   count.
//!
//! The sharded path is what `distperm count/survey --shard-rows` runs,
//! so any divergence here is a user-visible wrong answer.

use distance_permutations::core::survey_flat::{
    survey_database_flat_parallel, survey_database_flat_sharded,
};
use distance_permutations::core::{
    count_permutations_flat_parallel, count_permutations_flat_sharded, DatabaseSurvey, SurveyConfig,
};
use distance_permutations::datasets::vectors::uniform_unit_cube_flat;
use distance_permutations::metric::{TransposedSites, L2};
use distance_permutations::permutation::compute::{
    database_permutations_flat, packed_keys_flat, PACKED_MAX_K, WIDE_MAX_K,
};
use distance_permutations::permutation::{pack_perm, ShardedCounter};
use proptest::prelude::*;

/// Asserts every field of the two reports equal, f64s compared by bits.
fn assert_bit_identical(reference: &DatabaseSurvey, streamed: &DatabaseSurvey, tag: &str) {
    assert_eq!(reference.n, streamed.n, "{tag}: n");
    assert_eq!(reference.rho.to_bits(), streamed.rho.to_bits(), "{tag}: rho");
    assert_eq!(
        reference.dimension_estimate.map(f64::to_bits),
        streamed.dimension_estimate.map(f64::to_bits),
        "{tag}: dimension estimate"
    );
    assert_eq!(reference.per_k.len(), streamed.per_k.len(), "{tag}: row count");
    for (g, f) in reference.per_k.iter().zip(streamed.per_k.iter()) {
        let tag = format!("{tag}, k = {}", g.k);
        assert_eq!(g.k, f.k, "{tag}: k");
        assert_eq!(g.site_ids, f.site_ids, "{tag}: site ids");
        assert_eq!(g.report.distinct, f.report.distinct, "{tag}: distinct");
        assert_eq!(g.report.total, f.report.total, "{tag}: total");
        assert_eq!(
            g.report.mean_occupancy.to_bits(),
            f.report.mean_occupancy.to_bits(),
            "{tag}: occupancy"
        );
        assert_eq!(g.naive_bits, f.naive_bits, "{tag}: naive bits");
        assert_eq!(g.raw_bits, f.raw_bits, "{tag}: raw bits");
        assert_eq!(g.codebook_bits, f.codebook_bits, "{tag}: codebook bits");
        assert_eq!(g.huffman_bits.to_bits(), f.huffman_bits.to_bits(), "{tag}: huffman bits");
        assert_eq!(g.entropy_bits.to_bits(), f.entropy_bits.to_bits(), "{tag}: entropy bits");
        assert_eq!(g.min_euclidean_dim, f.min_euclidean_dim, "{tag}: min Euclidean dim");
    }
}

/// Fused rank+pack against the phase-separated reference at one (n, k):
/// compute every permutation through the rank-row path, pack it with
/// [`pack_perm`], and demand the fused key stream is identical.
fn check_fused_keys<K>(n: usize, k: usize, d: usize, seed: u64)
where
    K: distance_permutations::permutation::PackedKey,
{
    let db = uniform_unit_cube_flat(n, d, seed);
    let sites = uniform_unit_cube_flat(k, d, seed ^ 0xABCD);
    let sites_t = TransposedSites::from_rows(sites.as_flat(), d);
    let fused: Vec<K> = packed_keys_flat(&L2, &sites_t, db.as_flat());
    let perms = database_permutations_flat(&L2, &sites_t, db.as_flat());
    assert_eq!(fused.len(), perms.len(), "n = {n}, k = {k}: key count");
    for (row, (key, perm)) in fused.iter().zip(perms.iter()).enumerate() {
        let reference: K = pack_perm(perm);
        assert_eq!(*key, reference, "n = {n}, k = {k}, row {row}: fused key != packed permutation");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The fused tile agrees with permute-then-pack for every tail shape
    // (n mod 4 exercised explicitly) at both key widths.
    #[test]
    fn fused_packing_matches_phase_separated_reference(
        base in 16usize..80,
        tail in 0usize..4,
        d in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let n = 4 * base + tail;
        for k in [11usize, 12] {
            check_fused_keys::<u64>(n, k, d, seed);
        }
        for k in [13usize, 24, 25] {
            check_fused_keys::<u128>(n, k, d, seed);
        }
    }

    // Streaming sharded counting reproduces the in-memory count report
    // for degenerate shard sizes and any thread count.
    #[test]
    fn sharded_count_matches_in_memory(
        n in 200usize..600,
        d in 1usize..5,
        seed in 0u64..1_000_000,
        k in 2usize..14,
    ) {
        let db = uniform_unit_cube_flat(n, d, seed);
        let sites = uniform_unit_cube_flat(k, d, seed ^ 0x5A5A);
        let reference = count_permutations_flat_parallel(&L2, &sites, &db, 1);
        for shard_rows in [1usize, n - 1, n, n + 1] {
            for threads in [1usize, 2, 4] {
                let sharded =
                    count_permutations_flat_sharded(&L2, &sites, &db, threads, shard_rows);
                let tag = format!("shard_rows = {shard_rows}, threads = {threads}");
                assert_eq!(reference.distinct, sharded.distinct, "{tag}: distinct");
                assert_eq!(reference.total, sharded.total, "{tag}: total");
                assert_eq!(
                    reference.mean_occupancy.to_bits(),
                    sharded.mean_occupancy.to_bits(),
                    "{tag}: occupancy"
                );
            }
        }
    }
}

/// One survey comparison across a counting cutover k: the sharded
/// survey must be bit-identical to the in-memory survey — frequency
/// tables, storage columns and the float Huffman/entropy sums included.
fn check_sharded_survey_k(k: usize, n: usize, d: usize) {
    let flat = uniform_unit_cube_flat(n, d, 131);
    let cfg = SurveyConfig { ks: vec![k], rho_pairs: 300, ..Default::default() };
    let reference = survey_database_flat_parallel(&L2, &flat, &cfg, 1);
    for shard_rows in [1usize, n - 1, n, n + 1] {
        for threads in [1usize, 2, 4] {
            let sharded = survey_database_flat_sharded(&L2, &flat, &cfg, threads, shard_rows);
            assert_bit_identical(
                &reference,
                &sharded,
                &format!("k = {k}, shard_rows = {shard_rows}, threads = {threads}"),
            );
        }
    }
}

/// Sharded surveys across the u64 → u128 key-width seam.  An off-by-one
/// in the shard flush, the run-length merge, or the width dispatch would
/// surface exactly at k = 12/13.
#[test]
fn sharded_survey_bit_identical_across_u64_u128_cutover() {
    assert_eq!(PACKED_MAX_K, 12, "boundary test tracks the u64 packing cutoff");
    for k in [11usize, 12, 13, 14] {
        check_sharded_survey_k(k, 1600, 4);
    }
}

/// Sharded surveys across the u128 → hash seam.  k = 26 has no packed
/// key to shard on and must fall back to the in-memory hash engine with
/// identical output.
#[test]
fn sharded_survey_bit_identical_across_u128_hash_cutover() {
    assert_eq!(WIDE_MAX_K, 25, "boundary test tracks the u128 packing cutoff");
    for k in [24usize, 25, 26] {
        check_sharded_survey_k(k, 1600, 4);
    }
}

/// The headline streaming claim at scale: a million-point k = 16 count
/// through 65536-row shards is bit-identical to the in-memory engine
/// while the counter never holds more than one shard of keys plus the
/// distinct-run frontier.
#[test]
fn million_point_sharded_count_is_bounded_and_identical() {
    const N: usize = 1_000_000;
    const K: usize = 16;
    const SHARD_ROWS: usize = 65_536;
    let db = uniform_unit_cube_flat(N, 2, 77);
    let sites = uniform_unit_cube_flat(K, 2, 78);
    let sites_t = TransposedSites::from_rows(sites.as_flat(), 2);

    // Drive the counter directly so the memory contract is observable:
    // the frontier high-water mark must stay at the distinct-key count,
    // not the database size.
    let keys: Vec<u128> = packed_keys_flat(&L2, &sites_t, db.as_flat());
    let mut counter = ShardedCounter::<u128>::new(K, SHARD_ROWS);
    for &key in &keys {
        counter.insert_key(key);
    }
    let peak = counter.peak_frontier_entries();
    let summary = counter.finalize();
    assert_eq!(summary.total(), N as u64);
    let distinct = summary.distinct();
    // The frontier holds one run per distinct key seen so far, so its
    // high-water mark is bounded by the final distinct count — that (plus
    // one shard_rows buffer) is the whole memory story.
    assert!(peak <= distinct, "frontier peak {peak} exceeds distinct count {distinct}");
    assert!(distinct < N / 10, "duplication expected at d = 2: {distinct}");

    // And the end-to-end report agrees with the in-memory engine.
    let reference = count_permutations_flat_parallel(&L2, &sites, &db, 1);
    let sharded = count_permutations_flat_sharded(&L2, &sites, &db, 1, SHARD_ROWS);
    assert_eq!(reference.distinct, sharded.distinct);
    assert_eq!(reference.total, sharded.total);
    assert_eq!(reference.mean_occupancy.to_bits(), sharded.mean_occupancy.to_bits());
    assert_eq!(sharded.distinct, distinct);
}
