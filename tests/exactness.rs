//! Cross-crate exactness checks: the exact geometry (dp-geometry), the
//! exact recurrences (dp-theory) and the empirical counters
//! (dp-permutation / dp-core) must all tell the same story.

use distance_permutations::core::experiments::{uniform_experiment, MetricKind};
use distance_permutations::geometry::arrangement::euclidean_cells;
use distance_permutations::geometry::oned::exact_count_1d;
use distance_permutations::geometry::sampling::{grid_count, BBox};
use distance_permutations::metric::L2;
use distance_permutations::permutation::counter::count_distinct;
use distance_permutations::theory::{n_euclidean, theorem6_witnesses, tree_bound};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

#[test]
fn random_generic_sites_hit_table1_row2_exactly() {
    // Exact rational arrangement count == Theorem 7 recurrence for sites
    // in general position; random large-coordinate integer sites are
    // generic with overwhelming probability.
    let mut rng = StdRng::seed_from_u64(271828);
    for trial in 0..5 {
        let mut sites: Vec<(i64, i64)> = Vec::new();
        while sites.len() < 7 {
            let p =
                (rng.random_range(-100_000i64..100_000), rng.random_range(-100_000i64..100_000));
            if !sites.contains(&p) {
                sites.push(p);
            }
        }
        for k in 2..=7usize {
            assert_eq!(
                euclidean_cells(&sites[..k]),
                n_euclidean(2, k as u32).unwrap(),
                "trial {trial}, k={k}"
            );
        }
    }
}

#[test]
fn grid_census_matches_exact_arrangement() {
    // A dense grid over a wide box must discover every cell the exact
    // counter reports (k=4 keeps cells wide).
    let sites_i = [(22, 45), (58, 29), (71, 62), (40, 80)];
    let exact = euclidean_cells(&sites_i);
    let sites: Vec<Vec<f64>> =
        sites_i.iter().map(|&(x, y)| vec![x as f64 / 100.0, y as f64 / 100.0]).collect();
    let bbox = BBox { x_min: -2.0, x_max: 3.0, y_min: -2.0, y_max: 3.0 };
    let counted = grid_count(&L2, &sites, bbox, 700, 700).distinct();
    assert_eq!(counted as u128, exact);
}

#[test]
fn one_dimensional_exactness_chain() {
    // midpoint counter == dense-sweep empirical count == Theorem 7 (d=1)
    // == tree bound, for generic sites.
    let sites_i = [0i64, 7, 19, 43, 101];
    let exact = exact_count_1d(&sites_i);
    assert_eq!(exact, n_euclidean(1, 5).unwrap());
    assert_eq!(exact, tree_bound(5));
    let sites: Vec<Vec<f64>> = sites_i.iter().map(|&s| vec![s as f64]).collect();
    let db: Vec<Vec<f64>> = (-500..5500).map(|i| vec![i as f64 * 0.025]).collect();
    assert_eq!(count_distinct(&L2, &sites, &db) as u128, exact);
}

#[test]
fn theorem6_realises_factorial_through_the_full_stack() {
    // The construction's witnesses, checked through the public API.
    for k in 2..=5usize {
        let witnesses = theorem6_witnesses(k, 0.25, &L2);
        let expected: usize = (1..=k).product();
        assert_eq!(witnesses.len(), expected);
        // Matches Table 1's lower triangle.
        assert_eq!(expected as u128, n_euclidean(k as u32 - 1, k as u32).unwrap());
    }
}

#[test]
fn table3_d1_row_is_exact_for_every_metric() {
    // In one dimension every Lp agrees and a dense uniform database hits
    // every cell: mean == max == C(k,2)+1 with a 4000-point database.
    for metric in MetricKind::ALL {
        let e = uniform_experiment(1, metric, 4, 4_000, 3, 99, 3);
        assert_eq!(e.max as u128, tree_bound(4), "{metric:?}");
    }
}

#[test]
fn degenerate_sites_lose_cells_exactly_as_theory_predicts() {
    // Collinear sites: bisectors parallel -> k(k-1)/2 + 1 cells at most
    // ... actually exactly m+1 where m = distinct bisectors.  For an
    // arithmetic progression several midpoints coincide.
    let collinear: Vec<(i64, i64)> = vec![(0, 0), (10, 10), (20, 20), (30, 30)];
    // 6 bisectors, but midpoint coincidences: (0,30) and (10,20) share
    // one -> 5 distinct parallel lines -> 6 cells.
    assert_eq!(euclidean_cells(&collinear), 6);
    // The 1-D shadow agrees.
    assert_eq!(exact_count_1d(&[0, 10, 20, 30]), 6);
}

#[test]
fn exact_enumeration_agrees_with_grid_sampling_and_euler_count() {
    use distance_permutations::geometry::faces::exact_permutations;

    // The canonical Fig 1–4 sites: the exact enumerator, the exact Euler
    // count, and the dense grid census must agree on the 18 cells — and
    // the grid census must find exactly the same *set* of permutations.
    let sites_i: Vec<(i64, i64)> = vec![(9867, 5630), (3364, 5875), (4702, 8210), (8423, 3812)];
    let sites_f: Vec<Vec<f64>> =
        sites_i.iter().map(|&(x, y)| vec![x as f64 / 10_000.0, y as f64 / 10_000.0]).collect();

    let exact = exact_permutations(&sites_i);
    assert_eq!(exact.len(), 18);
    assert_eq!(euclidean_cells(&sites_i), 18);

    let bbox = BBox { x_min: -2.0, x_max: 3.0, y_min: -2.0, y_max: 3.0 };
    let grid = grid_count(&L2, &sites_f, bbox, 900, 900);
    assert_eq!(
        grid.sorted_permutations(),
        exact,
        "grid census must realise exactly the exact enumeration"
    );
}

#[test]
fn exact_prefix_chain_matches_empirical_prefix_counts() {
    use distance_permutations::core::orders::{count_distinct_prefixes, PrefixKind};
    use distance_permutations::geometry::faces::{
        exact_prefix_count, exact_unordered_prefix_count,
    };

    let sites_i: Vec<(i64, i64)> = vec![(11, 71), (83, 23), (37, 97), (89, 79), (13, 17)];
    let sites_f: Vec<Vec<f64>> = sites_i.iter().map(|&(x, y)| vec![x as f64, y as f64]).collect();
    // Two scales of uniform sampling: dense near the sites (small cells)
    // plus a wide sweep (unbounded cells resolve by direction far out).
    // A single bounded range misses distant cells — the paper's Fig 7
    // phenomenon, which the exactness bound below still certifies.
    let mut rng = StdRng::seed_from_u64(5);
    let mut db: Vec<Vec<f64>> = (0..60_000)
        .map(|_| vec![rng.random_range(-300.0..400.0), rng.random_range(-300.0..400.0)])
        .collect();
    db.extend(
        (0..60_000)
            .map(|_| vec![rng.random_range(-6000.0..6000.0), rng.random_range(-6000.0..6000.0)]),
    );
    for l in 1..=5usize {
        let exact_o = exact_prefix_count(&sites_i, l);
        let exact_u = exact_unordered_prefix_count(&sites_i, l);
        let emp_o = count_distinct_prefixes(&L2, &sites_f, &db, l, PrefixKind::Ordered);
        let emp_u = count_distinct_prefixes(&L2, &sites_f, &db, l, PrefixKind::Unordered);
        assert!(emp_o <= exact_o, "l={l}: sampled ordered {emp_o} > exact {exact_o}");
        assert!(emp_u <= exact_u, "l={l}: sampled unordered {emp_u} > exact {exact_u}");
        // Coverage: most regions get hit, but thin far-field wedges can
        // escape any bounded uniform sample (Fig 7's phenomenon) — so
        // require two-thirds, not totality.
        assert!(emp_o * 3 >= exact_o * 2, "l={l}: sample hit only {emp_o}/{exact_o}");
    }
}
