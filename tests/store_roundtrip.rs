//! Build → save → load → query bit-identity for the on-disk store
//! (`scripts/check.sh` also runs this under `--release`).
//!
//! The contract under test: a [`FlatDistPermIndex`] loaded from a
//! `dp-store` container is **field-for-field identical** to the freshly
//! built original — every stored buffer byte-exact, and therefore every
//! query answer and every [`QueryStats`] bit-identical — across all
//! five persisted metrics, the k = 2..=14 range (straddling the packed
//! permutation-key cutoff), degenerate shapes (n = 0, k = n, d = 1),
//! and both the sequential searcher and the parallel batch path.

use distance_permutations::datasets::{uniform_unit_cube, VectorSet};
use distance_permutations::index::laesa::PivotSelection;
use distance_permutations::index::serve::{query_batch_parallel_approx, ApproxRequest};
use distance_permutations::index::FlatDistPermIndex;
use distance_permutations::metric::{
    BatchDistance, Distance, F64Dist, L2Squared, LInf, Lp, L1, L2,
};
use distance_permutations::store::{read_store, store_to_bytes, StoreMetric, StoredIndex};
use proptest::prelude::*;

fn as_l1(s: StoredIndex) -> Option<FlatDistPermIndex<L1>> {
    if let StoredIndex::L1(i) = s {
        Some(i)
    } else {
        None
    }
}

fn as_l2(s: StoredIndex) -> Option<FlatDistPermIndex<L2>> {
    if let StoredIndex::L2(i) = s {
        Some(i)
    } else {
        None
    }
}

fn as_l2sq(s: StoredIndex) -> Option<FlatDistPermIndex<L2Squared>> {
    if let StoredIndex::L2Squared(i) = s {
        Some(i)
    } else {
        None
    }
}

fn as_linf(s: StoredIndex) -> Option<FlatDistPermIndex<LInf>> {
    if let StoredIndex::LInf(i) = s {
        Some(i)
    } else {
        None
    }
}

fn as_lp(s: StoredIndex) -> Option<FlatDistPermIndex<Lp>> {
    if let StoredIndex::Lp(i) = s {
        Some(i)
    } else {
        None
    }
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Saves, reloads and checks the full bit-identity contract: stored
/// fields byte-exact, then sequential and parallel answers (ids, dist
/// bits, stats) equal on `queries`.
fn assert_roundtrip<M>(
    index: &FlatDistPermIndex<M>,
    extract: fn(StoredIndex) -> Option<FlatDistPermIndex<M>>,
    queries: &[Vec<f64>],
    knn: usize,
    frac: f64,
    threads: usize,
) where
    M: StoreMetric + BatchDistance + Sync,
{
    let bytes = store_to_bytes(index);
    let loaded = extract(read_store(&bytes).expect("canonical store image must read back"))
        .expect("metric tag must survive the roundtrip");

    // Field-for-field identity.
    assert_eq!(loaded.len(), index.len());
    assert_eq!(loaded.k(), index.k());
    assert_eq!(loaded.site_ids(), index.site_ids());
    assert_eq!(loaded.points().dim(), index.points().dim());
    assert_eq!(bits(loaded.points().as_flat()), bits(index.points().as_flat()));
    assert_eq!(bits(loaded.sites().as_flat()), bits(index.sites().as_flat()));
    assert_eq!(bits(loaded.sites_transposed().as_flat()), bits(index.sites_transposed().as_flat()));
    assert_eq!(loaded.permutations(), index.permutations());

    // Sequential: per-query answers and stats, to the bit.
    let mut expect_session = index.session();
    let mut actual_session = loaded.session();
    for q in queries {
        let (expect, expect_stats) = expect_session.knn_approx(q, knn, frac);
        let (actual, actual_stats) = actual_session.knn_approx(q, knn, frac);
        assert_eq!(actual_stats, expect_stats, "QueryStats must match");
        assert_eq!(actual.len(), expect.len());
        for (a, e) in actual.iter().zip(expect.iter()) {
            assert_eq!(a.id, e.id);
            assert_eq!(a.dist.to_f64().to_bits(), e.dist.to_f64().to_bits());
        }
    }

    // Parallel: knn and range through the batch-serving path.
    for request in [
        ApproxRequest::Knn { k: knn, frac },
        ApproxRequest::Range { radius: F64Dist::new(0.7), frac },
    ] {
        let expect = query_batch_parallel_approx::<[f64], _, _>(index, queries, request, threads);
        let actual = query_batch_parallel_approx::<[f64], _, _>(&loaded, queries, request, threads);
        assert_eq!(actual.len(), expect.len());
        for (i, ((an, astats), (en, estats))) in actual.iter().zip(expect.iter()).enumerate() {
            assert_eq!(astats, estats, "query {i} stats");
            assert_eq!(an.len(), en.len(), "query {i}");
            for (a, e) in an.iter().zip(en.iter()) {
                assert_eq!(a.id, e.id, "query {i}");
                assert_eq!(a.dist.to_f64().to_bits(), e.dist.to_f64().to_bits(), "query {i}");
            }
        }
    }
}

fn flat(db: &[Vec<f64>]) -> VectorSet {
    VectorSet::from_nested(db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // All five metrics roundtrip bit-identically on random shapes
    // spanning the packed-key cutoff (k = 2..=14).
    #[test]
    fn roundtrip_is_bit_identical_for_every_metric(
        seed in 0u64..1000,
        n in 20usize..100,
        dim in 1usize..5,
        k in 2usize..=14,
        knn in 1usize..5,
        frac in 0.25f64..=1.0,
        threads in 1usize..4,
    ) {
        let k = k.min(n);
        let db = uniform_unit_cube(n, dim, seed);
        let queries = uniform_unit_cube(12, dim, seed ^ 0x0dd5);
        macro_rules! check {
            ($metric:expr, $extract:expr) => {
                assert_roundtrip(
                    &FlatDistPermIndex::build($metric, flat(&db), k, PivotSelection::MaxMin, 1),
                    $extract,
                    &queries,
                    knn,
                    frac,
                    threads,
                );
            };
        }
        check!(L1, as_l1);
        check!(L2, as_l2);
        check!(L2Squared, as_l2sq);
        check!(LInf, as_linf);
        check!(Lp::new(2.5), as_lp);
    }
}

#[test]
fn empty_database_roundtrips() {
    let index = FlatDistPermIndex::build(L2, flat(&[]), 0, PivotSelection::MaxMin, 1);
    let queries: Vec<Vec<f64>> = Vec::new();
    assert_roundtrip(&index, as_l2, &queries, 1, 1.0, 2);
    let bytes = store_to_bytes(&index);
    let loaded = read_store(&bytes).expect("empty store reads back");
    assert!(loaded.is_empty());
    assert_eq!((loaded.k(), loaded.dim()), (0, 0));
}

#[test]
fn every_point_a_site_roundtrips() {
    // k = n: the db smaller than any reasonable k request.
    let db = uniform_unit_cube(5, 2, 9);
    let index = FlatDistPermIndex::build(L1, flat(&db), 5, PivotSelection::MaxMin, 1);
    let queries = uniform_unit_cube(6, 2, 10);
    assert_roundtrip(&index, as_l1, &queries, 2, 1.0, 2);
}

#[test]
fn one_dimensional_data_roundtrips() {
    let db = uniform_unit_cube(60, 1, 17);
    let index = FlatDistPermIndex::build(LInf, flat(&db), 7, PivotSelection::MaxMin, 1);
    let queries = uniform_unit_cube(8, 1, 18);
    assert_roundtrip(&index, as_linf, &queries, 3, 0.5, 3);
}

#[test]
fn explicit_site_build_roundtrips() {
    let db = uniform_unit_cube(80, 3, 23);
    let index = FlatDistPermIndex::build_with_sites(L2, flat(&db), vec![11, 3, 40, 7], 1);
    let queries = uniform_unit_cube(8, 3, 24);
    assert_roundtrip(&index, as_l2, &queries, 4, 1.0, 2);
}
