//! Direct checks of the paper's headline claims, end to end.

use distance_permutations::core::counterexample::verify_eq12;
use distance_permutations::core::dimension::min_euclidean_dimension;
use distance_permutations::core::spaces::{theoretical_max, SpaceKind};
use distance_permutations::geometry::arrangement::euclidean_cells;
use distance_permutations::theory::storage::storage_row;
use distance_permutations::theory::{n_euclidean, table1, tree_bound};

#[test]
fn table1_matches_paper_anchors() {
    let t = table1();
    // One anchor from each corner and the middle of the printed table.
    assert_eq!(t.get(1, 2), 2);
    assert_eq!(t.get(1, 12), 67);
    assert_eq!(t.get(2, 4), 18);
    assert_eq!(t.get(3, 8), 2311);
    assert_eq!(t.get(5, 12), 3_029_643);
    assert_eq!(t.get(10, 2), 2);
    assert_eq!(t.get(10, 12), 439_084_800);
}

#[test]
fn recurrence_reduces_to_binomial_in_1d_and_factorial_in_high_d() {
    for k in 2..=12u32 {
        assert_eq!(n_euclidean(1, k).unwrap(), tree_bound(k));
        let fact: u128 = (1..=u128::from(k)).product();
        assert_eq!(n_euclidean(k, k).unwrap(), fact);
    }
}

#[test]
fn figure3_and_figure4_cell_counts() {
    // §2: four sites in general position yield 18 cells in the Euclidean
    // plane — "not even one for each permutation" (24).
    let sites = [(9867i64, 5630i64), (3364, 5875), (4702, 8210), (8423, 3812)];
    assert_eq!(euclidean_cells(&sites), 18);
}

#[test]
fn eq12_counterexample_beats_euclidean_maximum() {
    // §5: the L1 counterexample.  96 is the Euclidean cap; the paper
    // observed 108.  150k samples suffice to cross 96.
    let report = verify_eq12(150_000, 4242, 4);
    assert_eq!(report.euclidean_max, 96);
    assert!(report.exceeds_euclidean(), "observed only {}", report.observed);
    // And the inverse-dimension reading: 108 permutations would need 4
    // Euclidean dimensions.
    assert_eq!(min_euclidean_dimension(108, 5), 4);
}

#[test]
fn storage_improvement_chain_holds() {
    // §1: O(nk log n) (LAESA) > O(nk log k) (permutations) > Θ(nd log k)
    // (codebook) for representative configurations.
    for (d, k, n) in [(2u32, 12u32, 1u64 << 20), (3, 16, 1 << 20), (4, 24, 1 << 24)] {
        let r = storage_row(d, k, n);
        assert!(r.laesa_bits > u64::from(r.packed_bits));
        assert!(u64::from(r.packed_bits) >= u64::from(r.codebook_bits));
        assert!(u64::from(r.full_perm_bits) > u64::from(r.codebook_bits), "d={d} k={k}");
    }
}

#[test]
fn adding_sites_beyond_2d_adds_little_information() {
    // §4: "once we have about twice as many sites as dimensions, there is
    // little value in adding more sites" — the count's growth rate in k
    // is polynomial (k^{2d}) while k! explodes.
    let d = 2u32;
    let n8 = n_euclidean(d, 8).unwrap() as f64;
    let n12 = n_euclidean(d, 12).unwrap() as f64;
    let fact8: u128 = (1..=8u128).product();
    let fact12: u128 = (1..=12u128).product();
    let perm_growth = n12 / n8;
    let fact_growth = fact12 as f64 / fact8 as f64;
    assert!(perm_growth < 6.0, "{perm_growth}");
    assert!(fact_growth > 11_000.0);
}

#[test]
fn general_spaces_allow_all_factorial_permutations() {
    // Theorem 6 consequence via the dispatch API.
    for k in 2..=9u32 {
        let fact: u128 = (1..=u128::from(k)).product();
        assert_eq!(theoretical_max(SpaceKind::General, k), Some(fact));
        assert_eq!(theoretical_max(SpaceKind::Euclidean { d: k - 1 }, k), Some(fact));
    }
}

#[test]
fn figure3_vs_figure4_same_count_different_permutations() {
    // §2: "the system of bisectors in Fig 4, with the L1 metric, also
    // produces 18 cells corresponding to 18 distance permutations, but
    // they are not the same 18 distance permutations."  Made exact on
    // the L2 side by the rational enumerator; the L1 side is a dense
    // grid census of the same configuration.
    use distance_permutations::geometry::faces::exact_permutations;
    use distance_permutations::geometry::sampling::{grid_count, BBox};
    use distance_permutations::metric::L1;

    let sites_i: Vec<(i64, i64)> = vec![(9867, 5630), (3364, 5875), (4702, 8210), (8423, 3812)];
    let sites_f: Vec<Vec<f64>> =
        sites_i.iter().map(|&(x, y)| vec![x as f64 / 10_000.0, y as f64 / 10_000.0]).collect();
    let l2_exact = exact_permutations(&sites_i);
    assert_eq!(l2_exact.len(), 18);
    let bbox = BBox { x_min: -2.0, x_max: 3.0, y_min: -2.0, y_max: 3.0 };
    let l1_set = grid_count(&L1, &sites_f, bbox, 800, 800).sorted_permutations();
    assert_eq!(l1_set.len(), 18);
    assert_ne!(l1_set, l2_exact, "the paper: not the same 18 permutations");
    let shared = l1_set.iter().filter(|p| l2_exact.binary_search(p).is_ok()).count();
    assert!(shared < 18 && shared > 0, "partial overlap expected, got {shared}");
}
