//! Fault-injection robustness suite for the resilient serving engine
//! (`scripts/check.sh` also runs this under `--release`).
//!
//! The contract under test: with `k` injected panics in an `n`-query
//! batch, [`serve_resilient`] returns **exactly `k`** failed outcomes at
//! the injected indices and the other `n - k` answers **bit-identical**
//! to the strict [`query_batch_parallel`] path — at any thread count
//! and steal-chunk size.  With zero faults and no deadline the whole
//! batch is bit-identical; with an expired deadline every query
//! degrades to exactly the budgeted path.  The serving loop never dies:
//! a session fed all-panicking batches still answers and says `bye`.

use distance_permutations::index::serve::{
    query_batch_parallel, query_batch_parallel_approx, serve_resilient, ApproxRequest,
    BatchOptions, FaultPlan, Outcome, Request, ServeRequest,
};
use distance_permutations::index::{DistPermIndex, PivotSelection};
use distance_permutations::metric::{F64Dist, L2};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;
use std::time::Duration;

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.random::<f64>()).collect()).collect()
}

fn dist_perm_index() -> DistPermIndex<Vec<f64>, L2> {
    DistPermIndex::build(L2, random_points(120, 3, 7), 6, PivotSelection::MaxMin)
}

/// Asserts the fault-isolation contract on one engine run: failed slots
/// exactly at `panics`, everything else bit-identical to `baseline`.
fn assert_isolated(
    outcomes: &[Outcome<F64Dist>],
    baseline: &[(
        Vec<distance_permutations::index::Neighbor<F64Dist>>,
        distance_permutations::index::QueryStats,
    )],
    panics: &BTreeSet<usize>,
) {
    assert_eq!(outcomes.len(), baseline.len());
    for (i, outcome) in outcomes.iter().enumerate() {
        if panics.contains(&i) {
            match outcome {
                Outcome::Failed(err) => {
                    assert_eq!(err.index, i);
                    assert!(
                        err.message.contains(&format!("injected fault at query {i}")),
                        "unexpected message: {}",
                        err.message
                    );
                }
                other => panic!("query {i} should have failed, got {other:?}"),
            }
        } else {
            match outcome {
                Outcome::Ok(response) => assert_eq!(response, &baseline[i], "query {i}"),
                other => panic!("query {i} should be ok, got {other:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // k injected panics => exactly k failures, n-k bit-identical exact
    // answers, at 1/2/4 threads.
    #[test]
    fn injected_panics_isolate_exactly_for_exact_queries(
        seed in 0u64..1000,
        panics in proptest::collection::btree_set(0usize..24, 0..6),
        threads in 1usize..5,
        chunk in 1usize..8,
    ) {
        let index = dist_perm_index();
        let queries = random_points(24, 3, seed ^ 0xbeef);
        let baseline = query_batch_parallel(&index, &queries, Request::Knn { k: 4 }, threads);
        let options = BatchOptions::with_threads(threads).chunk(chunk);
        let report = serve_resilient(
            &index,
            &queries,
            |_| ServeRequest::Exact(Request::Knn { k: 4 }),
            &options,
            &FaultPlan::none().panic_on_all(panics.iter().copied()),
        );
        prop_assert_eq!(report.failed(), panics.len());
        assert_isolated(&report.outcomes, &baseline, &panics);
    }

    // The same contract holds on the budgeted (approx) request path.
    #[test]
    fn injected_panics_isolate_exactly_for_budgeted_queries(
        seed in 0u64..1000,
        panics in proptest::collection::btree_set(0usize..20, 0..5),
        threads in 1usize..5,
    ) {
        let index = dist_perm_index();
        let queries = random_points(20, 3, seed ^ 0xfeed);
        let request = ApproxRequest::Knn { k: 3, frac: 0.4 };
        let baseline = query_batch_parallel_approx(&index, &queries, request, threads);
        let report = serve_resilient(
            &index,
            &queries,
            |_| ServeRequest::Approx(request),
            &BatchOptions::with_threads(threads),
            &FaultPlan::none().panic_on_all(panics.iter().copied()),
        );
        prop_assert_eq!(report.failed(), panics.len());
        assert_isolated(&report.outcomes, &baseline, &panics);
    }

    // An already-expired deadline degrades every query to exactly the
    // budgeted path at the configured fraction — bit-identical to
    // `query_batch_parallel_approx`.
    #[test]
    fn expired_deadline_is_bit_identical_to_budgeted_serving(
        seed in 0u64..1000,
        threads in 1usize..5,
        frac in 0.1f64..0.9,
    ) {
        let index = dist_perm_index();
        let queries = random_points(16, 3, seed ^ 0xdead);
        let baseline = query_batch_parallel_approx(
            &index,
            &queries,
            ApproxRequest::Knn { k: 3, frac },
            threads,
        );
        let options =
            BatchOptions::with_threads(threads).deadline(Duration::ZERO).degrade(frac);
        let report = serve_resilient(
            &index,
            &queries,
            |_| ServeRequest::Exact(Request::Knn { k: 3 }),
            &options,
            &FaultPlan::none(),
        );
        prop_assert_eq!(report.degraded(), queries.len());
        for (i, outcome) in report.outcomes.iter().enumerate() {
            match outcome {
                Outcome::Degraded { response, frac: served } => {
                    prop_assert_eq!(*served, frac);
                    prop_assert_eq!(response, &baseline[i]);
                }
                other => panic!("query {i} should be degraded, got {other:?}"),
            }
        }
    }

    // Steal-chunk size is a pure performance knob: every chunk size
    // yields the same outcomes, faults included.
    #[test]
    fn steal_chunk_size_never_changes_outcomes(
        seed in 0u64..1000,
        panics in proptest::collection::btree_set(0usize..18, 0..4),
        threads in 2usize..5,
    ) {
        let index = DistPermIndex::build(L2, random_points(90, 3, 11), 4, PivotSelection::MaxMin);
        let queries = random_points(18, 3, seed ^ 0xabcd);
        let faults = FaultPlan::none().panic_on_all(panics.iter().copied());
        let run = |chunk: usize| {
            serve_resilient(
                &index,
                &queries,
                |_| ServeRequest::Exact(Request::Knn { k: 2 }),
                &BatchOptions::with_threads(threads).chunk(chunk),
                &faults,
            )
        };
        let reference = run(1);
        for chunk in [2, 5, 1000] {
            let report = run(chunk);
            prop_assert_eq!(report.outcomes.len(), reference.outcomes.len());
            for (a, b) in report.outcomes.iter().zip(&reference.outcomes) {
                match (a, b) {
                    (Outcome::Ok(x), Outcome::Ok(y)) => prop_assert_eq!(x, y),
                    (Outcome::Failed(x), Outcome::Failed(y)) => {
                        prop_assert_eq!(x.index, y.index);
                    }
                    other => panic!("chunk {chunk} changed an outcome: {other:?}"),
                }
            }
        }
    }
}

// An injected delay that blows the soft deadline degrades the queries
// *after* it but never the ones already started: with one worker, query
// 0 runs exact (admitted before expiry) and everything later degrades.
#[test]
fn slow_query_degrades_the_rest_of_the_batch() {
    let index = dist_perm_index();
    let queries = random_points(8, 3, 21);
    let options = BatchOptions::with_threads(1).deadline(Duration::from_millis(5)).degrade(0.2);
    let report = serve_resilient(
        &index,
        &queries,
        |_| ServeRequest::Exact(Request::Knn { k: 3 }),
        &options,
        &FaultPlan::none().delay_on(0, Duration::from_millis(100)),
    );
    assert!(
        matches!(report.outcomes[0], Outcome::Ok(_)),
        "query 0 was admitted before the deadline: {:?}",
        report.outcomes[0]
    );
    for (i, outcome) in report.outcomes.iter().enumerate().skip(1) {
        assert!(
            matches!(outcome, Outcome::Degraded { frac, .. } if *frac == 0.2),
            "query {i} should have degraded: {outcome:?}"
        );
    }
    assert_eq!(report.degraded(), queries.len() - 1);
}

// The serving loop never dies: a session where *every* query panics,
// across several batches and thread counts, still answers every line
// and shuts down with `bye`.
#[test]
fn session_survives_batches_where_every_query_panics() {
    use distance_permutations::index::serve::{serve_session, SessionConfig};
    let index = dist_perm_index();
    let mut input = String::new();
    for b in 0..5 {
        input.push_str(&format!("begin b{b}\n"));
        for q in 0..4 {
            input.push_str(&format!("knn 2 0.{q} 0.5 0.5\n"));
        }
        input.push_str("end\n");
    }
    for threads in [1, 2, 4] {
        // The reader outpaces the server, so give the queue room for
        // every batch — shedding has its own tests.
        let config = SessionConfig { threads, queue_capacity: 8, ..SessionConfig::default() };
        let mut out = Vec::new();
        let summary = serve_session::<Vec<f64>, _, _, _>(
            &index,
            3,
            input.as_bytes(),
            &mut out,
            &config,
            &FaultPlan::none().panic_on_all(0..4),
        )
        .expect("in-memory io");
        let text = String::from_utf8(out).expect("utf8 replies");
        assert_eq!(summary.batches, 5, "threads={threads}: {text}");
        assert_eq!(summary.failed, 20, "threads={threads}: {text}");
        assert_eq!(summary.ok, 0, "threads={threads}: {text}");
        assert!(text.lines().last().expect("bye").starts_with("bye "), "{text}");
        assert!(text.matches("\nfailed ").count() == 20, "{text}");
    }
}
