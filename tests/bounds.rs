//! Cross-crate invariant: **no empirical count ever exceeds the
//! applicable theoretical maximum** — the tightest end-to-end check of
//! the whole reproduction (datasets × metrics × counting × theory).

use distance_permutations::core::count::count_permutations;
use distance_permutations::core::spaces::{theoretical_max, SpaceKind};
use distance_permutations::datasets::dictionary::{generate_words, language_profiles};
use distance_permutations::datasets::documents::{generate_documents, short_profile};
use distance_permutations::datasets::uniform_unit_cube;
use distance_permutations::metric::{CosineDistance, LInf, Levenshtein, Tree, L1, L2};
use distance_permutations::permutation::counter::count_distinct;
use distance_permutations::theory::tree_bound;

#[test]
fn euclidean_counts_respect_theorem7_in_every_dimension() {
    for d in 1..=4usize {
        for k in [3usize, 5, 7] {
            let db = uniform_unit_cube(8_000, d, (d * 10 + k) as u64);
            let sites: Vec<Vec<f64>> = db[..k].to_vec();
            let observed = count_permutations(&L2, &sites, &db).distinct;
            let max = theoretical_max(SpaceKind::Euclidean { d: d as u32 }, k as u32).unwrap();
            assert!(observed as u128 <= max, "d={d} k={k}: {observed} > {max}");
        }
    }
}

#[test]
fn l1_and_linf_counts_respect_theorem9_and_factorial() {
    for d in 1..=3usize {
        for k in [4usize, 6] {
            let db = uniform_unit_cube(8_000, d, (d + 31 * k) as u64);
            let sites: Vec<Vec<f64>> = db[..k].to_vec();
            let o1 = count_permutations(&L1, &sites, &db).distinct as u128;
            let oi = count_permutations(&LInf, &sites, &db).distinct as u128;
            assert!(o1 <= theoretical_max(SpaceKind::L1 { d: d as u32 }, k as u32).unwrap());
            assert!(oi <= theoretical_max(SpaceKind::LInf { d: d as u32 }, k as u32).unwrap());
            let fact: u128 = (1..=k as u128).product();
            assert!(o1 <= fact && oi <= fact);
        }
    }
}

#[test]
fn one_dimensional_counts_respect_binomial_bound_for_all_metrics() {
    let db = uniform_unit_cube(20_000, 1, 5);
    for k in [4usize, 8, 12] {
        let sites: Vec<Vec<f64>> = db[..k].to_vec();
        let bound = theoretical_max(SpaceKind::Tree, k as u32).unwrap();
        for observed in [
            count_permutations(&L1, &sites, &db).distinct,
            count_permutations(&L2, &sites, &db).distinct,
            count_permutations(&LInf, &sites, &db).distinct,
        ] {
            assert!(observed as u128 <= bound, "k={k}: {observed} > {bound}");
        }
    }
}

#[test]
fn random_trees_respect_theorem4() {
    for seed in 0..6u64 {
        let tree = Tree::random(2_000, 5, seed);
        let k = 4 + (seed as usize % 5);
        let sites: Vec<usize> =
            (0..k).map(|i| (i * 397 + seed as usize * 31) % tree.len()).collect();
        let db: Vec<usize> = tree.vertices().collect();
        let observed = count_distinct(&tree.metric(), &sites, &db);
        assert!(
            observed as u128 <= tree_bound(k as u32),
            "seed {seed}: {observed} > {}",
            tree_bound(k as u32)
        );
    }
}

#[test]
fn string_and_document_counts_respect_factorial() {
    let words = generate_words(&language_profiles()[2], 3_000, 9);
    let sites: Vec<String> = words[..6].to_vec();
    let observed = count_permutations(&Levenshtein, &sites, &words).distinct;
    assert!(observed as u128 <= theoretical_max(SpaceKind::General, 6).unwrap());

    let docs = generate_documents(short_profile(), 2_000, 10);
    let dsites = docs[..5].to_vec();
    let od = count_permutations(&CosineDistance, &dsites, &docs).distinct;
    assert!(od as u128 <= theoretical_max(SpaceKind::General, 5).unwrap());
}

#[test]
fn counts_shrink_when_sites_grow_only_polynomially() {
    // The paper's storage point: at d=2, k=12, the count is capped at 1992
    // — a tiny fraction of 12! = 479001600.
    let db = uniform_unit_cube(30_000, 2, 77);
    let sites: Vec<Vec<f64>> = db[..12].to_vec();
    let observed = count_permutations(&L2, &sites, &db).distinct;
    assert!(observed <= 1992, "{observed}");
    assert!(observed > 200, "implausibly few cells hit: {observed}");
}
