//! `IndexSpec::parse` contract tests: every spec the parser can emit
//! round-trips through its canonical name, and malformed specs fail
//! with errors that tell the user what was wrong *and* which spec
//! string caused it (the CLI surfaces these verbatim).

use distance_permutations::index::{IndexSpec, DEFAULT_K};
use distance_permutations::permutation::MAX_K;
use proptest::prelude::*;

/// Any structurally valid spec value (respecting the MAX_K and
/// prefix-length invariants the parser enforces).
fn arb_spec() -> impl Strategy<Value = IndexSpec> {
    (0usize..10).prop_perturb(|variant, mut rng| {
        let k = 1 + (rng.next_u64() as usize) % MAX_K;
        match variant {
            0 => IndexSpec::Linear,
            1 => IndexSpec::Aesa,
            2 => IndexSpec::VpTree,
            3 => IndexSpec::GhTree,
            4 => IndexSpec::BkTree,
            // Pivot counts on laesa are unconstrained by MAX_K;
            // exercise a wider range there.
            5 => IndexSpec::Laesa { k: 1 + (rng.next_u64() as usize) % 96 },
            6 => IndexSpec::IAesa { k },
            7 => IndexSpec::DistPerm { k },
            8 => IndexSpec::FlatDistPerm { k },
            _ => IndexSpec::PrefixPerm { k, prefix_len: (rng.next_u64() as usize) % (k + 1) },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // name() → parse() is the identity on every valid spec.
    #[test]
    fn canonical_name_round_trips(spec in arb_spec()) {
        let name = spec.name();
        let reparsed = IndexSpec::parse(&name)
            .unwrap_or_else(|e| panic!("canonical name `{name}` failed to parse: {e}"));
        prop_assert_eq!(reparsed, spec);
        // And the canonical name is a fixed point.
        prop_assert_eq!(reparsed.name(), name);
    }

    // Unknown structure names are rejected, the error names the bad
    // input, and it lists the accepted structures.
    #[test]
    fn unknown_names_produce_actionable_errors(name in "[a-eg-km-uw-z][a-z]{0,10}") {
        // The generated name avoids f/l/v prefixes only by accident —
        // skip the ones that happen to be real structure names/aliases.
        prop_assume!(IndexSpec::parse(&name).is_err());
        let err = IndexSpec::parse(&name).unwrap_err().to_string();
        prop_assert!(err.contains(&name), "error `{}` does not name the input", err);
        prop_assert!(err.contains("distperm"), "error `{}` does not list alternatives", err);
    }

    // Non-numeric parameters are rejected with the spec string and the
    // parameter's role in the message.
    #[test]
    fn bad_numeric_parameters_are_reported_in_context(junk in "[a-z?!]{1,6}") {
        prop_assume!(junk.parse::<usize>().is_err());
        for stem in ["laesa", "iaesa", "distperm", "prefixperm", "flatperm"] {
            let spec = format!("{stem}:{junk}");
            let err = IndexSpec::parse(&spec).unwrap_err().to_string();
            prop_assert!(err.contains(&spec), "error `{}` does not quote `{}`", err, spec);
            prop_assert!(err.contains("site count"), "error `{}` lacks the role", err);
        }
    }
}

#[test]
fn every_index_name_parses_with_and_without_defaults() {
    // Every accepted structure name and alias, bare (defaults applied).
    for (name, expect) in [
        ("linear", IndexSpec::Linear),
        ("scan", IndexSpec::Linear),
        ("aesa", IndexSpec::Aesa),
        ("laesa", IndexSpec::Laesa { k: DEFAULT_K }),
        ("iaesa", IndexSpec::IAesa { k: DEFAULT_K }),
        ("distperm", IndexSpec::DistPerm { k: DEFAULT_K }),
        ("prefixperm", IndexSpec::PrefixPerm { k: DEFAULT_K, prefix_len: DEFAULT_K.div_ceil(2) }),
        ("flatperm", IndexSpec::FlatDistPerm { k: DEFAULT_K }),
        ("vptree", IndexSpec::VpTree),
        ("vp", IndexSpec::VpTree),
        ("ghtree", IndexSpec::GhTree),
        ("gh", IndexSpec::GhTree),
        ("bktree", IndexSpec::BkTree),
        ("bk", IndexSpec::BkTree),
    ] {
        assert_eq!(IndexSpec::parse(name).unwrap(), expect, "{name}");
    }
}

#[test]
fn structural_violations_report_the_offending_numbers() {
    // k above MAX_K on every permutation-family spec.
    for stem in ["iaesa", "distperm", "flatperm", "prefixperm"] {
        let spec = format!("{stem}:{}", MAX_K + 1);
        let err = IndexSpec::parse(&spec).unwrap_err().to_string();
        assert!(err.contains(&format!("{}", MAX_K + 1)), "{spec}: {err}");
        assert!(err.contains("MAX_K"), "{spec}: {err}");
    }
    // Prefix length exceeding the site count.
    let err = IndexSpec::parse("prefixperm:6:7").unwrap_err().to_string();
    assert!(err.contains("prefix length 7"), "{err}");
    assert!(err.contains("site count 6"), "{err}");
    // Too many parameters on parameterless and one-parameter specs.
    for spec in ["linear:3", "aesa:1", "vptree:2", "laesa:4:4", "flatperm:4:4:4"] {
        let err = IndexSpec::parse(spec).unwrap_err().to_string();
        assert!(err.contains("too many parameters"), "{spec}: {err}");
        assert!(err.contains(spec), "{spec} not quoted: {err}");
    }
}
