//! End-to-end tests driving the compiled `distperm` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn distperm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_distperm")).args(args).output().expect("spawn distperm")
}

fn stdout(o: &Output) -> String {
    assert!(
        o.status.success(),
        "exit {:?}\nstdout: {}\nstderr: {}",
        o.status.code(),
        String::from_utf8_lossy(&o.stdout),
        String::from_utf8_lossy(&o.stderr)
    );
    String::from_utf8(o.stdout.clone()).expect("utf8")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("distperm_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn generate_count_survey_pipeline_on_vectors() {
    let dir = temp_dir("vec");
    let file = dir.join("uniform.vec");
    let f = file.to_str().unwrap();

    let text = stdout(&distperm(&[
        "generate", "--kind", "uniform", "--n", "4000", "--dim", "2", "--seed", "9", "--out", f,
    ]));
    assert!(text.contains("wrote 4000"), "{text}");

    let text =
        stdout(&distperm(&["count", "--vectors", f, "--k", "5", "--seed", "3", "--threads", "2"]));
    assert!(text.contains("distinct distance permutations:"), "{text}");
    // 2-D L2 with k = 5: the count may not exceed N_{2,2}(5) = 46.
    let distinct: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("distinct distance permutations: "))
        .expect("count line")
        .parse()
        .expect("numeric");
    assert!(distinct <= 46, "{distinct} > N_2,2(5)");
    assert!(text.contains("Euclidean maximum N_{2,2}(5): 46"), "{text}");

    let text = stdout(&distperm(&["survey", "--vectors", f, "--ks", "4,6", "--rho-pairs", "4000"]));
    assert!(text.contains("database survey: n = 4000"), "{text}");
    assert!(text.contains("codebook"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn survey_on_flat_vectors_matches_pre_refactor_output_exactly() {
    // Frozen golden transcripts, captured from the generic per-point
    // survey engine *before* `cmd_survey` switched vector databases to
    // the flat batched path.  The flat engine is bit-identical, so the
    // report numbers — every ρ digit, every Huffman/entropy decimal —
    // must not move.  Any numeric diff here means a refactor changed
    // answers.  (The `counting engines:` line was added when the packed
    // pipeline went width-generic; the measurements around it are the
    // original transcripts.)
    const GOLDEN_L2: &str = "\
metric: L2
counting engines: packed-u64 (k = 4, 7)
database survey: n = 3000, rho = 3.501
   k   distinct     occup    naive      raw  codebook   huffman   entropy  minEd
   4         16    187.50        5        8         4     3.470     3.436      2
   7        193     15.54       13       21         8     6.477     6.451      2
";
    const GOLDEN_L1: &str = "\
metric: L1
counting engines: packed-u64 (k = 5)
database survey: n = 3000, rho = 3.163
   k   distinct     occup    naive      raw  codebook   huffman   entropy  minEd
   5         42     71.43        7       15         6     4.746     4.710      2
";
    let dir = temp_dir("survey_golden");
    let file = dir.join("g.vec");
    let f = file.to_str().unwrap();
    stdout(&distperm(&[
        "generate", "--kind", "uniform", "--n", "3000", "--dim", "3", "--seed", "41", "--out", f,
    ]));
    let l2 = stdout(&distperm(&[
        "survey",
        "--vectors",
        f,
        "--ks",
        "4,7",
        "--rho-pairs",
        "3000",
        "--seed",
        "77",
    ]));
    assert_eq!(l2, GOLDEN_L2, "L2 survey text drifted from the pre-refactor transcript");
    // The parallel counting path must render the identical report too.
    let l2_t4 = stdout(&distperm(&[
        "survey",
        "--vectors",
        f,
        "--ks",
        "4,7",
        "--rho-pairs",
        "3000",
        "--seed",
        "77",
        "--threads",
        "4",
    ]));
    assert_eq!(l2_t4, GOLDEN_L2, "--threads changed the survey text");
    let l1 = stdout(&distperm(&[
        "survey",
        "--vectors",
        f,
        "--metric",
        "l1",
        "--ks",
        "5",
        "--rho-pairs",
        "2000",
    ]));
    assert_eq!(l1, GOLDEN_L1, "L1 survey text drifted from the pre-refactor transcript");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wide_k_names_its_engine_in_count_survey_and_search() {
    // Regression: before the width-generic packed pipeline, k = 13..=24
    // silently degraded to hash counting with no indication in any
    // command's output.  Now `count`, `survey` and `search` name the
    // engine that actually ran, and k = 16 runs packed — this test
    // fails on the pre-refactor CLI, which printed no engine line.
    let dir = temp_dir("wide_engine");
    let db = dir.join("db.vec");
    let qs = dir.join("q.vec");
    let f = db.to_str().unwrap();
    stdout(&distperm(&[
        "generate", "--kind", "uniform", "--n", "1200", "--dim", "2", "--seed", "19", "--out", f,
    ]));
    stdout(&distperm(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "4",
        "--dim",
        "2",
        "--seed",
        "20",
        "--out",
        qs.to_str().unwrap(),
    ]));

    for (k, engine) in [("8", "packed-u64"), ("16", "packed-u128"), ("26", "hash")] {
        let text = stdout(&distperm(&["count", "--vectors", f, "--k", k, "--seed", "3"]));
        assert!(text.contains(&format!("counting engine: {engine}")), "k = {k}: {text}");
    }

    let text = stdout(&distperm(&["survey", "--vectors", f, "--ks", "8,16", "--rho-pairs", "500"]));
    assert!(text.contains("counting engines: packed-u64 (k = 8); packed-u128 (k = 16)"), "{text}");

    let text = stdout(&distperm(&[
        "search",
        "--vectors",
        f,
        "--queries",
        qs.to_str().unwrap(),
        "--index",
        "flatperm:16",
        "--knn",
        "2",
    ]));
    assert!(text.contains("ordering engine: packed-u128"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dictionary_pipeline_with_explicit_sites_and_prefixes() {
    let dir = temp_dir("dict");
    let file = dir.join("words.txt");
    let f = file.to_str().unwrap();

    stdout(&distperm(&[
        "generate",
        "--kind",
        "dictionary",
        "--language",
        "english",
        "--n",
        "800",
        "--seed",
        "2",
        "--out",
        f,
    ]));
    let text = stdout(&distperm(&[
        "count",
        "--strings",
        f,
        "--sites",
        "0,17,99,256,511",
        "--prefix-len",
        "2",
    ]));
    assert!(text.contains("sites (k = 5): [0, 17, 99, 256, 511]"), "{text}");
    assert!(text.contains("distinct ordered prefixes (l = 2):"), "{text}");
    assert!(text.contains("metric = levenshtein"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_serves_vector_queries_in_parallel() {
    let dir = temp_dir("search");
    let db = dir.join("db.vec");
    let qs = dir.join("q.vec");
    stdout(&distperm(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "2000",
        "--dim",
        "3",
        "--seed",
        "5",
        "--out",
        db.to_str().unwrap(),
    ]));
    stdout(&distperm(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "12",
        "--dim",
        "3",
        "--seed",
        "6",
        "--out",
        qs.to_str().unwrap(),
    ]));

    // Exact serving through the flat engine, 4 worker threads.
    let text = stdout(&distperm(&[
        "search",
        "--vectors",
        db.to_str().unwrap(),
        "--queries",
        qs.to_str().unwrap(),
        "--index",
        "flatperm:8",
        "--knn",
        "3",
        "--threads",
        "4",
    ]));
    assert!(text.contains("index flatperm:8 over n = 2000"), "{text}");
    assert!(text.contains("query 0:"), "{text}");
    assert!(text.contains("query 11:"), "{text}");
    // Exact flatperm scans everything: 8 sites + 2000 candidates.
    assert!(text.contains("2008.0 per query"), "{text}");

    // The same queries through an exact tree must return the same ids.
    let tree_text = stdout(&distperm(&[
        "search",
        "--vectors",
        db.to_str().unwrap(),
        "--queries",
        qs.to_str().unwrap(),
        "--index",
        "vptree",
        "--knn",
        "3",
        "--threads",
        "2",
    ]));
    let answers = |s: &str| -> Vec<String> {
        s.lines().filter(|l| l.starts_with("query ")).map(String::from).collect()
    };
    assert_eq!(answers(&text), answers(&tree_text), "flatperm vs vptree answers");

    // Budgeted serving reports fewer evaluations.
    let budget_text = stdout(&distperm(&[
        "search",
        "--vectors",
        db.to_str().unwrap(),
        "--queries",
        qs.to_str().unwrap(),
        "--index",
        "distperm:8",
        "--frac",
        "0.05",
        "--quiet",
    ]));
    assert!(budget_text.contains("108.0 per query"), "{budget_text}");
    assert!(!budget_text.contains("query 0:"), "--quiet must suppress rows: {budget_text}");

    // Unknown index specs are usage errors.
    let o = distperm(&[
        "search",
        "--vectors",
        db.to_str().unwrap(),
        "--queries",
        qs.to_str().unwrap(),
        "--index",
        "frobtree",
    ]);
    assert_eq!(o.status.code(), Some(2));

    // More pivots than points is a usage error on every spec, including
    // the flatperm fast path (never a library panic).
    for spec in ["flatperm:32", "laesa:32"] {
        let o = distperm(&[
            "search",
            "--vectors",
            qs.to_str().unwrap(), // the 12-point file as the database
            "--queries",
            qs.to_str().unwrap(),
            "--index",
            spec,
        ]);
        assert_eq!(o.status.code(), Some(2), "{spec}");
        let err = String::from_utf8_lossy(&o.stderr);
        assert!(err.contains("pivots"), "{spec}: {err}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_serves_string_queries_with_bktree() {
    let dir = temp_dir("search_str");
    let db = dir.join("words.txt");
    let qs = dir.join("queries.txt");
    stdout(&distperm(&[
        "generate",
        "--kind",
        "dictionary",
        "--language",
        "english",
        "--n",
        "600",
        "--seed",
        "3",
        "--out",
        db.to_str().unwrap(),
    ]));
    stdout(&distperm(&[
        "generate",
        "--kind",
        "dictionary",
        "--language",
        "english",
        "--n",
        "5",
        "--seed",
        "4",
        "--out",
        qs.to_str().unwrap(),
    ]));
    let bk = stdout(&distperm(&[
        "search",
        "--strings",
        db.to_str().unwrap(),
        "--queries",
        qs.to_str().unwrap(),
        "--index",
        "bktree",
        "--radius",
        "2",
    ]));
    assert!(bk.contains("index bktree over n = 600"), "{bk}");
    let linear = stdout(&distperm(&[
        "search",
        "--strings",
        db.to_str().unwrap(),
        "--queries",
        qs.to_str().unwrap(),
        "--index",
        "linear",
        "--radius",
        "2",
    ]));
    let answers = |s: &str| -> Vec<String> {
        s.lines().filter(|l| l.starts_with("query ")).map(String::from).collect()
    };
    assert_eq!(answers(&bk), answers(&linear), "bktree vs linear scan answers");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figures_command_writes_files() {
    let dir = temp_dir("figs");
    let d = dir.to_str().unwrap();
    let text = stdout(&distperm(&["figures", "--out", d, "--size", "96"]));
    assert!(text.contains("exact Euclidean cell count: 18"), "{text}");
    for f in [
        "fig1_voronoi.ppm",
        "fig2_second_order.ppm",
        "fig3_full_l2.ppm",
        "fig4_full_l1.ppm",
        "fig3_bisectors.svg",
    ] {
        assert!(dir.join(f).exists(), "missing {f}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_survey_output_is_byte_identical_to_in_memory() {
    // --shard-rows only changes the counting working set, never the
    // report: the streamed survey must render byte-for-byte the same
    // text as the buffer-everything engine, including a shard smaller
    // than the database and the explicit in-memory spelling (0).
    let dir = temp_dir("shard_golden");
    let file = dir.join("s.vec");
    let f = file.to_str().unwrap();
    stdout(&distperm(&[
        "generate", "--kind", "uniform", "--n", "3000", "--dim", "3", "--seed", "41", "--out", f,
    ]));
    let base_args =
        ["survey", "--vectors", f, "--ks", "4,7", "--rho-pairs", "3000", "--seed", "77"];
    let in_memory = stdout(&distperm(&base_args));
    for shard_rows in ["0", "257", "3000", "65536"] {
        let mut args = base_args.to_vec();
        args.extend_from_slice(&["--shard-rows", shard_rows]);
        let sharded = stdout(&distperm(&args));
        assert_eq!(sharded, in_memory, "--shard-rows {shard_rows} changed the survey text");
    }
    // Same contract for count, with threads in the mix.
    let count_args = ["count", "--vectors", f, "--k", "6", "--seed", "3", "--threads", "2"];
    let in_memory = stdout(&distperm(&count_args));
    let mut args = count_args.to_vec();
    args.extend_from_slice(&["--shard-rows", "101"]);
    assert_eq!(stdout(&distperm(&args)), in_memory, "--shard-rows changed the count text");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_rows_rejects_malformed_values_with_usage_error() {
    let dir = temp_dir("shard_usage");
    let file = dir.join("u.vec");
    let f = file.to_str().unwrap();
    stdout(&distperm(&[
        "generate", "--kind", "uniform", "--n", "64", "--dim", "2", "--seed", "1", "--out", f,
    ]));
    // Non-numeric and u64-overflowing values are one-line usage errors.
    for bad in ["abc", "-1", "99999999999999999999999999"] {
        for cmd in ["count", "survey"] {
            let karg: &[&str] = if cmd == "count" { &["--k", "4"] } else { &["--ks", "4"] };
            let mut args = vec![cmd, "--vectors", f];
            args.extend_from_slice(karg);
            args.extend_from_slice(&["--shard-rows", bad]);
            let o = distperm(&args);
            assert_eq!(o.status.code(), Some(2), "{cmd} --shard-rows {bad} must exit 2");
            let err = String::from_utf8_lossy(&o.stderr);
            // One diagnostic line plus the standard usage line.
            let first = err.lines().next().unwrap_or_default();
            assert!(first.contains("shard-rows"), "{cmd} --shard-rows {bad}: {err}");
            assert!(first.starts_with("distperm: usage error:"), "{cmd} --shard-rows {bad}: {err}");
        }
    }
    // Strings have no flat key pipeline to shard: flag rejected up front.
    let words = dir.join("w.txt");
    std::fs::write(&words, "alpha\nbeta\ngamma\ndelta\n").expect("write words");
    let w = words.to_str().unwrap();
    for args in [
        vec!["count", "--strings", w, "--k", "2", "--shard-rows", "8"],
        vec!["survey", "--strings", w, "--ks", "2", "--shard-rows", "8"],
    ] {
        let o = distperm(&args);
        assert_eq!(o.status.code(), Some(2), "{args:?} must exit 2");
        let err = String::from_utf8_lossy(&o.stderr);
        assert!(err.contains("vector"), "{args:?}: {err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_2_with_stderr() {
    let o = distperm(&["count", "--vectors"]); // missing value -> flag, then missing input? k missing first
    assert_eq!(o.status.code(), Some(2));
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(err.contains("distperm:"), "{err}");

    let o = distperm(&["nonsense"]);
    assert_eq!(o.status.code(), Some(2));
}

#[test]
fn threads_zero_is_a_usage_error_everywhere() {
    // Regression: `count` and `survey` used to accept --threads 0
    // silently (clamping it to 1) while `search` rejected it; all three
    // must now fail fast with the same actionable message.
    let dir = temp_dir("threads0");
    let file = dir.join("tiny.vec");
    let f = file.to_str().unwrap();
    stdout(&distperm(&[
        "generate", "--kind", "uniform", "--n", "64", "--dim", "2", "--seed", "1", "--out", f,
    ]));
    let cases: Vec<Vec<&str>> = vec![
        vec!["count", "--vectors", f, "--k", "4", "--threads", "0"],
        vec!["survey", "--vectors", f, "--ks", "4", "--threads", "0"],
        vec!["search", "--vectors", f, "--queries", f, "--index", "linear", "--threads", "0"],
    ];
    for case in &cases {
        let o = distperm(case);
        assert_eq!(o.status.code(), Some(2), "{case:?} must be a usage error");
        let err = String::from_utf8_lossy(&o.stderr);
        assert!(err.contains("--threads must be at least 1"), "{case:?}: {err}");
        assert!(err.contains("--threads 1"), "{case:?} must suggest the fix: {err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn data_errors_exit_1() {
    let o = distperm(&["count", "--vectors", "/no/such/file", "--k", "4"]);
    assert_eq!(o.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&o.stderr).contains("data error"));
}

#[test]
fn missing_file_is_a_one_line_diagnostic_in_every_command() {
    // Regression: a missing database file must exit 1 with a single
    // diagnostic line naming the path — no panic, no backtrace.
    let cases: Vec<Vec<&str>> = vec![
        vec!["count", "--vectors", "/no/such/file.vec", "--k", "4"],
        vec!["survey", "--vectors", "/no/such/file.vec"],
        vec![
            "search",
            "--vectors",
            "/no/such/file.vec",
            "--queries",
            "/no/such/q.vec",
            "--index",
            "linear",
        ],
        vec!["serve", "--vectors", "/no/such/file.vec", "--index", "linear"],
    ];
    for case in &cases {
        let o = distperm(case);
        assert_eq!(o.status.code(), Some(1), "{case:?}");
        let err = String::from_utf8_lossy(&o.stderr);
        assert!(err.starts_with("distperm: data error:"), "{case:?}: {err}");
        assert!(err.contains("/no/such/file.vec"), "{case:?}: {err}");
        assert_eq!(err.trim_end().lines().count(), 1, "{case:?} must be one line: {err}");
    }
}

#[test]
fn bad_index_spec_exits_2_with_usage_line() {
    // Regression: a malformed --index spec on a *valid* database is a
    // usage error (exit 2) and stderr carries the command's one-line
    // usage synopsis.
    let dir = temp_dir("badspec");
    let file = dir.join("db.vec");
    let f = file.to_str().unwrap();
    stdout(&distperm(&[
        "generate", "--kind", "uniform", "--n", "64", "--dim", "2", "--seed", "1", "--out", f,
    ]));
    let cases: Vec<(Vec<&str>, &str)> = vec![
        (
            vec!["search", "--vectors", f, "--queries", f, "--index", "frobtree:9"],
            "usage: distperm search",
        ),
        (vec!["serve", "--vectors", f, "--index", "frobtree:9"], "usage: distperm serve"),
    ];
    for (case, usage) in &cases {
        let o = distperm(case);
        assert_eq!(o.status.code(), Some(2), "{case:?}");
        let err = String::from_utf8_lossy(&o.stderr);
        assert!(err.contains("usage error"), "{case:?}: {err}");
        assert!(err.contains(usage), "{case:?} must print its usage line: {err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_smoke_pipes_a_batch_through_stdin() {
    use std::io::Write as _;
    use std::process::Stdio;

    let dir = temp_dir("serve_smoke");
    let file = dir.join("db.vec");
    let f = file.to_str().unwrap();
    stdout(&distperm(&[
        "generate", "--kind", "uniform", "--n", "1000", "--dim", "2", "--seed", "11", "--out", f,
    ]));
    let mut child = Command::new(env!("CARGO_BIN_EXE_distperm"))
        .args(["serve", "--vectors", f, "--index", "distperm:6", "--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"begin s1\nknn 3 0.5 0.5\nrange 0.2 0.1 0.9\nend\ngarbage line\n")
        .expect("write batch");
    // Dropping stdin sends EOF: the service must shut down cleanly.
    let output = child.wait_with_output().expect("serve exits");
    assert!(output.status.success(), "serve exited {:?}", output.status.code());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("ready dim=2"), "{text}");
    assert!(text.contains("done s1 ok=2 degraded=0 failed=0"), "{text}");
    assert!(text.contains("error line=5 unknown verb"), "{text}");
    assert!(text.contains("bye batches=1 queries=2 shed=0 errors=1"), "{text}");
    assert!(text.contains("session: 1 batches, 2 answered"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_then_load_matches_in_process_search_exactly() {
    let dir = temp_dir("build_load");
    let db = dir.join("db.vec");
    let qs = dir.join("q.vec");
    let store = dir.join("index.dps");
    let s = store.to_str().unwrap();
    stdout(&distperm(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "1500",
        "--dim",
        "3",
        "--seed",
        "21",
        "--out",
        db.to_str().unwrap(),
    ]));
    stdout(&distperm(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "10",
        "--dim",
        "3",
        "--seed",
        "22",
        "--out",
        qs.to_str().unwrap(),
    ]));

    let built =
        stdout(&distperm(&["build", "--vectors", db.to_str().unwrap(), "--k", "7", "--out", s]));
    assert!(built.contains("built flatperm:7 over n = 1500 (dim 3, metric L2)"), "{built}");
    assert!(built.contains("format v1"), "{built}");

    // The loaded index must answer bit-identically to one built
    // in-process from the same database — everything except the
    // timing line, which is the only nondeterministic output.
    let strip_timing = |s: &str| -> Vec<String> {
        s.lines().filter(|l| !l.starts_with("build: ")).map(String::from).collect()
    };
    for extra in [&["--knn", "3"][..], &["--radius", "0.4", "--frac", "0.3"][..]] {
        let mut loaded_args =
            vec!["search", "--load", s, "--queries", qs.to_str().unwrap(), "--threads", "2"];
        loaded_args.extend_from_slice(extra);
        let mut built_args = vec![
            "search",
            "--vectors",
            db.to_str().unwrap(),
            "--queries",
            qs.to_str().unwrap(),
            "--index",
            "flatperm:7",
            "--threads",
            "2",
        ];
        built_args.extend_from_slice(extra);
        let loaded = stdout(&distperm(&loaded_args));
        let built = stdout(&distperm(&built_args));
        assert_eq!(
            strip_timing(&loaded),
            strip_timing(&built),
            "{extra:?}: --load answers diverged from the in-process build"
        );
    }

    // --load excludes every option the store already records.
    for conflicting in ["--vectors", "--strings", "--metric", "--index"] {
        let o = distperm(&[
            "search",
            "--load",
            s,
            conflicting,
            "whatever",
            "--queries",
            qs.to_str().unwrap(),
        ]);
        assert_eq!(o.status.code(), Some(2), "{conflicting} with --load must be a usage error");
        let err = String::from_utf8_lossy(&o.stderr);
        assert!(err.contains(&format!("drop {conflicting}")), "{conflicting}: {err}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_and_corrupt_stores_are_data_errors() {
    let dir = temp_dir("bad_store");
    let qs = dir.join("q.vec");
    stdout(&distperm(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "5",
        "--dim",
        "2",
        "--seed",
        "30",
        "--out",
        qs.to_str().unwrap(),
    ]));

    // Missing store file: exit 1, one diagnostic line naming the path.
    let o =
        distperm(&["search", "--load", "/no/such/index.dps", "--queries", qs.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(1));
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(err.starts_with("distperm: data error:"), "{err}");
    assert!(err.contains("/no/such/index.dps"), "{err}");

    // Corrupt store: build a real one, flip a payload byte, load fails
    // with a typed diagnostic rather than a panic or a wrong answer.
    let db = dir.join("db.vec");
    let store = dir.join("index.dps");
    stdout(&distperm(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "200",
        "--dim",
        "2",
        "--seed",
        "31",
        "--out",
        db.to_str().unwrap(),
    ]));
    stdout(&distperm(&[
        "build",
        "--vectors",
        db.to_str().unwrap(),
        "--k",
        "4",
        "--out",
        store.to_str().unwrap(),
    ]));
    let mut bytes = std::fs::read(&store).expect("read store");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    std::fs::write(&store, &bytes).expect("rewrite store");
    let o =
        distperm(&["search", "--load", store.to_str().unwrap(), "--queries", qs.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(1), "corrupt store must be a data error");
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(err.contains("checksum"), "diagnostic should name the failed check: {err}");

    // `distperm build` without --out is a usage error.
    let o = distperm(&["build", "--vectors", db.to_str().unwrap(), "--k", "4"]);
    assert_eq!(o.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_loads_a_store_and_answers_a_session() {
    use std::io::Write as _;
    use std::process::Stdio;

    let dir = temp_dir("serve_load");
    let db = dir.join("db.vec");
    let store = dir.join("index.dps");
    stdout(&distperm(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "800",
        "--dim",
        "2",
        "--seed",
        "13",
        "--out",
        db.to_str().unwrap(),
    ]));
    stdout(&distperm(&[
        "build",
        "--vectors",
        db.to_str().unwrap(),
        "--k",
        "6",
        "--out",
        store.to_str().unwrap(),
    ]));
    let mut child = Command::new(env!("CARGO_BIN_EXE_distperm"))
        .args(["serve", "--load", store.to_str().unwrap(), "--threads", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"begin s1\nknn 3 0.5 0.5\nend\n")
        .expect("write batch");
    let output = child.wait_with_output().expect("serve exits");
    assert!(output.status.success(), "serve exited {:?}", output.status.code());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("ready dim=2"), "{text}");
    assert!(text.contains("done s1 ok=1 degraded=0 failed=0"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn theory_and_table1_roundtrip_key_numbers() {
    let text = stdout(&distperm(&["theory", "--d", "3", "--k", "12"]));
    assert!(text.contains("34662"), "{text}");
    let text = stdout(&distperm(&["table1", "--dmax", "4", "--kmax", "8"]));
    assert!(text.contains("9080"), "{text}");
}
