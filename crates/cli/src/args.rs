//! A small, strict command-line argument parser.
//!
//! Grammar: positionals come first (the subcommand and its operands);
//! options are `--key value` or `--key=value`; a `--key` followed by
//! another option or end of input is a boolean flag.  Every option must
//! be consumed by the command — [`ParsedArgs::finish`] rejects leftovers,
//! so a typo (`--poins`) fails loudly instead of silently using the
//! default.

use crate::CliError;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Parsed command-line arguments with typo detection.
#[derive(Debug)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    values: BTreeMap<String, String>,
    flags: BTreeSet<String>,
    consumed: RefCell<BTreeSet<String>>,
}

impl ParsedArgs {
    /// Parses raw tokens (without the program name).
    pub fn parse<S: AsRef<str>>(tokens: &[S]) -> Result<Self, CliError> {
        let mut positionals = Vec::new();
        let mut values = BTreeMap::new();
        let mut flags = BTreeSet::new();
        let mut i = 0;
        while i < tokens.len() {
            let tok = tokens[i].as_ref();
            if let Some(rest) = tok.strip_prefix("--") {
                if rest.is_empty() {
                    return Err(CliError::usage("bare `--` is not accepted"));
                }
                let (key, inline) = match rest.split_once('=') {
                    Some((k, v)) => (k.to_string(), Some(v.to_string())),
                    None => (rest.to_string(), None),
                };
                if values.contains_key(&key) || flags.contains(&key) {
                    return Err(CliError::usage(format!("duplicate option --{key}")));
                }
                match inline {
                    Some(v) => {
                        values.insert(key, v);
                    }
                    None => {
                        let next = tokens.get(i + 1).map(std::convert::AsRef::as_ref);
                        match next {
                            Some(v) if !v.starts_with("--") => {
                                values.insert(key, v.to_string());
                                i += 1;
                            }
                            _ => {
                                flags.insert(key);
                            }
                        }
                    }
                }
            } else {
                if !values.is_empty() || !flags.is_empty() {
                    return Err(CliError::usage(format!(
                        "positional `{tok}` after options; positionals come first"
                    )));
                }
                positionals.push(tok.to_string());
            }
            i += 1;
        }
        Ok(Self { positionals, values, flags, consumed: RefCell::new(BTreeSet::new()) })
    }

    /// The positional arguments (subcommand and operands).
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    fn touch(&self, key: &str) {
        self.consumed.borrow_mut().insert(key.to_string());
    }

    /// String option, if present.
    pub fn str_opt(&self, key: &str) -> Option<&str> {
        self.touch(key);
        self.values.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.str_opt(key).unwrap_or(default).to_string()
    }

    /// Required string option.
    pub fn require_str(&self, key: &str) -> Result<&str, CliError> {
        self.str_opt(key).ok_or_else(|| CliError::usage(format!("missing required option --{key}")))
    }

    fn parse_as<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.str_opt(key) {
            None => Ok(None),
            Some(s) => s
                .parse::<T>()
                .map(Some)
                .map_err(|e| CliError::usage(format!("bad value for --{key}: {e}"))),
        }
    }

    /// `usize` option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        Ok(self.parse_as::<usize>(key)?.unwrap_or(default))
    }

    /// Required `usize` option.
    pub fn require_usize(&self, key: &str) -> Result<usize, CliError> {
        self.parse_as::<usize>(key)?
            .ok_or_else(|| CliError::usage(format!("missing required option --{key}")))
    }

    /// `u64` option with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        Ok(self.parse_as::<u64>(key)?.unwrap_or(default))
    }

    /// `f64` option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, CliError> {
        Ok(self.parse_as::<f64>(key)?.unwrap_or(default))
    }

    /// Comma-separated `usize` list with a default.
    pub fn usize_list_or(&self, key: &str, default: &[usize]) -> Result<Vec<usize>, CliError> {
        match self.str_opt(key) {
            None => Ok(default.to_vec()),
            Some(s) => s
                .split(',')
                .map(|t| {
                    t.trim().parse::<usize>().map_err(|e| {
                        CliError::usage(format!("bad list element `{t}` for --{key}: {e}"))
                    })
                })
                .collect(),
        }
    }

    /// The `--threads` worker count with a default.
    ///
    /// Rejects 0 with an actionable message — every parallel command
    /// shares this validation, so `--threads 0` cannot silently mean
    /// "sequential" in one command and panic in another.
    pub fn threads_or(&self, default: usize) -> Result<usize, CliError> {
        let threads = self.usize_or("threads", default)?;
        if threads == 0 {
            return Err(CliError::usage(
                "--threads must be at least 1 (use --threads 1 for a sequential run)",
            ));
        }
        Ok(threads)
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.touch(key);
        self.flags.contains(key)
    }

    /// Rejects any option the command did not consume.
    pub fn finish(&self) -> Result<(), CliError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<&String> = self
            .values
            .keys()
            .chain(self.flags.iter())
            .filter(|k| !consumed.contains(*k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            let list: Vec<String> = unknown.iter().map(|k| format!("--{k}")).collect();
            Err(CliError::usage(format!("unknown option(s): {}", list.join(", "))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(tokens).expect("parse")
    }

    #[test]
    fn positionals_then_options() {
        let a = parse(&["count", "--k", "8", "--seed=42", "--parallel"]);
        assert_eq!(a.positionals(), ["count"]);
        assert_eq!(a.require_usize("k").unwrap(), 8);
        assert_eq!(a.u64_or("seed", 0).unwrap(), 42);
        assert!(a.flag("parallel"));
        a.finish().unwrap();
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["x"]);
        assert_eq!(a.usize_or("n", 10).unwrap(), 10);
        assert_eq!(a.str_or("metric", "l2"), "l2");
        assert_eq!(a.usize_list_or("ks", &[4, 8]).unwrap(), vec![4, 8]);
        assert!(!a.flag("big"));
        a.finish().unwrap();
    }

    #[test]
    fn list_parsing() {
        let a = parse(&["x", "--ks", "3, 4,12"]);
        assert_eq!(a.usize_list_or("ks", &[]).unwrap(), vec![3, 4, 12]);
        a.finish().unwrap();
    }

    #[test]
    fn unknown_option_rejected_by_finish() {
        let a = parse(&["x", "--poins", "5"]);
        let err = a.finish().unwrap_err();
        assert!(err.to_string().contains("--poins"), "{err}");
    }

    #[test]
    fn duplicate_option_rejected() {
        let err = ParsedArgs::parse(&["x", "--k", "1", "--k", "2"]).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn positional_after_option_rejected() {
        let err = ParsedArgs::parse(&["x", "--k", "1", "oops"]).unwrap_err();
        assert!(err.to_string().contains("positionals come first"), "{err}");
    }

    #[test]
    fn bad_number_reported_with_key() {
        let a = parse(&["x", "--k", "abc"]);
        let err = a.require_usize("k").unwrap_err();
        assert!(err.to_string().contains("--k"), "{err}");
    }

    #[test]
    fn missing_required_reported() {
        let a = parse(&["x"]);
        let err = a.require_str("out").unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
    }

    #[test]
    fn flag_followed_by_option_is_boolean() {
        let a = parse(&["x", "--verbose", "--k", "3"]);
        assert!(a.flag("verbose"));
        assert_eq!(a.require_usize("k").unwrap(), 3);
        a.finish().unwrap();
    }
}
