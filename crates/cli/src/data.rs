//! Database loading and metric selection shared by `count` and `survey`.
//!
//! A database is either a vector set (SISAP `dim n` header format) under
//! a Minkowski metric, or a string set (one per line) under an edit-type
//! metric.  The metric is named on the command line; defaults are L2 for
//! vectors (the paper's Euclidean tables) and Levenshtein for strings
//! (the paper's dictionary databases).

use crate::args::ParsedArgs;
use crate::CliError;
use dp_datasets::sisap_io;
use dp_datasets::VectorSet;

/// Which Minkowski metric to use on vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VectorMetricSpec {
    /// Manhattan distance.
    L1,
    /// Euclidean distance.
    L2,
    /// Chebyshev distance.
    LInf,
    /// General Minkowski with exponent p ≥ 1.
    Lp(f64),
}

/// Which metric to use on strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringMetricSpec {
    /// Edit distance (insert/delete/substitute).
    Levenshtein,
    /// Positional mismatches (equal lengths).
    Hamming,
    /// The paper's Definition 3 tree metric.
    Prefix,
}

/// A loaded database plus its metric choice.
///
/// Vector data loads straight into flat [`VectorSet`] storage, so the
/// counting commands run through the batched permutation engine.
#[derive(Debug)]
pub enum Database {
    /// Real vectors of a fixed dimension, flat row-major storage.
    Vectors {
        /// Vector dimension from the file header.
        dim: usize,
        /// The points.
        data: VectorSet,
        /// Chosen metric.
        metric: VectorMetricSpec,
    },
    /// Strings.
    Strings {
        /// The points.
        data: Vec<String>,
        /// Chosen metric.
        metric: StringMetricSpec,
    },
}

impl Database {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Database::Vectors { data, .. } => data.len(),
            Database::Strings { data, .. } => data.len(),
        }
    }

    /// True iff no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human-readable metric name.
    pub fn metric_name(&self) -> String {
        match self {
            Database::Vectors { metric, .. } => match metric {
                VectorMetricSpec::L1 => "L1".into(),
                VectorMetricSpec::L2 => "L2".into(),
                VectorMetricSpec::LInf => "Linf".into(),
                VectorMetricSpec::Lp(p) => format!("L{p}"),
            },
            Database::Strings { metric, .. } => match metric {
                StringMetricSpec::Levenshtein => "levenshtein".into(),
                StringMetricSpec::Hamming => "hamming".into(),
                StringMetricSpec::Prefix => "prefix".into(),
            },
        }
    }
}

/// Parses a vector metric name: `l1`, `l2`, `linf`, or `lp:<p>`.
pub fn parse_vector_metric(name: &str) -> Result<VectorMetricSpec, CliError> {
    match name {
        "l1" => Ok(VectorMetricSpec::L1),
        "l2" => Ok(VectorMetricSpec::L2),
        "linf" => Ok(VectorMetricSpec::LInf),
        other => {
            if let Some(p) = other.strip_prefix("lp:") {
                let p: f64 = p
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad Lp exponent `{p}`: {e}")))?;
                if p.is_nan() || p < 1.0 {
                    return Err(CliError::usage(format!("Lp requires p >= 1, got {p}")));
                }
                Ok(VectorMetricSpec::Lp(p))
            } else {
                Err(CliError::usage(format!(
                    "unknown vector metric `{other}` (want l1, l2, linf, lp:<p>)"
                )))
            }
        }
    }
}

/// Parses a string metric name: `levenshtein`, `hamming`, or `prefix`.
pub fn parse_string_metric(name: &str) -> Result<StringMetricSpec, CliError> {
    match name {
        "levenshtein" => Ok(StringMetricSpec::Levenshtein),
        "hamming" => Ok(StringMetricSpec::Hamming),
        "prefix" => Ok(StringMetricSpec::Prefix),
        other => Err(CliError::usage(format!(
            "unknown string metric `{other}` (want levenshtein, hamming, prefix)"
        ))),
    }
}

/// Loads the database named by `--vectors` or `--strings`, resolving
/// `--metric` (default: l2 for vectors, levenshtein for strings).
pub fn load(parsed: &ParsedArgs) -> Result<Database, CliError> {
    let vectors = parsed.str_opt("vectors").map(str::to_string);
    let strings = parsed.str_opt("strings").map(str::to_string);
    match (vectors, strings) {
        (Some(_), Some(_)) => Err(CliError::usage("give either --vectors or --strings, not both")),
        (None, None) => Err(CliError::usage("missing input: --vectors <file> or --strings <file>")),
        (Some(path), None) => {
            let metric = parse_vector_metric(&parsed.str_or("metric", "l2"))?;
            let data = sisap_io::read_vectors_file_flat(&path)
                .map_err(|e| CliError::data(format!("{path}: {e}")))?;
            Ok(Database::Vectors { dim: data.dim(), data, metric })
        }
        (None, Some(path)) => {
            let metric = parse_string_metric(&parsed.str_or("metric", "levenshtein"))?;
            let data = sisap_io::read_strings_file(&path)
                .map_err(|e| CliError::data(format!("{path}: {e}")))?;
            Ok(Database::Strings { data, metric })
        }
    }
}

/// Parses an explicit `--sites 0,5,9` list, validating range and
/// distinctness against the database size.
pub fn parse_sites(parsed: &ParsedArgs, n: usize) -> Result<Option<Vec<usize>>, CliError> {
    let Some(list) = parsed.str_opt("sites") else {
        return Ok(None);
    };
    let mut ids = Vec::new();
    for tok in list.split(',') {
        let id: usize =
            tok.trim().parse().map_err(|e| CliError::usage(format!("bad site id `{tok}`: {e}")))?;
        if id >= n {
            return Err(CliError::usage(format!("site id {id} out of range (n = {n})")));
        }
        if ids.contains(&id) {
            return Err(CliError::usage(format!("duplicate site id {id}")));
        }
        ids.push(id);
    }
    if ids.is_empty() {
        return Err(CliError::usage("--sites list is empty"));
    }
    Ok(Some(ids))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_metric_names() {
        assert_eq!(parse_vector_metric("l1").unwrap(), VectorMetricSpec::L1);
        assert_eq!(parse_vector_metric("linf").unwrap(), VectorMetricSpec::LInf);
        assert_eq!(parse_vector_metric("lp:3.5").unwrap(), VectorMetricSpec::Lp(3.5));
        assert!(parse_vector_metric("lp:0.5").is_err());
        assert!(parse_vector_metric("cosine").is_err());
    }

    #[test]
    fn string_metric_names() {
        assert_eq!(parse_string_metric("prefix").unwrap(), StringMetricSpec::Prefix);
        assert!(parse_string_metric("l2").is_err());
    }

    #[test]
    fn sites_validation() {
        let args = ParsedArgs::parse(&["x", "--sites", "0,2,5"]).unwrap();
        assert_eq!(parse_sites(&args, 10).unwrap(), Some(vec![0, 2, 5]));
        let args = ParsedArgs::parse(&["x", "--sites", "0,2,5"]).unwrap();
        assert!(parse_sites(&args, 5).is_err(), "out of range");
        let args = ParsedArgs::parse(&["x", "--sites", "1,1"]).unwrap();
        assert!(parse_sites(&args, 5).is_err(), "duplicate");
        let args = ParsedArgs::parse(&["x"]).unwrap();
        assert_eq!(parse_sites(&args, 5).unwrap(), None);
    }

    #[test]
    fn load_requires_exactly_one_input() {
        let args = ParsedArgs::parse(&["count"]).unwrap();
        assert!(load(&args).is_err());
        let args = ParsedArgs::parse(&["count", "--vectors", "a", "--strings", "b"]).unwrap();
        assert!(load(&args).is_err());
    }

    #[test]
    fn load_reports_missing_file_as_data_error() {
        let args = ParsedArgs::parse(&["count", "--vectors", "/nonexistent/file"]).unwrap();
        match load(&args) {
            Err(CliError::Data(msg)) => assert!(msg.contains("/nonexistent/file")),
            other => panic!("expected data error, got {other:?}"),
        }
    }
}
