//! `distperm serve` — a persistent, fault-tolerant query service.
//!
//! Builds an index over a vector database, then reads line-delimited
//! query batches from stdin until EOF, answering on stdout through
//! [`dp_index::serve::serve_session`]: work-stealing dispatch, per-query
//! panic isolation, deadline-aware degradation to budgeted queries, and
//! bounded-queue admission control.  Protocol:
//!
//! ```text
//! begin b1 deadline-ms=50 frac=0.25
//! knn 3 0.1 0.2 0.8
//! range 0.5 frac=0.4 0.0 0.0 0.0
//! end
//! ```
//!
//! Malformed lines get `error` replies and the session keeps serving;
//! EOF shuts down cleanly with a `bye` summary.  The hidden
//! `--fault-panics i,j` option injects panics at the given query indices
//! of every batch — it exists for the robustness e2e tests and is not a
//! serving feature.

use crate::args::ParsedArgs;
use crate::data::{self, Database, VectorMetricSpec};
use crate::CliError;
use dp_index::serve::{serve_session, FaultPlan, SessionConfig, SessionSummary};
use dp_index::{
    AnyIndex, ApproxSearcher, FlatDistPermIndex, IndexSpec, PivotSelection, ProximityIndex,
};
use dp_metric::{BatchDistance, F64Dist, LInf, Lp, Metric, L1, L2};
use dp_store::StoredIndex;
use std::borrow::Borrow;
use std::io::{BufRead, Write};
use std::path::Path;
use std::time::Duration;

struct ServeOptions {
    config: SessionConfig,
    faults: FaultPlan,
}

fn parse_options(parsed: &ParsedArgs) -> Result<ServeOptions, CliError> {
    let threads = parsed.threads_or(2)?;
    let queue_capacity = parsed.usize_or("queue", 4)?;
    if queue_capacity == 0 {
        return Err(CliError::usage("--queue must be at least 1"));
    }
    let max_batch = parsed.usize_or("max-batch", 4096)?;
    if max_batch == 0 {
        return Err(CliError::usage("--max-batch must be at least 1"));
    }
    let soft_deadline = match parsed.str_opt("deadline-ms") {
        None => None,
        Some(s) => {
            let ms: u64 = s
                .parse()
                .map_err(|e| CliError::usage(format!("bad value for --deadline-ms: {e}")))?;
            Some(Duration::from_millis(ms))
        }
    };
    let degrade_frac = parsed.f64_or("degrade-frac", 0.25)?;
    if !(0.0..=1.0).contains(&degrade_frac) {
        return Err(CliError::usage(format!(
            "--degrade-frac must be in [0,1], got {degrade_frac}"
        )));
    }
    let steal_chunk = parsed.usize_or("steal-chunk", 1)?;
    if steal_chunk == 0 {
        return Err(CliError::usage("--steal-chunk must be at least 1"));
    }
    let faults = FaultPlan::none().panic_on_all(parsed.usize_list_or("fault-panics", &[])?);
    Ok(ServeOptions {
        config: SessionConfig {
            threads,
            queue_capacity,
            max_batch,
            soft_deadline,
            degrade_frac,
            steal_chunk,
        },
        faults,
    })
}

/// Runs `distperm serve` reading from stdin.
pub fn run(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    run_with_input(parsed, std::io::BufReader::new(std::io::stdin()), out)
}

/// [`run`] with an explicit input stream (the testable surface).
pub fn run_with_input<R: BufRead + Send>(
    parsed: &ParsedArgs,
    input: R,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if parsed.str_opt("load").is_some() {
        return run_loaded(parsed, input, out);
    }
    let spec = IndexSpec::parse(parsed.require_str("index")?)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let db = data::load(parsed)?;
    let options = parse_options(parsed)?;
    parsed.finish()?;

    match db {
        Database::Vectors { dim, data, metric } => match metric {
            VectorMetricSpec::L1 => serve_vectors(L1, spec, dim, data, input, &options, out),
            VectorMetricSpec::L2 => serve_vectors(L2, spec, dim, data, input, &options, out),
            VectorMetricSpec::LInf => serve_vectors(LInf, spec, dim, data, input, &options, out),
            VectorMetricSpec::Lp(p) => {
                serve_vectors(Lp::new(p), spec, dim, data, input, &options, out)
            }
        },
        Database::Strings { .. } => Err(CliError::usage(
            "serve handles vector databases only; use `distperm search` for strings",
        )),
    }
}

/// The `--load` fast path: the index comes out of a `dp-store` container
/// instead of being rebuilt, so service starts without the k·n-distance
/// build phase and answers bit-identically to an in-process build.
fn run_loaded<R: BufRead + Send>(
    parsed: &ParsedArgs,
    input: R,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let store_path = parsed.require_str("load")?.to_string();
    for conflicting in ["vectors", "strings", "metric", "index"] {
        if parsed.str_opt(conflicting).is_some() {
            return Err(CliError::usage(format!(
                "--load reads the database, metric and index from the store; drop --{conflicting}"
            )));
        }
    }
    let options = parse_options(parsed)?;
    parsed.finish()?;

    let stored = dp_store::load_store(Path::new(&store_path))
        .map_err(|e| CliError::data(format!("{store_path}: {e}")))?;
    let dim = stored.dim();
    let name = stored.spec_name();
    match stored {
        StoredIndex::L1(index) => serve_loaded(&index, &name, dim, input, &options, out),
        StoredIndex::L2(index) => serve_loaded(&index, &name, dim, input, &options, out),
        StoredIndex::L2Squared(index) => serve_loaded(&index, &name, dim, input, &options, out),
        StoredIndex::LInf(index) => serve_loaded(&index, &name, dim, input, &options, out),
        StoredIndex::Lp(index) => serve_loaded(&index, &name, dim, input, &options, out),
    }
}

fn serve_loaded<M, R>(
    index: &FlatDistPermIndex<M>,
    name: &str,
    dim: usize,
    input: R,
    options: &ServeOptions,
    out: &mut dyn Write,
) -> Result<(), CliError>
where
    M: BatchDistance + Sync,
    R: BufRead + Send,
{
    write_banner(out, name, index.len(), dim)?;
    let summary = run_session::<[f64], _, _>(index, dim, input, out, options)?;
    write_summary(out, &summary)
}

fn serve_vectors<M, R>(
    metric: M,
    spec: IndexSpec,
    dim: usize,
    data: dp_datasets::VectorSet,
    input: R,
    options: &ServeOptions,
    out: &mut dyn Write,
) -> Result<(), CliError>
where
    M: Metric<Vec<f64>, Dist = F64Dist> + BatchDistance + Copy + Sync,
    R: BufRead + Send,
{
    let name = spec.name();
    if let IndexSpec::FlatDistPerm { k } = spec {
        if k > data.len() {
            return Err(CliError::usage(format!(
                "index spec `{name}` asks for {k} pivots from {} points",
                data.len()
            )));
        }
        let n = data.len();
        let index = FlatDistPermIndex::build(
            metric,
            data,
            k,
            PivotSelection::MaxMin,
            options.config.threads,
        );
        write_banner(out, &name, n, dim)?;
        let summary = run_session::<[f64], _, _>(&index, dim, input, out, options)?;
        return write_summary(out, &summary);
    }
    let n = data.len();
    let index = AnyIndex::build(spec, metric, data.to_nested(), PivotSelection::MaxMin)
        .map_err(|e| CliError::usage(e.to_string()))?;
    write_banner(out, &name, n, dim)?;
    let summary = run_session::<Vec<f64>, _, _>(&index, dim, input, out, options)?;
    write_summary(out, &summary)
}

fn run_session<'i, P, I, R>(
    index: &'i I,
    dim: usize,
    input: R,
    out: &mut dyn Write,
    options: &ServeOptions,
) -> Result<SessionSummary, CliError>
where
    P: ?Sized + Sync,
    Vec<f64>: Borrow<P>,
    I: ProximityIndex<P, Dist = F64Dist>,
    I::Searcher<'i>: ApproxSearcher<P>,
    R: BufRead + Send,
{
    Ok(serve_session(index, dim, input, out, &options.config, &options.faults)?)
}

fn write_banner(out: &mut dyn Write, name: &str, n: usize, dim: usize) -> Result<(), CliError> {
    writeln!(out, "serving index {name} over n = {n} (dim {dim})")?;
    Ok(())
}

fn write_summary(out: &mut dyn Write, summary: &SessionSummary) -> Result<(), CliError> {
    writeln!(
        out,
        "session: {} batches, {} answered ({} degraded), {} failed, {} shed, {} protocol errors",
        summary.batches,
        summary.answered(),
        summary.degraded,
        summary.failed,
        summary.shed,
        summary.parse_errors
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_db(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dp_cli_serve_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.vec");
        let data = dp_datasets::uniform_unit_cube(500, 2, 7);
        dp_datasets::sisap_io::write_vectors_file(&path, 2, &data).expect("write");
        path
    }

    fn serve(tag: &str, argv_tail: &[&str], input: &str) -> Result<String, CliError> {
        let path = temp_db(tag);
        let mut argv: Vec<String> =
            vec!["serve".into(), "--vectors".into(), path.to_str().unwrap().into()];
        argv.extend(argv_tail.iter().map(std::string::ToString::to_string));
        let parsed = ParsedArgs::parse(&argv).expect("argv");
        let mut out = Vec::new();
        let result = run_with_input(&parsed, input.as_bytes(), &mut out);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
        result.map(|()| String::from_utf8(out).expect("utf8"))
    }

    #[test]
    fn serves_a_batch_and_shuts_down_on_eof() {
        let input = "begin b1\nknn 2 0.5 0.5\nend\n";
        let text = serve("basic", &["--index", "distperm:4"], input).unwrap();
        assert!(text.contains("serving index distperm"), "{text}");
        assert!(text.contains("ready dim=2"), "{text}");
        assert!(text.contains("done b1 ok=1"), "{text}");
        assert!(text.contains("bye batches=1"), "{text}");
        assert!(text.contains("session: 1 batches, 1 answered"), "{text}");
    }

    #[test]
    fn flatperm_spec_serves_and_validates_pivots() {
        let input = "begin f\nknn 1 0.2 0.8\nend\n";
        let text = serve("flat", &["--index", "flatperm:4"], input).unwrap();
        assert!(text.contains("serving index flatperm"), "{text}");
        assert!(text.contains("done f ok=1"), "{text}");

        // More pivots than points: the graceful usage check, not a
        // library panic.
        let dir = std::env::temp_dir().join(format!("dp_cli_serve_tiny_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("tiny.vec");
        let data = dp_datasets::uniform_unit_cube(10, 2, 3);
        dp_datasets::sisap_io::write_vectors_file(&path, 2, &data).expect("write");
        let argv = ["serve", "--vectors", path.to_str().unwrap(), "--index", "flatperm:20"];
        let parsed = ParsedArgs::parse(&argv).expect("argv");
        let mut out = Vec::new();
        let err = run_with_input(&parsed, input.as_bytes(), &mut out).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("pivots"), "{err}");
    }

    #[test]
    fn garbage_input_cannot_kill_the_session() {
        let input = "nonsense\nbegin g\nknn 1 bad coords\nknn 1 0.4 0.4\nend\n";
        let text = serve("garbage", &["--index", "vptree"], input).unwrap();
        assert!(text.contains("error line=1 unknown verb"), "{text}");
        assert!(text.contains("error line=3 bad coordinate"), "{text}");
        assert!(text.contains("done g ok=1"), "{text}");
        assert!(text.contains("bye"), "{text}");
    }

    #[test]
    fn strings_database_is_a_usage_error() {
        let dir = std::env::temp_dir().join(format!("dp_cli_serve_str_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.txt");
        std::fs::write(&path, "alpha\nbeta\n").expect("write");
        let argv = ["serve", "--strings", path.to_str().unwrap(), "--index", "vptree"];
        let parsed = ParsedArgs::parse(&argv).expect("argv");
        let mut out = Vec::new();
        let err = run_with_input(&parsed, "".as_bytes(), &mut out).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("vector databases only"), "{err}");
    }

    #[test]
    fn option_validation() {
        let input = "";
        for (tail, needle) in [
            (&["--index", "distperm:4", "--queue", "0"][..], "--queue"),
            (&["--index", "distperm:4", "--degrade-frac", "1.5"][..], "--degrade-frac"),
            (&["--index", "distperm:4", "--steal-chunk", "0"][..], "--steal-chunk"),
            (&["--index", "distperm:4", "--deadline-ms", "soon"][..], "--deadline-ms"),
            (&["--index", "nosuch"][..], "nosuch"),
        ] {
            let err = serve("opt", tail, input).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{tail:?}");
            assert!(err.to_string().contains(needle), "{tail:?}: {err}");
        }
    }

    #[test]
    fn injected_faults_are_contained_per_query() {
        let input = "begin f\nknn 1 0.1 0.1\nknn 1 0.9 0.9\nend\n";
        let text =
            serve("faults", &["--index", "distperm:4", "--fault-panics", "0"], input).unwrap();
        assert!(text.contains("failed 0 injected fault at query 0"), "{text}");
        assert!(text.contains("done f ok=1 degraded=0 failed=1"), "{text}");
        assert!(text.contains("session: 1 batches, 1 answered (0 degraded), 1 failed"), "{text}");
    }
}
