//! `distperm figures`: regenerate the paper's Figures 1–4.

use crate::args::ParsedArgs;
use crate::CliError;
use dp_geometry::arrangement::euclidean_cells;
use dp_geometry::faces::exact_permutations;
use dp_geometry::render::{render_cells, svg_euclidean_bisectors, CellKey};
use dp_geometry::sampling::{grid_count, BBox};
use dp_metric::{L1, L2};
use std::io::Write;
use std::path::PathBuf;

pub(crate) fn run(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let dir = PathBuf::from(parsed.str_or("out", "figures"));
    let size = parsed.usize_or("size", 640)?;
    parsed.finish()?;
    if !(64..=4096).contains(&size) {
        return Err(CliError::usage("--size must be in 64..=4096"));
    }
    std::fs::create_dir_all(&dir)?;

    // The canonical configuration: four sites in general position whose
    // L2 and L1 bisector systems both have 18 cells (§2, Figs 3–4).
    let sites_f: Vec<Vec<f64>> = vec![
        vec![0.9867, 0.5630],
        vec![0.3364, 0.5875],
        vec![0.4702, 0.8210],
        vec![0.8423, 0.3812],
    ];
    let sites_i: Vec<(i64, i64)> = vec![(9867, 5630), (3364, 5875), (4702, 8210), (8423, 3812)];
    let bbox = BBox { x_min: 0.0, x_max: 1.3, y_min: 0.0, y_max: 1.3 };

    writeln!(out, "exact Euclidean cell count: {} (paper: 18)", euclidean_cells(&sites_i))?;
    let l2 = grid_count(&L2, &sites_f, bbox, 800, 800);
    let l1 = grid_count(&L1, &sites_f, bbox, 800, 800);
    writeln!(out, "grid census: L2 = {}, L1 = {} cells", l2.distinct(), l1.distinct())?;
    let exact = exact_permutations(&sites_i);
    let l1_set = l1.sorted_permutations();
    let shared = l1_set.iter().filter(|p| exact.binary_search(p).is_ok()).count();
    writeln!(
        out,
        "exact L2 permutation set: {}; L1 shares {shared}/{} — not the same cells (§2)",
        exact.len(),
        l1_set.len()
    )?;

    let figs: [(&str, CellKey, bool); 4] = [
        ("fig1_voronoi.ppm", CellKey::Nearest, false),
        ("fig2_second_order.ppm", CellKey::TopTwoUnordered, false),
        ("fig3_full_l2.ppm", CellKey::FullPermutation, false),
        ("fig4_full_l1.ppm", CellKey::FullPermutation, true),
    ];
    for (name, key, use_l1) in figs {
        let img = if use_l1 {
            render_cells(&L1, &sites_f, bbox, size, size, key)
        } else {
            render_cells(&L2, &sites_f, bbox, size, size, key)
        };
        let path = dir.join(name);
        std::fs::write(&path, img.to_ppm())?;
        writeln!(out, "wrote {}", path.display())?;
    }
    let svg = svg_euclidean_bisectors(
        &sites_i,
        BBox { x_min: 0.0, x_max: 13000.0, y_min: 0.0, y_max: 13000.0 },
        size as f64,
    );
    let path = dir.join("fig3_bisectors.svg");
    std::fs::write(&path, svg)?;
    writeln!(out, "wrote {}", path.display())?;
    Ok(())
}
