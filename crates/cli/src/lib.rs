//! # dp-cli — the `distperm` command-line tool
//!
//! A front end over the whole workspace for users who want the paper's
//! measurements on *their* data without writing Rust:
//!
//! ```text
//! distperm generate --kind uniform --n 100000 --dim 4 --seed 1 --out db.vec
//! distperm count    --vectors db.vec --metric l2 --k 8
//! distperm search   --vectors db.vec --queries q.vec --index flatperm:12 --knn 5 --threads 8
//! distperm survey   --vectors db.vec --metric l2 --ks 4,8,12
//! distperm theory   --d 4 --k 8
//! distperm table1   --dmax 10 --kmax 12
//! distperm figures  --out figures/
//! ```
//!
//! Files use the SISAP library's ASCII formats
//! ([`dp_datasets::sisap_io`]), so the original sample databases — when
//! available — run through the same commands as the synthetic analogues.
//!
//! The library surface ([`run`]) takes argv and a writer, so every
//! command is testable without spawning a process.

#![forbid(unsafe_code)]

pub mod args;
mod cmd_build;
mod cmd_count;
mod cmd_figures;
mod cmd_generate;
mod cmd_search;
mod cmd_serve;
mod cmd_survey;
mod cmd_table1;
mod cmd_theory;
pub mod data;

use std::fmt;
use std::io::Write;

/// Errors surfaced to the user with an exit code.
#[derive(Debug)]
pub enum CliError {
    /// The command line is malformed; print usage.
    Usage(String),
    /// Input data could not be loaded or is inconsistent.
    Data(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl CliError {
    pub(crate) fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    pub(crate) fn data(msg: impl Into<String>) -> Self {
        CliError::Data(msg.into())
    }

    /// Process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Data(_) => 1,
            CliError::Io(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Data(m) => write!(f, "data error: {m}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
distperm — distance-permutation measurements (Skala, SISAP'08/JDA 2009)

USAGE: distperm <command> [options]

COMMANDS:
  theory    exact counts and bounds for one (d, k)
            --d <dim> --k <sites>
  table1    the paper's Table 1, N_{d,2}(k)
            [--dmax 10] [--kmax 12] (any size; exact big-integer arithmetic)
  generate  write a synthetic database in SISAP ASCII format
            --kind uniform|gaussian|clustered|curve|colors|nasa|dictionary|genes
            --n <count> --out <file> [--dim <d>] [--seed <s>]
            [--language english] [--std 1.0] [--clusters 8] [--spread 0.05]
            [--maxlen 40]
  count     count distinct distance permutations in a database file
            --vectors <file>|--strings <file> --k <sites>
            [--metric l2|l1|linf|lp:<p>|levenshtein|hamming|prefix]
            [--seed <s>] [--sites 0,5,9] [--threads <t>] [--prefix-len <l>]
            [--shard-rows <n>  (vectors only: stream n-key shards instead
            of buffering every key; 0 = in-memory, identical output)]
  survey    full report: rho, counts, storage costs, dimension estimates
            (vector databases run through the flat batched engine)
            --vectors <file>|--strings <file> [--metric …] [--ks 4,8,12]
            [--seed <s>] [--rho-pairs 20000] [--threads 1  (vectors only)]
            [--shard-rows <n>  (vectors only; 0 = in-memory)]
  build     build a flatperm index once and persist it as a store file
            --vectors <db> --out <store> (--k <sites> | --sites 0,5,9)
            [--metric l2|l1|linf|lp:<p>] [--threads 4]
  search    build an index by spec and serve a query file in parallel
            --vectors <db>|--strings <db> --queries <file> --index <spec>
            [--metric …] [--knn 1 | --radius <r>] [--frac 1.0]
            [--threads 4] [--quiet]
            specs: linear aesa laesa[:k] iaesa[:k] distperm[:k]
                   prefixperm[:k[:l]] flatperm[:k] vptree ghtree bktree
            or: --load <store> --queries <file> … (serve a store written
            by `build`; database, metric and index come from the file)
  serve     persistent fault-tolerant query service over stdin/stdout
            --vectors <db> --index <spec> | --load <store>
            [--metric …] [--threads 2]
            [--queue 4] [--max-batch 4096] [--deadline-ms <ms>]
            [--degrade-frac 0.25] [--steal-chunk 1]
            protocol: `begin <id> [deadline-ms=…] [frac=…]`, then
            `knn <k> <coords…>` / `range <r> <coords…>`, then `end`;
            EOF shuts down cleanly
  figures   regenerate the paper's Figures 1–4 (PPM + SVG)
            [--out figures/] [--size 640]
  help      this text
";

/// One-line usage synopsis per command, printed on usage errors.
pub fn usage_line(command: &str) -> Option<&'static str> {
    Some(match command {
        "theory" => "distperm theory --d <dim> --k <sites>",
        "table1" => "distperm table1 [--dmax 10] [--kmax 12]",
        "build" => "distperm build --vectors <db> --out <store> (--k <sites> | --sites 0,5,9) [--metric <m>] [--threads <t>]",
        "generate" => "distperm generate --kind <kind> --n <count> --out <file> [--dim <d>] [--seed <s>]",
        "count" => "distperm count --vectors <file>|--strings <file> --k <sites> [--metric <m>] [--threads <t>] [--shard-rows <n>]",
        "survey" => "distperm survey --vectors <file>|--strings <file> [--metric <m>] [--ks 4,8,12] [--shard-rows <n>]",
        "search" => "distperm search --vectors <db>|--strings <db> --index <spec> | --load <store>  --queries <file> [--knn <k>|--radius <r>] [--frac <f>] [--threads <t>]",
        "serve" => "distperm serve --vectors <db> --index <spec> | --load <store> [--threads <t>] [--queue <n>] [--deadline-ms <ms>] [--degrade-frac <f>]",
        "figures" => "distperm figures [--out figures/] [--size 640]",
        _ => return None,
    })
}

/// Runs the tool: `argv` excludes the program name; output goes to `out`.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = args::ParsedArgs::parse(argv)?;
    let command = parsed.positionals().first().map(String::as_str);
    match command {
        None | Some("help") => {
            write!(out, "{USAGE}")?;
            Ok(())
        }
        Some("theory") => cmd_theory::run(&parsed, out),
        Some("table1") => cmd_table1::run(&parsed, out),
        Some("build") => cmd_build::run(&parsed, out),
        Some("generate") => cmd_generate::run(&parsed, out),
        Some("count") => cmd_count::run(&parsed, out),
        Some("search") => cmd_search::run(&parsed, out),
        Some("serve") => cmd_serve::run(&parsed, out),
        Some("survey") => cmd_survey::run(&parsed, out),
        Some("figures") => cmd_figures::run(&parsed, out),
        Some(other) => {
            Err(CliError::usage(format!("unknown command `{other}`; run `distperm help`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = argv.iter().map(std::string::ToString::to_string).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let text = run_to_string(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
        assert!(run_to_string(&[]).unwrap().contains("distperm"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run_to_string(&["frobnicate"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn theory_reports_table1_value() {
        let text = run_to_string(&["theory", "--d", "3", "--k", "5"]).unwrap();
        assert!(text.contains("96"), "{text}");
        assert!(text.contains("120"), "k! missing: {text}");
    }

    #[test]
    fn table1_matches_paper_corner() {
        let text = run_to_string(&["table1"]).unwrap();
        assert!(text.contains("439084800"), "{text}");
    }

    #[test]
    fn table1_extended_goes_past_u128() {
        // k = 40, d = 39 ⇒ 40! ≈ 8.16·10⁴⁷ — needs the big path.
        let text = run_to_string(&["table1", "--dmax", "39", "--kmax", "40"]).unwrap();
        assert!(text.contains("815915283247897734345611269596115894272000000000"), "{text}");
    }

    #[test]
    fn typo_option_is_rejected() {
        let err = run_to_string(&["theory", "--d", "3", "--kk", "5"]).unwrap_err();
        assert!(err.to_string().contains("--kk") || err.to_string().contains("--k"), "{err}");
    }

    fn temp_vectors_file(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dp_cli_lib_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("db.vec");
        let data = dp_datasets::uniform_unit_cube(1500, 2, 42);
        dp_datasets::sisap_io::write_vectors_file(&path, 2, &data).expect("write");
        path
    }

    #[test]
    fn count_respects_euclidean_bound_end_to_end() {
        let path = temp_vectors_file("count");
        let text = run_to_string(&[
            "count",
            "--vectors",
            path.to_str().unwrap(),
            "--k",
            "5",
            "--threads",
            "1",
        ])
        .unwrap();
        let distinct: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("distinct distance permutations: "))
            .expect("count line")
            .parse()
            .expect("numeric");
        assert!(distinct <= 46, "N_2,2(5) violated: {distinct}");
        assert!(text.contains("min Euclidean dimension"), "{text}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn count_rejects_k_sites_disagreement_and_bad_prefix() {
        let path = temp_vectors_file("reject");
        let f = path.to_str().unwrap();
        let err =
            run_to_string(&["count", "--vectors", f, "--k", "3", "--sites", "0,1"]).unwrap_err();
        assert!(err.to_string().contains("disagrees"), "{err}");
        let err =
            run_to_string(&["count", "--vectors", f, "--k", "5", "--prefix-len", "9"]).unwrap_err();
        assert!(err.to_string().contains("prefix-len"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn survey_reports_storage_columns() {
        let path = temp_vectors_file("survey");
        let text = run_to_string(&[
            "survey",
            "--vectors",
            path.to_str().unwrap(),
            "--ks",
            "4",
            "--rho-pairs",
            "500",
        ])
        .unwrap();
        assert!(text.contains("metric: L2"), "{text}");
        assert!(text.contains("database survey: n = 1500"), "{text}");
        assert!(text.contains("huffman"), "{text}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn generate_validates_kind_and_language() {
        let err = run_to_string(&["generate", "--kind", "blobs", "--n", "5", "--out", "/tmp/x"])
            .unwrap_err();
        assert!(err.to_string().contains("unknown kind"), "{err}");
        let err = run_to_string(&[
            "generate",
            "--kind",
            "dictionary",
            "--language",
            "klingon",
            "--n",
            "5",
            "--out",
            "/tmp/x",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("klingon"), "{err}");
    }
}
