//! `distperm theory --d D --k K`: every count and bound the paper proves
//! for one (dimension, sites) pair.

use crate::args::ParsedArgs;
use crate::CliError;
use dp_theory::bignum::{factorial_big, BigNat};
use dp_theory::euclidean::corollary8_leading_term;
use dp_theory::{
    l1_bound, linf_bound, min_dimension_for_all_permutations, n_euclidean_big, tree_bound,
};
use std::io::Write;

pub(crate) fn run(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let d = parsed.require_usize("d")? as u32;
    let k = parsed.require_usize("k")? as u32;
    parsed.finish()?;
    if k == 0 {
        return Err(CliError::usage("--k must be at least 1"));
    }

    let n = n_euclidean_big(d, k);
    let fact = factorial_big(k);
    writeln!(out, "space: {d}-dimensional real vectors, k = {k} sites")?;
    writeln!(out, "N_{{d,2}}(k)  exact Euclidean count (Thm 7):   {n}")?;
    writeln!(out, "k!           unrestricted permutations:       {fact}")?;
    let upper = BigNat::from(u64::from(k)).pow(2 * d);
    writeln!(out, "k^(2d)       Corollary 8 upper bound:         {upper}")?;
    if (1..=20).contains(&d) && k <= 1_000 {
        writeln!(
            out,
            "             Corollary 8 leading term:        {:.4e}",
            corollary8_leading_term(d, k)
        )?;
    }
    writeln!(out, "tree metric  C(k,2)+1 (Thm 4):                {}", tree_bound(k))?;
    match l1_bound(d, k) {
        Some(b) => writeln!(
            out,
            "L1           Theorem 9 bound (≤ k! shown):    {}",
            b.min(fact.to_u128().unwrap_or(u128::MAX))
        )?,
        None => writeln!(out, "L1           Theorem 9 bound:                 > 2^128")?,
    }
    match linf_bound(d, k) {
        Some(b) => writeln!(
            out,
            "Linf         Theorem 9 bound (≤ k! shown):    {}",
            b.min(fact.to_u128().unwrap_or(u128::MAX))
        )?,
        None => writeln!(out, "Linf         Theorem 9 bound:                 > 2^128")?,
    }
    let naive_bits = fact.ceil_log2();
    let codebook_bits = n.ceil_log2();
    writeln!(out, "storage      naive ⌈log2 k!⌉:                 {naive_bits} bits")?;
    writeln!(out, "storage      codebook ⌈log2 N⌉ (Θ(d log k)):  {codebook_bits} bits")?;
    writeln!(
        out,
        "Theorem 6    all k! permutations need d ≥:     {}",
        min_dimension_for_all_permutations(k)
    )?;
    Ok(())
}
