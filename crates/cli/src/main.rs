//! `distperm` binary entry point: parse argv, run, map errors to exit
//! codes (2 = usage, 1 = data/I/O).

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match dp_cli::run(&argv, &mut out) {
        Ok(()) => {
            out.flush().ok();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("distperm: {e}");
            if matches!(e, dp_cli::CliError::Usage(_)) {
                match argv.first().and_then(|c| dp_cli::usage_line(c)) {
                    Some(line) => eprintln!("usage: {line}"),
                    None => eprintln!("run `distperm help` for usage"),
                }
            }
            ExitCode::from(e.exit_code() as u8)
        }
    }
}
