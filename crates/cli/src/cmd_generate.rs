//! `distperm generate`: write a synthetic database in SISAP ASCII format.

use crate::args::ParsedArgs;
use crate::CliError;
use dp_datasets::sisap_io;
use dp_datasets::{colors, dictionary, genes, nasa, vectors};
use std::io::Write;

pub(crate) fn run(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let kind = parsed.require_str("kind")?.to_string();
    let n = parsed.require_usize("n")?;
    let path = parsed.require_str("out")?.to_string();
    let seed = parsed.u64_or("seed", 1)?;
    if n == 0 {
        return Err(CliError::usage("--n must be positive"));
    }

    match kind.as_str() {
        "uniform" | "gaussian" | "clustered" | "curve" => {
            let dim = parsed.require_usize("dim")?;
            if dim == 0 {
                return Err(CliError::usage("--dim must be positive"));
            }
            let data = match kind.as_str() {
                "uniform" => vectors::uniform_unit_cube(n, dim, seed),
                "gaussian" => {
                    let std_dev = parsed.f64_or("std", 1.0)?;
                    vectors::gaussian(n, dim, std_dev, seed)
                }
                "clustered" => {
                    let clusters = parsed.usize_or("clusters", 8)?;
                    let spread = parsed.f64_or("spread", 0.05)?;
                    vectors::clustered(n, dim, clusters, spread, seed)
                }
                _ => vectors::curve_embedded(n, dim, seed),
            };
            parsed.finish()?;
            sisap_io::write_vectors_file(&path, dim, &data)?;
            writeln!(out, "wrote {n} {dim}-dimensional `{kind}` vectors to {path}")?;
        }
        "colors" => {
            parsed.finish()?;
            let data = colors::generate_histograms(n, seed);
            let dim = data.first().map_or(0, Vec::len);
            sisap_io::write_vectors_file(&path, dim, &data)?;
            writeln!(out, "wrote {n} colour histograms ({dim}-dim) to {path}")?;
        }
        "nasa" => {
            parsed.finish()?;
            let data = nasa::generate_features(n, seed);
            let dim = data.first().map_or(0, Vec::len);
            sisap_io::write_vectors_file(&path, dim, &data)?;
            writeln!(out, "wrote {n} feature vectors ({dim}-dim) to {path}")?;
        }
        "dictionary" => {
            let language = parsed.str_or("language", "english").to_lowercase();
            parsed.finish()?;
            let profiles = dictionary::language_profiles();
            let profile = profiles
                .iter()
                .find(|p| p.name.eq_ignore_ascii_case(&language))
                .ok_or_else(|| {
                    let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
                    CliError::usage(format!(
                        "unknown language `{language}` (have: {})",
                        names.join(", ")
                    ))
                })?;
            let words = dictionary::generate_words(profile, n, seed);
            sisap_io::write_strings_file(&path, &words)?;
            writeln!(out, "wrote {n} `{language}` words to {path}")?;
        }
        "genes" => {
            let max_len = parsed.usize_or("maxlen", 40)?;
            parsed.finish()?;
            let frags = genes::generate_fragments(n, max_len, seed);
            sisap_io::write_strings_file(&path, &frags)?;
            writeln!(out, "wrote {n} gene fragments (≤{max_len} bases) to {path}")?;
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown kind `{other}` (want uniform, gaussian, clustered, curve, colors, nasa, dictionary, genes)"
            )));
        }
    }
    Ok(())
}
