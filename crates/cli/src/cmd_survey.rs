//! `distperm survey`: the full §5-style report for a database file.

use crate::args::ParsedArgs;
use crate::data::{self, Database, StringMetricSpec, VectorMetricSpec};
use crate::CliError;
use dp_core::dimension::ReferenceProfile;
use dp_core::{survey_database, survey_database_flat_sharded, CountEngine, SurveyConfig};
use dp_metric::{Hamming, LInf, Levenshtein, Lp, Metric, PrefixDistance, L1, L2};
use dp_permutation::MAX_K;
use std::io::Write;

fn survey<P, M>(metric: &M, data: &[P], cfg: &SurveyConfig) -> dp_core::DatabaseSurvey
where
    P: Clone,
    M: Metric<P>,
{
    survey_database(metric, data, cfg)
}

/// One line naming the counting engine each surveyed k runs on, with
/// consecutive same-engine ks grouped:
/// `packed-u64 (k = 4, 8, 12); packed-u128 (k = 16)`.
fn engine_line(ks: &[usize]) -> String {
    let mut groups: Vec<(&'static str, Vec<usize>)> = Vec::new();
    for &k in ks {
        let name = CountEngine::for_k(k).name();
        match groups.last_mut() {
            Some((n, list)) if *n == name => list.push(k),
            _ => groups.push((name, vec![k])),
        }
    }
    groups
        .iter()
        .map(|(name, list)| {
            let ks: Vec<String> = list.iter().map(usize::to_string).collect();
            format!("{name} (k = {})", ks.join(", "))
        })
        .collect::<Vec<_>>()
        .join("; ")
}

pub(crate) fn run(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let db = data::load(parsed)?;
    if db.len() < 2 {
        return Err(CliError::data("database has fewer than two elements"));
    }
    let ks = parsed.usize_list_or("ks", &[4, 8, 12])?;
    if ks.is_empty() {
        return Err(CliError::usage("--ks list is empty"));
    }
    for &k in &ks {
        if k == 0 || k > db.len() || k > MAX_K {
            return Err(CliError::usage(format!(
                "k = {k} out of range (database n = {}, max {MAX_K})",
                db.len()
            )));
        }
    }
    let seed = parsed.u64_or("seed", 0x5EED)?;
    let rho_pairs = parsed.usize_or("rho-pairs", 20_000)?.max(1);
    let with_reference = parsed.flag("with-reference");
    let threads = parsed.threads_or(1)?;
    let shard_rows = parsed.usize_or("shard-rows", 0)?;
    if shard_rows > 0 && matches!(&db, Database::Strings { .. }) {
        return Err(CliError::usage("--shard-rows applies only to vector databases"));
    }
    parsed.finish()?;

    let reference = if with_reference {
        // A reference curve at the largest surveyed k, sized to the data.
        let k = *ks.iter().max().expect("non-empty");
        let n = db.len().min(20_000);
        Some(ReferenceProfile::build(k, n, 8, 3, seed ^ 0x00C0_FFEE, 4))
    } else {
        None
    };
    let cfg = SurveyConfig { ks, seed, rho_pairs, reference };

    let report = match &db {
        Database::Vectors { data, metric, .. } => {
            // Vector databases are already stored flat, so the survey
            // runs straight through the batched engine — same report,
            // bit for bit, as the generic per-point path, whether the
            // per-k counting buffers in memory (--shard-rows 0) or
            // streams bounded shards (--shard-rows > 0).
            match metric {
                VectorMetricSpec::L1 => {
                    survey_database_flat_sharded(&L1, data, &cfg, threads, shard_rows)
                }
                VectorMetricSpec::L2 => {
                    survey_database_flat_sharded(&L2, data, &cfg, threads, shard_rows)
                }
                VectorMetricSpec::LInf => {
                    survey_database_flat_sharded(&LInf, data, &cfg, threads, shard_rows)
                }
                VectorMetricSpec::Lp(p) => {
                    survey_database_flat_sharded(&Lp::new(*p), data, &cfg, threads, shard_rows)
                }
            }
        }
        Database::Strings { data, metric } => match metric {
            StringMetricSpec::Levenshtein => survey(&Levenshtein, data, &cfg),
            StringMetricSpec::Hamming => survey(&Hamming, data, &cfg),
            StringMetricSpec::Prefix => survey(&PrefixDistance, data, &cfg),
        },
    };
    writeln!(out, "metric: {}", db.metric_name())?;
    match &db {
        Database::Vectors { .. } => {
            writeln!(out, "counting engines: {}", engine_line(&cfg.ks))?;
        }
        Database::Strings { .. } => writeln!(out, "counting engine: generic")?,
    }
    write!(out, "{report}")?;
    Ok(())
}
