//! `distperm build` — build a flatperm index once and persist it.
//!
//! The command is the write half of the build-once/serve-many flow:
//! build a [`dp_index::FlatDistPermIndex`] over a vector database (the
//! same `PivotSelection::MaxMin` default the `search` and `serve`
//! flatperm paths use) and save it as a `dp-store` container, so later
//! `distperm search --load` / `distperm serve --load` runs skip the k·n
//! distance computations of a rebuild and answer **bit-identically** to
//! building in-process.
//!
//! Output is deliberately free of timing lines: two deterministic lines
//! describing the index and the file, so end-to-end tests can pin it.

use crate::args::ParsedArgs;
use crate::data::{self, Database, VectorMetricSpec};
use crate::CliError;
use dp_datasets::VectorSet;
use dp_index::{FlatDistPermIndex, PivotSelection};
use dp_metric::{LInf, Lp, L1, L2};
use dp_permutation::MAX_K;
use dp_store::{StoreMetric, FORMAT_VERSION};
use std::io::Write;
use std::path::Path;

/// Runs `distperm build`.
pub fn run(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let db = data::load(parsed)?;
    let out_path = parsed.require_str("out")?.to_string();
    let threads = parsed.threads_or(4)?;
    let k_arg = match parsed.str_opt("k") {
        None => None,
        Some(s) => Some(
            s.parse::<usize>().map_err(|e| CliError::usage(format!("bad value for --k: {e}")))?,
        ),
    };
    let sites = data::parse_sites(parsed, db.len())?;
    parsed.finish()?;

    let k = match (&sites, k_arg) {
        (Some(ids), Some(k)) if ids.len() != k => {
            return Err(CliError::usage(format!(
                "--k {k} disagrees with the {} explicit --sites",
                ids.len()
            )));
        }
        (Some(ids), _) => ids.len(),
        (None, Some(k)) => k,
        (None, None) => return Err(CliError::usage("missing site count: --k <sites> or --sites")),
    };
    if k == 0 {
        return Err(CliError::usage("--k must be at least 1"));
    }
    if k > MAX_K {
        return Err(CliError::usage(format!("--k must be at most {MAX_K}, got {k}")));
    }
    if k > db.len() {
        return Err(CliError::usage(format!("build asks for {k} sites from {} points", db.len())));
    }

    match db {
        Database::Vectors { data, metric, .. } => match metric {
            VectorMetricSpec::L1 => build_and_save(L1, data, sites, k, threads, &out_path, out),
            VectorMetricSpec::L2 => build_and_save(L2, data, sites, k, threads, &out_path, out),
            VectorMetricSpec::LInf => build_and_save(LInf, data, sites, k, threads, &out_path, out),
            VectorMetricSpec::Lp(p) => {
                build_and_save(Lp::new(p), data, sites, k, threads, &out_path, out)
            }
        },
        Database::Strings { .. } => Err(CliError::usage(
            "build persists vector databases only; string indexes rebuild quickly in-process",
        )),
    }
}

fn build_and_save<M: StoreMetric + Sync>(
    metric: M,
    data: VectorSet,
    sites: Option<Vec<usize>>,
    k: usize,
    threads: usize,
    out_path: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let index = match sites {
        Some(ids) => FlatDistPermIndex::build_with_sites(metric, data, ids, threads),
        None => FlatDistPermIndex::build(metric, data, k, PivotSelection::MaxMin, threads),
    };
    let bytes = dp_store::save_store(&index, Path::new(out_path))
        .map_err(|e| CliError::data(format!("{out_path}: {e}")))?;
    writeln!(
        out,
        "built flatperm:{} over n = {} (dim {}, metric {})",
        index.k(),
        index.len(),
        index.points().dim(),
        index.metric().metric_tag().name()
    )?;
    writeln!(out, "store: {out_path} ({bytes} bytes, format v{FORMAT_VERSION})")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dp_cli_build_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn write_db(dir: &std::path::Path, n: usize) -> std::path::PathBuf {
        let path = dir.join("db.vec");
        let data = dp_datasets::uniform_unit_cube(n, 3, 11);
        dp_datasets::sisap_io::write_vectors_file(&path, 3, &data).expect("write");
        path
    }

    fn run_to_string(argv: &[&str]) -> Result<String, CliError> {
        let argv: Vec<String> = argv.iter().map(std::string::ToString::to_string).collect();
        let mut out = Vec::new();
        run(&argv, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn build_writes_a_loadable_store() {
        let dir = temp_dir("ok");
        let db = write_db(&dir, 300);
        let store = dir.join("idx.dps");
        let text = run_to_string(&[
            "build",
            "--vectors",
            db.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--k",
            "6",
            "--threads",
            "1",
        ])
        .unwrap();
        assert!(text.contains("built flatperm:6 over n = 300 (dim 3, metric L2)"), "{text}");
        assert!(text.contains("format v1"), "{text}");
        let loaded = dp_store::load_store(&store).expect("loadable");
        assert_eq!((loaded.len(), loaded.k(), loaded.dim()), (300, 6, 3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_usage_errors() {
        let dir = temp_dir("usage");
        let db = write_db(&dir, 20);
        let f = db.to_str().unwrap();
        let store = dir.join("idx.dps");
        let s = store.to_str().unwrap();
        for (argv, needle) in [
            (vec!["build", "--vectors", f, "--out", s], "--k"),
            (vec!["build", "--vectors", f, "--out", s, "--k", "0"], "at least 1"),
            (vec!["build", "--vectors", f, "--out", s, "--k", "40"], "at most"),
            (vec!["build", "--vectors", f, "--out", s, "--k", "25"], "25 sites from 20"),
            (vec!["build", "--vectors", f, "--out", s, "--k", "3", "--sites", "0,1"], "disagrees"),
            (vec!["build", "--vectors", f, "--k", "3"], "--out"),
        ] {
            let err = run_to_string(&argv).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{argv:?}");
            assert!(err.to_string().contains(needle), "{argv:?}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_rejects_strings_and_reports_bad_paths() {
        let dir = temp_dir("neg");
        let txt = dir.join("db.txt");
        std::fs::write(&txt, "alpha\nbeta\ngamma\n").expect("write");
        let err = run_to_string(&[
            "build",
            "--strings",
            txt.to_str().unwrap(),
            "--out",
            dir.join("x.dps").to_str().unwrap(),
            "--k",
            "2",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("vector databases only"), "{err}");

        let db = write_db(&dir, 30);
        let err = run_to_string(&[
            "build",
            "--vectors",
            db.to_str().unwrap(),
            "--out",
            dir.join("no/such/dir/x.dps").to_str().unwrap(),
            "--k",
            "3",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 1, "missing directory is a data error: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_sites_round_trip() {
        let dir = temp_dir("sites");
        let db = write_db(&dir, 50);
        let store = dir.join("idx.dps");
        let text = run_to_string(&[
            "build",
            "--vectors",
            db.to_str().unwrap(),
            "--out",
            store.to_str().unwrap(),
            "--sites",
            "3,1,4",
            "--metric",
            "l1",
            "--threads",
            "1",
        ])
        .unwrap();
        assert!(text.contains("built flatperm:3 over n = 50 (dim 3, metric L1)"), "{text}");
        let loaded = dp_store::load_store(&store).expect("loadable");
        assert_eq!(loaded.metric_tag(), dp_store::MetricTag::L1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
