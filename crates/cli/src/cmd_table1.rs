//! `distperm table1`: the paper's Table 1, to any size.

use crate::args::ParsedArgs;
use crate::CliError;
use dp_theory::table1_extended;
use std::io::Write;

pub(crate) fn run(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let dmax = parsed.usize_or("dmax", 10)? as u32;
    let kmax = parsed.usize_or("kmax", 12)? as u32;
    parsed.finish()?;
    if dmax < 1 {
        return Err(CliError::usage("--dmax must be at least 1"));
    }
    if kmax < 2 {
        return Err(CliError::usage("--kmax must be at least 2"));
    }
    if dmax > 64 || kmax > 256 {
        return Err(CliError::usage("table larger than 64×256 is surely a mistake"));
    }

    let table = table1_extended(dmax, kmax);
    let rendered: Vec<Vec<String>> = table
        .iter()
        .map(|row| row.iter().map(std::string::ToString::to_string).collect())
        .collect();
    // One width per k column, sized to its largest entry or header.
    let ks: Vec<u32> = (2..=kmax).collect();
    let widths: Vec<usize> = ks
        .iter()
        .enumerate()
        .map(|(j, k)| {
            rendered.iter().map(|row| row[j].len()).max().unwrap_or(0).max(k.to_string().len()) + 2
        })
        .collect();

    writeln!(out, "N_{{d,2}}(k): rows d=1..{dmax}, columns k=2..{kmax} (Theorem 7, exact)")?;
    write!(out, "  d\\k")?;
    for (j, k) in ks.iter().enumerate() {
        write!(out, "{k:>width$}", width = widths[j])?;
    }
    writeln!(out)?;
    for (i, row) in rendered.iter().enumerate() {
        write!(out, "{:>5}", i + 1)?;
        for (j, cell) in row.iter().enumerate() {
            write!(out, "{cell:>width$}", width = widths[j])?;
        }
        writeln!(out)?;
    }
    Ok(())
}
