//! `distperm search` — build any index by spec and serve a query file.
//!
//! The serving pipeline is the crate's unified query API end to end:
//! [`dp_index::IndexSpec`] parses `--index`, [`dp_index::AnyIndex`] (or
//! [`dp_index::FlatDistPermIndex`] for `flatperm`, [`dp_index::BkTree`]
//! for `bktree` on strings) builds the structure, and
//! [`dp_index::serve::query_batch_parallel_approx`] fans the query file
//! out over scoped worker threads — one searcher session per worker,
//! deterministic output order.  Every answer carries its native
//! metric-evaluation count, which the summary aggregates.
//!
//! `--load <store>` replaces the build: the index (database, metric and
//! all) comes out of a `dp-store` container written by `distperm build`,
//! and because loading is bit-exact the answers are identical to
//! building in-process.  `--load` excludes `--vectors`, `--strings`,
//! `--metric` and `--index` — the store already records all of them.

use crate::args::ParsedArgs;
use crate::data::{self, Database, StringMetricSpec, VectorMetricSpec};
use crate::CliError;
use dp_datasets::{sisap_io, VectorSet};
use dp_index::serve::{
    query_batch_parallel, query_batch_parallel_approx, total_stats, ApproxRequest, Request,
    Response,
};
use dp_index::{
    AnyIndex, ApproxSearcher, BkTree, FlatDistPermIndex, IndexSpec, PivotSelection, ProximityIndex,
};
use dp_metric::{
    Distance, F64Dist, Hamming, LInf, Levenshtein, Lp, Metric, PrefixDistance, L1, L2,
};
use dp_store::StoredIndex;
use std::borrow::Borrow;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// What the batch asks of every query.
enum Mode {
    Knn(usize),
    Range(f64),
}

struct SearchOptions {
    mode: Mode,
    frac: f64,
    threads: usize,
    quiet: bool,
}

fn parse_options(parsed: &ParsedArgs) -> Result<SearchOptions, CliError> {
    let radius = parsed.str_opt("radius").map(str::to_string);
    let knn = parsed.str_opt("knn").map(str::to_string);
    let mode = match (knn, radius) {
        (Some(_), Some(_)) => {
            return Err(CliError::usage("give either --knn or --radius, not both"))
        }
        (None, Some(r)) => {
            let r: f64 =
                r.parse().map_err(|e| CliError::usage(format!("bad value for --radius: {e}")))?;
            if r.is_nan() || r < 0.0 {
                return Err(CliError::usage(format!("--radius must be >= 0, got {r}")));
            }
            Mode::Range(r)
        }
        (Some(k), None) => {
            let k: usize =
                k.parse().map_err(|e| CliError::usage(format!("bad value for --knn: {e}")))?;
            if k == 0 {
                return Err(CliError::usage("--knn must be at least 1"));
            }
            Mode::Knn(k)
        }
        (None, None) => Mode::Knn(1),
    };
    let frac = parsed.f64_or("frac", 1.0)?;
    if !(0.0..=1.0).contains(&frac) {
        return Err(CliError::usage(format!("--frac must be in [0,1], got {frac}")));
    }
    let threads = parsed.threads_or(4)?;
    Ok(SearchOptions { mode, frac, threads, quiet: parsed.flag("quiet") })
}

/// Runs `distperm search`.
pub fn run(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    if parsed.str_opt("load").is_some() {
        return run_loaded(parsed, out);
    }
    let spec = IndexSpec::parse(parsed.require_str("index")?)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let db = data::load(parsed)?;
    let queries_path = parsed.require_str("queries")?.to_string();
    let options = parse_options(parsed)?;
    parsed.finish()?;

    match db {
        Database::Vectors { dim, data, metric } => {
            let queries = read_queries(&queries_path, dim)?;
            match metric {
                VectorMetricSpec::L1 => serve_vectors(L1, spec, data, queries, &options, out),
                VectorMetricSpec::L2 => serve_vectors(L2, spec, data, queries, &options, out),
                VectorMetricSpec::LInf => serve_vectors(LInf, spec, data, queries, &options, out),
                VectorMetricSpec::Lp(p) => {
                    serve_vectors(Lp::new(p), spec, data, queries, &options, out)
                }
            }
        }
        Database::Strings { data, metric } => {
            let queries = sisap_io::read_strings_file(&queries_path)
                .map_err(|e| CliError::data(format!("{queries_path}: {e}")))?;
            match metric {
                StringMetricSpec::Levenshtein => {
                    serve_strings(Levenshtein, spec, data, queries, &options, out)
                }
                StringMetricSpec::Hamming => {
                    serve_strings(Hamming, spec, data, queries, &options, out)
                }
                StringMetricSpec::Prefix => {
                    serve_strings(PrefixDistance, spec, data, queries, &options, out)
                }
            }
        }
    }
}

/// The `--load` fast path: everything but the queries comes from the
/// store, so the conflicting build-path options are usage errors.
fn run_loaded(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let store_path = parsed.require_str("load")?.to_string();
    for conflicting in ["vectors", "strings", "metric", "index"] {
        if parsed.str_opt(conflicting).is_some() {
            return Err(CliError::usage(format!(
                "--load reads the database, metric and index from the store; drop --{conflicting}"
            )));
        }
    }
    let queries_path = parsed.require_str("queries")?.to_string();
    let options = parse_options(parsed)?;
    parsed.finish()?;

    let load_start = Instant::now();
    let stored = dp_store::load_store(Path::new(&store_path))
        .map_err(|e| CliError::data(format!("{store_path}: {e}")))?;
    let queries = read_queries(&queries_path, stored.dim())?;
    let name = stored.spec_name();
    match stored {
        StoredIndex::L1(index) => serve_loaded(&index, &name, queries, &options, load_start, out),
        StoredIndex::L2(index) => serve_loaded(&index, &name, queries, &options, load_start, out),
        StoredIndex::L2Squared(index) => {
            serve_loaded(&index, &name, queries, &options, load_start, out)
        }
        StoredIndex::LInf(index) => serve_loaded(&index, &name, queries, &options, load_start, out),
        StoredIndex::Lp(index) => serve_loaded(&index, &name, queries, &options, load_start, out),
    }
}

fn read_queries(queries_path: &str, dim: usize) -> Result<VectorSet, CliError> {
    let queries = sisap_io::read_vectors_file_flat(queries_path)
        .map_err(|e| CliError::data(format!("{queries_path}: {e}")))?;
    if queries.dim() != dim {
        return Err(CliError::data(format!(
            "query dimension {} disagrees with database dimension {dim}",
            queries.dim()
        )));
    }
    Ok(queries)
}

fn serve_loaded<M: dp_metric::BatchDistance + Sync>(
    index: &FlatDistPermIndex<M>,
    name: &str,
    queries: VectorSet,
    options: &SearchOptions,
    load_start: Instant,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let request = request_for(&options.mode, options.frac, |r| Ok(F64Dist::new(r)))?;
    let rows: Vec<&[f64]> = queries.rows().collect();
    serve_batch::<[f64], _, _>(
        index,
        &rows,
        request,
        name,
        Some(index.ordering_engine()),
        true,
        options,
        load_start,
        out,
    )
}

fn request_for<D: Distance>(
    mode: &Mode,
    frac: f64,
    radius: impl FnOnce(f64) -> Result<D, CliError>,
) -> Result<ApproxRequest<D>, CliError> {
    Ok(match *mode {
        Mode::Knn(k) => ApproxRequest::Knn { k, frac },
        Mode::Range(r) => ApproxRequest::Range { radius: radius(r)?, frac },
    })
}

fn serve_vectors<M>(
    metric: M,
    spec: IndexSpec,
    data: VectorSet,
    queries: VectorSet,
    options: &SearchOptions,
    out: &mut dyn Write,
) -> Result<(), CliError>
where
    M: Metric<Vec<f64>, Dist = F64Dist> + dp_metric::BatchDistance + Copy + Sync,
{
    let request = request_for(&options.mode, options.frac, |r| Ok(F64Dist::new(r)))?;
    let name = spec.name();
    let budget = spec.supports_budget();
    if let IndexSpec::FlatDistPerm { k } = spec {
        // Same graceful pivot-count check AnyIndex::build performs for
        // every other spec — a usage error, not a library panic.
        if k > data.len() {
            return Err(CliError::usage(format!(
                "index spec `{name}` asks for {k} pivots from {} points",
                data.len()
            )));
        }
        let build_start = Instant::now();
        let index =
            FlatDistPermIndex::build(metric, data, k, PivotSelection::MaxMin, options.threads);
        let rows: Vec<&[f64]> = queries.rows().collect();
        return serve_batch::<[f64], _, _>(
            &index,
            &rows,
            request,
            &name,
            Some(index.ordering_engine()),
            budget,
            options,
            build_start,
            out,
        );
    }
    let build_start = Instant::now();
    let index = AnyIndex::build(spec, metric, data.to_nested(), PivotSelection::MaxMin)
        .map_err(|e| CliError::usage(e.to_string()))?;
    let nested = queries.to_nested();
    serve_batch(&index, &nested, request, &name, None, budget, options, build_start, out)
}

fn serve_strings<M>(
    metric: M,
    spec: IndexSpec,
    data: Vec<String>,
    queries: Vec<String>,
    options: &SearchOptions,
    out: &mut dyn Write,
) -> Result<(), CliError>
where
    M: Metric<String, Dist = u32> + Copy + Sync,
{
    let int_radius = |r: f64| {
        if r.fract() != 0.0 {
            return Err(CliError::usage(format!(
                "--radius must be an integer for string metrics, got {r}"
            )));
        }
        Ok(r as u32)
    };
    let request = request_for(&options.mode, options.frac, int_radius)?;
    let name = spec.name();
    let budget = spec.supports_budget();
    if spec == IndexSpec::BkTree {
        let build_start = Instant::now();
        let index = BkTree::build(metric, data);
        // The BK-tree is exact-only: serve through the exact request.
        let exact = match request {
            ApproxRequest::Knn { k, .. } => Request::Knn { k },
            ApproxRequest::Range { radius, .. } => Request::Range { radius },
        };
        return serve_batch_exact(
            &index,
            &queries,
            exact,
            &name,
            budget,
            options,
            build_start,
            out,
        );
    }
    let build_start = Instant::now();
    let index = AnyIndex::build(spec, metric, data, PivotSelection::MaxMin)
        .map_err(|e| CliError::usage(e.to_string()))?;
    serve_batch(&index, &queries, request, &name, None, budget, options, build_start, out)
}

#[allow(clippy::too_many_arguments)]
fn serve_batch<'i, P, Q, I>(
    index: &'i I,
    queries: &[Q],
    request: ApproxRequest<I::Dist>,
    name: &str,
    ordering_engine: Option<&'static str>,
    supports_budget: bool,
    options: &SearchOptions,
    build_start: Instant,
    out: &mut dyn Write,
) -> Result<(), CliError>
where
    P: ?Sized + Sync,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
    I::Searcher<'i>: ApproxSearcher<P>,
{
    let build_secs = build_start.elapsed().as_secs_f64();
    write_header(out, name, supports_budget, options, index.size(), queries.len())?;
    if let Some(engine) = ordering_engine {
        writeln!(out, "ordering engine: {engine}")?;
    }
    let serve_start = Instant::now();
    let responses = query_batch_parallel_approx(index, queries, request, options.threads);
    let serve_secs = serve_start.elapsed().as_secs_f64();
    write_report(out, options, &responses, queries.len(), build_secs, serve_secs)
}

/// Exact-only serving (the BK-tree path, which has no budget surface).
#[allow(clippy::too_many_arguments)]
fn serve_batch_exact<P, Q, I>(
    index: &I,
    queries: &[Q],
    request: Request<I::Dist>,
    name: &str,
    supports_budget: bool,
    options: &SearchOptions,
    build_start: Instant,
    out: &mut dyn Write,
) -> Result<(), CliError>
where
    P: ?Sized + Sync,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
{
    let build_secs = build_start.elapsed().as_secs_f64();
    write_header(out, name, supports_budget, options, index.size(), queries.len())?;
    let serve_start = Instant::now();
    let responses = query_batch_parallel(index, queries, request, options.threads);
    let serve_secs = serve_start.elapsed().as_secs_f64();
    write_report(out, options, &responses, queries.len(), build_secs, serve_secs)
}

fn write_header(
    out: &mut dyn Write,
    name: &str,
    supports_budget: bool,
    options: &SearchOptions,
    n: usize,
    queries: usize,
) -> Result<(), CliError> {
    writeln!(
        out,
        "index {name} over n = {n} ({queries} queries, {} threads, budget frac = {})",
        options.threads, options.frac,
    )?;
    if options.frac < 1.0 && !supports_budget {
        writeln!(out, "note: `{name}` is an exact index; --frac has no effect")?;
    }
    Ok(())
}

fn write_report<D: Distance>(
    out: &mut dyn Write,
    options: &SearchOptions,
    responses: &[Response<D>],
    queries: usize,
    build_secs: f64,
    serve_secs: f64,
) -> Result<(), CliError> {
    if !options.quiet {
        for (i, (neighbors, _)) in responses.iter().enumerate() {
            write!(out, "query {i}:")?;
            for n in neighbors {
                write!(out, " {}:{}", n.id, format_dist(n.dist.to_f64()))?;
            }
            writeln!(out)?;
        }
    }

    let totals = total_stats(responses);
    let nq = queries.max(1) as f64;
    let hits: usize = responses.iter().map(|(n, _)| n.len()).sum();
    writeln!(out, "build: {:.3} s; serve: {:.3} s ({:.0} queries/s)", build_secs, serve_secs, {
        if serve_secs > 0.0 {
            queries as f64 / serve_secs
        } else {
            f64::INFINITY
        }
    })?;
    writeln!(
        out,
        "results: {hits} neighbours; metric evals: {} total, {:.1} per query",
        totals.metric_evals,
        totals.metric_evals as f64 / nq
    )?;
    Ok(())
}

fn format_dist(d: f64) -> String {
    if d == d.trunc() && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d:.6}")
    }
}
