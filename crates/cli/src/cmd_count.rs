//! `distperm count`: the paper's measurement on a database file.

use crate::args::ParsedArgs;
use crate::data::{self, Database, StringMetricSpec, VectorMetricSpec};
use crate::CliError;
use dp_core::dimension::min_euclidean_dimension;
use dp_core::{count_distinct_prefixes, PrefixKind};
use dp_core::{
    count_permutations_flat_sharded, count_permutations_parallel, CountEngine, CountReport,
};
use dp_datasets::vectors::choose_distinct_indices;
use dp_datasets::VectorSet;
use dp_metric::{
    BatchDistance, Hamming, LInf, Levenshtein, Lp, Metric, PrefixDistance, SliceRefMetric, L1, L2,
};
use dp_permutation::MAX_K;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

struct CountOutcome {
    report: CountReport,
    site_ids: Vec<usize>,
    prefix_distinct: Option<(usize, usize)>,
}

fn measure<P, M>(
    metric: &M,
    data: &[P],
    site_ids: Vec<usize>,
    threads: usize,
    prefix_len: Option<usize>,
) -> CountOutcome
where
    P: Clone + Sync,
    M: Metric<P> + Sync,
{
    let sites: Vec<P> = site_ids.iter().map(|&i| data[i].clone()).collect();
    let report = count_permutations_parallel(metric, &sites, data, threads);
    let prefix_distinct = prefix_len
        .map(|l| (l, count_distinct_prefixes(metric, &sites, data, l, PrefixKind::Ordered)));
    CountOutcome { report, site_ids, prefix_distinct }
}

/// Vector databases run through the flat batched engine (streaming
/// sharded when `shard_rows > 0` — identical report, bounded memory);
/// the optional prefix count reuses the generic per-point path over row
/// views.
fn measure_flat<M>(
    metric: &M,
    data: &VectorSet,
    site_ids: Vec<usize>,
    threads: usize,
    shard_rows: usize,
    prefix_len: Option<usize>,
) -> CountOutcome
where
    M: BatchDistance + Sync,
{
    let sites = data.gather(&site_ids);
    let report = count_permutations_flat_sharded(metric, &sites, data, threads, shard_rows);
    let prefix_distinct = prefix_len.map(|l| {
        // Borrow rows as slice views: no copy of the database.
        let rows: Vec<&[f64]> = data.rows().collect();
        let site_rows: Vec<&[f64]> = site_ids.iter().map(|&i| data.row(i)).collect();
        let adapter = SliceRefMetric(metric);
        (l, count_distinct_prefixes(&adapter, &site_rows, &rows, l, PrefixKind::Ordered))
    });
    CountOutcome { report, site_ids, prefix_distinct }
}

pub(crate) fn run(parsed: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let db = data::load(parsed)?;
    if db.len() < 2 {
        return Err(CliError::data("database has fewer than two elements"));
    }
    let explicit_sites = data::parse_sites(parsed, db.len())?;
    let k = match &explicit_sites {
        Some(ids) => {
            if let Some(klag) = parsed.str_opt("k") {
                if klag.parse::<usize>().ok() != Some(ids.len()) {
                    return Err(CliError::usage("--k disagrees with the --sites list length"));
                }
            }
            ids.len()
        }
        None => parsed.require_usize("k")?,
    };
    if k == 0 || k > db.len() || k > MAX_K {
        return Err(CliError::usage(format!(
            "k = {k} out of range (database n = {}, max {MAX_K})",
            db.len()
        )));
    }
    let seed = parsed.u64_or("seed", 0x5EED)?;
    let threads = parsed.threads_or(4)?;
    let shard_rows = parsed.usize_or("shard-rows", 0)?;
    let prefix_len = match parsed.str_opt("prefix-len") {
        None => None,
        Some(s) => {
            let l: usize =
                s.parse().map_err(|e| CliError::usage(format!("bad --prefix-len: {e}")))?;
            if l == 0 || l > k || l > 8 {
                return Err(CliError::usage(format!(
                    "--prefix-len must be in 1..=min(k, 8), got {l}"
                )));
            }
            Some(l)
        }
    };
    parsed.finish()?;

    let site_ids = match explicit_sites {
        Some(ids) => ids,
        None => {
            let mut rng = StdRng::seed_from_u64(seed);
            choose_distinct_indices(db.len(), k, &mut rng)
        }
    };

    let outcome = match &db {
        Database::Vectors { data, metric, .. } => match metric {
            VectorMetricSpec::L1 => {
                measure_flat(&L1, data, site_ids, threads, shard_rows, prefix_len)
            }
            VectorMetricSpec::L2 => {
                measure_flat(&L2, data, site_ids, threads, shard_rows, prefix_len)
            }
            VectorMetricSpec::LInf => {
                measure_flat(&LInf, data, site_ids, threads, shard_rows, prefix_len)
            }
            VectorMetricSpec::Lp(p) => {
                measure_flat(&Lp::new(*p), data, site_ids, threads, shard_rows, prefix_len)
            }
        },
        Database::Strings { .. } if shard_rows > 0 => {
            return Err(CliError::usage("--shard-rows applies only to vector databases"));
        }
        Database::Strings { data, metric } => match metric {
            StringMetricSpec::Levenshtein => {
                measure(&Levenshtein, data, site_ids, threads, prefix_len)
            }
            StringMetricSpec::Hamming => measure(&Hamming, data, site_ids, threads, prefix_len),
            StringMetricSpec::Prefix => {
                measure(&PrefixDistance, data, site_ids, threads, prefix_len)
            }
        },
    };

    let r = &outcome.report;
    writeln!(out, "database: n = {}, metric = {}", db.len(), db.metric_name())?;
    let ids: Vec<String> = outcome.site_ids.iter().map(usize::to_string).collect();
    writeln!(out, "sites (k = {k}): [{}]", ids.join(", "))?;
    // Name the engine so a k outside a packed range is visible instead
    // of a silent fallback.
    let engine = match &db {
        Database::Vectors { .. } => CountEngine::for_k(k).name(),
        Database::Strings { .. } => "generic",
    };
    writeln!(out, "counting engine: {engine}")?;
    writeln!(out, "distinct distance permutations: {}", r.distinct)?;
    writeln!(out, "mean occupancy: {:.2} elements/permutation", r.mean_occupancy)?;
    if let Some((l, distinct)) = outcome.prefix_distinct {
        writeln!(out, "distinct ordered prefixes (l = {l}): {distinct}")?;
    }
    if k <= 20 {
        let fact: u128 = (1..=k as u128).product();
        writeln!(out, "k! ceiling: {fact}")?;
    }
    if let Database::Vectors { dim, metric, .. } = &db {
        if *metric == VectorMetricSpec::L2 {
            if let Some(max) = dp_theory::n_euclidean(*dim as u32, k as u32) {
                writeln!(out, "Euclidean maximum N_{{{dim},2}}({k}): {max}")?;
            }
        }
        writeln!(
            out,
            "min Euclidean dimension admitting this count: {}",
            min_euclidean_dimension(r.distinct, k as u32)
        )?;
    }
    Ok(())
}
