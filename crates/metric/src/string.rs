//! String metrics.
//!
//! * [`Levenshtein`] — unit-cost edit distance; the metric of the SISAP
//!   dictionary databases (Table 2's Dutch…Spanish rows) and of the
//!   `listeria` gene-fragment database.
//! * [`PrefixDistance`] — the paper's Definition 3: the minimal number of
//!   single-letter edits at the *right-hand end*, i.e.
//!   |x| + |y| − 2·|lcp(x, y)|.  This is the canonical practical tree
//!   metric (Fig. 5): strings are vertices of the infinite trie and the
//!   distance is the path length between them.
//! * [`Hamming`] — per-position mismatch count, extended to unequal lengths
//!   by counting the length difference as mismatches (so it remains a
//!   metric on all strings).

use crate::Metric;

/// Unit-cost Levenshtein edit distance (insert / delete / substitute).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Levenshtein;

/// The paper's prefix distance (Definition 3): edits add or remove one
/// letter at the right-hand end, so
/// `d(x, y) = |x| + |y| − 2 · |longest common prefix(x, y)|`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixDistance;

/// Hamming distance; unequal-length inputs contribute their length
/// difference, which preserves the metric axioms on the space of all
/// byte strings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hamming;

/// Longest common prefix length of two byte strings.
#[inline]
pub fn lcp_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

impl Metric<[u8]> for Levenshtein {
    type Dist = u32;

    fn distance(&self, a: &[u8], b: &[u8]) -> u32 {
        // Standard two-row DP; O(|a|·|b|) time, O(min) space.
        let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        if short.is_empty() {
            return long.len() as u32;
        }
        // Strip the common prefix and suffix: they never change the result
        // and dictionary workloads are full of shared stems/endings.
        let pre = lcp_len(short, long);
        let (short, long) = (&short[pre..], &long[pre..]);
        let suf = short.iter().rev().zip(long.iter().rev()).take_while(|(x, y)| x == y).count();
        let short = &short[..short.len() - suf];
        let long = &long[..long.len() - suf];
        if short.is_empty() {
            return long.len() as u32;
        }

        let mut prev: Vec<u32> = (0..=short.len() as u32).collect();
        let mut cur = vec![0u32; short.len() + 1];
        for (i, &lc) in long.iter().enumerate() {
            cur[0] = i as u32 + 1;
            for (j, &sc) in short.iter().enumerate() {
                let sub = prev[j] + u32::from(lc != sc);
                let del = prev[j + 1] + 1;
                let ins = cur[j] + 1;
                cur[j + 1] = sub.min(del).min(ins);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[short.len()]
    }
}

impl Metric<[u8]> for PrefixDistance {
    type Dist = u32;

    #[inline]
    fn distance(&self, a: &[u8], b: &[u8]) -> u32 {
        let lcp = lcp_len(a, b);
        (a.len() + b.len() - 2 * lcp) as u32
    }
}

impl Metric<[u8]> for Hamming {
    type Dist = u32;

    #[inline]
    fn distance(&self, a: &[u8], b: &[u8]) -> u32 {
        let mismatches = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
        (mismatches + a.len().abs_diff(b.len())) as u32
    }
}

macro_rules! impl_for_string_like {
    ($($m:ty),*) => {$(
        impl Metric<str> for $m {
            type Dist = u32;

            #[inline]
            fn distance(&self, a: &str, b: &str) -> u32 {
                Metric::<[u8]>::distance(self, a.as_bytes(), b.as_bytes())
            }
        }

        impl Metric<String> for $m {
            type Dist = u32;

            #[inline]
            fn distance(&self, a: &String, b: &String) -> u32 {
                Metric::<[u8]>::distance(self, a.as_bytes(), b.as_bytes())
            }
        }

        impl Metric<Vec<u8>> for $m {
            type Dist = u32;

            #[inline]
            fn distance(&self, a: &Vec<u8>, b: &Vec<u8>) -> u32 {
                Metric::<[u8]>::distance(self, a.as_slice(), b.as_slice())
            }
        }
    )*};
}

impl_for_string_like!(Levenshtein, PrefixDistance, Hamming);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_classics() {
        assert_eq!(Levenshtein.distance("kitten", "sitting"), 3);
        assert_eq!(Levenshtein.distance("flaw", "lawn"), 2);
        assert_eq!(Levenshtein.distance("", "abc"), 3);
        assert_eq!(Levenshtein.distance("abc", ""), 3);
        assert_eq!(Levenshtein.distance("abc", "abc"), 0);
        assert_eq!(Levenshtein.distance("a", "b"), 1);
    }

    #[test]
    fn levenshtein_prefix_suffix_stripping_is_transparent() {
        // Shared stems/endings (stripped internally) must not change results.
        assert_eq!(Levenshtein.distance("prefixkittensuffix", "prefixsittingsuffix"), 3);
        assert_eq!(Levenshtein.distance("xyz", "xz"), 1);
        assert_eq!(Levenshtein.distance("aaaa", "aa"), 2);
    }

    #[test]
    fn levenshtein_symmetric() {
        let pairs = [("abcdef", "azced"), ("", "x"), ("same", "same"), ("ab", "ba")];
        for (a, b) in pairs {
            assert_eq!(Levenshtein.distance(a, b), Levenshtein.distance(b, a));
        }
    }

    #[test]
    fn prefix_distance_definition3() {
        // Fig. 5 example style: distance = sum of lengths - 2 * lcp.
        assert_eq!(PrefixDistance.distance("abc", "abd"), 2);
        assert_eq!(PrefixDistance.distance("abc", "ab"), 1);
        assert_eq!(PrefixDistance.distance("abc", ""), 3);
        assert_eq!(PrefixDistance.distance("abc", "xyz"), 6);
        assert_eq!(PrefixDistance.distance("abc", "abc"), 0);
        assert_eq!(PrefixDistance.distance("ab", "abxy"), 2);
    }

    #[test]
    fn prefix_distance_is_tree_path_length() {
        // Moving from "qa" to "qb" in the trie: remove 'a' (to "q"), add 'b'.
        assert_eq!(PrefixDistance.distance("qa", "qb"), 2);
        // "q" -> "qabc": add three letters.
        assert_eq!(PrefixDistance.distance("q", "qabc"), 3);
    }

    #[test]
    fn hamming_equal_and_unequal_lengths() {
        assert_eq!(Hamming.distance("karolin", "kathrin"), 3);
        assert_eq!(Hamming.distance("abc", "abcd"), 1);
        assert_eq!(Hamming.distance("", "abcd"), 4);
        assert_eq!(Hamming.distance("abc", "abc"), 0);
    }

    #[test]
    fn lcp_len_basics() {
        assert_eq!(lcp_len(b"abc", b"abd"), 2);
        assert_eq!(lcp_len(b"", b"abd"), 0);
        assert_eq!(lcp_len(b"same", b"same"), 4);
    }

    #[test]
    fn string_and_vec_impls_delegate() {
        let a = String::from("kitten");
        let b = String::from("sitting");
        assert_eq!(Metric::<String>::distance(&Levenshtein, &a, &b), 3);
        let av = a.into_bytes();
        let bv = b.into_bytes();
        assert_eq!(Metric::<Vec<u8>>::distance(&Levenshtein, &av, &bv), 3);
    }

    #[test]
    fn levenshtein_never_exceeds_prefix_distance() {
        // Prefix edits are a restricted edit model, so lev <= prefix always.
        let words = ["", "a", "ab", "abc", "abd", "xbc", "hello", "help", "yelp"];
        for x in words {
            for y in words {
                assert!(
                    Levenshtein.distance(x, y) <= PrefixDistance.distance(x, y),
                    "lev > prefix for ({x}, {y})"
                );
            }
        }
    }
}
