//! # dp-metric — metric-space substrate
//!
//! This crate provides the metric spaces that the paper *Counting distance
//! permutations* (Skala, SISAP'08 / JDA 2009) studies or evaluates on:
//!
//! * **Minkowski vector metrics** L1, L2, L∞ and general Lp over real
//!   vectors ([`vector`]) — the spaces of Theorems 6, 7 and 9 and of the
//!   Table 3 experiments;
//! * **string metrics** — Levenshtein edit distance (the SISAP dictionary
//!   databases of Table 2), Hamming distance, and the paper's *prefix
//!   distance* of Definition 3 ([`string`]);
//! * **sparse-vector angular/cosine distance** — the `long`/`short`
//!   document databases of Table 2 ([`sparse`]);
//! * **weighted tree metrics** of Definition 2 ([`tree`]) — the spaces of
//!   Theorem 4 and Corollary 5 — with O(log n) distance queries;
//! * metric **axiom checking** ([`axioms`]) and Buneman's **four-point
//!   condition** ([`fourpoint`]) used throughout the test suites.
//!
//! The central abstractions are [`Metric`] and [`Distance`].  Distances are
//! totally ordered (`Ord`) so that distance permutations — which sort sites
//! by distance and break ties by site index — are well defined without any
//! floating-point `PartialOrd` pitfalls.  Floating-point distances are
//! wrapped in [`F64Dist`], which imposes the IEEE total order after
//! normalising `-0.0` and rejecting NaN.

#![forbid(unsafe_code)]

pub mod axioms;
pub mod batch;
pub mod dist;
pub mod fourpoint;
pub mod reconstruct;
pub mod sparse;
pub mod string;
pub mod tree;
pub mod vector;

pub use batch::{BatchDistance, TransposedSites, STRIP_POINTS};
pub use dist::{Distance, F64Dist};
pub use reconstruct::{reconstruct_tree, ReconstructedTree};
pub use sparse::{CosineDistance, SparseVec};
pub use string::{Hamming, Levenshtein, PrefixDistance};
pub use tree::{Tree, TreeMetric};
pub use vector::{L2Squared, LInf, Lp, SliceRefMetric, L1, L2};

/// A metric (distance function) over points of type `P`.
///
/// Implementations must satisfy the metric axioms on their intended domain:
/// non-negativity, identity of indiscernibles, symmetry and the triangle
/// inequality.  [`axioms::check_metric`] verifies these on samples and is
/// used by this workspace's property tests.
///
/// The distance type is totally ordered ([`Distance`]), which makes the
/// paper's distance-permutation definition (sort sites by distance, break
/// ties by smaller site index) deterministic.
pub trait Metric<P: ?Sized> {
    /// The totally ordered distance value produced by this metric.
    type Dist: Distance;

    /// Distance between `a` and `b`.
    fn distance(&self, a: &P, b: &P) -> Self::Dist;
}

impl<M: Metric<P>, P: ?Sized> Metric<P> for &M {
    type Dist = M::Dist;

    #[inline]
    fn distance(&self, a: &P, b: &P) -> Self::Dist {
        (**self).distance(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_impl_for_reference_delegates() {
        let m = L1;
        let r = &m;
        let a = [0.0, 0.0];
        let b = [1.0, 2.0];
        assert_eq!(Metric::distance(&r, &a[..], &b[..]), m.distance(&a[..], &b[..]));
    }
}
