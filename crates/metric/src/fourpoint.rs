//! Buneman's four-point condition.
//!
//! A metric embeds in a (weighted) tree iff for every four points
//! x, y, z, t:
//!
//! ```text
//! d(x,y) + d(z,t) <= max( d(x,z) + d(y,t),  d(x,t) + d(y,z) )
//! ```
//!
//! Section 3 of the paper cites this as the alternative characterisation of
//! tree metrics; the workspace uses it to certify that the tree substrate
//! really produces tree metrics and that ≥ 2-dimensional Lp spaces do not.

use crate::{Distance, Metric};

/// A quadruple witnessing failure of the four-point condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FourPointViolation {
    /// Indices of the four witnessing points in the sample slice.
    pub quad: [usize; 4],
    /// The left side d(x,y) + d(z,t).
    pub lhs: f64,
    /// The larger of the two cross sums.
    pub rhs: f64,
}

/// Checks the four-point condition for all quadruples of `points`.
///
/// `tol` absorbs floating-point rounding (use `0.0` for integer metrics).
/// O(n⁴) over the sample — intended for test-sized inputs.
pub fn check_four_point<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    tol: f64,
) -> Result<(), FourPointViolation> {
    let n = points.len();
    let mut d = vec![0.0f64; n * n];
    for x in 0..n {
        for y in 0..n {
            d[x * n + y] = metric.distance(&points[x], &points[y]).to_f64();
        }
    }
    let dd = |a: usize, b: usize| d[a * n + b];
    for x in 0..n {
        for y in (x + 1)..n {
            for z in (y + 1)..n {
                for t in (z + 1)..n {
                    // All three pairings of {x,y,z,t} into two pairs; the
                    // condition must hold with each pairing on the left.
                    let s1 = dd(x, y) + dd(z, t);
                    let s2 = dd(x, z) + dd(y, t);
                    let s3 = dd(x, t) + dd(y, z);
                    let sums = [s1, s2, s3];
                    for (i, &lhs) in sums.iter().enumerate() {
                        let rhs = sums
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != i)
                            .map(|(_, &s)| s)
                            .fold(f64::NEG_INFINITY, f64::max);
                        if lhs > rhs + tol {
                            return Err(FourPointViolation { quad: [x, y, z, t], lhs, rhs });
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Convenience check over all distinct quadruples drawn from tree vertices.
pub fn tree_satisfies_four_point(tree: &crate::Tree) -> bool {
    let pts: Vec<usize> = tree.vertices().collect();
    check_four_point(&tree.metric(), &pts, 0.0).is_ok()
}

/// The zero-distance sanity check used by tests: verifies `ZERO` behaves as
/// the additive identity in `to_f64` space.
pub fn zero_is_additive_identity<D: Distance>() -> bool {
    D::ZERO.to_f64() == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PrefixDistance, Tree, L2};

    #[test]
    fn random_trees_satisfy_four_point() {
        for seed in 0..4u64 {
            let t = Tree::random(10, 5, seed);
            assert!(tree_satisfies_four_point(&t), "seed {seed}");
        }
    }

    #[test]
    fn prefix_metric_satisfies_four_point() {
        let words: Vec<String> =
            ["", "a", "ab", "abc", "abd", "b", "ba", "bb"].map(String::from).to_vec();
        assert_eq!(check_four_point(&PrefixDistance, &words, 0.0), Ok(()));
    }

    #[test]
    fn plane_euclidean_violates_four_point() {
        // The unit square: diagonals sum to 2*sqrt(2) > 2 = both cross sums.
        let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0]];
        let result = check_four_point(&L2, &pts, 1e-9);
        assert!(result.is_err(), "{result:?}");
    }

    #[test]
    fn line_euclidean_satisfies_four_point() {
        // 1-D Euclidean is a tree metric (a path).
        let pts = vec![vec![0.0], vec![1.5], vec![4.0], vec![9.25], vec![-2.0]];
        assert_eq!(check_four_point(&L2, &pts, 1e-9), Ok(()));
    }

    #[test]
    fn zero_identity_trait_helper() {
        assert!(zero_is_additive_identity::<u32>());
        assert!(zero_is_additive_identity::<u64>());
        assert!(zero_is_additive_identity::<crate::F64Dist>());
    }
}
