//! Totally ordered distance values.
//!
//! Distance permutations are defined by sorting sites on `(distance, site
//! index)`; that sort is only deterministic if distances are *totally*
//! ordered.  Integer-valued metrics (edit distance, tree path length,
//! Hamming) use `u32`/`u64` directly; real-valued metrics use [`F64Dist`],
//! a NaN-free total-order wrapper around `f64`.

use std::fmt;
use std::hash::{Hash, Hasher};

/// A totally ordered, hashable, copyable distance value.
///
/// The `to_f64` view exists for *approximate* cross-metric comparisons and
/// statistics (e.g. the intrinsic-dimensionality estimator ρ); ordering and
/// equality decisions inside the library always use the exact `Ord`
/// implementation.
///
/// Distances are plain values (`Send + Sync`) so that query results can
/// cross thread boundaries — the contract `dp-index`'s parallel batch
/// serving relies on.
pub trait Distance: Copy + Eq + Ord + Hash + fmt::Debug + Send + Sync + 'static {
    /// The zero distance (d(x, x)).
    const ZERO: Self;

    /// Lossy conversion for statistics and display.
    fn to_f64(self) -> f64;
}

impl Distance for u32 {
    const ZERO: Self = 0;

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Distance for u64 {
    const ZERO: Self = 0;

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl Distance for u128 {
    const ZERO: Self = 0;

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

/// A non-NaN `f64` distance with a total order.
///
/// * NaN is rejected at construction (a metric never produces NaN on its
///   domain; producing one is a bug we want surfaced, not ordered).
/// * `-0.0` is normalised to `+0.0` so that `Eq`/`Hash`/`Ord` agree.
/// * Ordering is `f64::total_cmp`, which on the remaining values coincides
///   with the usual `<` order.
#[derive(Copy, Clone, Default)]
pub struct F64Dist(f64);

impl F64Dist {
    /// Wraps a finite (or infinite, but never NaN) distance value.
    ///
    /// # Panics
    /// Panics if `value` is NaN.
    #[inline]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "distance must not be NaN");
        // Normalise -0.0 so bitwise Eq/Hash agree with numeric equality.
        Self(if value == 0.0 { 0.0 } else { value })
    }

    /// The raw `f64` value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64Dist {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}

impl Eq for F64Dist {}

impl PartialOrd for F64Dist {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Dist {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for F64Dist {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for F64Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for F64Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Distance for F64Dist {
    const ZERO: Self = F64Dist(0.0);

    #[inline]
    fn to_f64(self) -> f64 {
        self.0
    }
}

impl From<f64> for F64Dist {
    #[inline]
    fn from(value: f64) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(d: F64Dist) -> u64 {
        let mut h = DefaultHasher::new();
        d.hash(&mut h);
        h.finish()
    }

    #[test]
    fn zero_is_normalised() {
        assert_eq!(F64Dist::new(-0.0), F64Dist::new(0.0));
        assert_eq!(hash_of(F64Dist::new(-0.0)), hash_of(F64Dist::new(0.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = F64Dist::new(f64::NAN);
    }

    #[test]
    fn order_matches_f64_order() {
        let a = F64Dist::new(1.5);
        let b = F64Dist::new(2.5);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn infinity_is_ordered_last() {
        assert!(F64Dist::new(f64::INFINITY) > F64Dist::new(1e300));
    }

    #[test]
    fn integer_distances_have_zero() {
        assert_eq!(<u32 as Distance>::ZERO, 0);
        assert_eq!(<u64 as Distance>::ZERO, 0);
        assert_eq!(42u64.to_f64(), 42.0);
    }

    #[test]
    fn display_and_debug() {
        let d = F64Dist::new(0.25);
        assert_eq!(format!("{d}"), "0.25");
        assert_eq!(format!("{d:?}"), "0.25");
    }
}
