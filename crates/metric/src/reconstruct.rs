//! Reconstructing a weighted tree from a finite tree metric.
//!
//! Section 3 of the paper leans on Buneman's theorem: a finite metric
//! satisfies the four-point condition iff it embeds in a weighted tree
//! (possibly with extra *Steiner* vertices).  This module makes the
//! theorem constructive: [`reconstruct_tree`] builds the (unique minimal)
//! tree realising a given finite tree metric, or reports the witness pair
//! where realisation fails.
//!
//! Algorithm: incremental deepest-meet insertion.  Root the tree at point
//! 0.  For a new point x, the Gromov product
//! `g(x,u) = (d(r,x) + d(r,u) − d(u,x)) / 2` is the depth at which the
//! paths r→x and r→u separate; the attachment point of x is the deepest
//! such meet over all inserted u.  Splitting one edge there (creating a
//! Steiner vertex if needed) and hanging x preserves all pairwise
//! distances — if and only if the input is a tree metric, which a final
//! O(n²) verification confirms.
//!
//! All arithmetic is on **doubled** distances so that half-integral meet
//! depths (e.g. three leaves pairwise at distance 3 meet at depth 1.5)
//! stay exact integers.

use crate::tree::Tree;
use crate::Metric;

/// Why reconstruction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconstructError {
    /// The input has no points.
    Empty,
    /// d(i, j) differs in the reconstructed tree: the metric violates the
    /// four-point condition (Buneman).
    NotATreeMetric {
        /// First witness point.
        i: usize,
        /// Second witness point.
        j: usize,
        /// 2·d(i,j) requested.
        expected_doubled: u64,
        /// 2·d(i,j) realised by the best tree.
        actual_doubled: u64,
    },
    /// The metric is malformed (asymmetric or d(x,x) != 0).
    NotAMetric,
}

impl std::fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconstructError::Empty => write!(f, "no points to reconstruct from"),
            ReconstructError::NotATreeMetric { i, j, expected_doubled, actual_doubled } => write!(
                f,
                "not a tree metric: d({i},{j}) = {expected_doubled}/2 but the tree realises {actual_doubled}/2"
            ),
            ReconstructError::NotAMetric => write!(f, "input is not a metric"),
        }
    }
}

impl std::error::Error for ReconstructError {}

/// A tree realising a finite tree metric, with the point → vertex map.
///
/// Edge weights in [`Self::tree`] are **doubled** (see module docs);
/// [`Self::distance`] converts back to the original scale.
#[derive(Debug, Clone)]
pub struct ReconstructedTree {
    /// The realising tree with doubled integer edge weights.
    pub tree: Tree,
    /// `vertex_of[i]` = the tree vertex carrying input point i.
    pub vertex_of: Vec<usize>,
    /// Number of Steiner (non-input) vertices added.
    pub steiner_count: usize,
}

impl ReconstructedTree {
    /// Distance between input points i and j on the original scale.
    pub fn distance(&self, i: usize, j: usize) -> u64 {
        self.tree.distance(self.vertex_of[i], self.vertex_of[j]) / 2
    }
}

/// Reconstructs the minimal weighted tree realising the metric `d` over
/// points `0..n`.
///
/// `d` is queried O(n²) times; it must be symmetric with zero diagonal.
pub fn reconstruct_tree(
    n: usize,
    d: impl Fn(usize, usize) -> u64,
) -> Result<ReconstructedTree, ReconstructError> {
    if n == 0 {
        return Err(ReconstructError::Empty);
    }
    // Doubled distances from the root (point 0) and the full matrix rows
    // we need (distances to the root and pairwise among inserted points).
    let dd = |i: usize, j: usize| 2 * d(i, j);
    for i in 0..n {
        if d(i, i) != 0 {
            return Err(ReconstructError::NotAMetric);
        }
        if d(0, i) != d(i, 0) {
            return Err(ReconstructError::NotAMetric);
        }
    }

    // Mutable tree under construction: parent links with doubled weights.
    // Vertex 0 is the root (point 0).
    let mut parent: Vec<Option<(usize, u64)>> = vec![None];
    let mut depth: Vec<u64> = vec![0];
    let mut vertex_of: Vec<usize> = vec![0];

    for x in 1..n {
        // Deepest meet over inserted points.
        let mut best_u = 0usize;
        let mut best_g = 0i128;
        for u in 0..x {
            let g = (i128::from(dd(0, x)) + i128::from(dd(0, u)) - i128::from(dd(u, x))) / 2;
            if g > best_g {
                best_g = g;
                best_u = u;
            }
        }
        if best_g < 0 || best_g > i128::from(dd(0, x)) {
            return Err(ReconstructError::NotAMetric);
        }
        let g = best_g as u64;

        // Locate depth g on the path root -> vertex_of[best_u], splitting
        // an edge if it falls strictly inside one.
        let mut v = vertex_of[best_u];
        let attach = loop {
            if depth[v] == g {
                break v;
            }
            let (p, w) = parent[v].expect("g <= depth(root path) by construction");
            if depth[p] < g {
                // Split edge p -- v at depth g with a Steiner vertex.
                let s = depth.len();
                depth.push(g);
                parent.push(Some((p, g - depth[p])));
                parent[v] = Some((s, depth[v] - g));
                let _ = w;
                break s;
            }
            v = p;
        };

        // Hang the new point (or identify it with the attachment vertex).
        let pendant = dd(0, x) - g;
        if pendant == 0 {
            vertex_of.push(attach);
        } else {
            let nv = depth.len();
            depth.push(g + pendant);
            parent.push(Some((attach, pendant)));
            vertex_of.push(nv);
        }
    }

    // Materialise as a Tree and verify every pairwise distance.
    let edges: Vec<(usize, usize, u64)> =
        parent.iter().enumerate().filter_map(|(v, p)| p.map(|(pv, w)| (pv, v, w))).collect();
    let tree = Tree::from_edges(depth.len(), &edges);
    let steiner_count = depth.len() - {
        let mut distinct: Vec<usize> = vertex_of.clone();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    };

    for i in 0..n {
        for j in (i + 1)..n {
            let actual = tree.distance(vertex_of[i], vertex_of[j]);
            if actual != dd(i, j) {
                return Err(ReconstructError::NotATreeMetric {
                    i,
                    j,
                    expected_doubled: dd(i, j),
                    actual_doubled: actual,
                });
            }
        }
    }

    Ok(ReconstructedTree { tree, vertex_of, steiner_count })
}

/// Convenience wrapper: reconstructs from points under any integer-valued
/// [`Metric`].
pub fn reconstruct_from_metric<P, M: Metric<P, Dist = u64>>(
    metric: &M,
    points: &[P],
) -> Result<ReconstructedTree, ReconstructError> {
    reconstruct_tree(points.len(), |i, j| metric.distance(&points[i], &points[j]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PrefixDistance, Tree};

    fn verify_roundtrip(n: usize, d: impl Fn(usize, usize) -> u64 + Copy) {
        let r = reconstruct_tree(n, d).expect("reconstruction succeeds");
        for i in 0..n {
            for j in 0..n {
                assert_eq!(r.distance(i, j), d(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn single_point_and_pair() {
        let r = reconstruct_tree(1, |_, _| 0).unwrap();
        assert_eq!(r.tree.len(), 1);
        verify_roundtrip(2, |i, j| if i == j { 0 } else { 5 });
    }

    #[test]
    fn star_metric_needs_a_steiner_point() {
        // Three points pairwise at distance 2: the realising tree is a
        // star with a central Steiner vertex at distance 1 from each.
        let r = reconstruct_tree(3, |i, j| if i == j { 0 } else { 2 }).unwrap();
        assert_eq!(r.steiner_count, 1);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(r.distance(i, j), if i == j { 0 } else { 2 });
            }
        }
    }

    #[test]
    fn odd_distances_need_half_integral_steiner_positions() {
        // Pairwise distance 3: centre sits at 1.5 — the doubled-weight
        // representation keeps this exact.
        verify_roundtrip(3, |i, j| if i == j { 0 } else { 3 });
    }

    #[test]
    fn random_trees_roundtrip_over_all_vertices() {
        for seed in 0..6u64 {
            let t = Tree::random(40, 6, seed);
            let d = |i: usize, j: usize| t.distance(i, j);
            verify_roundtrip(t.len(), d);
        }
    }

    #[test]
    fn random_trees_roundtrip_over_leaves_only() {
        // Leaf-restricted metrics force Steiner reconstruction of the
        // interior.
        for seed in 10..14u64 {
            let t = Tree::random(60, 4, seed);
            let leaves: Vec<usize> = t.vertices().filter(|&v| t.neighbours(v).len() == 1).collect();
            assert!(leaves.len() >= 3);
            let d = |i: usize, j: usize| t.distance(leaves[i], leaves[j]);
            let r = reconstruct_tree(leaves.len(), d).expect("leaf metric is a tree metric");
            for i in 0..leaves.len() {
                for j in 0..leaves.len() {
                    assert_eq!(r.distance(i, j), d(i, j));
                }
            }
            assert!(r.steiner_count > 0, "seed {seed}: interior vanished");
        }
    }

    #[test]
    fn prefix_metric_words_reconstruct_to_their_trie() {
        let words: Vec<String> =
            ["", "a", "ab", "abc", "abd", "b", "ba"].map(String::from).to_vec();
        let d = |i: usize, j: usize| {
            u64::from(crate::Metric::distance(&PrefixDistance, &words[i], &words[j]))
        };
        let r = reconstruct_tree(words.len(), d).unwrap();
        // The trie on these strings has exactly the 7 words as vertices
        // (every internal node is itself a word): no Steiner points.
        assert_eq!(r.steiner_count, 0);
        for i in 0..words.len() {
            for j in 0..words.len() {
                assert_eq!(r.distance(i, j), d(i, j));
            }
        }
    }

    #[test]
    fn euclidean_square_is_rejected() {
        // Unit-square corners violate the four-point condition; scaled to
        // integers: side 10, diagonal 14 (rounded) still violates.
        let pts = [(0i64, 0i64), (10, 0), (10, 10), (0, 10)];
        let d = |i: usize, j: usize| {
            let (xi, yi) = pts[i];
            let (xj, yj) = pts[j];
            let dx = (xi - xj) as f64;
            let dy = (yi - yj) as f64;
            (dx * dx + dy * dy).sqrt().round() as u64
        };
        let err = reconstruct_tree(4, d).unwrap_err();
        assert!(matches!(err, ReconstructError::NotATreeMetric { .. }), "{err}");
    }

    #[test]
    fn asymmetric_input_rejected() {
        let err = reconstruct_tree(2, |i, j| if i < j { 1 } else { 2 }).unwrap_err();
        assert_eq!(err, ReconstructError::NotAMetric);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(reconstruct_tree(0, |_, _| 0).unwrap_err(), ReconstructError::Empty);
    }

    #[test]
    fn reconstruct_from_metric_wrapper() {
        let t = Tree::random(25, 3, 99);
        let points: Vec<usize> = t.vertices().collect();
        let m = t.metric();
        let r = reconstruct_from_metric(&m, &points).unwrap();
        for i in 0..points.len() {
            for j in 0..points.len() {
                assert_eq!(r.distance(i, j), t.distance(points[i], points[j]));
            }
        }
    }

    #[test]
    fn weighted_path_roundtrip() {
        let t = Tree::weighted_path(&[5, 1, 9, 2, 2, 7]);
        verify_roundtrip(t.len(), |i, j| t.distance(i, j));
    }
}
