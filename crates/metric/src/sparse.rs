//! Sparse vectors and the angular (cosine) distance used by the paper's
//! document databases (`long` and `short` in Table 2).
//!
//! The SISAP document sets store TF-IDF-style term vectors and compare them
//! with the *angle* between vectors, `acos` of the cosine similarity — the
//! cosine itself is not a metric, but the angle is.

use crate::dist::{Distance, F64Dist};
use crate::Metric;

/// A sparse non-negative vector with strictly increasing term indices,
/// pre-normalised norm, as used by document databases.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f64>,
    norm: f64,
}

impl SparseVec {
    /// Builds a sparse vector from `(term index, weight)` pairs.
    ///
    /// Pairs may arrive in any order; duplicate indices are summed and zero
    /// weights dropped.
    ///
    /// # Panics
    /// Panics if any weight is negative or non-finite.
    pub fn new(mut pairs: Vec<(u32, f64)>) -> Self {
        for &(_, v) in &pairs {
            assert!(v.is_finite() && v >= 0.0, "term weight must be finite and >= 0, got {v}");
        }
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if v == 0.0 {
                continue;
            }
            if indices.last() == Some(&i) {
                *values.last_mut().expect("values parallel to indices") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        let norm = values.iter().map(|v| v * v).sum::<f64>().sqrt();
        Self { indices, values, norm }
    }

    /// Number of non-zero terms.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Euclidean norm of the vector.
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Term indices (strictly increasing).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Term weights, parallel to [`Self::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Dot product with another sparse vector (sorted-merge join).
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut sum = 0.0;
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Cosine similarity in [0, 1]; zero vectors have similarity 0 with
    /// everything except another zero vector (similarity 1, distance 0).
    pub fn cosine_similarity(&self, other: &SparseVec) -> f64 {
        if self.norm == 0.0 || other.norm == 0.0 {
            return f64::from(u8::from(self.norm == other.norm));
        }
        (self.dot(other) / (self.norm * other.norm)).clamp(0.0, 1.0)
    }
}

/// Angular distance `acos(cos θ)` between sparse vectors — a true metric on
/// rays from the origin, with values in [0, π/2] for non-negative vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CosineDistance;

impl Metric<SparseVec> for CosineDistance {
    type Dist = F64Dist;

    #[inline]
    fn distance(&self, a: &SparseVec, b: &SparseVec) -> F64Dist {
        // acos(dot/(|a||b|)) evaluates to ~1e-8 instead of 0 for a == b
        // because the norm is rounded through sqrt; the identity axiom
        // demands exact zero, so short-circuit structural equality.
        if a == b {
            return F64Dist::ZERO;
        }
        F64Dist::new(a.cosine_similarity(b).acos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::new(pairs.to_vec())
    }

    #[test]
    fn construction_sorts_dedupes_and_drops_zeros() {
        let v = sv(&[(5, 1.0), (2, 3.0), (5, 1.0), (9, 0.0)]);
        assert_eq!(v.indices(), &[2, 5]);
        assert_eq!(v.values(), &[3.0, 2.0]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_product_merge_join() {
        let a = sv(&[(1, 2.0), (3, 1.0), (7, 4.0)]);
        let b = sv(&[(3, 5.0), (7, 0.5), (9, 2.0)]);
        assert_eq!(a.dot(&b), 1.0 * 5.0 + 4.0 * 0.5);
    }

    #[test]
    fn identical_vectors_have_zero_distance() {
        let a = sv(&[(1, 2.0), (3, 1.0)]);
        assert_eq!(CosineDistance.distance(&a, &a).get(), 0.0);
    }

    #[test]
    fn orthogonal_vectors_are_at_right_angle() {
        let a = sv(&[(1, 1.0)]);
        let b = sv(&[(2, 1.0)]);
        let d = CosineDistance.distance(&a, &b).get();
        assert!((d - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn scaling_does_not_change_angle() {
        let a = sv(&[(1, 1.0), (2, 2.0)]);
        let b = sv(&[(1, 3.0), (2, 6.0)]);
        assert!(CosineDistance.distance(&a, &b).get() < 1e-7);
    }

    #[test]
    fn zero_vector_conventions() {
        let z = sv(&[]);
        let a = sv(&[(1, 1.0)]);
        assert_eq!(CosineDistance.distance(&z, &z).get(), 0.0);
        let d = CosineDistance.distance(&z, &a).get();
        assert!((d - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let vs = [
            sv(&[(0, 1.0), (1, 0.5)]),
            sv(&[(1, 2.0), (2, 1.0)]),
            sv(&[(0, 0.3), (2, 0.9), (5, 1.5)]),
            sv(&[(4, 1.0)]),
        ];
        for x in &vs {
            for y in &vs {
                for z in &vs {
                    let xy = CosineDistance.distance(x, y).get();
                    let xz = CosineDistance.distance(x, z).get();
                    let zy = CosineDistance.distance(z, y).get();
                    assert!(xy <= xz + zy + 1e-12);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_weight_rejected() {
        let _ = sv(&[(0, -1.0)]);
    }
}
