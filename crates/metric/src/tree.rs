//! Weighted tree metric spaces (Definition 2 of the paper).
//!
//! A [`Tree`] holds a connected acyclic graph with positive integer edge
//! weights; the induced [`TreeMetric`] measures the weight of the unique
//! path between two vertices.  Distances are answered in O(log n) after
//! O(n log n) preprocessing (binary-lifting LCA), with a BFS reference path
//! retained for the test suite.
//!
//! Integer weights keep the metric exact, so distance-permutation
//! tie-breaking matches the paper's definition with no floating-point
//! ambiguity.  Unweighted trees are the all-weights-1 special case.
//!
//! Builders cover the shapes the paper's arguments use: [`Tree::path`]
//! (Corollary 5's long path), [`Tree::star`], [`Tree::caterpillar`],
//! [`Tree::random`] (random attachment, deterministic via seed), and
//! [`Tree::from_edges`] for arbitrary trees.

use crate::Metric;

/// A tree on vertices `0..n` with positive integer edge weights.
#[derive(Debug, Clone)]
pub struct Tree {
    n: usize,
    adj: Vec<Vec<(u32, u64)>>,
    depth_w: Vec<u64>,
    depth_e: Vec<u32>,
    up: Vec<Vec<u32>>,
    log: usize,
}

impl Tree {
    /// Builds a tree from an edge list `(u, v, weight)` on vertices `0..n`.
    ///
    /// # Panics
    /// Panics if the edges do not form a tree on `0..n` (wrong count, self
    /// loops, out-of-range endpoints, disconnected, or a cycle) or if any
    /// weight is zero.
    pub fn from_edges(n: usize, edges: &[(usize, usize, u64)]) -> Self {
        assert!(n > 0, "a tree needs at least one vertex");
        assert_eq!(edges.len(), n - 1, "a tree on {n} vertices has {} edges", n - 1);
        let mut adj = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            assert_ne!(u, v, "self loop at {u}");
            assert!(w > 0, "edge weights must be positive");
            adj[u].push((v as u32, w));
            adj[v].push((u as u32, w));
        }

        // Root at 0; BFS to assign parents and depths, verifying
        // connectivity (n-1 edges + connected == tree).
        let log = usize::BITS as usize - n.leading_zeros() as usize;
        let mut up = vec![vec![0u32; n]; log.max(1)];
        let mut depth_w = vec![0u64; n];
        let mut depth_e = vec![0u32; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::with_capacity(n);
        seen[0] = true;
        queue.push_back(0u32);
        let mut visited = 1usize;
        while let Some(u) = queue.pop_front() {
            for &(v, w) in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    visited += 1;
                    up[0][v as usize] = u;
                    depth_w[v as usize] = depth_w[u as usize] + w;
                    depth_e[v as usize] = depth_e[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(visited, n, "edge list is disconnected (visited {visited} of {n})");

        for level in 1..up.len() {
            for v in 0..n {
                let mid = up[level - 1][v] as usize;
                up[level][v] = up[level - 1][mid];
            }
        }

        let log = up.len();
        Self { n, adj, depth_w, depth_e, up, log }
    }

    /// A path of `edges` unit-weight edges on vertices `0..=edges`
    /// (Corollary 5 uses a path of `2^(k-1)` edges).
    pub fn path(edges: usize) -> Self {
        Self::weighted_path(&vec![1; edges])
    }

    /// A path whose i-th edge (between vertices i and i+1) has the given
    /// weight.
    pub fn weighted_path(weights: &[u64]) -> Self {
        let edges: Vec<_> = weights.iter().enumerate().map(|(i, &w)| (i, i + 1, w)).collect();
        Self::from_edges(weights.len() + 1, &edges)
    }

    /// A star: vertex 0 joined to `leaves` leaves by unit edges.
    pub fn star(leaves: usize) -> Self {
        let edges: Vec<_> = (0..leaves).map(|i| (0, i + 1, 1)).collect();
        Self::from_edges(leaves + 1, &edges)
    }

    /// A caterpillar: a unit path of `spine` vertices, each with `legs`
    /// pendant leaves.
    pub fn caterpillar(spine: usize, legs: usize) -> Self {
        assert!(spine > 0);
        let n = spine + spine * legs;
        let mut edges = Vec::with_capacity(n - 1);
        for i in 1..spine {
            edges.push((i - 1, i, 1));
        }
        let mut next = spine;
        for s in 0..spine {
            for _ in 0..legs {
                edges.push((s, next, 1));
                next += 1;
            }
        }
        Self::from_edges(n, &edges)
    }

    /// A deterministic pseudo-random tree: vertex v (v ≥ 1) attaches to a
    /// uniformly chosen earlier vertex with weight in `1..=max_weight`.
    ///
    /// Uses a local SplitMix64 stream so this crate stays dependency-free;
    /// the same seed always produces the same tree.
    pub fn random(n: usize, max_weight: u64, seed: u64) -> Self {
        assert!(n > 0 && max_weight > 0);
        let mut state = seed;
        let mut next = move || {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let edges: Vec<_> = (1..n)
            .map(|v| {
                let parent = (next() % v as u64) as usize;
                let w = 1 + next() % max_weight;
                (parent, v, w)
            })
            .collect();
        Self::from_edges(n, &edges)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True iff the tree is the single-vertex tree (it always has ≥ 1).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = usize> + '_ {
        0..self.n
    }

    /// Neighbours of `v` with edge weights.
    pub fn neighbours(&self, v: usize) -> &[(u32, u64)] {
        &self.adj[v]
    }

    /// Lowest common ancestor of `u` and `v` under the root 0.
    pub fn lca(&self, mut u: usize, mut v: usize) -> usize {
        if self.depth_e[u] < self.depth_e[v] {
            std::mem::swap(&mut u, &mut v);
        }
        let mut diff = self.depth_e[u] - self.depth_e[v];
        let mut level = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                u = self.up[level][u] as usize;
            }
            diff >>= 1;
            level += 1;
        }
        if u == v {
            return u;
        }
        for level in (0..self.log).rev() {
            if self.up[level][u] != self.up[level][v] {
                u = self.up[level][u] as usize;
                v = self.up[level][v] as usize;
            }
        }
        self.up[0][u] as usize
    }

    /// Path weight between `u` and `v` via the LCA decomposition.
    #[inline]
    pub fn distance(&self, u: usize, v: usize) -> u64 {
        let a = self.lca(u, v);
        self.depth_w[u] + self.depth_w[v] - 2 * self.depth_w[a]
    }

    /// Path weight by explicit BFS — O(n), used to cross-check
    /// [`Self::distance`] in tests.
    pub fn distance_bfs(&self, u: usize, v: usize) -> u64 {
        if u == v {
            return 0;
        }
        let mut dist = vec![u64::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[u] = 0;
        queue.push_back(u as u32);
        while let Some(x) = queue.pop_front() {
            for &(y, w) in &self.adj[x as usize] {
                if dist[y as usize] == u64::MAX {
                    dist[y as usize] = dist[x as usize] + w;
                    if y as usize == v {
                        return dist[v];
                    }
                    queue.push_back(y);
                }
            }
        }
        unreachable!("tree is connected");
    }

    /// The metric view of this tree.
    pub fn metric(&self) -> TreeMetric<'_> {
        TreeMetric { tree: self }
    }
}

/// [`Metric`] adapter over a [`Tree`]; points are vertex ids.
#[derive(Debug, Clone, Copy)]
pub struct TreeMetric<'a> {
    tree: &'a Tree,
}

impl Metric<usize> for TreeMetric<'_> {
    type Dist = u64;

    #[inline]
    fn distance(&self, a: &usize, b: &usize) -> u64 {
        self.tree.distance(*a, *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_distances() {
        let t = Tree::path(5);
        assert_eq!(t.len(), 6);
        assert_eq!(t.distance(0, 5), 5);
        assert_eq!(t.distance(2, 4), 2);
        assert_eq!(t.distance(3, 3), 0);
    }

    #[test]
    fn weighted_path_distances() {
        let t = Tree::weighted_path(&[2, 3, 10]);
        assert_eq!(t.distance(0, 3), 15);
        assert_eq!(t.distance(1, 3), 13);
        assert_eq!(t.distance(0, 1), 2);
    }

    #[test]
    fn star_distances() {
        let t = Tree::star(4);
        assert_eq!(t.distance(1, 2), 2);
        assert_eq!(t.distance(0, 3), 1);
    }

    #[test]
    fn caterpillar_shape() {
        let t = Tree::caterpillar(3, 2);
        assert_eq!(t.len(), 9);
        // Leg of spine 0 to leg of spine 2: 1 + 2 + 1.
        assert_eq!(t.distance(3, 7), 4);
    }

    #[test]
    fn lca_matches_bfs_on_random_trees() {
        for seed in 0..5u64 {
            let t = Tree::random(60, 7, seed);
            for u in (0..t.len()).step_by(7) {
                for v in (0..t.len()).step_by(5) {
                    assert_eq!(
                        t.distance(u, v),
                        t.distance_bfs(u, v),
                        "seed {seed} pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn metric_adapter_and_symmetry() {
        let t = Tree::random(40, 3, 42);
        let m = t.metric();
        for u in 0..10 {
            for v in 0..10 {
                assert_eq!(m.distance(&u, &v), m.distance(&v, &u));
            }
            assert_eq!(m.distance(&u, &u), 0);
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let t = Tree::random(30, 9, 7);
        for x in 0..t.len() {
            for y in 0..t.len() {
                for z in [0, 7, 13, 29] {
                    assert!(t.distance(x, y) <= t.distance(x, z) + t.distance(z, y));
                }
            }
        }
    }

    #[test]
    fn single_vertex_tree() {
        let t = Tree::from_edges(1, &[]);
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_rejected() {
        // 4 vertices, 3 edges, but one edge duplicates a pair creating a
        // cycle and leaving vertex 3 unreachable.
        let _ = Tree::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = Tree::from_edges(2, &[(0, 1, 0)]);
    }

    #[test]
    #[should_panic(expected = "edges")]
    fn wrong_edge_count_rejected() {
        let _ = Tree::from_edges(3, &[(0, 1, 1)]);
    }
}
