//! Minkowski Lp metrics over real vectors.
//!
//! These are the spaces of Section 4 of the paper: for points
//! x = ⟨x₁…x_d⟩ and y = ⟨y₁…y_d⟩,
//!
//! * `L1`  — Manhattan distance Σ|xᵢ−yᵢ| (bisectors are unions of ≤ 2^{2d}
//!   hyperplanes, Theorem 9);
//! * `L2`  — Euclidean distance (Theorem 7's exact recurrence);
//! * `LInf` — Chebyshev distance max|xᵢ−yᵢ| (≤ 4d² hyperplanes, Theorem 9);
//! * `Lp(p)` — general Minkowski distance for p ≥ 1.
//!
//! [`L2Squared`] compares equal to `L2` under any monotone use (such as
//! distance permutations) while avoiding the square root; the workspace's
//! counting experiments use it for speed and for exactness on integer
//! coordinates.

use crate::dist::F64Dist;
use crate::Metric;

/// Manhattan (L1) metric: Σᵢ |xᵢ − yᵢ|.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1;

/// Euclidean (L2) metric: √(Σᵢ (xᵢ − yᵢ)²).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2;

/// Squared Euclidean distance: Σᵢ (xᵢ − yᵢ)².
///
/// Not itself a metric (it violates the triangle inequality) but strictly
/// monotone in `L2`, so it induces **identical distance permutations** while
/// being cheaper and exact on small-integer coordinates.  Use it wherever
/// only relative order matters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2Squared;

/// Chebyshev (L∞) metric: maxᵢ |xᵢ − yᵢ|.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LInf;

/// General Minkowski Lp metric, p ≥ 1: (Σᵢ |xᵢ − yᵢ|^p)^{1/p}.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lp {
    p: f64,
}

impl Lp {
    /// Creates an Lp metric.
    ///
    /// # Panics
    /// Panics if `p < 1` (the Minkowski form is not a metric for p < 1).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Lp requires p >= 1, got {p}");
        Self { p }
    }

    /// The exponent p.
    pub fn p(&self) -> f64 {
        self.p
    }
}

#[inline]
fn check_dims(a: &[f64], b: &[f64]) {
    assert_eq!(
        a.len(),
        b.len(),
        "vector metric applied to vectors of different dimension ({} vs {})",
        a.len(),
        b.len()
    );
}

impl Metric<[f64]> for L1 {
    type Dist = F64Dist;

    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> F64Dist {
        check_dims(a, b);
        let mut sum = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            sum += (x - y).abs();
        }
        F64Dist::new(sum)
    }
}

impl Metric<[f64]> for L2 {
    type Dist = F64Dist;

    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> F64Dist {
        F64Dist::new(L2Squared.distance(a, b).get().sqrt())
    }
}

impl Metric<[f64]> for L2Squared {
    type Dist = F64Dist;

    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> F64Dist {
        check_dims(a, b);
        let mut sum = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            let d = x - y;
            sum += d * d;
        }
        F64Dist::new(sum)
    }
}

impl Metric<[f64]> for LInf {
    type Dist = F64Dist;

    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> F64Dist {
        check_dims(a, b);
        let mut max = 0.0f64;
        for (x, y) in a.iter().zip(b.iter()) {
            max = max.max((x - y).abs());
        }
        F64Dist::new(max)
    }
}

impl Metric<[f64]> for Lp {
    type Dist = F64Dist;

    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> F64Dist {
        check_dims(a, b);
        if self.p == 1.0 {
            return L1.distance(a, b);
        }
        if self.p == 2.0 {
            return L2.distance(a, b);
        }
        let mut sum = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            sum += (x - y).abs().powf(self.p);
        }
        F64Dist::new(sum.powf(1.0 / self.p))
    }
}

/// Adapts a `Metric<[f64]>` to slice-reference points (`&[f64]`), so
/// code generic over a *sized* point type can run directly on borrowed
/// rows of flat storage without copying them into owned vectors.
#[derive(Debug, Clone, Copy)]
pub struct SliceRefMetric<'m, M>(pub &'m M);

impl<M: Metric<[f64]>> Metric<&[f64]> for SliceRefMetric<'_, M> {
    type Dist = M::Dist;

    #[inline]
    fn distance(&self, a: &&[f64], b: &&[f64]) -> M::Dist {
        self.0.distance(a, b)
    }
}

macro_rules! impl_for_vec {
    ($($m:ty),*) => {$(
        impl Metric<Vec<f64>> for $m {
            type Dist = F64Dist;

            #[inline]
            fn distance(&self, a: &Vec<f64>, b: &Vec<f64>) -> F64Dist {
                Metric::<[f64]>::distance(self, a.as_slice(), b.as_slice())
            }
        }
    )*};
}

impl_for_vec!(L1, L2, L2Squared, LInf, Lp);

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.0, 0.0, 0.0];
    const B: [f64; 3] = [1.0, -2.0, 2.0];

    #[test]
    fn l1_distance() {
        assert_eq!(L1.distance(&A[..], &B[..]).get(), 5.0);
    }

    #[test]
    fn l2_distance() {
        assert_eq!(L2.distance(&A[..], &B[..]).get(), 3.0);
        assert_eq!(L2Squared.distance(&A[..], &B[..]).get(), 9.0);
    }

    #[test]
    fn linf_distance() {
        assert_eq!(LInf.distance(&A[..], &B[..]).get(), 2.0);
    }

    #[test]
    fn lp_specialises_to_l1_l2() {
        let a = [0.3, 0.7, -0.2];
        let b = [1.1, 0.0, 0.4];
        assert_eq!(Lp::new(1.0).distance(&a[..], &b[..]), L1.distance(&a[..], &b[..]));
        assert_eq!(Lp::new(2.0).distance(&a[..], &b[..]), L2.distance(&a[..], &b[..]));
    }

    #[test]
    fn lp_p4_matches_hand_computation() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let d = Lp::new(4.0).distance(&a[..], &b[..]).get();
        assert!((d - 2.0f64.powf(0.25)).abs() < 1e-12);
    }

    #[test]
    fn lp_ordering_between_l1_and_linf() {
        // For any pair, L1 >= Lp >= Linf when p >= 1.
        let a = [0.1, 0.9, 0.4, 0.2];
        let b = [0.8, 0.2, 0.6, 0.9];
        let d1 = L1.distance(&a[..], &b[..]).get();
        let d3 = Lp::new(3.0).distance(&a[..], &b[..]).get();
        let di = LInf.distance(&a[..], &b[..]).get();
        assert!(d1 >= d3 && d3 >= di);
    }

    #[test]
    fn identity_and_symmetry() {
        let a = [0.5, -0.25, 3.0];
        let b = [2.0, 1.0, -1.0];
        for d in [
            L1.distance(&a[..], &a[..]),
            L2.distance(&a[..], &a[..]),
            LInf.distance(&a[..], &a[..]),
        ] {
            assert_eq!(d.get(), 0.0);
        }
        assert_eq!(L1.distance(&a[..], &b[..]), L1.distance(&b[..], &a[..]));
        assert_eq!(L2.distance(&a[..], &b[..]), L2.distance(&b[..], &a[..]));
        assert_eq!(LInf.distance(&a[..], &b[..]), LInf.distance(&b[..], &a[..]));
    }

    #[test]
    #[should_panic(expected = "different dimension")]
    fn dimension_mismatch_panics() {
        let _ = L1.distance(&[0.0][..], &[0.0, 1.0][..]);
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn lp_below_one_rejected() {
        let _ = Lp::new(0.5);
    }

    #[test]
    fn vec_impls_delegate() {
        let a = vec![0.0, 1.0];
        let b = vec![3.0, 5.0];
        assert_eq!(L1.distance(&a, &b).get(), 7.0);
        assert_eq!(L2.distance(&a, &b).get(), 5.0);
        assert_eq!(LInf.distance(&a, &b).get(), 4.0);
    }
}
