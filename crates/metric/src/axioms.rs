//! Sampling-based metric axiom verification.
//!
//! Every metric implementation in the workspace is checked against the four
//! metric axioms on representative samples.  Distances are compared through
//! their exact `Ord`; the triangle inequality additionally needs *addition*,
//! which is performed on the `f64` view with a caller-supplied tolerance
//! (zero for integer metrics).

use crate::{Distance, Metric};

/// A reported violation of a metric axiom, with the witnessing indices into
/// the sample slice.
#[derive(Debug, Clone, PartialEq)]
pub enum AxiomViolation {
    /// `d(x, x) != 0` at sample index `x`.
    Identity { x: usize, d: f64 },
    /// `d(x, y) != d(y, x)`.
    Symmetry { x: usize, y: usize, dxy: f64, dyx: f64 },
    /// `d(x, y) > d(x, z) + d(z, y) + tol`.
    Triangle { x: usize, y: usize, z: usize, dxy: f64, dxz: f64, dzy: f64 },
}

impl std::fmt::Display for AxiomViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AxiomViolation::Identity { x, d } => {
                write!(f, "d(x{x}, x{x}) = {d} != 0")
            }
            AxiomViolation::Symmetry { x, y, dxy, dyx } => {
                write!(f, "d(x{x}, x{y}) = {dxy} but d(x{y}, x{x}) = {dyx}")
            }
            AxiomViolation::Triangle { x, y, z, dxy, dxz, dzy } => {
                write!(f, "d(x{x}, x{y}) = {dxy} > {dxz} + {dzy} via x{z}")
            }
        }
    }
}

/// Checks identity, symmetry and the triangle inequality for `metric` over
/// all pairs/triples of `points`.
///
/// `triangle_tol` absorbs floating-point rounding for real-valued metrics;
/// pass `0.0` for integer-valued metrics.  O(n³) — intended for test-sized
/// samples.
pub fn check_metric<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    triangle_tol: f64,
) -> Result<(), AxiomViolation> {
    let n = points.len();
    // Precompute the matrix once: O(n^2) metric evaluations, not O(n^3).
    let mut d = vec![0.0f64; n * n];
    for x in 0..n {
        for y in 0..n {
            let dist = metric.distance(&points[x], &points[y]);
            d[x * n + y] = dist.to_f64();
            if x == y && dist != M::Dist::ZERO {
                return Err(AxiomViolation::Identity { x, d: dist.to_f64() });
            }
        }
    }
    for x in 0..n {
        for y in (x + 1)..n {
            if d[x * n + y] != d[y * n + x] {
                return Err(AxiomViolation::Symmetry {
                    x,
                    y,
                    dxy: d[x * n + y],
                    dyx: d[y * n + x],
                });
            }
        }
    }
    for x in 0..n {
        for y in 0..n {
            for z in 0..n {
                if d[x * n + y] > d[x * n + z] + d[z * n + y] + triangle_tol {
                    return Err(AxiomViolation::Triangle {
                        x,
                        y,
                        z,
                        dxy: d[x * n + y],
                        dxz: d[x * n + z],
                        dzy: d[z * n + y],
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::F64Dist;
    use crate::{Hamming, LInf, Levenshtein, Lp, PrefixDistance, L1, L2};

    fn vectors() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 2.0, -0.5],
            vec![-3.0, 0.25, 4.0],
            vec![0.1, 0.1, 0.1],
            vec![10.0, -10.0, 5.0],
        ]
    }

    #[test]
    fn vector_metrics_satisfy_axioms() {
        let pts = vectors();
        assert_eq!(check_metric(&L1, &pts, 1e-9), Ok(()));
        assert_eq!(check_metric(&L2, &pts, 1e-9), Ok(()));
        assert_eq!(check_metric(&LInf, &pts, 1e-9), Ok(()));
        assert_eq!(check_metric(&Lp::new(3.0), &pts, 1e-9), Ok(()));
    }

    #[test]
    fn string_metrics_satisfy_axioms() {
        let words: Vec<String> =
            ["", "a", "ab", "abc", "abd", "zebra", "zebu", "hello"].map(String::from).to_vec();
        assert_eq!(check_metric(&Levenshtein, &words, 0.0), Ok(()));
        assert_eq!(check_metric(&PrefixDistance, &words, 0.0), Ok(()));
        assert_eq!(check_metric(&Hamming, &words, 0.0), Ok(()));
    }

    #[test]
    fn squared_euclidean_fails_triangle() {
        // Documents why L2Squared is only for order-preserving use.
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let result = check_metric(&crate::L2Squared, &pts, 0.0);
        assert!(matches!(result, Err(AxiomViolation::Triangle { .. })), "{result:?}");
    }

    #[test]
    fn broken_symmetry_detected() {
        struct Asym;
        impl Metric<f64> for Asym {
            type Dist = F64Dist;
            fn distance(&self, a: &f64, b: &f64) -> F64Dist {
                F64Dist::new(if a < b { b - a } else { 2.0 * (a - b) })
            }
        }
        let pts = vec![0.0, 1.0];
        assert!(matches!(check_metric(&Asym, &pts, 0.0), Err(AxiomViolation::Symmetry { .. })));
    }

    #[test]
    fn broken_identity_detected() {
        struct Off;
        impl Metric<f64> for Off {
            type Dist = F64Dist;
            fn distance(&self, _: &f64, _: &f64) -> F64Dist {
                F64Dist::new(1.0)
            }
        }
        assert!(matches!(check_metric(&Off, &[0.0], 0.0), Err(AxiomViolation::Identity { .. })));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = AxiomViolation::Triangle { x: 0, y: 1, z: 2, dxy: 4.0, dxz: 1.0, dzy: 1.0 };
        let s = v.to_string();
        assert!(s.contains('4') && s.contains("via"));
    }
}
