//! Batched vector-metric kernels for flat (row-major) storage.
//!
//! The headline workloads — counting distinct distance permutations over
//! 10⁶-point databases and building `distperm` indexes — spend nearly all
//! of their time in `k·n` metric evaluations.  Evaluating each pair with
//! [`Metric::distance`] leaves throughput on the table twice over: every
//! distance is a scalar reduction (`sum += …` is a serial dependency
//! chain the compiler must not reorder), and every site is re-walked per
//! point.
//!
//! # Strip-mined layout
//!
//! [`BatchDistance::batch_distances`] restructures the loop around two
//! levels of blocking:
//!
//! * **Sites are transposed** ([`TransposedSites`]: coordinate-major, so
//!   all k j-th coordinates are adjacent) — the per-coordinate site loop
//!   is a contiguous read of k values.
//! * **Points are strip-mined [`STRIP_POINTS`] (= 4) at a time.**  For
//!   each strip the kernel walks 4 × 4 (point × site) tiles whose 16
//!   accumulators live in locals of a fixed-size array — small and
//!   constant enough for the compiler to keep them **in registers** for
//!   the whole coordinate loop.  The inner step is 16 independent
//!   fused updates per coordinate: the compiler vectorizes across
//!   *sites* (the 4 site coordinates are contiguous) and pipelines
//!   across *points* (4 independent dependency chains), and — unlike a
//!   one-row-at-a-time kernel with a `k`-length accumulator array —
//!   no accumulator traffic touches memory until the tile is done.
//!   Site-count remainders (k mod 4) run a register tile of 4 × 1;
//!   point-count remainders (n mod 4) fall back to the row-at-a-time
//!   kernel.
//!
//! # Bit-identity
//!
//! Every accumulator — tiled, remainder, or row-at-a-time — belongs to
//! exactly one (point, site) pair and folds that pair's coordinates in
//! ascending coordinate order, which is precisely the order
//! [`Metric::distance`] uses.  Blocking changes *which* accumulators are
//! live concurrently, never the sequence of operations any single
//! accumulator performs, so `out[r*k + j]` is the same `f64`, to the
//! bit, that `self.distance(row_r, site_j)` produces, for every
//! representable (non-NaN) result — ±∞ included.  NaN results agree in
//! NaN-ness but not necessarily in payload bits (scalar and vector
//! instruction selections generate different quiet-NaN patterns); that
//! is immaterial to callers because every public consumer rejects NaN
//! distances with a panic ([`F64Dist::new`], the flat scan's NaN
//! check).  The flat/nested equivalence property suites
//! (`tests/kernel_equivalence.rs` at the workspace root, run under
//! `--release` by `scripts/check.sh`) pin exactly this contract.
//!
//! [`BatchDistance::batch_distances_rowwise`] keeps the one-row-at-a-time
//! kernel callable as the in-tree reference: the equivalence tests pin
//! strip == rowwise == scalar, and the `kernels` Criterion bench measures
//! what the strip layout buys over it.
//!
//! Implemented for [`L1`], [`L2`], [`L2Squared`], [`LInf`] and [`Lp`].

use crate::vector::{L2Squared, LInf, Lp, L1, L2};
use crate::{F64Dist, Metric};

/// Query points processed per strip by the strip-mined kernels.
///
/// Block sizes fed to [`BatchDistance::batch_distances`] should be a
/// multiple of this so full blocks never take the remainder path.
pub const STRIP_POINTS: usize = 4;

/// Sites per register tile inside one strip (4 points × 4 sites = 16
/// register accumulators; on x86-64 that is 8 SSE2 / 4 AVX2 vectors).
const SITE_TILE: usize = 4;

/// k sites stored coordinate-major: `data[c*k + j]` is coordinate `c` of
/// site `j`.
///
/// The transposed layout makes the per-coordinate site loop in
/// [`BatchDistance::batch_distances`] a contiguous read of k values.
#[derive(Debug, Clone)]
pub struct TransposedSites {
    k: usize,
    dim: usize,
    data: Vec<f64>,
}

impl TransposedSites {
    /// Transposes `k` sites given as concatenated row-major rows of width
    /// `dim`.
    ///
    /// # Panics
    /// Panics if `rows.len()` is not a multiple of `dim` (with `dim = 0`
    /// only an empty `rows` is accepted).
    pub fn from_rows(rows: &[f64], dim: usize) -> Self {
        let mut t = TransposedSites { k: 0, dim: 0, data: Vec::new() };
        t.assign_rows(rows, dim);
        t
    }

    /// Refills this transposed buffer from a new set of row-major sites,
    /// reusing the existing allocation — the per-query path of the flat
    /// searchers turns one query point into a 1-site set this way without
    /// allocating.
    ///
    /// # Panics
    /// As [`Self::from_rows`].
    pub fn assign_rows(&mut self, rows: &[f64], dim: usize) {
        let k = if dim == 0 {
            assert!(rows.is_empty(), "dim = 0 with non-empty site data");
            0
        } else {
            assert_eq!(rows.len() % dim, 0, "site data not a multiple of dim = {dim}");
            rows.len() / dim
        };
        self.data.clear();
        self.data.resize(rows.len(), 0.0);
        for (j, row) in rows.chunks_exact(dim.max(1)).enumerate() {
            for (c, &x) in row.iter().enumerate() {
                self.data[c * k + j] = x;
            }
        }
        self.k = k;
        self.dim = dim;
    }

    /// Number of sites k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Coordinate dimension d.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The k coordinates `c` of all sites, contiguously.
    #[inline]
    pub fn coordinate(&self, c: usize) -> &[f64] {
        &self.data[c * self.k..(c + 1) * self.k]
    }

    /// Wraps an already coordinate-major buffer (`data[c*k + j]` =
    /// coordinate `c` of site `j`) without transposing — the on-disk
    /// store (`dp-store`) persists this exact layout so loading is a
    /// straight copy.
    ///
    /// # Panics
    /// Panics if `data.len() != k * dim`.
    pub fn from_transposed(k: usize, dim: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), k * dim, "transposed site data is not k*dim = {k}*{dim}");
        TransposedSites { k, dim, data }
    }

    /// The whole coordinate-major buffer (length `k() * dim()`), the
    /// serialization view of [`Self::from_transposed`].
    #[inline]
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }
}

/// Vector metrics with a batched site-transposed kernel.
///
/// The contract, for both methods: `out[r*k + j]` receives the same
/// `f64` — same value, same floating-point rounding, bit for bit — that
/// `self.distance(row_r, site_j)` would produce, because every
/// accumulator sums its pair's coordinates in ascending order.  `out`
/// must hold `rows_count * k` elements.
pub trait BatchDistance: Metric<[f64], Dist = F64Dist> {
    /// Computes all `rows × sites` distances into `out`, row-major,
    /// through the strip-mined register-tiled kernel (see the module
    /// docs).
    ///
    /// # Panics
    /// Panics if `rows.len()` is not a multiple of `sites.dim()` or
    /// `out` is shorter than `rows_count * sites.k()`.
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]);

    /// The one-row-at-a-time reference kernel: identical contract and
    /// identical bits, k memory-resident accumulators per row instead of
    /// the register-tiled strip.  Kept callable so the equivalence tests
    /// and the `kernels` bench can pin the strip kernel against it.
    fn batch_distances_rowwise(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]);
}

/// Handles the `dim = 0` / `k = 0` degenerate shapes shared by both
/// drivers: every distance is the empty fold `finish(init)`.  Returns
/// `true` if the call was fully handled.
#[inline(always)]
fn degenerate_fill(rows: &[f64], sites: &TransposedSites, out: &mut [f64], value: f64) -> bool {
    let (k, dim) = (sites.k(), sites.dim());
    if dim > 0 && k > 0 {
        return false;
    }
    // Width-0 rows are not representable in flat storage, so a zero-dim
    // site set only ever meets an empty row buffer.
    assert!(dim > 0 || rows.is_empty(), "dim = 0 with non-empty row data");
    let n = rows.len().checked_div(dim).unwrap_or(0);
    out[..n * k].fill(value);
    true
}

/// Validates the shared shape contract and returns `(n, k, dim)`.
#[inline(always)]
fn checked_shape(rows: &[f64], sites: &TransposedSites, out: &[f64]) -> (usize, usize, usize) {
    let (k, dim) = (sites.k(), sites.dim());
    assert_eq!(rows.len() % dim, 0, "row data not a multiple of dim = {dim}");
    let n = rows.len() / dim;
    assert!(out.len() >= n * k, "output buffer too small");
    (n, k, dim)
}

/// One row's k accumulators, folded coordinate-by-coordinate — the
/// scalar-remainder and reference kernel body.
#[inline(always)]
fn accumulate_one(
    row: &[f64],
    sites: &TransposedSites,
    acc: &mut [f64],
    init: f64,
    step: impl Fn(f64, f64, f64) -> f64 + Copy,
    finish: impl Fn(f64) -> f64 + Copy,
) {
    acc.fill(init);
    for (c, &x) in row.iter().enumerate() {
        let coords = sites.coordinate(c);
        for (a, &s) in acc.iter_mut().zip(coords.iter()) {
            *a = step(*a, x, s);
        }
    }
    for a in acc.iter_mut() {
        *a = finish(*a);
    }
}

/// Row-at-a-time driver (the reference kernel).
#[inline(always)]
fn rowwise_rows(
    rows: &[f64],
    sites: &TransposedSites,
    out: &mut [f64],
    init: f64,
    step: impl Fn(f64, f64, f64) -> f64 + Copy,
    finish: impl Fn(f64) -> f64 + Copy,
) {
    if degenerate_fill(rows, sites, out, finish(init)) {
        return;
    }
    let (_, k, dim) = checked_shape(rows, sites, out);
    for (row, acc) in rows.chunks_exact(dim).zip(out.chunks_exact_mut(k)) {
        accumulate_one(row, sites, acc, init, step, finish);
    }
}

/// One strip of [`STRIP_POINTS`] rows: 4 × [`SITE_TILE`] register tiles
/// over the site axis, 4 × 1 register columns for the site remainder.
#[inline(always)]
fn accumulate_strip(
    quad: &[f64],
    sites: &TransposedSites,
    oquad: &mut [f64],
    init: f64,
    step: impl Fn(f64, f64, f64) -> f64 + Copy,
    finish: impl Fn(f64) -> f64 + Copy,
) {
    let (k, dim) = (sites.k(), sites.dim());
    let (r0, rest) = quad.split_at(dim);
    let (r1, rest) = rest.split_at(dim);
    let (r2, r3) = rest.split_at(dim);
    let mut j = 0;
    while j + SITE_TILE <= k {
        // 16 accumulators in a fixed-size local: register-resident for
        // the whole coordinate loop, no memory traffic until the stores.
        let mut acc = [[init; SITE_TILE]; STRIP_POINTS];
        for c in 0..dim {
            let coords = &sites.coordinate(c)[j..j + SITE_TILE];
            let (x0, x1, x2, x3) = (r0[c], r1[c], r2[c], r3[c]);
            for (t, &s) in coords.iter().enumerate() {
                acc[0][t] = step(acc[0][t], x0, s);
                acc[1][t] = step(acc[1][t], x1, s);
                acc[2][t] = step(acc[2][t], x2, s);
                acc[3][t] = step(acc[3][t], x3, s);
            }
        }
        for (p, tile) in acc.iter().enumerate() {
            for (t, &a) in tile.iter().enumerate() {
                oquad[p * k + j + t] = finish(a);
            }
        }
        j += SITE_TILE;
    }
    while j < k {
        let mut acc = [init; STRIP_POINTS];
        for c in 0..dim {
            let s = sites.coordinate(c)[j];
            acc[0] = step(acc[0], r0[c], s);
            acc[1] = step(acc[1], r1[c], s);
            acc[2] = step(acc[2], r2[c], s);
            acc[3] = step(acc[3], r3[c], s);
        }
        for (p, &a) in acc.iter().enumerate() {
            oquad[p * k + j] = finish(a);
        }
        j += 1;
    }
}

/// Strip-mined driver: full strips through the register tiles, the
/// n mod [`STRIP_POINTS`] tail through the row-at-a-time kernel.
#[inline(always)]
fn strip_rows(
    rows: &[f64],
    sites: &TransposedSites,
    out: &mut [f64],
    init: f64,
    step: impl Fn(f64, f64, f64) -> f64 + Copy,
    finish: impl Fn(f64) -> f64 + Copy,
) {
    if degenerate_fill(rows, sites, out, finish(init)) {
        return;
    }
    let (n, k, dim) = checked_shape(rows, sites, out);
    let out = &mut out[..n * k];
    let mut quads = rows.chunks_exact(STRIP_POINTS * dim);
    let mut oquads = out.chunks_exact_mut(STRIP_POINTS * k);
    for (quad, oquad) in quads.by_ref().zip(oquads.by_ref()) {
        accumulate_strip(quad, sites, oquad, init, step, finish);
    }
    let tail = quads.remainder();
    let otail = oquads.into_remainder();
    for (row, acc) in tail.chunks_exact(dim).zip(otail.chunks_exact_mut(k)) {
        accumulate_one(row, sites, acc, init, step, finish);
    }
}

impl BatchDistance for L1 {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        strip_rows(rows, sites, out, 0.0, |a, x, s| a + (x - s).abs(), |a| a);
    }

    fn batch_distances_rowwise(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        rowwise_rows(rows, sites, out, 0.0, |a, x, s| a + (x - s).abs(), |a| a);
    }
}

impl BatchDistance for L2Squared {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        strip_rows(rows, sites, out, 0.0, |a, x, s| a + (x - s) * (x - s), |a| a);
    }

    fn batch_distances_rowwise(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        rowwise_rows(rows, sites, out, 0.0, |a, x, s| a + (x - s) * (x - s), |a| a);
    }
}

impl BatchDistance for L2 {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        strip_rows(rows, sites, out, 0.0, |a, x, s| a + (x - s) * (x - s), f64::sqrt);
    }

    fn batch_distances_rowwise(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        rowwise_rows(rows, sites, out, 0.0, |a, x, s| a + (x - s) * (x - s), f64::sqrt);
    }
}

impl BatchDistance for LInf {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        strip_rows(rows, sites, out, 0.0, |a, x, s| a.max((x - s).abs()), |a| a);
    }

    fn batch_distances_rowwise(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        rowwise_rows(rows, sites, out, 0.0, |a, x, s| a.max((x - s).abs()), |a| a);
    }
}

impl BatchDistance for Lp {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        // Match Lp::distance exactly: it special-cases p = 1 and p = 2.
        let p = self.p();
        if p == 1.0 {
            return L1.batch_distances(rows, sites, out);
        }
        if p == 2.0 {
            return L2.batch_distances(rows, sites, out);
        }
        strip_rows(
            rows,
            sites,
            out,
            0.0,
            move |a, x, s| a + (x - s).abs().powf(p),
            move |a| a.powf(1.0 / p),
        );
    }

    fn batch_distances_rowwise(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        let p = self.p();
        if p == 1.0 {
            return L1.batch_distances_rowwise(rows, sites, out);
        }
        if p == 2.0 {
            return L2.batch_distances_rowwise(rows, sites, out);
        }
        rowwise_rows(
            rows,
            sites,
            out,
            0.0,
            move |a, x, s| a + (x - s).abs().powf(p),
            move |a| a.powf(1.0 / p),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic_rows(n: usize, dim: usize, salt: u64) -> Vec<f64> {
        // Weyl-sequence filler: deterministic, irregular, covers signs.
        (0..n * dim)
            .map(|i| {
                let t = ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ salt) >> 11) as f64
                    / (1u64 << 53) as f64;
                t * 40.0 - 20.0
            })
            .collect()
    }

    fn check_matches_scalar<M: BatchDistance>(metric: &M, n: usize, k: usize, dim: usize) {
        let rows = deterministic_rows(n, dim, 1);
        let site_rows = deterministic_rows(k, dim, 2);
        let sites = TransposedSites::from_rows(&site_rows, dim);
        let mut out = vec![f64::NAN; n * k];
        metric.batch_distances(&rows, &sites, &mut out);
        let mut out_ref = vec![f64::NAN; n * k];
        metric.batch_distances_rowwise(&rows, &sites, &mut out_ref);
        for r in 0..n {
            for j in 0..k {
                let scalar = metric
                    .distance(&rows[r * dim..(r + 1) * dim], &site_rows[j * dim..(j + 1) * dim]);
                assert_eq!(F64Dist::new(out[r * k + j]), scalar, "strip: row {r}, site {j}");
                assert_eq!(
                    out[r * k + j].to_bits(),
                    out_ref[r * k + j].to_bits(),
                    "strip vs rowwise: row {r}, site {j}"
                );
            }
        }
    }

    #[test]
    fn all_metrics_match_scalar_bit_for_bit() {
        // Shapes straddle every remainder combination: n mod 4 ∈
        // {0,1,2,3} and k mod 4 ∈ {0,1,2,3}.
        for &(n, k, dim) in &[
            (17usize, 5usize, 3usize),
            (8, 12, 7),
            (3, 1, 1),
            (20, 4, 16),
            (6, 7, 2),
            (5, 6, 4),
            (4, 3, 9),
        ] {
            check_matches_scalar(&L1, n, k, dim);
            check_matches_scalar(&L2, n, k, dim);
            check_matches_scalar(&L2Squared, n, k, dim);
            check_matches_scalar(&LInf, n, k, dim);
            check_matches_scalar(&Lp::new(3.5), n, k, dim);
            check_matches_scalar(&Lp::new(1.0), n, k, dim);
            check_matches_scalar(&Lp::new(2.0), n, k, dim);
        }
    }

    #[test]
    fn transposed_layout_is_coordinate_major() {
        let rows = [1.0, 2.0, 3.0, 10.0, 20.0, 30.0]; // two sites in 3-D
        let t = TransposedSites::from_rows(&rows, 3);
        assert_eq!(t.k(), 2);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.coordinate(0), &[1.0, 10.0]);
        assert_eq!(t.coordinate(1), &[2.0, 20.0]);
        assert_eq!(t.coordinate(2), &[3.0, 30.0]);
    }

    #[test]
    fn assign_rows_reuses_buffer_and_matches_fresh_transpose() {
        let mut t = TransposedSites::from_rows(&[1.0, 2.0, 3.0, 4.0], 2);
        // Shrink to a single site of different dimension, then grow again.
        t.assign_rows(&[7.0, 8.0, 9.0], 3);
        assert_eq!(t.k(), 1);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.coordinate(1), &[8.0]);
        let rows = deterministic_rows(3, 2, 9);
        t.assign_rows(&rows, 2);
        let fresh = TransposedSites::from_rows(&rows, 2);
        assert_eq!(t.k(), fresh.k());
        assert_eq!(t.coordinate(0), fresh.coordinate(0));
        assert_eq!(t.coordinate(1), fresh.coordinate(1));
    }

    #[test]
    fn empty_rows_produce_no_output() {
        let sites = TransposedSites::from_rows(&[0.0, 1.0], 2);
        let mut out = [f64::NAN; 0];
        L2.batch_distances(&[], &sites, &mut out);
        L2.batch_distances_rowwise(&[], &sites, &mut out);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_rows_rejected() {
        let sites = TransposedSites::from_rows(&[0.0, 1.0], 2);
        let mut out = [0.0; 2];
        L2.batch_distances(&[1.0, 2.0, 3.0], &sites, &mut out);
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn short_output_rejected() {
        let sites = TransposedSites::from_rows(&[0.0, 1.0], 1);
        let mut out = [0.0; 3];
        L2.batch_distances(&[1.0, 2.0], &sites, &mut out);
    }

    #[test]
    fn non_finite_inputs_propagate_identically() {
        let specials = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.5];
        // 5 rows of dim 2 sweeping special values against 5 sites.
        let rows: Vec<f64> = specials.iter().flat_map(|&x| [x, 1.0]).collect();
        let site_rows: Vec<f64> = specials.iter().flat_map(|&s| [0.5, s]).collect();
        let sites = TransposedSites::from_rows(&site_rows, 2);
        for p in [1.5f64, 3.0] {
            let metric = Lp::new(p);
            let mut strip = vec![0.0; 25];
            let mut rowwise = vec![0.0; 25];
            metric.batch_distances(&rows, &sites, &mut strip);
            metric.batch_distances_rowwise(&rows, &sites, &mut rowwise);
            for (a, b) in strip.iter().zip(rowwise.iter()) {
                // NaN payload bits are codegen-defined; everything else
                // (including ±∞) must agree to the bit.
                if a.is_nan() || b.is_nan() {
                    assert!(a.is_nan() && b.is_nan());
                } else {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
