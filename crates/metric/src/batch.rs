//! Batched vector-metric kernels for flat (row-major) storage.
//!
//! The headline workloads — counting distinct distance permutations over
//! 10⁶-point databases and building `distperm` indexes — spend nearly all
//! of their time in `k·n` metric evaluations.  Evaluating each pair with
//! [`Metric::distance`] leaves throughput on the table twice over: every
//! distance is a scalar reduction (`sum += …` is a serial dependency
//! chain the compiler must not reorder), and every site is re-walked per
//! point.
//!
//! [`BatchDistance::batch_distances`] restructures the loop: sites are
//! held **transposed** ([`TransposedSites`]: coordinate-major, so all k
//! j-th coordinates are adjacent) and the inner loop runs *across sites*
//! for one coordinate of one point.  The k accumulators are independent,
//! so the loop vectorizes cleanly, while each accumulator still sums its
//! coordinates in exactly the same order as [`Metric::distance`] —
//! results are **bit-for-bit identical** to the scalar path, which the
//! flat/nested equivalence property tests rely on.
//!
//! Implemented for [`L1`], [`L2`], [`L2Squared`], [`LInf`] and [`Lp`];
//! every implementation is checked against the scalar metric by tests in
//! this module and by workspace-level property tests.

use crate::vector::{L2Squared, LInf, Lp, L1, L2};
use crate::{F64Dist, Metric};

/// k sites stored coordinate-major: `data[c*k + j]` is coordinate `c` of
/// site `j`.
///
/// The transposed layout makes the per-coordinate site loop in
/// [`BatchDistance::batch_distances`] a contiguous read of k values.
#[derive(Debug, Clone)]
pub struct TransposedSites {
    k: usize,
    dim: usize,
    data: Vec<f64>,
}

impl TransposedSites {
    /// Transposes `k` sites given as concatenated row-major rows of width
    /// `dim`.
    ///
    /// # Panics
    /// Panics if `rows.len()` is not a multiple of `dim` (with `dim = 0`
    /// only an empty `rows` is accepted).
    pub fn from_rows(rows: &[f64], dim: usize) -> Self {
        let k = if dim == 0 {
            assert!(rows.is_empty(), "dim = 0 with non-empty site data");
            0
        } else {
            assert_eq!(rows.len() % dim, 0, "site data not a multiple of dim = {dim}");
            rows.len() / dim
        };
        let mut data = vec![0.0; rows.len()];
        for (j, row) in rows.chunks_exact(dim.max(1)).enumerate() {
            for (c, &x) in row.iter().enumerate() {
                data[c * k + j] = x;
            }
        }
        TransposedSites { k, dim, data }
    }

    /// Number of sites k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Coordinate dimension d.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The k coordinates `c` of all sites, contiguously.
    #[inline]
    pub fn coordinate(&self, c: usize) -> &[f64] {
        &self.data[c * self.k..(c + 1) * self.k]
    }
}

/// Vector metrics with a batched site-transposed kernel.
///
/// The contract: `out[r*k + j]` receives the same `f64` that
/// `self.distance(row_r, site_j)` would produce — same value, same
/// floating-point rounding, since both sum coordinates in ascending
/// order.  `out` must hold `rows_count * k` elements.
pub trait BatchDistance: Metric<[f64], Dist = F64Dist> {
    /// Computes all `rows × sites` distances into `out`, row-major.
    ///
    /// # Panics
    /// Panics if `rows.len()` is not a multiple of `sites.dim()` or
    /// `out` is shorter than `rows_count * sites.k()`.
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]);
}

/// Shared driver: initialise k accumulators, fold every coordinate with
/// `step`, then map each accumulator through `finish`.
#[inline(always)]
fn accumulate_rows(
    rows: &[f64],
    sites: &TransposedSites,
    out: &mut [f64],
    init: f64,
    step: impl Fn(f64, f64, f64) -> f64 + Copy,
    finish: impl Fn(f64) -> f64 + Copy,
) {
    let (k, dim) = (sites.k(), sites.dim());
    if dim == 0 || k == 0 {
        // Width-0 rows are not representable in flat storage, so a
        // zero-dim site set only ever meets an empty row buffer.
        assert!(dim > 0 || rows.is_empty(), "dim = 0 with non-empty row data");
        let n = rows.len().checked_div(dim).unwrap_or(0);
        out[..n * k].fill(finish(init));
        return;
    }
    assert_eq!(rows.len() % dim, 0, "row data not a multiple of dim = {dim}");
    let n = rows.len() / dim;
    assert!(out.len() >= n * k, "output buffer too small");
    for (row, acc) in rows.chunks_exact(dim).zip(out.chunks_exact_mut(k)) {
        acc.fill(init);
        for (c, &x) in row.iter().enumerate() {
            let coords = sites.coordinate(c);
            for (a, &s) in acc.iter_mut().zip(coords.iter()) {
                *a = step(*a, x, s);
            }
        }
        for a in acc.iter_mut() {
            *a = finish(*a);
        }
    }
}

impl BatchDistance for L1 {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        accumulate_rows(rows, sites, out, 0.0, |a, x, s| a + (x - s).abs(), |a| a);
    }
}

impl BatchDistance for L2Squared {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        accumulate_rows(rows, sites, out, 0.0, |a, x, s| a + (x - s) * (x - s), |a| a);
    }
}

impl BatchDistance for L2 {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        accumulate_rows(rows, sites, out, 0.0, |a, x, s| a + (x - s) * (x - s), f64::sqrt);
    }
}

impl BatchDistance for LInf {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        accumulate_rows(rows, sites, out, 0.0, |a, x, s| a.max((x - s).abs()), |a| a);
    }
}

impl BatchDistance for Lp {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        // Match Lp::distance exactly: it special-cases p = 1 and p = 2.
        let p = self.p();
        if p == 1.0 {
            return L1.batch_distances(rows, sites, out);
        }
        if p == 2.0 {
            return L2.batch_distances(rows, sites, out);
        }
        accumulate_rows(
            rows,
            sites,
            out,
            0.0,
            move |a, x, s| a + (x - s).abs().powf(p),
            move |a| a.powf(1.0 / p),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic_rows(n: usize, dim: usize, salt: u64) -> Vec<f64> {
        // Weyl-sequence filler: deterministic, irregular, covers signs.
        (0..n * dim)
            .map(|i| {
                let t = ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15 ^ salt) >> 11) as f64
                    / (1u64 << 53) as f64;
                t * 40.0 - 20.0
            })
            .collect()
    }

    fn check_matches_scalar<M: BatchDistance>(metric: &M, n: usize, k: usize, dim: usize) {
        let rows = deterministic_rows(n, dim, 1);
        let site_rows = deterministic_rows(k, dim, 2);
        let sites = TransposedSites::from_rows(&site_rows, dim);
        let mut out = vec![f64::NAN; n * k];
        metric.batch_distances(&rows, &sites, &mut out);
        for r in 0..n {
            for j in 0..k {
                let scalar = metric
                    .distance(&rows[r * dim..(r + 1) * dim], &site_rows[j * dim..(j + 1) * dim]);
                assert_eq!(F64Dist::new(out[r * k + j]), scalar, "mismatch at row {r}, site {j}");
            }
        }
    }

    #[test]
    fn all_metrics_match_scalar_bit_for_bit() {
        for &(n, k, dim) in &[(17usize, 5usize, 3usize), (8, 12, 7), (3, 1, 1), (20, 4, 16)] {
            check_matches_scalar(&L1, n, k, dim);
            check_matches_scalar(&L2, n, k, dim);
            check_matches_scalar(&L2Squared, n, k, dim);
            check_matches_scalar(&LInf, n, k, dim);
            check_matches_scalar(&Lp::new(3.5), n, k, dim);
            check_matches_scalar(&Lp::new(1.0), n, k, dim);
            check_matches_scalar(&Lp::new(2.0), n, k, dim);
        }
    }

    #[test]
    fn transposed_layout_is_coordinate_major() {
        let rows = [1.0, 2.0, 3.0, 10.0, 20.0, 30.0]; // two sites in 3-D
        let t = TransposedSites::from_rows(&rows, 3);
        assert_eq!(t.k(), 2);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.coordinate(0), &[1.0, 10.0]);
        assert_eq!(t.coordinate(1), &[2.0, 20.0]);
        assert_eq!(t.coordinate(2), &[3.0, 30.0]);
    }

    #[test]
    fn empty_rows_produce_no_output() {
        let sites = TransposedSites::from_rows(&[0.0, 1.0], 2);
        let mut out = [f64::NAN; 0];
        L2.batch_distances(&[], &sites, &mut out);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_rows_rejected() {
        let sites = TransposedSites::from_rows(&[0.0, 1.0], 2);
        let mut out = [0.0; 2];
        L2.batch_distances(&[1.0, 2.0, 3.0], &sites, &mut out);
    }
}
