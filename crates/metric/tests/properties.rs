//! In-crate property tests for the metric substrate.

use dp_metric::axioms::check_metric;
use dp_metric::fourpoint::check_four_point;
use dp_metric::{LInf, Levenshtein, Lp, Metric, PrefixDistance, Tree, L1, L2};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lp_axioms_hold_for_random_exponents(
        p in 1.0f64..8.0,
        points in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 3..6),
    ) {
        prop_assert!(check_metric(&Lp::new(p), &points, 1e-6).is_ok());
    }

    #[test]
    fn lp_converges_to_linf(points in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 4), 2..4)) {
        // For large p, Lp approaches Linf from above.
        let big = Lp::new(64.0);
        for a in &points {
            for b in &points {
                let dp = big.distance(a, b).get();
                let di = LInf.distance(a, b).get();
                prop_assert!(dp >= di - 1e-9);
                prop_assert!(dp <= di * 1.2 + 1e-9, "Lp64 {dp} vs Linf {di}");
            }
        }
    }

    #[test]
    fn tree_lca_distance_matches_bfs(seed in 0u64..500, n in 2usize..40) {
        let t = Tree::random(n, 5, seed);
        for u in 0..n.min(8) {
            for v in 0..n.min(8) {
                prop_assert_eq!(t.distance(u, v), t.distance_bfs(u, v));
            }
        }
    }

    #[test]
    fn tree_metrics_satisfy_four_point(seed in 0u64..200) {
        let t = Tree::random(9, 4, seed);
        let pts: Vec<usize> = t.vertices().collect();
        prop_assert!(check_four_point(&t.metric(), &pts, 0.0).is_ok());
    }

    #[test]
    fn levenshtein_bounded_by_length_difference_and_max_len(
        a in "[a-e]{0,12}",
        b in "[a-e]{0,12}",
    ) {
        let d = Levenshtein.distance(a.as_str(), b.as_str());
        prop_assert!(d as usize >= a.len().abs_diff(b.len()));
        prop_assert!(d as usize <= a.len().max(b.len()));
        prop_assert!(u32::from(d == 0) == u32::from(a == b));
    }

    #[test]
    fn prefix_distance_dominates_levenshtein(a in "[a-c]{0,10}", b in "[a-c]{0,10}") {
        prop_assert!(
            Levenshtein.distance(a.as_str(), b.as_str())
                <= PrefixDistance.distance(a.as_str(), b.as_str())
        );
    }

    #[test]
    fn vector_metric_translation_invariance(
        a in prop::collection::vec(-20.0f64..20.0, 3),
        b in prop::collection::vec(-20.0f64..20.0, 3),
        t in prop::collection::vec(-20.0f64..20.0, 3),
    ) {
        let at: Vec<f64> = a.iter().zip(&t).map(|(x, s)| x + s).collect();
        let bt: Vec<f64> = b.iter().zip(&t).map(|(x, s)| x + s).collect();
        for (da, db) in [
            (L1.distance(&a[..], &b[..]), L1.distance(&at[..], &bt[..])),
            (LInf.distance(&a[..], &b[..]), LInf.distance(&at[..], &bt[..])),
        ] {
            prop_assert!((da.get() - db.get()).abs() < 1e-9);
        }
        let d2 = L2.distance(&a[..], &b[..]).get();
        let d2t = L2.distance(&at[..], &bt[..]).get();
        prop_assert!((d2 - d2t).abs() < 1e-9);
    }
}
