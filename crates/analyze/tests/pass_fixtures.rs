//! Every dplint pass proven live against seeded fixtures: exact
//! line/col findings, waiver-respected sites, waiver-without-reason and
//! unknown-pass framework errors.
//!
//! The fixture sources live under `tests/fixtures/` (outside any `src/`
//! tree, so the workspace walker never scans them) and are lexed with a
//! faked workspace-relative path to drop them into a pass's scope.

use dp_analyze::manifest::parse_manifest;
use dp_analyze::passes::{
    self, atomic_ordering, bench_citations, crate_hygiene, float_reassoc, hot_path_hash, key_width,
    panic_boundary, vendored_deps,
};
use dp_analyze::{Diagnostic, SourceFile, Workspace};
use std::path::PathBuf;

/// 1-based column of `needle` on 1-based `line` of `text`.
fn col_of(text: &str, line: u32, needle: &str) -> u32 {
    let l = text.lines().nth(line as usize - 1).expect("fixture line exists");
    l.find(needle).expect("needle on fixture line") as u32 + 1
}

/// `(line, col)` of each finding for `pass`, in emission order.
fn positions(diags: &[Diagnostic], pass: &str) -> Vec<(u32, u32)> {
    diags.iter().filter(|d| d.pass == pass).map(|d| (d.line, d.col)).collect()
}

#[test]
fn float_reassoc_fixture() {
    let text = include_str!("fixtures/float_reassoc.rs");
    let file = SourceFile::parse("crates/permutation/src/huffman.rs", text);
    let mut out = Vec::new();
    float_reassoc::check(&file, &mut out);
    assert_eq!(
        positions(&out, float_reassoc::NAME),
        vec![
            (5, col_of(text, 5, "sum")),
            (9, col_of(text, 9, "sum")),
            (13, col_of(text, 13, "mul_add")),
        ],
        "bare .sum(), float turbofish, and mul_add are findings; the integer \
         turbofish, the waived sites, and test code are not: {out:?}"
    );
    assert!(out[0].message.contains("integer turbofish"), "{}", out[0].message);
    assert!(out[1].message.contains("explicit sequential loop"), "{}", out[1].message);
    // The reasonless waiver on line 26 suppresses its finding but is
    // itself a framework error.
    let framework = file.waiver_diagnostics(passes::PASS_NAMES);
    assert_eq!(positions(&framework, "dplint"), vec![(26, col_of(text, 26, "dplint:"))]);
    assert!(framework[0].message.contains("no reason"), "{}", framework[0].message);
}

#[test]
fn hot_path_hash_fixture() {
    let text = include_str!("fixtures/hot_path_hash.rs");
    let file = SourceFile::parse("crates/permutation/src/radix.rs", text);
    let mut out = Vec::new();
    hot_path_hash::check(&file, &mut out);
    assert_eq!(
        positions(&out, hot_path_hash::NAME),
        vec![(4, col_of(text, 4, "HashMap")), (7, col_of(text, 7, "BTreeSet"))],
        "the waived HashSet is not a finding: {out:?}"
    );
    assert!(file.waiver_diagnostics(passes::PASS_NAMES).is_empty());
}

#[test]
fn panic_boundary_fixture() {
    let text = include_str!("fixtures/panic_boundary.rs");
    let file = SourceFile::parse("crates/index/src/serve/fixture.rs", text);
    let mut out = Vec::new();
    panic_boundary::check(&file, &mut out);
    assert_eq!(
        positions(&out, panic_boundary::NAME),
        vec![
            (5, col_of(text, 5, "unwrap")),
            (9, col_of(text, 9, "panic")),
            (13, col_of(text, 13, "expect")),
        ],
        "the waived unwrap and the #[cfg(test)] assert_eq are not findings: {out:?}"
    );
}

#[test]
fn atomic_ordering_fixture() {
    let text = include_str!("fixtures/atomic_ordering.rs");
    let file = SourceFile::parse("crates/index/src/serve/steal.rs", text);
    let mut out = Vec::new();
    atomic_ordering::check(&file, &mut out);
    assert_eq!(
        positions(&out, atomic_ordering::NAME),
        vec![(6, col_of(text, 6, "Ordering"))],
        "same-line and block-above `// ordering:` comments justify their \
         sites, and std::cmp::Ordering never matches: {out:?}"
    );
    assert!(out[0].message.contains("Relaxed"), "{}", out[0].message);
}

#[test]
fn key_width_fixture() {
    let text = include_str!("fixtures/key_width.rs");
    let file = SourceFile::parse("crates/permutation/src/key.rs", text);
    let mut out = Vec::new();
    key_width::check(&file, &mut out);
    assert_eq!(
        positions(&out, key_width::NAME),
        vec![(11, col_of(text, 11, "BITS_PER_ELEM"))],
        "same-line and block-above `// width:` proofs cover their sites, the \
         waived site is silent, and test code is exempt: {out:?}"
    );
    assert!(out[0].message.contains("width:"), "{}", out[0].message);
    assert!(file.waiver_diagnostics(passes::PASS_NAMES).is_empty());
}

#[test]
fn crate_hygiene_print_fixture() {
    let text = include_str!("fixtures/crate_hygiene.rs");
    let file = SourceFile::parse("crates/core/src/survey.rs", text);
    let mut out = Vec::new();
    crate_hygiene::check_file(&file, &mut out);
    assert_eq!(
        positions(&out, crate_hygiene::NAME),
        vec![(5, col_of(text, 5, "println")), (9, col_of(text, 9, "dbg"))],
        "the waived eprintln is not a finding: {out:?}"
    );

    // The same source under src/bin/ is a binary: stdout is its job.
    let bin = SourceFile::parse("crates/bench/src/bin/table1.rs", text);
    let mut out = Vec::new();
    crate_hygiene::check_file(&bin, &mut out);
    assert!(out.is_empty(), "binaries own stdout: {out:?}");
}

#[test]
fn crate_hygiene_forbid_unsafe_roots() {
    let with =
        SourceFile::parse("crates/good/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n");
    let without = SourceFile::parse("crates/bad/src/lib.rs", "pub fn f() {}\n");
    let ws = Workspace {
        root: PathBuf::from("/nonexistent"),
        files: vec![with, without],
        manifests: vec![],
        lib_roots: vec![
            "crates/good/src/lib.rs".into(),
            "crates/bad/src/lib.rs".into(),
            "crates/ghost/src/lib.rs".into(),
        ],
        roadmap: None,
    };
    let mut out = Vec::new();
    crate_hygiene::check_crate_roots(&ws, &mut out);
    let paths: Vec<&str> = out.iter().map(|d| d.path.as_str()).collect();
    assert_eq!(paths, vec!["crates/bad/src/lib.rs", "crates/ghost/src/lib.rs"], "{out:?}");
    assert!(out[0].message.contains("missing `#![forbid(unsafe_code)]`"), "{}", out[0].message);
    assert!(out[1].message.contains("does not exist"), "{}", out[1].message);
}

#[test]
fn crate_hygiene_workspace_lints_inheritance() {
    let inherits = parse_manifest(
        "crates/good/Cargo.toml",
        "[package]\nname = \"good\"\n\n[lints]\nworkspace = true\n",
    );
    let skips = parse_manifest("crates/bad/Cargo.toml", "[package]\nname = \"bad\"\n");
    let vendor = parse_manifest("vendor/standin/Cargo.toml", "[package]\nname = \"standin\"\n");
    let virtual_root = parse_manifest("Cargo.toml", "[workspace]\nmembers = []\n");
    let ws = Workspace {
        root: PathBuf::from("/nonexistent"),
        files: vec![],
        manifests: vec![inherits, skips, vendor, virtual_root],
        lib_roots: vec![],
        roadmap: None,
    };
    let mut out = Vec::new();
    crate_hygiene::check_manifests(&ws, &mut out);
    assert_eq!(out.len(), 1, "only the non-vendor package without [lints] is flagged: {out:?}");
    assert_eq!(out[0].path, "crates/bad/Cargo.toml");
    assert!(out[0].message.contains("workspace lint table"), "{}", out[0].message);
}

#[test]
fn vendored_deps_fixture() {
    // The path-dependency audit checks the filesystem, so build the
    // fixture workspace on disk under the test-scoped target tmpdir.
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("vendored_fixture");
    std::fs::create_dir_all(root.join("vendor/goodlib")).unwrap();
    std::fs::write(root.join("vendor/goodlib/Cargo.toml"), "[package]\nname = \"goodlib\"\n")
        .unwrap();
    std::fs::create_dir_all(root.join("crates/member")).unwrap();

    let root_text = include_str!("fixtures/vendored_root.toml");
    let member_text = include_str!("fixtures/vendored_member.toml");
    let ws = Workspace {
        root,
        files: vec![],
        manifests: vec![
            parse_manifest("Cargo.toml", root_text),
            parse_manifest("crates/member/Cargo.toml", member_text),
        ],
        lib_roots: vec![],
        roadmap: None,
    };
    let mut out = Vec::new();
    vendored_deps::check(&ws, &mut out);

    let at = |path: &str, line: u32| -> &Diagnostic {
        out.iter()
            .find(|d| d.path == path && d.line == line)
            .unwrap_or_else(|| panic!("no finding at {path}:{line} in {out:?}"))
    };
    // Root table: `badws = "1.0"` needs the network.
    assert!(at("Cargo.toml", 8).message.contains("outside the repository"));
    // Member: ghost has no workspace entry; ext is version-only; escape
    // leaves the repo; missing points at a dir without a Cargo.toml.
    assert!(at("crates/member/Cargo.toml", 8).message.contains("no such entry"));
    assert!(at("crates/member/Cargo.toml", 9).message.contains("outside the repository"));
    assert!(at("crates/member/Cargo.toml", 10).message.contains("escapes the repository"));
    assert!(at("crates/member/Cargo.toml", 11).message.contains("no Cargo.toml"));
    assert_eq!(out.len(), 5, "goodlib (path) and goodlib.workspace are clean: {out:?}");
}

#[test]
fn bench_citations_fixture() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bench_fixture");
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(
        root.join("BENCH_flat_survey.json"),
        "{\"bench\":\"flat_survey\",\"ns\":1900.0}\n{\"bench\":\"flat_survey_k5\",\"ns\":2100.0}\n",
    )
    .unwrap();
    std::fs::write(root.join("BENCH_serve_steal.json"), "{\"bench\": oops}\n").unwrap();

    let roadmap = include_str!("fixtures/bench_roadmap.md");
    let mut out = Vec::new();
    bench_citations::check_roadmap(roadmap, &root, &mut out);
    assert_eq!(
        positions(&out, bench_citations::NAME),
        vec![
            (4, col_of(roadmap, 4, "BENCH_serve_steal")),
            (5, col_of(roadmap, 5, "BENCH_missing"))
        ],
        "the valid baseline is clean; the corrupt and missing ones are findings: {out:?}"
    );
    assert!(out[0].message.contains("not valid JSON lines"), "{}", out[0].message);
    assert!(out[1].message.contains("does not exist"), "{}", out[1].message);
}

#[test]
fn waiver_framework_fixture() {
    let text = include_str!("fixtures/waivers.rs");
    let file = SourceFile::parse("crates/index/src/serve/fixture.rs", text);

    // The same-line waiver suppresses the unwrap finding...
    let mut out = Vec::new();
    panic_boundary::check(&file, &mut out);
    assert!(out.is_empty(), "same-line waiver covers its own line: {out:?}");

    // ...and the unknown pass name is a framework error.
    let framework = file.waiver_diagnostics(passes::PASS_NAMES);
    assert_eq!(positions(&framework, "dplint"), vec![(8, col_of(text, 8, "dplint:"))]);
    assert!(
        framework[0].message.contains("unknown pass `no-such-pass`"),
        "{}",
        framework[0].message
    );
}
