//! Meta-test: the live workspace is dplint-clean.
//!
//! This is the self-hosting guarantee — `crates/analyze` is scanned
//! like every other crate, every waiver in the tree carries a reason,
//! and `scripts/check.sh`'s dplint gate can never fail if this passes.

use std::path::Path;

#[test]
fn live_workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root");
    let diags = dp_analyze::lint_workspace(root).expect("workspace loads");
    assert!(
        diags.is_empty(),
        "dplint findings in the live workspace:\n{}",
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
