// Seeded panic-boundary fixture (lexed as if under
// crates/index/src/serve/): exact line numbers asserted by tests.

fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn bad_panic(msg: &str) -> ! {
    panic!("{msg}")
}

fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("missing")
}

fn waived(v: Option<u32>) -> u32 {
    // dplint: allow(panic-boundary, reason = "fixture: unreachable by construction")
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_are_fine_in_test_code() {
        assert_eq!(super::bad_unwrap(Some(1)), 1);
    }
}
