// Seeded float-reassoc fixture: tests/pass_fixtures.rs asserts exact
// line numbers -- keep edits line-stable.

fn bad_bare_sum(ps: &[f64]) -> f64 {
    ps.iter().map(|p| -p * p.log2()).sum()
}

fn bad_float_turbofish(ps: &[f64]) -> f64 {
    ps.iter().sum::<f64>()
}

fn bad_fused(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}

fn good_integer_turbofish(ns: &[u64]) -> u64 {
    ns.iter().sum::<u64>()
}

fn waived(ps: &[f64]) -> f64 {
    // dplint: allow(float-reassoc, reason = "fixture: explicitly waived site")
    ps.iter().product()
}

fn waived_without_reason(ps: &[f64]) -> f64 {
    // dplint: allow(float-reassoc)
    ps.iter().product()
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_sums_are_fine_in_test_code() {
        let _ = [0.5f64].iter().sum::<f64>();
    }
}
