// Seeded crate-hygiene fixture (library code that prints): exact line
// numbers asserted by tests.

fn bad_status(x: u32) {
    println!("x = {x}");
}

fn bad_debug(x: u32) {
    dbg!(x);
}

fn waived(x: u32) {
    // dplint: allow(crate-hygiene, reason = "fixture: operator-facing status line")
    eprintln!("x = {x}");
}
