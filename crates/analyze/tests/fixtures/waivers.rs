// Waiver-framework fixture: same-line coverage, unknown pass names.

fn same_line(v: Option<u32>) -> u32 {
    v.unwrap() // dplint: allow(panic-boundary, reason = "fixture: same-line waiver")
}

fn unknown_pass() {
    // dplint: allow(no-such-pass, reason = "fixture: pass name typo")
}
