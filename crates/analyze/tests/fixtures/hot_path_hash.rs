// Seeded hot-path-hash fixture: tests/pass_fixtures.rs asserts exact
// line numbers -- keep edits line-stable.

use std::collections::HashMap;

fn distinct(keys: &[u64]) -> usize {
    let mut seen = std::collections::BTreeSet::new();
    for &k in keys {
        seen.insert(k);
    }
    seen.len()
}

fn waived_interner() {
    // dplint: allow(hot-path-hash, reason = "fixture: generic fallback path")
    let _ = std::collections::HashSet::<u32>::new();
}
