// key-width fixture: raw BITS_PER_ELEM sites with and without proofs.

pub fn annotated_same_line(k: usize) -> u32 {
    <u64 as PackedKey>::BITS_PER_ELEM * k as u32 // width: k fields of 5 bits
}

// width: twelve 5-bit fields fill 60 of a u64's 64 bits.
pub const NARROW_BITS: u32 = u64::BITS_PER_ELEM * 12;

pub fn bare(pos: usize) -> u32 {
    u128::BITS_PER_ELEM * pos as u32
}

pub fn waived() -> u32 {
    // dplint: allow(key-width, reason = "fixture site proving waivers work")
    u64::BITS_PER_ELEM
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        assert_eq!(u64::BITS_PER_ELEM, 5);
    }
}
