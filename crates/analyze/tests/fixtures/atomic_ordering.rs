// Seeded atomic-ordering fixture: exact line numbers asserted by tests.

use std::sync::atomic::{AtomicUsize, Ordering};

fn bad_unjustified(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::Relaxed)
}

fn annotated_same_line(flag: &AtomicUsize) -> usize {
    flag.load(Ordering::Acquire) // ordering: pairs with the Release store below
}

fn annotated_block_above(flag: &AtomicUsize) {
    // ordering: publishes the counter; the Acquire load in
    // annotated_same_line synchronizes with this store.
    flag.store(0, Ordering::Release);
}

fn cmp_ordering_is_not_atomic(a: u32, b: u32) -> std::cmp::Ordering {
    a.cmp(&b)
}
