//! # dp-analyze — `dplint`, the workspace invariant linter
//!
//! The property suites (`tests/survey_equivalence.rs`,
//! `tests/serve_robustness.rs`, …) enforce this workspace's contracts
//! *dynamically* — after a violation is already written.  `dplint`
//! rejects the violating **source pattern** instead, so a whole class of
//! regressions dies before a single test runs.  It is a hand-rolled
//! comment/string/raw-string-aware Rust tokenizer ([`lexer`]), a tiny
//! TOML-subset reader for manifests ([`manifest`]), a JSON validator
//! ([`jsonlint`]), and a pass framework ([`passes`]) with per-site
//! waivers and `file:line:col` diagnostics.
//!
//! ## The invariant catalogue
//!
//! * **`float-reassoc`** — *bit-identity.* Flat, nested, and parallel
//!   paths reproduce the paper's §5 counts and floating-point
//!   Huffman/entropy sums to the bit.  That survives only while every
//!   float accumulation has a source-visible order, so in the
//!   bit-identity modules `.sum()`/`.product()` must carry an explicit
//!   integer turbofish (proving exactness) and `mul_add` (fused
//!   rounding) is banned; float reductions are written as explicit
//!   sequential loops.
//! * **`hot-path-hash`** — *determinism and speed of the flat engine.*
//!   The flat kernel/radix/codebook modules replaced hash interning with
//!   sorted-run scans (PR 5); `HashMap`-family containers must not creep
//!   back into them.
//! * **`panic-boundary`** — *protocol totality.* `distperm serve`
//!   contains garbage, panics, and overload as reply lines; inside
//!   `crates/index/src/serve/` only `isolate.rs` (the `catch_unwind`
//!   boundary) may panic outside `#[cfg(test)]`.
//! * **`atomic-ordering`** — every atomic `Ordering::*` use carries an
//!   adjacent `// ordering:` justification; memory-ordering bugs are the
//!   one class the deterministic property suites cannot surface.
//! * **`key-width`** — *the width-generic packed layout.* Field
//!   arithmetic on packed keys goes through
//!   `PackedKey::{elem_shift, key_bits, field}`; any raw `BITS_PER_ELEM`
//!   use must carry an adjacent `// width:` proof that its fields fit
//!   the key word — an off-by-one there corrupts one width while the
//!   other stays green.
//! * **`crate-hygiene`** — every crate root declares
//!   `#![forbid(unsafe_code)]` (the workspace has zero `unsafe`; frozen
//!   at the strongest level), and library code never prints to the
//!   console.
//! * **`vendored-deps`** — *the offline-build guarantee.* crates.io is
//!   unreachable in this environment; every manifest dependency must
//!   resolve to a workspace path or a stand-in under `vendor/`.
//! * **`bench-citations`** — every `BENCH_*.json` baseline the ROADMAP
//!   cites exists and parses as JSON lines (replaces the old bash/jq
//!   guard in `scripts/check.sh`, with real `file:line:col`
//!   diagnostics).
//!
//! ## Waivers
//!
//! A finding is silenced per site with
//!
//! ```text
//! // dplint: allow(<pass>, reason = "why this site is genuinely exempt")
//! ```
//!
//! on the offending line or the comment block directly above it.  A
//! waiver **without a reason is itself an error**, as is one naming an
//! unknown pass — the waiver log is part of the invariant documentation.
//!
//! ## Running
//!
//! `scripts/check.sh` runs the `dplint` binary over the whole workspace
//! (before clippy, so invariant findings surface first) and fails on any
//! finding; `cargo run -p dp-analyze --bin dplint` does the same by
//! hand.  The workspace is self-hostingly clean: `crates/analyze` is
//! scanned like every other crate.

#![forbid(unsafe_code)]

pub mod jsonlint;
pub mod lexer;
pub mod manifest;
pub mod passes;
pub mod source;
pub mod workspace;

pub use source::{Diagnostic, SourceFile};
pub use workspace::Workspace;

/// Loads the workspace at `root` and runs every pass.
pub fn lint_workspace(root: &std::path::Path) -> std::io::Result<Vec<Diagnostic>> {
    let ws = workspace::load(root)?;
    Ok(passes::run_all(&ws))
}
