//! A minimal JSON *validator* (no value tree) for the `bench-citations`
//! pass: every `BENCH_*.json` baseline must parse as a stream of JSON
//! values (criterion writes JSON lines).  Hand-rolled recursive descent,
//! since crates.io is unreachable in this environment.

/// Where and why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Scanner<'a> {
    fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn fail(&self, message: impl Into<String>) -> JsonError {
        JsonError { line: self.line, col: self.col, message: message.into() }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.fail(format!(
                "expected `{}`, found {}",
                b as char,
                self.peek().map_or("end of input".into(), |c| format!("`{}`", c as char))
            )))
        }
    }

    fn value(&mut self, depth: u32) -> Result<(), JsonError> {
        if depth > 128 {
            return Err(self.fail("nesting deeper than 128"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.composite(depth, b'}', true),
            Some(b'[') => self.composite(depth, b']', false),
            Some(b'"') => self.string(),
            Some(b't') => self.keyword("true"),
            Some(b'f') => self.keyword("false"),
            Some(b'n') => self.keyword("null"),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.fail(format!("unexpected `{}`", b as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    /// `{…}` (with_keys) or `[…]` member lists share one shape.
    fn composite(&mut self, depth: u32, close: u8, with_keys: bool) -> Result<(), JsonError> {
        self.bump();
        self.skip_ws();
        if self.peek() == Some(close) {
            self.bump();
            return Ok(());
        }
        loop {
            if with_keys {
                self.skip_ws();
                self.string()?;
                self.skip_ws();
                self.expect(b':')?;
            }
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b) if b == close => {
                    self.bump();
                    return Ok(());
                }
                _ => return Err(self.fail(format!("expected `,` or `{}`", close as char))),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => {
                    self.bump();
                }
                Some(_) => {}
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), JsonError> {
        for want in word.bytes() {
            if self.bump() != Some(want) {
                return Err(self.fail(format!("malformed `{word}`")));
            }
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.bump();
        }
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.fail("malformed number"));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') {
            self.bump();
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.fail("malformed number: digits must follow `.`"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
                return Err(self.fail("malformed number: empty exponent"));
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        Ok(())
    }
}

/// Validates `text` as a non-empty stream of JSON values (`jq .`'s
/// accepted input).  Returns the number of values on success.
pub fn validate_json_stream(text: &str) -> Result<usize, JsonError> {
    let mut sc = Scanner::new(text);
    let mut count = 0usize;
    loop {
        sc.skip_ws();
        if sc.peek().is_none() {
            break;
        }
        sc.value(0)?;
        count += 1;
    }
    if count == 0 {
        return Err(JsonError { line: 1, col: 1, message: "empty file".into() });
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_json_lines() {
        let ok = "{\"group\":\"flat\",\"median_ns\":8.5e6}\n{\"group\":\"nested\",\"n\":[1,2]}\n";
        assert_eq!(validate_json_stream(ok), Ok(2));
    }

    #[test]
    fn accepts_nested_values_and_escapes() {
        assert_eq!(validate_json_stream(r#"{"a":{"b":[true,false,null,"q\"uote"]}}"#), Ok(1));
    }

    #[test]
    fn rejects_garbage_with_position() {
        let err = validate_json_stream("{\"ok\":1}\n{\"bad\": }\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unexpected"), "{}", err.message);
        assert!(validate_json_stream("").is_err());
        assert!(validate_json_stream("[1,]").is_err());
        assert!(validate_json_stream("\"unterminated").is_err());
    }
}
