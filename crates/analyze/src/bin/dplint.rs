//! `dplint` — run the workspace invariant passes and report findings.
//!
//! ```text
//! dplint [--root <dir>] [--list] [pass …]
//! ```
//!
//! With no arguments, lints the workspace containing the current
//! directory and prints one `file:line:col: [pass] message` line per
//! finding.  Naming passes restricts the report to those passes
//! (waiver-syntax errors always print).  Exit status: 0 clean, 1
//! findings, 2 usage or I/O errors.

use dp_analyze::passes::PASS_NAMES;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: dplint [--root <dir>] [--list] [pass ...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--list" => {
                for name in PASS_NAMES {
                    println!("{name}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: dplint [--root <dir>] [--list] [pass ...]");
                return ExitCode::SUCCESS;
            }
            pass if PASS_NAMES.contains(&pass) => only.push(pass.to_string()),
            other => {
                eprintln!("dplint: unknown pass or flag `{other}` (try --list)");
                return usage();
            }
        }
    }

    let root = match root {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("dplint: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match dp_analyze::workspace::find_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("dplint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let diagnostics = match dp_analyze::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dplint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut findings = 0usize;
    for d in &diagnostics {
        // Waiver-syntax errors (pass "dplint") always print.
        if !only.is_empty() && d.pass != "dplint" && !only.iter().any(|p| p == d.pass) {
            continue;
        }
        println!("{d}");
        findings += 1;
    }
    if findings > 0 {
        eprintln!(
            "dplint: {findings} finding{} — fix the site or waive it with \
             `// dplint: allow(<pass>, reason = \"...\")`",
            if findings == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
