//! Loads the workspace dplint scans: member manifests, every `.rs` file
//! under the members' `src/` trees, and the ROADMAP.
//!
//! `vendor/` members are deliberately split: their **manifests** are
//! audited (the offline-build guarantee covers them) but their sources
//! are not linted — they are API stand-ins for external crates, not
//! house code bound by the bit-identity and hygiene invariants.

use crate::manifest::{parse_manifest, Manifest};
use crate::source::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Everything the passes look at, loaded once.
pub struct Workspace {
    /// Absolute workspace root (directory holding the root `Cargo.toml`).
    pub root: PathBuf,
    /// Lexed house sources (members' `src/` trees plus the root `src/`).
    pub files: Vec<SourceFile>,
    /// Parsed manifests: root + every member, vendor included.
    pub manifests: Vec<Manifest>,
    /// Workspace-relative paths of non-vendor crate roots (`…/src/lib.rs`).
    pub lib_roots: Vec<String>,
    /// `ROADMAP.md` content, if present.
    pub roadmap: Option<String>,
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.collect::<io::Result<Vec<_>>>()?.into_iter().collect();
    entries.sort_by_key(std::fs::DirEntry::path);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads the workspace rooted at `root` (must hold the root `Cargo.toml`).
pub fn load(root: &Path) -> io::Result<Workspace> {
    let root = root.canonicalize()?;
    let root_manifest_text = std::fs::read_to_string(root.join("Cargo.toml"))?;
    let root_manifest = parse_manifest("Cargo.toml", &root_manifest_text);
    if !root_manifest.is_workspace_root {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not a workspace root", root.join("Cargo.toml").display()),
        ));
    }

    let mut manifests = Vec::new();
    let mut lib_roots = Vec::new();
    let mut src_dirs = vec![root.join("src")];
    // The root manifest is also the façade package with `src/lib.rs`.
    lib_roots.push("src/lib.rs".to_string());
    let members = root_manifest.members.clone();
    manifests.push(root_manifest);
    for member in &members {
        let dir = root.join(member);
        let manifest_path = dir.join("Cargo.toml");
        let text = std::fs::read_to_string(&manifest_path)?;
        manifests.push(parse_manifest(&rel(&root, &manifest_path), &text));
        if !member.starts_with("vendor/") {
            lib_roots.push(format!("{member}/src/lib.rs"));
            src_dirs.push(dir.join("src"));
        }
    }

    let mut files = Vec::new();
    for dir in &src_dirs {
        let mut paths = Vec::new();
        walk_rs(dir, &mut paths)?;
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            files.push(SourceFile::parse(&rel(&root, &path), &text));
        }
    }

    let roadmap = std::fs::read_to_string(root.join("ROADMAP.md")).ok();
    Ok(Workspace { root, files, manifests, lib_roots, roadmap })
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if parse_manifest("Cargo.toml", &text).is_workspace_root {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
