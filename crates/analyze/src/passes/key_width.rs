//! `key-width` — every raw use of the packed stride carries a proof.
//!
//! The width-generic packed pipeline (PR 9) keeps all field arithmetic
//! behind `PackedKey::elem_shift` / `key_bits` / `field`, so the 5-bit
//! stride is spelled in very few places — and each spelling is load
//! bearing: an off-by-one there corrupts keys at one width while the
//! other stays green, exactly the class of bug the `u64`/`u128` seam
//! tests exist to catch.  So every `BITS_PER_ELEM` use must have an
//! adjacent `// width:` comment (same line, or the contiguous comment
//! block directly above) proving the arithmetic fits the word — how
//! many fields, which word, why the bound holds.

use crate::source::{Diagnostic, SourceFile};

pub const NAME: &str = "key-width";

/// Is line `l` annotated by a `// width:` comment on the same line or
/// in the contiguous comment block immediately above it?
fn has_width_comment(file: &SourceFile, line: u32) -> bool {
    let annotated = |l: u32| file.comments.iter().any(|c| c.line == l && c.text.contains("width:"));
    if annotated(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 && file.comment_only_lines.contains(&l) {
        if annotated(l) {
            return true;
        }
        l -= 1;
    }
    false
}

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for tok in &file.code {
        if tok.is_ident("BITS_PER_ELEM") && !has_width_comment(file, tok.line) {
            file.finding(
                NAME,
                tok,
                true,
                "`BITS_PER_ELEM` without an adjacent `// width:` proof; state how many \
                 5-bit fields this arithmetic packs and why they fit the key word \
                 (prefer `elem_shift`/`key_bits`/`field`, which carry the proof once)"
                    .to_string(),
                out,
            );
        }
    }
}
