//! `panic-boundary` — the total-by-contract subsystems stay total.
//!
//! Two subsystems promise totality.  `distperm serve` promises that
//! input garbage, query panics, and overload all stay inside the
//! session as reply lines; the only place allowed to panic is the
//! isolation boundary itself (`isolate.rs`, which owns `catch_unwind`
//! and the test-only fault injector).  The `dp-store` I/O layer
//! promises that hostile bytes — truncation anywhere, corruption at any
//! offset — surface as typed `StoreError`s, never as a panic
//! (`tests/store_robustness.rs` pins that dynamically).  In both scopes
//! (`crates/index/src/serve/`, `crates/store/src/`), panicking
//! constructs outside `#[cfg(test)]` are findings: each must be
//! rewritten total (poison recovery, `let … else`, bounds-checked
//! reads) or carry a waiver arguing why the crash is genuinely
//! unreachable or unservable.

use crate::source::{Diagnostic, SourceFile};

pub const NAME: &str = "panic-boundary";

const BANNED_MACROS: &[&str] =
    &["panic", "assert", "assert_eq", "assert_ne", "unreachable", "todo", "unimplemented"];
const BANNED_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.code.iter().enumerate() {
        let next_bang = file.code.get(i + 1).is_some_and(|t| t.is_punct(b'!'));
        let is_macro = next_bang && BANNED_MACROS.iter().any(|m| tok.is_ident(m));
        let prev_dot = i > 0 && file.code[i - 1].is_punct(b'.');
        let next_paren = file.code.get(i + 1).is_some_and(|t| t.is_punct(b'('));
        let is_method = prev_dot && next_paren && BANNED_METHODS.iter().any(|m| tok.is_ident(m));
        if is_macro || is_method {
            let call = if is_macro { format!("{}!", tok.text) } else { format!(".{}()", tok.text) };
            file.finding(
                NAME,
                tok,
                true,
                format!(
                    "`{call}` inside a total-by-contract subsystem (serve loop / store I/O); \
                     only isolate.rs may panic.  Recover (e.g. `unwrap_or_else(PoisonError::\
                     into_inner)`, `let … else`, bounds-checked reads) or waive with a reason \
                     proving the crash is unreachable or unservable"
                ),
                out,
            );
        }
    }
}
