//! `vendored-deps` — the offline-build guarantee, statically.
//!
//! crates.io is unreachable in this environment; the build works only
//! because every dependency edge resolves to a workspace crate or a
//! stand-in under `vendor/`.  This pass audits every member manifest:
//!
//! * `dep.workspace = true` must resolve through the root
//!   `[workspace.dependencies]` table to a `path` entry;
//! * `dep = { path = "…" }` must stay inside the repository and point at
//!   a directory that actually holds a `Cargo.toml`;
//! * version-only, `git`, or registry dependencies are findings — they
//!   would need the network.

use crate::manifest::{DepSource, Manifest};
use crate::source::Diagnostic;
use crate::workspace::Workspace;
use std::path::{Component, Path, PathBuf};

pub const NAME: &str = "vendored-deps";

/// Lexically normalizes `dir/path` (no symlink resolution — the audit is
/// about where the manifest *says* the dep lives).
fn normalize(dir: &Path, path: &str) -> Option<PathBuf> {
    let mut out = PathBuf::new();
    for c in dir.join(path).components() {
        match c {
            Component::ParentDir => {
                if !out.pop() {
                    return None;
                }
            }
            Component::CurDir => {}
            other => out.push(other.as_os_str()),
        }
    }
    Some(out)
}

fn workspace_table(ws: &Workspace) -> impl Iterator<Item = &crate::manifest::Dep> {
    ws.manifests
        .iter()
        .filter(|m| m.is_workspace_root)
        .flat_map(|m| m.deps.iter().filter(|d| d.section == "workspace.dependencies"))
}

fn manifest_dir(ws: &Workspace, m: &Manifest) -> PathBuf {
    let rel = Path::new(&m.rel_path);
    ws.root.join(rel.parent().unwrap_or_else(|| Path::new("")))
}

pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let mut push = |m: &Manifest, line: u32, message: String| {
        out.push(Diagnostic { pass: NAME, path: m.rel_path.clone(), line, col: 1, message });
    };
    for m in &ws.manifests {
        for dep in &m.deps {
            match &dep.source {
                DepSource::External(why) => push(
                    m,
                    dep.line,
                    format!(
                        "dependency `{}` resolves outside the repository ({why}); crates.io \
                         is unreachable here — vendor it under vendor/ and use a path \
                         dependency",
                        dep.name
                    ),
                ),
                DepSource::Workspace => {
                    if dep.section == "workspace.dependencies" {
                        continue;
                    }
                    let entry = workspace_table(ws).find(|d| d.name == dep.name);
                    match entry.map(|d| &d.source) {
                        Some(DepSource::Path(_)) => {}
                        Some(_) => push(
                            m,
                            dep.line,
                            format!(
                                "dependency `{}` inherits a non-path entry from \
                                 [workspace.dependencies]",
                                dep.name
                            ),
                        ),
                        None => push(
                            m,
                            dep.line,
                            format!(
                                "dependency `{}` sets workspace = true but \
                                 [workspace.dependencies] has no such entry",
                                dep.name
                            ),
                        ),
                    }
                }
                DepSource::Path(p) => {
                    let dir = manifest_dir(ws, m);
                    match normalize(&dir, p) {
                        Some(abs) if abs.starts_with(&ws.root) => {
                            if !abs.join("Cargo.toml").is_file() {
                                push(
                                    m,
                                    dep.line,
                                    format!(
                                        "dependency `{}` points at `{p}`, which has no \
                                         Cargo.toml",
                                        dep.name
                                    ),
                                );
                            }
                        }
                        _ => push(
                            m,
                            dep.line,
                            format!(
                                "dependency `{}` path `{p}` escapes the repository; the \
                                 offline-build guarantee covers only in-tree crates",
                                dep.name
                            ),
                        ),
                    }
                }
            }
        }
    }
}
