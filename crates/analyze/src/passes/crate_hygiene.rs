//! `crate-hygiene` — workspace-wide source hygiene.
//!
//! Two rules:
//!
//! 1. every non-vendor crate root declares `#![forbid(unsafe_code)]` —
//!    the workspace has zero `unsafe` and freezes that at the strongest
//!    lint level (`forbid` cannot be re-`allow`ed downstream);
//! 2. no `println!`/`print!`/`eprintln!`/`eprint!`/`dbg!` in library
//!    code — libraries report through return values and `Write` handles;
//!    binaries (`src/bin/`, the `distperm` CLI entry point) own stdout.

use crate::passes::is_bin_file;
use crate::source::{Diagnostic, SourceFile};
use crate::workspace::Workspace;

pub const NAME: &str = "crate-hygiene";

const PRINT_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Does the file open with `#![forbid(unsafe_code)]`?
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    file.code.windows(7).any(|w| {
        w[0].is_punct(b'#')
            && w[1].is_punct(b'!')
            && w[2].is_punct(b'[')
            && w[3].is_ident("forbid")
            && w[4].is_punct(b'(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(b')')
    })
}

/// Per-file rule: print macros in library code.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if is_bin_file(&file.rel_path) {
        return;
    }
    for (i, tok) in file.code.iter().enumerate() {
        let next_bang = file.code.get(i + 1).is_some_and(|t| t.is_punct(b'!'));
        if next_bang && PRINT_MACROS.iter().any(|m| tok.is_ident(m)) {
            file.finding(
                NAME,
                tok,
                true,
                format!(
                    "`{}!` in library code; libraries report through return values and \
                     `Write` handles — direct console output belongs to binaries",
                    tok.text
                ),
                out,
            );
        }
    }
}

/// Workspace rule: every non-vendor package manifest opts into the
/// curated `[workspace.lints]` table (`lints.workspace = true`), so a
/// new crate cannot silently skip the house clippy set.
pub fn check_manifests(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for m in &ws.manifests {
        if m.package_name.is_none()
            || m.rel_path.starts_with("vendor/")
            || m.inherits_workspace_lints
        {
            continue;
        }
        out.push(Diagnostic {
            pass: NAME,
            path: m.rel_path.clone(),
            line: 1,
            col: 1,
            message: "manifest does not inherit the workspace lint table; add \
                      `[lints]\\nworkspace = true` so the curated clippy set applies \
                      (vendor/ stand-ins are exempt — they are not house code)"
                .to_string(),
        });
    }
}

/// Workspace rule: every non-vendor crate root carries the attribute.
pub fn check_crate_roots(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for root in &ws.lib_roots {
        let message = match ws.files.iter().find(|f| &f.rel_path == root) {
            Some(file) if has_forbid_unsafe(file) => continue,
            Some(_) => {
                "crate root is missing `#![forbid(unsafe_code)]`; the workspace has zero \
                 `unsafe` and every crate freezes that at the root"
            }
            None => "declared crate root does not exist",
        };
        out.push(Diagnostic {
            pass: NAME,
            path: root.clone(),
            line: 1,
            col: 1,
            message: message.to_string(),
        });
    }
}
