//! `hot-path-hash` — no hash/tree containers in the flat hot paths.
//!
//! PR 5 replaced hash interning with sorted-run flat codebooks
//! (`FlatCodebook`/`PackedCodebook`) and radix-sorted packed counting;
//! the scoped modules are exactly the ones that won that eviction.  A
//! `HashMap` creeping back in costs the iteration-order determinism and
//! the cache behaviour the flat engine's speed and bit-identity rest on.
//! The generic-path interner (arbitrary k, off the hot path) keeps
//! explicit waivers where it legitimately lives.

use crate::source::{Diagnostic, SourceFile};

pub const NAME: &str = "hot-path-hash";

const BANNED: &[&str] = &[
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "FxHashMap",
    "FxHashSet",
    "FxHasher",
    "FxBuildHasher",
];

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for tok in &file.code {
        if BANNED.iter().any(|b| tok.is_ident(b)) {
            file.finding(
                NAME,
                tok,
                true,
                format!(
                    "`{}` in a flat kernel/radix/codebook module; the hot paths use \
                     sorted-run scans and flat codebooks — hash/tree containers were \
                     deliberately evicted (waive only for the generic fallback path, \
                     with a reason)",
                    tok.text
                ),
                out,
            );
        }
    }
}
