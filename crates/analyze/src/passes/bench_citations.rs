//! `bench-citations` — every bench baseline the ROADMAP cites is real.
//!
//! The ROADMAP's Performance section quotes numbers out of
//! `BENCH_*.json` files recorded by `cargo bench`; a stale rename once
//! broke a baseline reference silently.  This pass (replacing the old
//! bash/jq guard in `scripts/check.sh`) scans `ROADMAP.md` for
//! `BENCH_<name>.json` citations and requires each cited file to exist
//! at the workspace root and parse as a stream of JSON values, with the
//! diagnostic pointing at the citing ROADMAP line.

use crate::jsonlint::validate_json_stream;
use crate::source::Diagnostic;
use crate::workspace::Workspace;
use std::path::Path;

pub const NAME: &str = "bench-citations";

/// `(name, line, col)` of each distinct `BENCH_*.json` citation (first
/// occurrence wins).
fn citations(roadmap: &str) -> Vec<(String, u32, u32)> {
    let mut out: Vec<(String, u32, u32)> = Vec::new();
    for (idx, line) in roadmap.lines().enumerate() {
        let mut from = 0usize;
        while let Some(at) = line[from..].find("BENCH_") {
            let start = from + at;
            let tail = &line[start..];
            let end = tail
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
                .unwrap_or(tail.len());
            let token = tail[..end].trim_end_matches('.');
            if let Some(stem) = token.strip_suffix(".json") {
                if !stem.is_empty() && !out.iter().any(|(n, _, _)| n == token) {
                    out.push((token.to_string(), idx as u32 + 1, start as u32 + 1));
                }
            }
            from = start + end.max(1);
        }
    }
    out
}

/// Core check over roadmap text + a root directory; split out so fixture
/// tests can run it against synthetic trees.
pub fn check_roadmap(roadmap: &str, root: &Path, out: &mut Vec<Diagnostic>) {
    for (name, line, col) in citations(roadmap) {
        let path = root.join(&name);
        let mut push = |message: String| {
            out.push(Diagnostic { pass: NAME, path: "ROADMAP.md".into(), line, col, message });
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            push(format!(
                "cited bench baseline `{name}` does not exist at the workspace root; \
                 re-record it (each BENCH file notes its exact `cargo bench` invocation) \
                 or fix the citation"
            ));
            continue;
        };
        if let Err(e) = validate_json_stream(&text) {
            push(format!(
                "cited bench baseline `{name}` is not valid JSON lines ({name}:{}:{}: {})",
                e.line, e.col, e.message
            ));
        }
    }
}

pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    match &ws.roadmap {
        Some(roadmap) => check_roadmap(roadmap, &ws.root, out),
        None => out.push(Diagnostic {
            pass: NAME,
            path: "ROADMAP.md".into(),
            line: 1,
            col: 1,
            message: "ROADMAP.md is missing; the bench-citation audit has nothing to check"
                .to_string(),
        }),
    }
}
