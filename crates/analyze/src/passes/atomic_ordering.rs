//! `atomic-ordering` — every atomic memory ordering carries a proof.
//!
//! Atomics are the one place the workspace's property suites cannot see
//! a wrong answer deterministically: a too-weak ordering is a latent
//! reordering bug, a too-strong one is silent cost.  So every
//! `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}` use must have
//! an adjacent `// ordering:` comment (same line, or the contiguous
//! comment block directly above) justifying the choice — starting with
//! the steal cursor's `fetch_add(chunk, Ordering::Relaxed)`.
//! `std::cmp::Ordering`'s variants (`Less`/`Equal`/`Greater`) never
//! collide with the atomic set, so the pass keys on the variant names.

use crate::source::{Diagnostic, SourceFile};

pub const NAME: &str = "atomic-ordering";

const ATOMIC_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Is line `l` annotated by an `// ordering:` comment on the same line
/// or in the contiguous comment block immediately above it?
fn has_ordering_comment(file: &SourceFile, line: u32) -> bool {
    let annotated =
        |l: u32| file.comments.iter().any(|c| c.line == l && c.text.contains("ordering:"));
    if annotated(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 && file.comment_only_lines.contains(&l) {
        if annotated(l) {
            return true;
        }
        l -= 1;
    }
    false
}

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.code.iter().enumerate() {
        if !tok.is_ident("Ordering") {
            continue;
        }
        let t = &file.code;
        let is_atomic_variant = t.get(i + 1).is_some_and(|t| t.is_punct(b':'))
            && t.get(i + 2).is_some_and(|t| t.is_punct(b':'))
            && t.get(i + 3).is_some_and(|v| ATOMIC_VARIANTS.iter().any(|a| v.is_ident(a)));
        if is_atomic_variant && !has_ordering_comment(file, tok.line) {
            let variant = &t[i + 3].text;
            file.finding(
                NAME,
                tok,
                true,
                format!(
                    "`Ordering::{variant}` without an adjacent `// ordering:` justification; \
                     state why {variant} is correct here (what the atomic synchronizes, and \
                     what provides any ordering it does not)"
                ),
                out,
            );
        }
    }
}
