//! The lint passes and the driver that runs them over a [`Workspace`].
//!
//! Each pass encodes one invariant the workspace already lives by (see
//! the crate docs for the catalogue).  Passes are scoped by
//! workspace-relative path — the scopes are data, kept here so a glance
//! shows exactly which modules each contract binds.

use crate::source::{Diagnostic, SourceFile};
use crate::workspace::Workspace;

pub mod atomic_ordering;
pub mod bench_citations;
pub mod crate_hygiene;
pub mod float_reassoc;
pub mod hot_path_hash;
pub mod key_width;
pub mod panic_boundary;
pub mod vendored_deps;

/// Every pass name, for waiver validation and `dplint --list`.
pub const PASS_NAMES: &[&str] = &[
    float_reassoc::NAME,
    hot_path_hash::NAME,
    panic_boundary::NAME,
    atomic_ordering::NAME,
    key_width::NAME,
    crate_hygiene::NAME,
    vendored_deps::NAME,
    bench_citations::NAME,
];

/// Bit-identity modules: float accumulations here must be explicit
/// sequential loops, never iterator reductions whose order/type is
/// implicit (`tests/survey_equivalence.rs` pins the sums to the bit).
pub const FLOAT_REASSOC_SCOPE: &[&str] = &[
    "crates/metric/src/batch.rs",
    "crates/metric/src/vector.rs",
    "crates/permutation/src/huffman.rs",
    "crates/permutation/src/permdist.rs",
    "crates/permutation/src/shard.rs",
    "crates/core/src/survey.rs",
    "crates/core/src/survey_flat.rs",
    "crates/core/src/count.rs",
    "crates/core/src/dimension.rs",
    "crates/datasets/src/rho.rs",
];

/// Flat kernel / radix / codebook modules: the PR 5 sorted-run pipeline
/// evicted hash containers from these hot paths — they must not creep
/// back (the generic-path interner keeps explicit waivers).  PR 9's
/// width-generic key module joins the scope: both packed widths sort and
/// count through it.
pub const HOT_PATH_HASH_SCOPE: &[&str] = &[
    "crates/metric/src/batch.rs",
    "crates/permutation/src/key.rs",
    "crates/permutation/src/radix.rs",
    "crates/permutation/src/bits.rs",
    "crates/permutation/src/compute.rs",
    "crates/permutation/src/encoding.rs",
    "crates/permutation/src/shard.rs",
    "crates/core/src/survey_flat.rs",
];

/// Total-by-contract subsystems — only the isolation boundary may
/// panic: the serving subsystem (a panicking worker would take the
/// session down) and the store I/O layer (the reader must turn hostile
/// bytes into typed `StoreError`s, never a panic; the writer shares the
/// modules).
pub const PANIC_BOUNDARY_SCOPES: &[&str] = &["crates/index/src/serve/", "crates/store/src/"];

/// The one file inside the serve scope allowed to panic (it is the
/// `catch_unwind` boundary and the test-only fault injector).
pub const PANIC_BOUNDARY_EXEMPT: &[&str] = &["crates/index/src/serve/isolate.rs"];

/// Library files allowed to use `println!`-family macros: binaries.
pub fn is_bin_file(rel_path: &str) -> bool {
    rel_path.contains("/src/bin/") || rel_path == "crates/cli/src/main.rs"
}

fn in_scope(file: &SourceFile, scope: &[&str]) -> bool {
    scope.contains(&file.rel_path.as_str())
}

/// Runs every pass plus the waiver-syntax checks; diagnostics come back
/// sorted by path, line, column.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        out.extend(file.waiver_diagnostics(PASS_NAMES));
        if in_scope(file, FLOAT_REASSOC_SCOPE) {
            float_reassoc::check(file, &mut out);
        }
        if in_scope(file, HOT_PATH_HASH_SCOPE) {
            hot_path_hash::check(file, &mut out);
        }
        if PANIC_BOUNDARY_SCOPES.iter().any(|scope| file.rel_path.starts_with(scope))
            && !PANIC_BOUNDARY_EXEMPT.contains(&file.rel_path.as_str())
        {
            panic_boundary::check(file, &mut out);
        }
        atomic_ordering::check(file, &mut out);
        key_width::check(file, &mut out);
        crate_hygiene::check_file(file, &mut out);
    }
    crate_hygiene::check_crate_roots(ws, &mut out);
    crate_hygiene::check_manifests(ws, &mut out);
    vendored_deps::check(ws, &mut out);
    bench_citations::check(ws, &mut out);
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.pass).cmp(&(b.path.as_str(), b.line, b.col, b.pass))
    });
    out
}
