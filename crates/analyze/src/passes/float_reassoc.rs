//! `float-reassoc` — no implicit float reductions in bit-identity modules.
//!
//! The house invariant pins flat, nested, and parallel paths to
//! bit-identical floating-point Huffman/entropy sums.  That only holds
//! while every float accumulation has a source-visible order; an
//! `iter().sum::<f64>()` hides the fold behind a trait impl (and invites
//! "harmless" refactors into tree reductions), and `mul_add` contracts
//! rounding steps outright.  In the scoped modules:
//!
//! * `.sum()` / `.product()` must carry an explicit **integer** turbofish
//!   (`.sum::<u64>()`) proving the reduction is exact;
//! * float reductions must be written as explicit sequential loops;
//! * `mul_add` is banned.

use crate::source::{Diagnostic, SourceFile};

pub const NAME: &str = "float-reassoc";

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// The turbofish type after `.sum`, if the next tokens are `::<T>`.
fn turbofish_type(file: &SourceFile, i: usize) -> Option<&str> {
    let t = &file.code;
    if t.get(i + 1)?.is_punct(b':')
        && t.get(i + 2)?.is_punct(b':')
        && t.get(i + 3)?.is_punct(b'<')
        && t.get(i + 5)?.is_punct(b'>')
    {
        Some(t[i + 4].text.as_str())
    } else {
        None
    }
}

pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.code.iter().enumerate() {
        let prev_dot = i > 0 && file.code[i - 1].is_punct(b'.');
        if !prev_dot {
            continue;
        }
        if tok.is_ident("mul_add") {
            file.finding(
                NAME,
                tok,
                true,
                "`mul_add` contracts rounding steps; bit-identity modules must keep every \
                 float operation a separately rounded source operation"
                    .to_string(),
                out,
            );
        } else if tok.is_ident("sum") || tok.is_ident("product") {
            match turbofish_type(file, i) {
                Some(ty) if INT_TYPES.contains(&ty) => {}
                Some(ty) => file.finding(
                    NAME,
                    tok,
                    true,
                    format!(
                        "`.{}::<{}>()` is a float reduction behind a trait impl; write it as \
                         an explicit sequential loop so accumulation order is part of the \
                         source (bit-identity contract)",
                        tok.text, ty
                    ),
                    out,
                ),
                None => file.finding(
                    NAME,
                    tok,
                    true,
                    format!(
                        "`.{}()` without an integer turbofish in a bit-identity module; \
                         annotate the exact integer type (e.g. `.{}::<u64>()`) or, for \
                         floats, write an explicit sequential loop",
                        tok.text, tok.text
                    ),
                    out,
                ),
            }
        }
    }
}
