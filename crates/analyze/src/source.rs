//! A lexed source file plus the lint-framework context derived from it:
//! waivers, `#[cfg(test)]` regions, and diagnostics.

use crate::lexer::{tokenize, Token, TokenKind};
use std::fmt;

/// One lint finding, pointing at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass that produced the finding (`"float-reassoc"`, …).
    pub pass: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: [{}] {}", self.path, self.line, self.col, self.pass, self.message)
    }
}

/// A `// dplint: allow(float-reassoc, reason = "…")`-style waiver found
/// in a comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The waived pass name as written.
    pub pass: String,
    /// The justification, if one was written (its absence is an error).
    pub reason: Option<String>,
    /// Line of the comment holding the waiver.
    pub line: u32,
    /// Column of the `dplint:` marker.
    pub col: u32,
    /// Last line this waiver covers (see [`SourceFile::waiver_covers`]).
    pub last_covered_line: u32,
}

/// A lexed file ready for passes to scan.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (fixture tests fake
    /// this to drop a file into a pass's scope).
    pub rel_path: String,
    /// Code tokens, comments excluded.
    pub code: Vec<Token>,
    /// Comment tokens only, in source order.
    pub comments: Vec<Token>,
    /// Waivers parsed out of the comments.
    pub waivers: Vec<Waiver>,
    /// `(first, last)` line ranges under `#[cfg(test)]` / `#[test]`.
    pub test_regions: Vec<(u32, u32)>,
    /// Lines holding only comments/whitespace (no code tokens).
    pub comment_only_lines: Vec<u32>,
}

impl SourceFile {
    /// Lexes `text` as the file at `rel_path`.
    pub fn parse(rel_path: &str, text: &str) -> Self {
        let tokens = tokenize(text);
        let (comments, code): (Vec<_>, Vec<_>) = tokens.into_iter().partition(Token::is_comment);
        let comment_only_lines = comment_only_lines(&code, &comments);
        let last_line = text.lines().count() as u32;
        let waivers = comments
            .iter()
            .filter_map(|c| parse_waiver(c, &comment_only_lines, last_line))
            .collect();
        let test_regions = find_test_regions(&code);
        Self {
            rel_path: rel_path.to_string(),
            code,
            comments,
            waivers,
            test_regions,
            comment_only_lines,
        }
    }

    /// True if `line` falls inside a `#[cfg(test)]` / `#[test]` region.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_regions.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// True if a waiver for `pass` covers `line`.
    ///
    /// A waiver covers its own comment's line; a waiver on a
    /// comment-only line additionally covers every following line of the
    /// same comment block plus the first code line after it — so a
    /// multi-line justification still reaches the statement below it.
    pub fn waiver_covers(&self, pass: &str, line: u32) -> bool {
        self.waivers
            .iter()
            .any(|w| w.pass == pass && (w.line..=w.last_covered_line).contains(&line))
    }

    /// Framework findings about the waivers themselves: a waiver without
    /// a reason is an error, as is a waiver naming an unknown pass.
    pub fn waiver_diagnostics(&self, known_passes: &[&'static str]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for w in &self.waivers {
            if w.reason.as_deref().is_none_or(|r| r.trim().is_empty()) {
                out.push(Diagnostic {
                    pass: "dplint",
                    path: self.rel_path.clone(),
                    line: w.line,
                    col: w.col,
                    message: format!(
                        "waiver for `{}` has no reason; write \
                         `dplint: allow({}, reason = \"…\")` — an unjustified waiver is \
                         itself a violation",
                        w.pass, w.pass
                    ),
                });
            }
            if !known_passes.contains(&w.pass.as_str()) {
                out.push(Diagnostic {
                    pass: "dplint",
                    path: self.rel_path.clone(),
                    line: w.line,
                    col: w.col,
                    message: format!("waiver names unknown pass `{}`", w.pass),
                });
            }
        }
        out
    }

    /// Emits a finding at a token unless waived or (when `skip_test_code`)
    /// inside test code.
    pub fn finding(
        &self,
        pass: &'static str,
        tok: &Token,
        skip_test_code: bool,
        message: String,
        out: &mut Vec<Diagnostic>,
    ) {
        if skip_test_code && self.in_test_code(tok.line) {
            return;
        }
        if self.waiver_covers(pass, tok.line) {
            return;
        }
        out.push(Diagnostic {
            pass,
            path: self.rel_path.clone(),
            line: tok.line,
            col: tok.col,
            message,
        });
    }
}

/// Lines that hold only comments (and whitespace) — used to extend a
/// standalone waiver comment's coverage down to the code it annotates.
fn comment_only_lines(code: &[Token], comments: &[Token]) -> Vec<u32> {
    let mut lines: Vec<u32> = Vec::new();
    for c in comments {
        let first = c.line;
        let last = first + c.text.bytes().filter(|&b| b == b'\n').count() as u32;
        for line in first..=last {
            let has_code = code.iter().any(|t| t.line == line);
            if !has_code && !lines.contains(&line) {
                lines.push(line);
            }
        }
    }
    lines
}

/// Parses `dplint: allow(pass[, reason = "…"])` out of a comment token.
fn parse_waiver(comment: &Token, comment_only_lines: &[u32], last_line: u32) -> Option<Waiver> {
    let marker = "dplint:";
    let at = comment.text.find(marker)?;
    let rest = comment.text[at + marker.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    // A line-comment waiver whose reason wraps onto the next comment line
    // has no `)` in this token; the tail of the line is still the reason.
    let inner = match rest.find(')') {
        Some(close) => &rest[..close],
        None => rest,
    };
    let (pass, reason) = match inner.split_once(',') {
        None => (inner.trim(), None),
        Some((pass, rest)) => {
            let reason = rest
                .trim()
                .strip_prefix("reason")
                .map(|r| r.trim_start().strip_prefix('=').unwrap_or(r).trim())
                .map(|r| r.trim_matches('"').to_string());
            (pass.trim(), reason)
        }
    };
    // Only kebab-case pass names are waivers; `allow(<pass>, …)` in prose
    // documenting the syntax is not one.
    if pass.is_empty() || !pass.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
        return None;
    }
    // Coverage: the waiver's own line; if that line is comment-only,
    // extend through the comment block and onto the first line after it.
    let mut last_covered = comment.line;
    while comment_only_lines.contains(&last_covered) && last_covered < last_line {
        last_covered += 1;
    }
    Some(Waiver {
        pass: pass.to_string(),
        reason,
        line: comment.line,
        col: comment.col + at as u32,
        last_covered_line: last_covered,
    })
}

/// Finds `(first_line, last_line)` spans of items under `#[cfg(test)]`
/// (any cfg predicate mentioning `test`) or `#[test]`.
fn find_test_regions(code: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct(b'#') && code.get(i + 1).is_some_and(|t| t.is_punct(b'[')) {
            // Scan the attribute body up to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut mentions_test = false;
            let mut head: Option<&Token> = None;
            while j < code.len() && depth > 0 {
                match code[j].kind {
                    TokenKind::Punct(b'[') => depth += 1,
                    TokenKind::Punct(b']') => depth -= 1,
                    TokenKind::Ident => {
                        if head.is_none() {
                            head = Some(&code[j]);
                        }
                        if code[j].text == "test" {
                            mentions_test = true;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let is_test_attr = mentions_test
                && head
                    .is_some_and(|h| h.text == "test" || h.text == "cfg" || h.text == "cfg_attr");
            if is_test_attr {
                if let Some(end) = item_end_line(code, j) {
                    regions.push((code[i].line, end));
                    i = j;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// Line on which the item starting after an attribute ends: the matching
/// `}` of its first body brace, or a `;` for brace-less items.  Further
/// attributes between the two are skipped via bracket tracking.
fn item_end_line(code: &[Token], mut i: usize) -> Option<u32> {
    let mut brackets = 0usize;
    while i < code.len() {
        match code[i].kind {
            TokenKind::Punct(b'[') | TokenKind::Punct(b'(') | TokenKind::Punct(b'<') => {
                brackets += 1;
            }
            TokenKind::Punct(b']') | TokenKind::Punct(b')') | TokenKind::Punct(b'>') => {
                brackets = brackets.saturating_sub(1);
            }
            TokenKind::Punct(b';') if brackets == 0 => return Some(code[i].line),
            TokenKind::Punct(b'{') if brackets == 0 => {
                let mut depth = 1usize;
                i += 1;
                while i < code.len() {
                    match code[i].kind {
                        TokenKind::Punct(b'{') => depth += 1,
                        TokenKind::Punct(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(code[i].line);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return None;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_region() {
        let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_regions, vec![(3, 6)]);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(5));
        assert!(!f.in_test_code(7));
    }

    #[test]
    fn test_fn_region_and_cfg_use_item() {
        let src =
            "#[test]\nfn check() {\n    body();\n}\n#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.test_regions, vec![(1, 4), (5, 6)]);
        assert!(!f.in_test_code(7));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(feature = \"x\")]\nmod m {\n    fn f() {}\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.test_regions.is_empty());
    }

    #[test]
    fn waiver_same_line_and_block_above() {
        let src = "let a = x(); // dplint: allow(hot-path-hash, reason = \"trailing\")\n\
                   // dplint: allow(float-reassoc, reason = \"a long justification\n\
                   // that wraps onto a second comment line\")\n\
                   let b = y();\n\
                   let c = z();\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.waiver_covers("hot-path-hash", 1));
        assert!(!f.waiver_covers("hot-path-hash", 2));
        assert!(f.waiver_covers("float-reassoc", 4));
        assert!(!f.waiver_covers("float-reassoc", 5));
    }

    #[test]
    fn waiver_without_reason_is_flagged() {
        let src = "// dplint: allow(panic-boundary)\nfoo();\n";
        let f = SourceFile::parse("x.rs", src);
        let diags = f.waiver_diagnostics(&["panic-boundary"]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no reason"), "{}", diags[0].message);
        // The waiver still suppresses — the missing reason is its own error.
        assert!(f.waiver_covers("panic-boundary", 2));
    }

    #[test]
    fn waiver_unknown_pass_is_flagged() {
        let src = "// dplint: allow(no-such-pass, reason = \"typo\")\n";
        let f = SourceFile::parse("x.rs", src);
        let diags = f.waiver_diagnostics(&["panic-boundary"]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("unknown pass"));
    }
}
