//! A minimal Rust tokenizer for lint passes.
//!
//! Hand-rolled (no crates.io in this environment) and deliberately
//! partial: it distinguishes exactly what the passes need — identifiers,
//! punctuation, numbers, lifetimes, and (crucially) every flavour of
//! comment and string literal, so that a `HashMap` inside a doc comment
//! or a `".sum()"` inside a string can never produce a finding.  It does
//! not parse; passes work on the token stream plus source-line context.
//!
//! Positions are 1-based `(line, col)` with byte columns (the workspace
//! is ASCII in all the places diagnostics point at).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, text without `r#`).
    Ident,
    /// A single punctuation byte (`.`, `:`, `!`, `{`, …).
    Punct(u8),
    /// Numeric literal (integer or float, suffix included).
    Number,
    /// `'static`, `'a` — lifetimes, not char literals.
    Lifetime,
    /// `"…"` / `b"…"` string literal (escapes resolved lexically only).
    Str,
    /// `r"…"` / `r#"…"#` / `br#"…"#` raw string literal.
    RawStr,
    /// `'x'` / `b'x'` character literal.
    Char,
    /// `// …` or `/// …` line comment (text includes the slashes).
    LineComment,
    /// `/* … */` block comment, nesting respected.
    BlockComment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
}

impl Token {
    /// True for comment tokens (excluded from code-pattern matching).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True if this token is the punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokenKind::Punct(b)
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_while(&mut self, pred: impl Fn(u8) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }

    fn token(&mut self) -> Option<Token> {
        self.bump_while(|b| b.is_ascii_whitespace());
        let (line, col, start) = (self.line, self.col, self.pos);
        let b = self.peek(0)?;
        let kind = match b {
            b'/' if self.peek(1) == Some(b'/') => {
                self.bump_while(|c| c != b'\n');
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.block_comment();
                TokenKind::BlockComment
            }
            b'r' | b'b' if self.raw_string_ahead() => {
                self.raw_string();
                TokenKind::RawStr
            }
            b'b' if self.peek(1) == Some(b'"') => {
                self.bump();
                self.string(b'"');
                TokenKind::Str
            }
            b'b' if self.peek(1) == Some(b'\'') => {
                self.bump();
                self.string(b'\'');
                TokenKind::Char
            }
            b'"' => {
                self.string(b'"');
                TokenKind::Str
            }
            b'\'' => self.char_or_lifetime(),
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                if b == b'r' && self.peek(1) == Some(b'#') {
                    // Raw identifier `r#type` (raw strings were handled above).
                    self.bump();
                    self.bump();
                }
                self.bump_while(|c| c == b'_' || c.is_ascii_alphanumeric());
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                self.number();
                TokenKind::Number
            }
            _ => {
                self.bump();
                TokenKind::Punct(b)
            }
        };
        let mut text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if kind == TokenKind::Ident {
            if let Some(stripped) = text.strip_prefix("r#") {
                text = stripped.to_string();
            }
        }
        Some(Token { kind, text, line, col })
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Is the cursor at `r"`, `r#`…`"`, `br"`, or `br#`…`"`?
    fn raw_string_ahead(&self) -> bool {
        let mut i = if self.peek(0) == Some(b'b') { 1 } else { 0 };
        if self.peek(i) != Some(b'r') {
            return false;
        }
        i += 1;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn raw_string(&mut self) {
        if self.peek(0) == Some(b'b') {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some(b'"') => {
                    let closes = (0..hashes).all(|i| self.peek(i) == Some(b'#'));
                    if closes {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return;
                    }
                }
                Some(_) => {}
                None => return,
            }
        }
    }

    fn string(&mut self, quote: u8) {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some(b'\\') => {
                    self.bump();
                }
                Some(b) if b == quote => return,
                Some(_) => {}
                None => return,
            }
        }
    }

    fn char_or_lifetime(&mut self) -> TokenKind {
        // `'a` (no closing quote) is a lifetime; `'a'`, `'\n'` are chars.
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(b'\\') => false,
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => self.peek(2) != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            self.bump();
            self.bump_while(|c| c == b'_' || c.is_ascii_alphanumeric());
            TokenKind::Lifetime
        } else {
            self.string(b'\'');
            TokenKind::Char
        }
    }

    fn number(&mut self) {
        self.bump_while(|c| c == b'_' || c.is_ascii_alphanumeric());
        // A fractional part, but never a `..` range or a method call on a
        // literal: only consume the dot when a digit follows.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            self.bump_while(|c| c == b'_' || c.is_ascii_alphanumeric());
        }
    }
}

/// Tokenizes `src`, comments included in stream order.
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(tok) = lx.token() {
        out.push(tok);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = kinds("let x = \"HashMap .sum()\"; // HashMap too\n/* .sum() */ y");
        assert_eq!(toks[3].0, TokenKind::Str);
        assert_eq!(toks[5].0, TokenKind::LineComment);
        assert_eq!(toks[6].0, TokenKind::BlockComment);
        assert!(toks[7].1 == "y" && toks[7].0 == TokenKind::Ident);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r####"let s = r#"quote " inside"#; t"####);
        assert_eq!(toks[3].0, TokenKind::RawStr);
        assert_eq!(toks[5].1, "t");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'x'"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "'\\n'"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ after");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "after");
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        let toks = kinds("0..n 1.5f64 2.0f64.powi(3)");
        let texts: Vec<_> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["0", ".", ".", "n", "1.5f64", "2.0f64", ".", "powi", "(", "3", ")"]);
    }

    #[test]
    fn positions_are_line_col() {
        let toks = tokenize("a\n  bc");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
