//! A line-oriented parser for the subset of TOML the workspace's
//! `Cargo.toml` files actually use — enough for the `vendored-deps`
//! audit, hand-rolled because crates.io is unreachable here.
//!
//! Recognized: `[section]` headers, `key = "string"`, `key = true`,
//! dotted keys (`dep.workspace = true`), and single-line inline tables
//! (`dep = { path = "…", version = "…" }`).  Comments and strings are
//! handled; multi-line arrays are consumed but only string elements are
//! kept (the `members` list).

/// How one dependency is declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepSource {
    /// `dep = { path = "…" }` — the path as written.
    Path(String),
    /// `dep.workspace = true` or `dep = { workspace = true }`.
    Workspace,
    /// `dep = "1.0"` or an inline table with `version`/`git`/`registry`
    /// and no local path — the offline build cannot resolve it.
    External(String),
}

/// A dependency entry with its manifest position.
#[derive(Debug, Clone)]
pub struct Dep {
    pub name: String,
    pub source: DepSource,
    /// `[dependencies]`, `[dev-dependencies]`, … as written.
    pub section: String,
    pub line: u32,
}

/// The audited content of one `Cargo.toml`.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// Workspace-relative path of the manifest.
    pub rel_path: String,
    /// `package.name`, if present.
    pub package_name: Option<String>,
    /// All `*dependencies*` entries (regular, dev, build, workspace).
    pub deps: Vec<Dep>,
    /// `workspace.members`, for the root manifest.
    pub members: Vec<String>,
    /// True if a `[workspace]` section exists.
    pub is_workspace_root: bool,
    /// True if a `[lints]` section sets `workspace = true`.
    pub inherits_workspace_lints: bool,
}

/// Strips a trailing `# comment`, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn unquote(v: &str) -> String {
    v.trim().trim_matches('"').to_string()
}

/// Classifies the value side of a dependency line.
fn classify_dep_value(value: &str) -> DepSource {
    let value = value.trim();
    if let Some(body) = value.strip_prefix('{').and_then(|v| v.strip_suffix('}')) {
        let mut path = None;
        let mut workspace = false;
        let mut external_key = None;
        for field in split_top_level(body) {
            let Some((k, v)) = field.split_once('=') else { continue };
            match k.trim() {
                "path" => path = Some(unquote(v)),
                "workspace" if v.trim() == "true" => workspace = true,
                key @ ("version" | "git" | "registry" | "branch" | "rev" | "tag") => {
                    external_key = Some(key.to_string());
                }
                _ => {}
            }
        }
        if let Some(p) = path {
            DepSource::Path(p)
        } else if workspace {
            DepSource::Workspace
        } else {
            DepSource::External(external_key.unwrap_or_else(|| "no path".into()))
        }
    } else {
        DepSource::External(format!("version \"{}\"", unquote(value)))
    }
}

/// Splits inline-table fields on commas outside strings.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, b) in body.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&body[start..]);
    out
}

/// Parses `text` as the manifest at `rel_path`.
pub fn parse_manifest(rel_path: &str, text: &str) -> Manifest {
    let mut m = Manifest { rel_path: rel_path.to_string(), ..Manifest::default() };
    let mut section = String::new();
    let mut in_members_array = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if in_members_array {
            for field in split_top_level(line) {
                let field = field.trim().trim_end_matches(']');
                if !field.is_empty() && field.contains('"') {
                    m.members.push(unquote(field));
                }
            }
            if line.contains(']') {
                in_members_array = false;
            }
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = header.trim_matches(['[', ']']).to_string();
            if section == "workspace" {
                m.is_workspace_root = true;
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let (key, value) = (key.trim(), value.trim());
        match (section.as_str(), key) {
            ("package", "name") => m.package_name = Some(unquote(value)),
            ("workspace", "members") => {
                if value.starts_with('[') && !value.contains(']') {
                    in_members_array = true;
                } else if let Some(body) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']'))
                {
                    for field in split_top_level(body) {
                        if field.trim().contains('"') {
                            m.members.push(unquote(field));
                        }
                    }
                }
            }
            ("lints", "workspace") if value == "true" => m.inherits_workspace_lints = true,
            (s, _) if s.contains("dependencies") => {
                // `dep = …` or `dep.workspace = true`.
                let (name, source) = match key.split_once('.') {
                    Some((name, "workspace")) if value == "true" => {
                        (name.trim(), DepSource::Workspace)
                    }
                    Some((name, _)) => (name.trim(), classify_dep_value(value)),
                    None => (key, classify_dep_value(value)),
                };
                m.deps.push(Dep {
                    name: name.to_string(),
                    source,
                    section: s.to_string(),
                    line: lineno,
                });
            }
            _ => {}
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[workspace]
members = [
    "crates/metric", # inline comment
    "vendor/rand",
]

[workspace.dependencies]
dp-metric = { path = "crates/metric" }
rand = { path = "vendor/rand" }

[package]
name = "root"

[lints]
workspace = true

[dependencies]
dp-metric.workspace = true
serde = "1.0"
evil = { git = "https://example.com/evil" }
good = { path = "../good" }

[dev-dependencies]
proptest = { workspace = true }
"#;

    #[test]
    fn parses_the_workspace_shape() {
        let m = parse_manifest("Cargo.toml", SAMPLE);
        assert!(m.is_workspace_root);
        assert_eq!(m.members, vec!["crates/metric", "vendor/rand"]);
        assert_eq!(m.package_name.as_deref(), Some("root"));
        assert!(m.inherits_workspace_lints);
    }

    #[test]
    fn classifies_dependency_sources() {
        let m = parse_manifest("Cargo.toml", SAMPLE);
        // `dp-metric` appears in both the workspace table and
        // [dependencies]; look findings up by (section, name).
        let by_name = |n: &str| {
            m.deps
                .iter()
                .find(|d| d.name == n && d.section != "workspace.dependencies")
                .unwrap_or_else(|| panic!("dep {n}"))
        };
        assert_eq!(by_name("dp-metric").source, DepSource::Workspace);
        assert_eq!(by_name("serde").source, DepSource::External("version \"1.0\"".into()));
        assert_eq!(by_name("evil").source, DepSource::External("git".into()));
        assert_eq!(by_name("good").source, DepSource::Path("../good".into()));
        assert_eq!(by_name("proptest").source, DepSource::Workspace);
        assert_eq!(by_name("proptest").section, "dev-dependencies");
        // Workspace-table deps are audited too.
        let ws_rand = m
            .deps
            .iter()
            .find(|d| d.name == "rand" && d.section == "workspace.dependencies")
            .expect("workspace-table rand");
        assert_eq!(ws_rand.source, DepSource::Path("vendor/rand".into()));
    }
}
