//! # dp-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 (exact N_{d,2}(k)) |
//! | `table2` | Table 2 (synthetic SISAP databases) |
//! | `table3` | Table 3 (uniform random vectors) |
//! | `figures` | Figures 1–4 (cell maps + SVG bisectors) |
//! | `fig7` | Figure 7 (cells missed by bounded databases) |
//! | `theorem6` | Theorem 6 construction check |
//! | `corollary5` | Corollary 5 tree-path bound |
//! | `counterexample` | Eq. 12 and the further L1/L∞ counterexamples |
//! | `storage` | §1/§4 storage comparison |
//! | `search_eval` | §1 search-cost context (LAESA/distperm/iAESA…) |
//!
//! Criterion micro-benchmarks live in `benches/`.
//!
//! This library crate holds the tiny CLI/table plumbing the binaries
//! share; it has no public API stability promises.

#![forbid(unsafe_code)]

use std::collections::HashMap;

/// Minimal `--flag value` parser (no external dependency needed for a
/// bench harness).
#[derive(Debug, Clone)]
pub struct Args {
    named: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments.  `--key value` become named values,
    /// bare `--switch` (followed by another option or nothing) become
    /// flags.
    pub fn parse() -> Args {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut named = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        named.insert(key.to_string(), iter.next().expect("peeked"));
                    }
                    _ => flags.push(key.to_string()),
                }
            }
        }
        Args { named, flags }
    }

    /// A named value parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.named.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// True iff `--key` was passed as a bare switch.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Right-aligns `value` in a cell of `width`.
pub fn cell(value: impl std::fmt::Display, width: usize) -> String {
    format!("{value:>width$}")
}

/// Prints a rule line of the given width.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Creates the output directory used by figure-producing binaries.
pub fn ensure_out_dir(path: &str) -> std::io::Result<std::path::PathBuf> {
    let p = std::path::PathBuf::from(path);
    std::fs::create_dir_all(&p)?;
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse_from(s.iter().map(std::string::ToString::to_string))
    }

    #[test]
    fn parses_named_and_flags() {
        let a = args(&["--points", "5000", "--full", "--runs", "3"]);
        assert_eq!(a.get("points", 0usize), 5000);
        assert_eq!(a.get("runs", 0usize), 3);
        assert_eq!(a.get("missing", 7usize), 7);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
    }

    #[test]
    fn trailing_switch_is_flag() {
        let a = args(&["--full"]);
        assert!(a.flag("full"));
    }

    #[test]
    fn unparseable_value_falls_back() {
        let a = args(&["--points", "many"]);
        // "many" consumed as value but fails parse -> default.
        assert_eq!(a.get("points", 42usize), 42);
    }

    #[test]
    fn cell_alignment() {
        assert_eq!(cell(7, 5), "    7");
        assert_eq!(rule(3), "---");
    }
}
