//! E1 — regenerates the paper's **Table 1**: the exact number N_{d,2}(k)
//! of distance permutations in d-dimensional Euclidean space, for
//! d = 1..10 and k = 2..12, from Theorem 7's recurrence.
//!
//! This table is exact mathematics, so the reproduction must match the
//! paper digit for digit; the binary checks a sample of anchor values and
//! reports any mismatch loudly.

use dp_theory::{n_euclidean, table1};

fn main() {
    let t = table1();
    println!("Table 1 — number of distance permutations N_{{d,2}}(k) in Euclidean space");
    println!("{}", t.render());

    // Anchor values transcribed from the paper.
    let anchors: [(u32, u32, u128); 6] = [
        (1, 12, 67),
        (2, 8, 351),
        (3, 12, 34662),
        (4, 12, 392085),
        (7, 12, 62364908),
        (10, 12, 439084800),
    ];
    let mut ok = true;
    for (d, k, expected) in anchors {
        let got = n_euclidean(d, k).expect("in range");
        if got != expected {
            ok = false;
            eprintln!("MISMATCH at d={d} k={k}: computed {got}, paper says {expected}");
        }
    }
    println!(
        "paper-anchor check: {}",
        if ok { "all anchor values match the paper exactly" } else { "MISMATCH — see stderr" }
    );

    // The factorial triangle of Theorem 6, visible in the table's lower
    // left: N = k! once d >= k-1.
    println!("\nTheorem 6 factorial triangle (d >= k-1 -> N = k!):");
    for k in 2..=7u32 {
        let fact: u128 = (1..=u128::from(k)).product();
        let val = n_euclidean(k - 1, k).expect("in range");
        println!("  k={k}: N_{{{},2}}({k}) = {val} (k! = {fact})", k - 1);
    }
}
