//! Ablation: which permutation-similarity measure should the `distperm`
//! index order candidates by?
//!
//! Chávez–Figueroa–Navarro picked the Spearman footrule; this harness
//! compares footrule, Spearman rho (squared form), Kendall tau and
//! Cayley on budgeted 1-NN recall over uniform vectors and a synthetic
//! dictionary, holding the index, sites and budget fixed.
//!
//! `cargo run --release -p dp-bench --bin permdist_ablation [--n 20000]
//!  [--d 3] [--k 10] [--queries 200] [--frac 0.05] [--seed 1]`

use dp_bench::Args;
use dp_datasets::dictionary::{generate_words, language_profiles};
use dp_datasets::uniform_unit_cube;
use dp_index::laesa::PivotSelection;
use dp_index::{DistPermIndex, LinearScan, OrderingKind};
use dp_metric::{Levenshtein, Metric, L2};

fn recall_sweep<P, M>(label: &str, metric: M, db: Vec<P>, queries: &[P], k: usize, frac: f64)
where
    P: Clone,
    M: Metric<P> + Clone,
{
    let scan = LinearScan::new(metric.clone(), db.clone());
    let truth: Vec<usize> = queries.iter().map(|q| scan.knn(q, 1)[0].id).collect();
    let idx = DistPermIndex::build(metric, db, k, PivotSelection::MaxMin);
    print!("{label:<22}");
    for kind in OrderingKind::ALL {
        let hits = queries
            .iter()
            .zip(&truth)
            .filter(|(q, &t)| {
                idx.knn_approx_ordered(q, 1, frac, kind).first().map(|n| n.id) == Some(t)
            })
            .count();
        print!(" {:>7.1}%", 100.0 * hits as f64 / queries.len() as f64);
    }
    println!();
}

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 20_000);
    let d: usize = args.get("d", 3);
    let k: usize = args.get("k", 10);
    let n_queries: usize = args.get("queries", 200);
    let frac: f64 = args.get("frac", 0.05);
    let seed: u64 = args.get("seed", 1);

    println!(
        "candidate-ordering ablation: k = {k}, budget = {:.0}% of n, \
         1-NN recall over {n_queries} queries\n",
        frac * 100.0
    );
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "workload", "footrule", "rho_sq", "kendall", "cayley"
    );

    let db = uniform_unit_cube(n, d, seed);
    let queries = uniform_unit_cube(n_queries, d, seed ^ 0xBEEF);
    recall_sweep(&format!("uniform d={d} n={n}"), L2, db, &queries, k, frac);

    let profiles = language_profiles();
    let english = profiles.iter().find(|p| p.name == "english").expect("profile");
    let words = generate_words(english, n.min(10_000), seed);
    let queries = generate_words(english, n_queries, seed ^ 0xF00D);
    recall_sweep(&format!("english n={}", n.min(10_000)), Levenshtein, words, &queries, k, frac);
}
