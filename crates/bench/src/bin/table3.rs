//! E3 — regenerates the paper's **Table 3**: mean and maximum number of
//! distance permutations for uniform random vectors, for the L1, L2 and
//! L∞ metrics, dimensions d = 1..10 and k ∈ {4, 8, 12} sites, over
//! repeated runs with random database elements as sites.
//!
//! The paper uses n = 10⁶ points and 100 runs; the default here is
//! n = `--points` (100,000) and `--runs` (20) so the full sweep finishes
//! in minutes on a laptop.  Pass `--points 1000000 --runs 100` for the
//! paper-scale run.  Expected shape (the claims the paper draws from this
//! table):
//!
//! * d = 1: identical for all metrics, = C(k,2)+1 (7 / 29 / 67);
//! * small d, small k: saturates at k! (Theorem 6's triangle);
//! * counts grow steeply with d but stay far below both k! and the
//!   Euclidean maxima of Table 1 at larger k (cells missed by sampling);
//! * a general downward trend from L1 to L2 to L∞.

use dp_bench::Args;
use dp_core::experiments::{uniform_experiment, MetricKind};
use dp_datasets::rho::intrinsic_dimensionality;
use dp_datasets::vectors::uniform_unit_cube;
use dp_metric::{LInf, L1, L2};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("points", 100_000);
    let runs: usize = args.get("runs", 20);
    let threads: usize = args.get("threads", 8);
    let seed: u64 = args.get("seed", 3);
    let ks: [usize; 3] = [4, 8, 12];

    println!("Table 3 — distance permutations for uniform random vectors");
    println!("n = {n} points per run, {runs} runs (paper: 10^6 points, 100 runs)");
    println!();
    println!(
        "{:<5} {:>2} {:>7} | {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8}",
        "metric", "d", "rho", "mean k=4", "mean k=8", "mean k=12", "max k=4", "max k=8", "max k=12"
    );

    for metric in MetricKind::ALL {
        for d in 1..=10usize {
            // rho column: the paper reports it per (metric, d) from the
            // uniform distribution itself.
            let sample = uniform_unit_cube(4000, d, seed ^ (d as u64) << 8);
            let rho = match metric {
                MetricKind::L1 => intrinsic_dimensionality(&L1, &sample, 4000, 1),
                MetricKind::L2 => intrinsic_dimensionality(&L2, &sample, 4000, 1),
                MetricKind::LInf => intrinsic_dimensionality(&LInf, &sample, 4000, 1),
            };
            let cells: Vec<_> = ks
                .iter()
                .map(|&k| {
                    uniform_experiment(d, metric, k, n, runs, seed ^ ((d as u64) << 16), threads)
                })
                .collect();
            println!(
                "{:<5} {:>2} {:>7.2} | {:>10.2} {:>10.2} {:>10.2} | {:>8} {:>8} {:>8}",
                metric.name(),
                d,
                rho,
                cells[0].mean,
                cells[1].mean,
                cells[2].mean,
                cells[0].max,
                cells[1].max,
                cells[2].max
            );
        }
        println!();
    }

    println!("paper shape checks:");
    println!("  d=1 rows should read mean/max ~ 7 / 29 / 67 for every metric (C(k,2)+1);");
    println!("  k=4 columns should saturate at 24 = 4! from d=3 upward;");
    println!("  counts should trend downward from L1 to L2 to Linf at fixed d,k.");
}
