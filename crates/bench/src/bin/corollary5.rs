//! E11 — verifies **Theorem 4 / Corollary 5**: a tree metric admits at
//! most C(k,2)+1 distance permutations, and the path of 2^(k−1) unit
//! edges with sites at labels 0, 2, 4, 8, …, 2^(k−1) achieves the bound
//! exactly.
//!
//! For each k the binary counts distance permutations over *all* vertices
//! of the Corollary 5 path and compares with C(k,2)+1; it also runs
//! random trees to show the bound holds (and is generally not tight) off
//! the construction.

use dp_bench::Args;
use dp_metric::Tree;
use dp_permutation::counter::count_distinct;
use dp_theory::{corollary5_path, tree_bound};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let args = Args::parse();
    let max_k: u32 = args.get("max-k", 12);

    println!("Corollary 5 — the 2^(k-1) path achieves the tree-metric bound C(k,2)+1");
    println!(
        "{:>3} {:>12} {:>10} {:>10} {:>9}",
        "k", "path edges", "observed", "bound", "achieved"
    );
    for k in 2..=max_k.min(16) {
        let (tree, sites) = corollary5_path(k);
        let db: Vec<usize> = tree.vertices().collect();
        let observed = count_distinct(&tree.metric(), &sites, &db);
        let bound = tree_bound(k);
        println!(
            "{k:>3} {:>12} {observed:>10} {bound:>10} {:>9}",
            tree.len() - 1,
            if observed as u128 == bound { "yes" } else { "NO" }
        );
        assert!(observed as u128 <= bound, "Theorem 4 violated");
    }

    println!("\nrandom trees (bound holds, usually not tight):");
    println!("{:>3} {:>8} {:>10} {:>10}", "k", "n", "observed", "bound");
    let mut rng = StdRng::seed_from_u64(args.get("seed", 5));
    for k in [4u32, 6, 8, 10] {
        let tree = Tree::random(4000, 4, rng.random_range(0..u64::MAX / 2));
        let sites: Vec<usize> = (0..k as usize).map(|_| rng.random_range(0..tree.len())).collect();
        let db: Vec<usize> = tree.vertices().collect();
        let observed = count_distinct(&tree.metric(), &sites, &db);
        let bound = tree_bound(k);
        assert!(observed as u128 <= bound, "Theorem 4 violated on random tree");
        println!("{k:>3} {:>8} {observed:>10} {bound:>10}", tree.len());
    }
    println!("\nall observations within Theorem 4's bound; Corollary 5 paths achieve it exactly.");
}
