//! E9 — verifies **Theorem 6** constructively: k sites in
//! (k−1)-dimensional Lp space realising all k! distance permutations,
//! for every p ∈ {1, 2, ∞} and k = 2..=`--max-k` (default 7).
//!
//! The construction is the proof's own: sites at ±1 on the first axis,
//! each later site on a fresh axis at 1+ε/4; witnesses found by the
//! proof's monotone z-sweep.  A successful run *is* the verification —
//! every witness's permutation is checked against its target.

use dp_bench::Args;
use dp_metric::{LInf, Metric, L1, L2};
use dp_theory::theorem6_witnesses;
use std::time::Instant;

fn verify<M: Metric<[f64]>>(name: &str, k: usize, eps: f64, metric: &M) {
    let start = Instant::now();
    let witnesses = theorem6_witnesses(k, eps, metric);
    let expected: usize = (1..=k).product();
    let distinct: std::collections::HashSet<_> = witnesses.iter().map(|(p, _)| *p).collect();
    assert_eq!(witnesses.len(), expected);
    assert_eq!(distinct.len(), expected);
    println!(
        "  {name:<4} k={k}: all {expected:>5} permutations realised in {:>8.2?} (d = {})",
        start.elapsed(),
        k - 1
    );
}

fn main() {
    let args = Args::parse();
    let max_k: usize = args.get("max-k", 7);
    let eps: f64 = args.get("eps", 0.25);

    println!("Theorem 6 — k sites in (k-1)-dimensional Lp space realise all k! permutations");
    println!("construction epsilon = {eps}\n");
    for k in 2..=max_k.min(8) {
        verify("L1", k, eps, &L1);
        verify("L2", k, eps, &L2);
        verify("Linf", k, eps, &LInf);
    }
    println!("\nevery (metric, k) above realised the full factorial — Theorem 6 verified.");
}
