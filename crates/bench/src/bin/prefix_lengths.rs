//! Extension experiment: §2's refinement chain as a storage/recall sweep.
//!
//! For ℓ = 1..k the harness reports the number of distinct ordered
//! prefixes (against the dp-theory ceiling), the unordered (order-ℓ
//! Voronoi, Fig 2) count, the raw index bits per element, and budgeted
//! 1-NN recall — quantifying exactly what truncating the stored
//! permutation costs.
//!
//! `cargo run --release -p dp-bench --bin prefix_lengths [--n 20000]
//!  [--d 3] [--k 8] [--queries 200] [--frac 0.05] [--seed 1]`

use dp_bench::Args;
use dp_core::orders::{count_distinct_prefixes, PrefixKind};
use dp_datasets::uniform_unit_cube;
use dp_index::laesa::PivotSelection;
use dp_index::{LinearScan, PrefixPermIndex};
use dp_metric::L2;
use dp_theory::prefixes::{ordered_prefix_bound, unordered_prefix_bound};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 20_000);
    let d: usize = args.get("d", 3);
    let k: usize = args.get("k", 8);
    let n_queries: usize = args.get("queries", 200);
    let frac: f64 = args.get("frac", 0.05);
    let seed: u64 = args.get("seed", 1);
    assert!(k <= 8, "prefix keys support l <= 8; pass --k 8 or less");

    let db = uniform_unit_cube(n, d, seed);
    let queries = uniform_unit_cube(n_queries, d, seed ^ 0xABCD);
    let scan = LinearScan::new(L2, db.clone());
    let truth: Vec<usize> = queries.iter().map(|q| scan.knn(q, 1)[0].id).collect();

    println!(
        "prefix-length sweep: n = {n}, d = {d}, k = {k} (MaxMin sites), \
         budget = {:.0}% of n\n",
        frac * 100.0
    );
    println!(
        "{:>3} {:>9} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "l", "ordered", "bound", "unord", "bound", "bits/elem", "recall"
    );
    for l in 1..=k {
        let idx = PrefixPermIndex::build(L2, db.clone(), k, l, PivotSelection::MaxMin);
        let sites: Vec<Vec<f64>> = idx.site_ids().iter().map(|&i| db[i].clone()).collect();
        let ordered = count_distinct_prefixes(&L2, &sites, &db, l, PrefixKind::Ordered);
        let unordered = count_distinct_prefixes(&L2, &sites, &db, l, PrefixKind::Unordered);
        assert_eq!(ordered, idx.distinct_prefixes());
        let ob = ordered_prefix_bound(d as u32, k as u32, l as u32).unwrap();
        let ub = unordered_prefix_bound(d as u32, k as u32, l as u32).unwrap();
        let hits = queries
            .iter()
            .zip(&truth)
            .filter(|(q, &t)| idx.knn_approx(q, 1, frac).first().map(|nb| nb.id) == Some(t))
            .count();
        println!(
            "{l:>3} {ordered:>9} {ob:>9} {unordered:>9} {ub:>9} {:>10.1} {:>7.1}%",
            idx.storage_bits_raw() as f64 / n as f64,
            100.0 * hits as f64 / n_queries as f64
        );
    }
}
