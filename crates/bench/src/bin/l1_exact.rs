//! EXT — beyond the paper: **exact** L1/L∞ cell counts in the plane.
//!
//! The paper measures non-Euclidean counts only by sampling ("informal
//! computer-graphics experiments", §4; database censuses, §5) and leaves
//! the exact L1 combinatorics open.  With the segment-arrangement engine
//! the 2-D question can be settled configuration by configuration:
//!
//! * verifies the Fig 4 class exactly (18 cells, same as Euclidean);
//! * sweeps random integer configurations for k = 3..6 comparing the
//!   exact L1, L∞ and L2 counts — reporting the maxima and whether any
//!   L1/L∞ configuration exceeds the Euclidean maximum N_{2,2}(k)
//!   (the paper's counterexamples start at d = 3; in d = 2 none is
//!   expected, and this binary gives exact evidence).

use dp_bench::Args;
use dp_geometry::arrangement::euclidean_cells;
use dp_geometry::l1exact::{l1_cells, linf_cells};
use dp_theory::n_euclidean;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let args = Args::parse();
    let trials: usize = args.get("trials", 200);
    let seed: u64 = args.get("seed", 2009);

    println!(
        "exact L1 count of the Fig 4 configuration: {:?} (paper, by pixels: 18)",
        l1_cells(&[(9867, 5630), (3364, 5875), (4702, 8210), (8423, 3812)])
    );

    println!("\nexact sweep over {trials} random integer configurations per k:");
    println!(
        "{:>3} {:>10} | {:>8} {:>8} {:>8} | {:>10}",
        "k", "N_2,2(k)", "max L1", "max Linf", "max L2", "L1>Euclid?"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    for k in 3..=6usize {
        let e_max = n_euclidean(2, k as u32).expect("small");
        let (mut max_l1, mut max_linf, mut max_l2) = (0u128, 0u128, 0u128);
        let mut exceeded = false;
        let mut done = 0usize;
        while done < trials {
            let sites: Vec<(i64, i64)> = (0..k)
                .map(|_| (rng.random_range(-500..500), rng.random_range(-500..500)))
                .collect();
            let (Ok(c1), Ok(ci)) = (l1_cells(&sites), linf_cells(&sites)) else {
                continue; // degenerate draw (diagonal/axis-aligned pair)
            };
            let c2 = euclidean_cells(&sites);
            max_l1 = max_l1.max(c1);
            max_linf = max_linf.max(ci);
            max_l2 = max_l2.max(c2);
            exceeded |= c1 > e_max || ci > e_max;
            done += 1;
        }
        println!(
            "{k:>3} {e_max:>10} | {max_l1:>8} {max_linf:>8} {max_l2:>8} | {:>10}",
            if exceeded { "YES (!)" } else { "no" }
        );
    }
    println!("\nexpected: the L1/L∞ maxima track the Euclidean maximum from below in 2-D;");
    println!("the paper's counterexamples to N_d,p = N_d,2 appear only from d = 3.");
}
