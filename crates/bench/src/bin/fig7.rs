//! E10 — the phenomenon of the paper's **Figure 7**: a finite database
//! may miss cells of the bisector arrangement in two different ways —
//! cells that happen to contain no point (hit by a large enough sample)
//! and cells lying entirely outside the database's value range (never hit
//! no matter how large the database grows).
//!
//! The experiment fixes 5 sites in the plane, computes the exact cell
//! count, then reports cells hit as a function of database size for
//! (a) data filling the whole bounding box and (b) range-limited data
//! (the paper's grey box), whose hit count plateaus strictly below the
//! total.

use dp_bench::Args;
use dp_geometry::arrangement::euclidean_cells;
use dp_metric::L2;
use dp_permutation::counter::count_distinct;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 7);

    // Five generic sites in the unit square (integer-scaled for the exact
    // counter).
    let sites_i: Vec<(i64, i64)> = vec![(120, 210), (830, 330), (460, 940), (700, 690), (260, 620)];
    let sites: Vec<Vec<f64>> =
        sites_i.iter().map(|&(x, y)| vec![x as f64 / 1000.0, y as f64 / 1000.0]).collect();
    let total = euclidean_cells(&sites_i);
    println!("exact number of cells over the whole plane: {total}");
    println!("(Euclidean maximum for k=5, d=2 is N_2,2(5) = 46)\n");

    println!("{:>9} | {:>14} | {:>20}", "n", "hit (full box)", "hit (limited range)");
    let mut rng = StdRng::seed_from_u64(seed);
    for n in [100usize, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000] {
        // Full box: [-0.5, 1.5]^2 around the sites (still misses unbounded
        // cells far away, but catches everything near the sites).
        let full: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random_range(-0.5..1.5), rng.random_range(-0.5..1.5)])
            .collect();
        // Range-limited: the paper's grey box, clipped to a sub-range.
        let limited: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.random_range(0.0..0.55), rng.random_range(0.0..0.55)])
            .collect();
        let hit_full = count_distinct(&L2, &sites, &full);
        let hit_limited = count_distinct(&L2, &sites, &limited);
        println!("{n:>9} | {hit_full:>14} | {hit_limited:>20}");
    }
    println!(
        "\nexpected shape: the full-box curve approaches {total}; the range-limited\n\
         curve plateaus strictly below it — those cells lie outside the data range\n\
         and 'will never appear no matter how large the database grows' (Fig 7)."
    );
}
