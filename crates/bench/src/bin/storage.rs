//! E13 — the storage claim of §1/§4: distance permutations need
//! O(nk log k) bits against LAESA's O(nk log n); in d-dimensional
//! Euclidean space the codebook representation reaches Θ(nd log k) —
//! "an improvement on the previous best known theoretical result".
//!
//! Prints per-element bit costs across (d, k) and then demonstrates the
//! codebook on live data: a uniform 2-D database with k = 12 sites, whose
//! distinct-permutation count (≤ N_{2,2}(12) = 1992, so ≤ 11 bits) is
//! far below the 29 bits of an unrestricted 12-element permutation.

use dp_bench::Args;
use dp_datasets::uniform_unit_cube;
use dp_index::laesa::PivotSelection;
use dp_index::DistPermIndex;
use dp_metric::L2;
use dp_theory::storage::{render_table, storage_row};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("points", 100_000);

    println!("storage comparison (bits per database element)\n");
    println!("{}", render_table(&[1, 2, 3, 4, 6, 8, 10], &[4, 8, 12, 16, 24], n as u64));

    println!("asymptotics along k at fixed d = 3 (codebook grows ~ 6 log2 k, rank ~ k log2 k):");
    for k in [4u32, 8, 16, 32] {
        let r = storage_row(3, k, n as u64);
        println!(
            "  k={k:>2}: codebook {:>3} bits, unrestricted rank {:>4} bits, LAESA {:>5} bits",
            r.codebook_bits, r.full_perm_bits, r.laesa_bits
        );
    }

    println!("\nlive demonstration (uniform 2-D data, k = 12, n = {n}):");
    let pts = uniform_unit_cube(n, 2, 99);
    let idx = DistPermIndex::build(L2, pts, 12, PivotSelection::MaxMin);
    let (cb, ids) = idx.codebook();
    let distinct = cb.len();
    let bits = cb.id_bits();
    println!("  distinct permutations observed: {distinct} (max possible N_2,2(12) = 1992)");
    println!("  codebook id: {bits} bits/element; packed permutation: 48 bits; rank: 29 bits");
    println!(
        "  index payload: {} bytes as ids vs {} bytes as packed permutations",
        (ids.len() * bits as usize).div_ceil(8),
        ids.len() * 6
    );
}
