//! E4–E7 — regenerates the paper's **Figures 1–4**:
//!
//! * Fig 1: Euclidean nearest-neighbour Voronoi diagram (4 sites);
//! * Fig 2: second-order Euclidean Voronoi diagram (unordered 2-NN);
//! * Fig 3: all six bisectors of the 4 sites under L2 — 18 cells,
//!   verified **exactly** by the rational line-arrangement counter;
//! * Fig 4: the same under L1 — also 18 cells, but not the same 18
//!   permutations (the paper's §2 observation).
//!
//! Outputs PPM cell maps and an SVG line overlay into `--out`
//! (default `figures/`).

use dp_bench::{ensure_out_dir, Args};
use dp_geometry::arrangement::euclidean_cells;
use dp_geometry::faces::exact_permutations;
use dp_geometry::render::{render_cells, svg_euclidean_bisectors, CellKey};
use dp_geometry::sampling::{grid_count, BBox};
use dp_metric::{L1, L2};
use std::fs;

fn main() {
    let args = Args::parse();
    let out = ensure_out_dir(&args.get("out", String::from("figures"))).expect("create out dir");
    let size: usize = args.get("size", 640);

    // The figure configuration: four sites in general position for which
    // both the L2 and L1 bisector systems have the full 18 cells.
    let sites_f: Vec<Vec<f64>> = vec![
        vec![0.9867, 0.5630],
        vec![0.3364, 0.5875],
        vec![0.4702, 0.8210],
        vec![0.8423, 0.3812],
    ];
    let sites_i: Vec<(i64, i64)> = vec![(9867, 5630), (3364, 5875), (4702, 8210), (8423, 3812)];
    let bbox = BBox { x_min: 0.0, x_max: 1.3, y_min: 0.0, y_max: 1.3 };

    // Exact Euclidean cell count (Fig 3's combinatorics).
    let exact = euclidean_cells(&sites_i);
    println!("exact Euclidean bisector-arrangement cells: {exact} (paper: 18)");

    // Grid census per metric.
    let l2_cells = grid_count(&L2, &sites_f, bbox, 800, 800);
    let l1_cells = grid_count(&L1, &sites_f, bbox, 800, 800);
    println!(
        "grid census (800x800): L2 = {} cells, L1 = {} cells",
        l2_cells.distinct(),
        l1_cells.distinct()
    );
    let same = l1_cells.sorted_permutations() == l2_cells.sorted_permutations();
    println!("L1 and L2 realise the same permutation sets: {same} (paper: false)");

    // Exact L2 permutation set (rational slab enumeration): the grid
    // census is validated against it, and the L1/L2 overlap quantified.
    let exact = exact_permutations(&sites_i);
    assert_eq!(exact.len() as u128, euclidean_cells(&sites_i));
    let l1_set = l1_cells.sorted_permutations();
    let shared = l1_set.iter().filter(|p| exact.binary_search(p).is_ok()).count();
    println!(
        "exact L2 set has {} permutations; sampled L1 set shares {shared} of its {}",
        exact.len(),
        l1_set.len()
    );

    // Figure renders.
    let figs: [(&str, CellKey, bool); 4] = [
        ("fig1_voronoi.ppm", CellKey::Nearest, false),
        ("fig2_second_order.ppm", CellKey::TopTwoUnordered, false),
        ("fig3_full_l2.ppm", CellKey::FullPermutation, false),
        ("fig4_full_l1.ppm", CellKey::FullPermutation, true),
    ];
    for (name, key, use_l1) in figs {
        let img = if use_l1 {
            render_cells(&L1, &sites_f, bbox, size, size, key)
        } else {
            render_cells(&L2, &sites_f, bbox, size, size, key)
        };
        let path = out.join(name);
        fs::write(&path, img.to_ppm()).expect("write figure");
        println!("wrote {}", path.display());
    }
    let svg = svg_euclidean_bisectors(
        &sites_i,
        BBox { x_min: 0.0, x_max: 13000.0, y_min: 0.0, y_max: 13000.0 },
        size as f64,
    );
    let path = out.join("fig3_bisectors.svg");
    fs::write(&path, svg).expect("write svg");
    println!("wrote {}", path.display());
}
