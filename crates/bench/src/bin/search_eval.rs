//! E14 — the search-cost context of §1: distance permutations "provide
//! enough information to do an efficient search, comparable to LAESA,
//! while consuming much less storage space", and iAESA improves on AESA.
//!
//! Reports metric evaluations per 1-NN query (the field's cost model) for
//! every index in `dp-index`, on two workloads:
//!
//! * uniform vectors (the standard stress test, `--points`, `--dim`);
//! * a synthetic dictionary under Levenshtein (the Table 2 workload).
//!
//! The distperm rows are approximate (budgeted scan) and also report
//! recall against ground truth; exact structures are marked exact.

use dp_bench::Args;
use dp_datasets::dictionary::{generate_words, language_profiles};
use dp_datasets::uniform_unit_cube;
use dp_index::laesa::PivotSelection;
use dp_index::{
    Aesa, BkTree, CountingMetric, DistPermIndex, GhTree, IAesa, Laesa, LinearScan, VpTree,
};
use dp_metric::{Levenshtein, Metric, L2};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("points", 2_000);
    let d: usize = args.get("dim", 4);
    let k: usize = args.get("sites", 12);
    let queries: usize = args.get("queries", 50);

    println!("search cost: metric evaluations per exact/approximate 1-NN query");
    println!("(n = {n}, {queries} queries; AESA/iAESA build cost is n(n-1)/2 evaluations)\n");

    println!("workload A: uniform vectors, d = {d}, L2");
    let pts = uniform_unit_cube(n, d, 1);
    let qs = uniform_unit_cube(queries, d, 2);
    evaluate(&pts, &qs, k, L2);

    println!("\nworkload B: synthetic dictionary, Levenshtein");
    let words = generate_words(&language_profiles()[1], n, 3);
    let queries_w = generate_words(&language_profiles()[1], queries, 4);
    evaluate(&words, &queries_w, k, Levenshtein);

    // BK-tree: discrete-metric baseline, strings only (needs Dist = u32).
    let scan = LinearScan::new(words.clone());
    let truth: Vec<usize> = queries_w.iter().map(|q| scan.knn(&Levenshtein, q, 1)[0].id).collect();
    let bk = BkTree::build(CountingMetric::new(Levenshtein), words);
    let mut evals = 0u64;
    let mut correct = 0usize;
    for (q, &t) in queries_w.iter().zip(&truth) {
        bk.metric().reset();
        let got = bk.knn(q, 1)[0].id;
        evals += bk.metric().count();
        correct += usize::from(got == t);
    }
    println!(
        "  {:<22} {:>12.1} {:>9.2} {:>8}",
        "BK-tree",
        evals as f64 / queries_w.len() as f64,
        correct as f64 / queries_w.len() as f64,
        "yes"
    );

    println!("\nexpected shape: AESA fewest evaluations; iAESA comparable or better;");
    println!("LAESA and distperm(frac=0.05..0.2) in between; linear scan = n.");
}

fn evaluate<P, M>(pts: &[P], qs: &[P], k: usize, metric: M)
where
    P: Clone + PartialEq,
    M: Metric<P> + Copy,
{
    let scan = LinearScan::new(pts.to_vec());
    let truth: Vec<usize> = qs.iter().map(|q| scan.knn(&metric, q, 1)[0].id).collect();
    let n = pts.len();

    println!("  {:<22} {:>12} {:>9} {:>8}", "index", "evals/query", "recall@1", "exact");
    println!("  {:<22} {:>12} {:>9} {:>8}", "linear scan", n, "1.00", "yes");

    // LAESA.
    let laesa = Laesa::build(CountingMetric::new(metric), pts.to_vec(), k, PivotSelection::MaxMin);
    let mut evals = 0u64;
    let mut correct = 0usize;
    for (q, &t) in qs.iter().zip(&truth) {
        laesa.metric().reset();
        let got = laesa.knn(q, 1)[0].id;
        evals += laesa.metric().count();
        correct += usize::from(got == t);
    }
    report("LAESA", evals, correct, qs.len(), true);

    // AESA.
    let aesa = Aesa::build(CountingMetric::new(metric), pts.to_vec());
    let mut evals = 0u64;
    let mut correct = 0usize;
    for (q, &t) in qs.iter().zip(&truth) {
        aesa.metric().reset();
        let got = aesa.knn(q, 1)[0].id;
        evals += aesa.metric().count();
        correct += usize::from(got == t);
    }
    report("AESA", evals, correct, qs.len(), true);

    // iAESA.
    let iaesa = IAesa::build(CountingMetric::new(metric), pts.to_vec(), k, PivotSelection::MaxMin);
    let mut evals = 0u64;
    let mut correct = 0usize;
    for (q, &t) in qs.iter().zip(&truth) {
        iaesa.metric().reset();
        let got = iaesa.knn(q, 1)[0].id;
        evals += iaesa.metric().count();
        correct += usize::from(got == t);
    }
    report("iAESA", evals, correct, qs.len(), true);

    // VP-tree and GH-tree.
    let vp = VpTree::build(CountingMetric::new(metric), pts.to_vec());
    let mut evals = 0u64;
    let mut correct = 0usize;
    for (q, &t) in qs.iter().zip(&truth) {
        vp.metric().reset();
        let got = vp.knn(q, 1)[0].id;
        evals += vp.metric().count();
        correct += usize::from(got == t);
    }
    report("VP-tree", evals, correct, qs.len(), true);

    let gh = GhTree::build(CountingMetric::new(metric), pts.to_vec());
    let mut evals = 0u64;
    let mut correct = 0usize;
    for (q, &t) in qs.iter().zip(&truth) {
        gh.metric().reset();
        let got = gh.knn(q, 1)[0].id;
        evals += gh.metric().count();
        correct += usize::from(got == t);
    }
    report("GH-tree", evals, correct, qs.len(), true);

    // distperm at several budgets.
    let dp =
        DistPermIndex::build(CountingMetric::new(metric), pts.to_vec(), k, PivotSelection::MaxMin);
    for frac in [0.05f64, 0.1, 0.2] {
        let mut evals = 0u64;
        let mut correct = 0usize;
        for (q, &t) in qs.iter().zip(&truth) {
            dp.metric().reset();
            let got = dp.knn_approx(q, 1, frac)[0].id;
            evals += dp.metric().count();
            correct += usize::from(got == t);
        }
        report(&format!("distperm frac={frac}"), evals, correct, qs.len(), false);
    }
}

fn report(name: &str, evals: u64, correct: usize, queries: usize, exact: bool) {
    println!(
        "  {:<22} {:>12.1} {:>9.2} {:>8}",
        name,
        evals as f64 / queries as f64,
        correct as f64 / queries as f64,
        if exact { "yes" } else { "no" }
    );
}
