//! E14 — the search-cost context of §1: distance permutations "provide
//! enough information to do an efficient search, comparable to LAESA,
//! while consuming much less storage space", and iAESA improves on AESA.
//!
//! Reports metric evaluations per 1-NN query (the field's cost model) for
//! every index in `dp-index`, on two workloads:
//!
//! * uniform vectors (the standard stress test, `--points`, `--dim`);
//! * a synthetic dictionary under Levenshtein (the Table 2 workload).
//!
//! The distperm rows are approximate (budgeted scan) and also report
//! recall against ground truth; exact structures are marked exact.
//!
//! Every index is driven through the `ProximityIndex` trait: one generic
//! harness per query shape replaces the former ten per-type loops, and
//! evaluation counts come from the native `QueryStats` instead of a
//! counting metric wrapper.

use dp_bench::Args;
use dp_datasets::dictionary::{generate_words, language_profiles};
use dp_datasets::uniform_unit_cube;
use dp_index::{
    AnyIndex, ApproxSearcher, BkTree, IndexSpec, LinearScan, PivotSelection, ProximityIndex,
    Searcher,
};
use dp_metric::{Levenshtein, Metric, L2};

fn main() {
    let args = Args::parse();
    let n: usize = args.get("points", 2_000);
    let d: usize = args.get("dim", 4);
    let k: usize = args.get("sites", 12);
    let queries: usize = args.get("queries", 50);

    println!("search cost: metric evaluations per exact/approximate 1-NN query");
    println!("(n = {n}, {queries} queries; AESA/iAESA build cost is n(n-1)/2 evaluations)\n");

    println!("workload A: uniform vectors, d = {d}, L2");
    let pts = uniform_unit_cube(n, d, 1);
    let qs = uniform_unit_cube(queries, d, 2);
    evaluate(&pts, &qs, k, L2);

    println!("\nworkload B: synthetic dictionary, Levenshtein");
    let words = generate_words(&language_profiles()[1], n, 3);
    let queries_w = generate_words(&language_profiles()[1], queries, 4);
    evaluate(&words, &queries_w, k, Levenshtein);

    // BK-tree: discrete-metric baseline, strings only (needs Dist = u32);
    // same harness, concrete build.
    let scan = LinearScan::new(Levenshtein, words.clone());
    let truth: Vec<usize> = queries_w.iter().map(|q| scan.knn(q, 1)[0].id).collect();
    let bk = BkTree::build(Levenshtein, words);
    report_exact("BK-tree", &bk, &queries_w, &truth);

    println!("\nexpected shape: AESA fewest evaluations; iAESA comparable or better;");
    println!("LAESA and distperm(frac=0.05..0.2) in between; linear scan = n.");
}

/// The one generic exact-query harness: 1-NN through a reused trait
/// searcher, native evaluation counts, recall against ground truth.
fn report_exact<P, I: ProximityIndex<P>>(name: &str, index: &I, qs: &[P], truth: &[usize]) {
    let mut searcher = index.searcher();
    let mut evals = 0u64;
    let mut correct = 0usize;
    for (q, &t) in qs.iter().zip(truth) {
        let (nn, stats) = searcher.knn(q, 1);
        evals += stats.metric_evals;
        correct += usize::from(nn[0].id == t);
    }
    report(name, evals, correct, qs.len(), true);
}

/// The budgeted counterpart, for the permutation family.
fn report_budgeted<'i, P, I>(name: &str, index: &'i I, frac: f64, qs: &[P], truth: &[usize])
where
    I: ProximityIndex<P>,
    I::Searcher<'i>: ApproxSearcher<P>,
{
    let mut searcher = index.searcher();
    let mut evals = 0u64;
    let mut correct = 0usize;
    for (q, &t) in qs.iter().zip(truth) {
        let (nn, stats) = searcher.knn_approx(q, 1, frac);
        evals += stats.metric_evals;
        correct += usize::from(nn[0].id == t);
    }
    report(name, evals, correct, qs.len(), false);
}

fn evaluate<P, M>(pts: &[P], qs: &[P], k: usize, metric: M)
where
    P: Clone + Sync,
    M: Metric<P> + Sync + Copy,
{
    let scan = LinearScan::new(metric, pts.to_vec());
    let truth: Vec<usize> = qs.iter().map(|q| scan.knn(q, 1)[0].id).collect();

    println!("  {:<22} {:>12} {:>9} {:>8}", "index", "evals/query", "recall@1", "exact");

    // Every exact structure builds by spec and runs through the same loop.
    let specs = [
        IndexSpec::Linear,
        IndexSpec::Laesa { k },
        IndexSpec::Aesa,
        IndexSpec::IAesa { k },
        IndexSpec::VpTree,
        IndexSpec::GhTree,
    ];
    for spec in specs {
        let idx = AnyIndex::build(spec, metric, pts.to_vec(), PivotSelection::MaxMin)
            .expect("generic spec");
        report_exact(&spec.name(), &idx, qs, &truth);
    }

    // distperm at several budgets.
    let dp =
        AnyIndex::build(IndexSpec::DistPerm { k }, metric, pts.to_vec(), PivotSelection::MaxMin)
            .expect("distperm spec");
    for frac in [0.05f64, 0.1, 0.2] {
        report_budgeted(&format!("distperm frac={frac}"), &dp, frac, qs, &truth);
    }
}

fn report(name: &str, evals: u64, correct: usize, queries: usize, exact: bool) {
    println!(
        "  {:<22} {:>12.1} {:>9.2} {:>8}",
        name,
        evals as f64 / queries as f64,
        correct as f64 / queries as f64,
        if exact { "yes" } else { "no" }
    );
}
