//! E2 — regenerates the paper's **Table 2**: the number of distance
//! permutations occurring in the SISAP sample databases, for k = 3..12
//! sites, plus each database's cardinality n and intrinsic
//! dimensionality ρ.
//!
//! The original SISAP archives are not redistributable, so the roster
//! walks the synthetic analogues of `dp-datasets` (same n, same metric,
//! matched dimensional character — DESIGN.md §2).  By default databases
//! are scaled to `--points` elements (default 20,000) so the run finishes
//! in minutes; pass `--full` to use the paper's cardinalities.
//!
//! Expected shape versus the paper: counts for k <= 5 near k!
//! (dictionaries) or far below (listeria/long/colors), then growing far
//! more slowly than k!, and never anywhere near n for the clustered
//! databases.

use dp_bench::Args;
use dp_core::count::count_permutations_parallel;
use dp_datasets::intrinsic_dimensionality;
use dp_datasets::table2::{table2_roster, Table2Data};
use dp_datasets::vectors::choose_distinct_indices;
use dp_metric::{CosineDistance, Levenshtein, L2};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KS: [usize; 10] = [3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

fn main() {
    let args = Args::parse();
    let cap: usize = args.get("points", 20_000);
    let full = args.flag("full");
    let threads: usize = args.get("threads", 8);
    let seed: u64 = args.get("seed", 20080411); // SISAP'08 workshop date

    println!("Table 2 — distance permutations in (synthetic) SISAP sample databases");
    println!(
        "scale: {}",
        if full { "paper cardinalities".into() } else { format!("capped at n = {cap}") }
    );
    print!("{:<11} {:>8} {:>8}", "database", "n", "rho");
    for k in KS {
        print!(" {:>8}", format!("k={k}"));
    }
    println!();

    for entry in table2_roster() {
        let n = if full { entry.n } else { entry.n.min(cap) };
        let data = entry.generate(n, seed);
        let (rho, counts) = match &data {
            Table2Data::Strings(points) => run(&Levenshtein, points, threads, seed),
            Table2Data::Documents(points) => run(&CosineDistance, points, threads, seed),
            Table2Data::Vectors(points) => run(&L2, points, threads, seed),
        };
        print!("{:<11} {:>8} {:>8.3}", entry.name, n, rho);
        for c in counts {
            print!(" {c:>8}");
        }
        println!();
    }
    println!("\n(paper rho values for reference: Dutch 7.159, listeria 0.894, long 2.603,");
    println!(" short 808.739, colors 2.745, nasa 5.186)");
}

/// ρ plus the distinct-permutation count for each k, with k random
/// database elements as sites (the paper's protocol).
fn run<P: Clone + Sync, M: dp_metric::Metric<P> + Sync>(
    metric: &M,
    points: &[P],
    threads: usize,
    seed: u64,
) -> (f64, Vec<usize>) {
    let rho = intrinsic_dimensionality(metric, points, 2000.min(points.len() * 2), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let counts = KS
        .iter()
        .map(|&k| {
            let ids = choose_distinct_indices(points.len(), k, &mut rng);
            let sites: Vec<P> = ids.iter().map(|&i| points[i].clone()).collect();
            count_permutations_parallel(metric, &sites, points, threads).distinct
        })
        .collect();
    (rho, counts)
}
