//! Ablation: how much does *site selection* change what the paper counts?
//!
//! The theory bounds N for the worst case over site choices; Table 3
//! samples random sites.  This harness compares four selection policies
//! on the same databases:
//!
//! * `Prefix`  — first k elements (clustered, adversarially lazy);
//! * `Random`  — the paper's Table 3 protocol;
//! * `MaxMin`  — classical farthest-first (LAESA);
//! * `PermDiversity` — greedy maximisation of the distinct-permutation
//!   count itself (this workspace's extension, motivated by §4: the
//!   stored permutation carries ⌈log₂ N⌉ bits of information).
//!
//! For each policy: the distinct-permutation count (↑ = more index
//! information) and 1-NN recall of the budgeted `distperm` search.
//!
//! `cargo run --release -p dp-bench --bin pivot_ablation [--n 20000]
//!  [--d 3] [--k 8] [--queries 200] [--frac 0.05] [--seeds 5]`

use dp_bench::Args;
use dp_datasets::uniform_unit_cube;
use dp_index::laesa::PivotSelection;
use dp_index::{DistPermIndex, LinearScan};
use dp_metric::L2;

fn main() {
    let args = Args::parse();
    let n: usize = args.get("n", 20_000);
    let d: usize = args.get("d", 3);
    let k: usize = args.get("k", 8);
    let n_queries: usize = args.get("queries", 200);
    let frac: f64 = args.get("frac", 0.05);
    let seeds: u64 = args.get("seeds", 5);

    println!(
        "pivot ablation: n = {n}, d = {d}, k = {k}, {n_queries} queries, \
         budget = {:.0}% of n, {seeds} seeds\n",
        frac * 100.0
    );
    println!("{:<16} {:>10} {:>10} {:>8}", "policy", "distinct", "max_dist", "recall");

    type PolicyCtor = fn(u64) -> PivotSelection;
    let policies: [(&str, PolicyCtor); 4] = [
        ("Prefix", |_| PivotSelection::Prefix),
        ("Random", PivotSelection::Random),
        ("MaxMin", |_| PivotSelection::MaxMin),
        ("PermDiversity", PivotSelection::PermDiversity),
    ];

    for (name, make) in policies {
        let mut distinct_sum = 0usize;
        let mut distinct_max = 0usize;
        let mut hits = 0usize;
        let mut total_q = 0usize;
        for seed in 0..seeds {
            let db = uniform_unit_cube(n, d, 7_000 + seed);
            let queries = uniform_unit_cube(n_queries, d, 9_000 + seed);
            let scan = LinearScan::new(L2, db.clone());
            let idx = DistPermIndex::build(L2, db, k, make(seed));
            let distinct = idx.distinct_permutations();
            distinct_sum += distinct;
            distinct_max = distinct_max.max(distinct);
            for q in &queries {
                let truth = scan.knn(q, 1)[0].id;
                if idx.knn_approx(q, 1, frac).first().map(|nb| nb.id) == Some(truth) {
                    hits += 1;
                }
                total_q += 1;
            }
        }
        println!(
            "{name:<16} {:>10.1} {distinct_max:>10} {:>7.1}%",
            distinct_sum as f64 / seeds as f64,
            100.0 * hits as f64 / total_q as f64
        );
    }
    println!(
        "\nceiling: N_{{{d},2}}({k}) = {}",
        dp_theory::n_euclidean(d as u32, k as u32)
            .map_or_else(|| "> 2^128".into(), |v| v.to_string())
    );
}
