//! E12 — the paper's §5 counterexamples: L1/L∞ spaces can exceed the
//! Euclidean maximum N_{d,2}(k), so N_{d,p}(k) = N_{d,2}(k) is false.
//!
//! 1. Verifies **Eq. 12** verbatim: the paper's five 3-D sites under L1
//!    must realise more than N_{3,2}(5) = 96 distance permutations (the
//!    paper observed 108 in its 10⁶-point database).
//! 2. Repeats the randomised search for the further cases the paper
//!    reports: 3-D L1 k=6, 3-D L∞ k=5, 4-D L1 k=6.
//!
//! Sampled counts are lower bounds on the true cell count — exactly the
//! paper's own caveat ("Even more than 108 permutations may exist").

use dp_bench::Args;
use dp_core::counterexample::{search_counterexample, verify_eq12, SearchMetric};
use dp_theory::n_euclidean;

fn main() {
    let args = Args::parse();
    let samples: usize = args.get("samples", 1_000_000);
    let trials: usize = args.get("trials", 60);
    let threads: usize = args.get("threads", 8);
    let seed: u64 = args.get("seed", 12);

    println!("Eq. 12 — the paper's 3-D L1 counterexample (k = 5)");
    let report = verify_eq12(samples, seed, threads);
    println!(
        "  observed {} distinct permutations over {samples} samples; Euclidean max = {} -> {}",
        report.observed,
        report.euclidean_max,
        if report.exceeds_euclidean() {
            "EXCEEDED (paper: 108)"
        } else {
            "not exceeded (increase --samples)"
        }
    );

    println!("\nrandomised search for further counterexamples (paper reports all three exist):");
    let cases = [
        ("3-D L1,  k=6", SearchMetric::L1, 3usize, 6usize),
        ("3-D Linf, k=5", SearchMetric::LInf, 3, 5),
        ("4-D L1,  k=6", SearchMetric::L1, 4, 6),
    ];
    for (name, metric, d, k) in cases {
        let e_max = n_euclidean(d as u32, k as u32).expect("small");
        let (_sites, rep) =
            search_counterexample(metric, d, k, trials, samples / 2, seed ^ (d as u64), threads);
        println!(
            "  {name}: best sampled count {} vs Euclidean max {e_max} -> {}",
            rep.observed,
            if rep.exceeds_euclidean() { "EXCEEDED" } else { "not exceeded in this budget" }
        );
    }
    println!("\n(counts are sampling lower bounds; raising --samples/--trials tightens them)");
}
