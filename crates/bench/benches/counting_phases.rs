//! Phase-level breakdown of the flat counting pipeline on the headline
//! 100k-point, k = 12, d = 8 configuration (plus k = 4 for the small-k
//! regime).
//!
//! End-to-end counting numbers (`BENCH_flat.json`) can say *that* the
//! count moved but not *which phase* moved it.  This bench times the
//! phases in isolation so future PRs can attribute deltas directly:
//!
//! * `phase_distances` — the batched site-transposed distance kernel
//!   alone, all `n × k` distances into one buffer;
//! * `phase_ranking`   — the branchless k²/2 ranking + key packing over
//!   a precomputed distance buffer
//!   ([`dp_permutation::compute::rank_distance_rows_packed`]);
//! * `phase_sort`      — sorting the packed key buffer: the LSD radix
//!   sort ([`RadixSorter`]) vs `sort_unstable`, same input;
//! * `phase_codebook`  — the survey/storage tail over a finalized
//!   summary: codebook-ordered frequency table
//!   (`lexicographic_counts`), the flat codebook build
//!   ([`PackedCodebook::from_summary`]), and the Huffman + entropy sums.
//!
//! Set `CRITERION_JSON=BENCH_counting_phases.json` to append
//! machine-readable medians; the committed baseline was recorded that
//! way.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_datasets::vectors::uniform_unit_cube_flat;
use dp_metric::{BatchDistance, L2Squared, TransposedSites};
use dp_permutation::compute::rank_distance_rows_packed;
use dp_permutation::huffman::{entropy_bits, HuffmanCode};
use dp_permutation::{collect_packed_flat, packed_keys_flat, PackedCodebook, RadixSorter};
use std::hint::black_box;

const N: usize = 100_000;
const DIM: usize = 8;

fn setup(k: usize) -> (Vec<f64>, TransposedSites) {
    let db = uniform_unit_cube_flat(N, DIM, 1);
    let sites = uniform_unit_cube_flat(k, DIM, 2);
    let sites_t = TransposedSites::from_rows(sites.as_flat(), DIM);
    (db.as_flat().to_vec(), sites_t)
}

fn bench_distances(c: &mut Criterion) {
    for k in [4usize, 12] {
        let (db, sites_t) = setup(k);
        let mut out = vec![0.0f64; N * k];
        let mut group = c.benchmark_group(format!("phase_distances_n{N}_k{k}_d{DIM}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements((N * k) as u64));
        group.bench_function("strip", |b| {
            b.iter(|| {
                L2Squared.batch_distances(&db, &sites_t, &mut out);
                black_box(out[0])
            });
        });
        group.finish();
    }
}

fn bench_ranking(c: &mut Criterion) {
    for k in [4usize, 12] {
        let (db, sites_t) = setup(k);
        let mut dists = vec![0.0f64; N * k];
        L2Squared.batch_distances(&db, &sites_t, &mut dists);
        let mut group = c.benchmark_group(format!("phase_ranking_n{N}_k{k}_d{DIM}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(N as u64));
        group.bench_function("rank_pack", |b| {
            b.iter(|| black_box(rank_distance_rows_packed::<u64>(&dists, k).len()));
        });
        group.finish();
    }
}

fn bench_sort(c: &mut Criterion) {
    for k in [4usize, 12] {
        let (db, sites_t) = setup(k);
        let keys = packed_keys_flat::<u64, _>(&L2Squared, &sites_t, &db);
        let mut group = c.benchmark_group(format!("phase_sort_n{N}_k{k}_d{DIM}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(N as u64));
        let mut sorter = RadixSorter::new();
        let mut scratch = keys.clone();
        group.bench_function("radix", |b| {
            b.iter(|| {
                scratch.copy_from_slice(&keys);
                sorter.sort_keys(&mut scratch, 5 * k as u32);
                black_box(scratch[0])
            });
        });
        group.bench_function("std", |b| {
            b.iter(|| {
                scratch.copy_from_slice(&keys);
                scratch.sort_unstable();
                black_box(scratch[0])
            });
        });
        group.finish();
    }
}

fn bench_codebook(c: &mut Criterion) {
    for k in [4usize, 12] {
        let (db, sites_t) = setup(k);
        let summary = collect_packed_flat::<u64, _>(&L2Squared, &sites_t, &db).finalize();
        let freqs = summary.lexicographic_counts();
        let mut group = c.benchmark_group(format!("phase_codebook_n{N}_k{k}_d{DIM}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(summary.distinct() as u64));
        group.bench_function("lexicographic_counts", |b| {
            // black_box the Vec itself: since the lexicographic key
            // layout, this is a straight clone of the occupancy table,
            // which boxing only the length would let the optimizer elide.
            b.iter(|| black_box(summary.lexicographic_counts()));
        });
        group.bench_function("packed_codebook", |b| {
            b.iter(|| black_box(PackedCodebook::from_summary(&summary)));
        });
        group.bench_function("huffman_entropy", |b| {
            b.iter(|| {
                let code = HuffmanCode::from_frequencies(&freqs);
                black_box(code.mean_bits(&freqs) + entropy_bits(&freqs))
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_distances, bench_ranking, bench_sort, bench_codebook);
criterion_main!(benches);
