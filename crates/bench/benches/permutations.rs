//! Microbenchmarks for the permutation machinery: the hot kernel of every
//! experiment is `distance_permutation` (k metric evaluations + a sort),
//! and the index types lean on ranking and permutation distances.

use criterion::{criterion_group, criterion_main, Criterion};
use dp_metric::L2Squared;
use dp_permutation::lehmer::{rank, unrank};
use dp_permutation::permdist::{kendall_tau, spearman_footrule};
use dp_permutation::{DistPermComputer, Permutation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
}

fn bench_distance_permutation(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_permutation_d8");
    for k in [4usize, 8, 12, 16] {
        let sites = random_points(k, 8, 1);
        let queries = random_points(256, 8, 2);
        let mut computer = DistPermComputer::new(k);
        group.bench_function(format!("k{k}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i & 255];
                i += 1;
                black_box(computer.compute(&L2Squared, &sites, q))
            });
        });
    }
    group.finish();
}

fn bench_database_permutations_flat(c: &mut Criterion) {
    use dp_metric::TransposedSites;
    use dp_permutation::compute::{database_permutations, database_permutations_flat};
    let mut group = c.benchmark_group("database_permutations_n10k_d8");
    group.sample_size(15);
    for k in [4usize, 12] {
        let db = random_points(10_000, 8, 5);
        let sites = random_points(k, 8, 6);
        group.bench_function(format!("nested_k{k}"), |b| {
            b.iter(|| black_box(database_permutations(&L2Squared, &sites, &db).len()));
        });
        let db_flat: dp_datasets::VectorSet = db.iter().cloned().collect();
        let sites_flat: dp_datasets::VectorSet = sites.iter().cloned().collect();
        let sites_t = TransposedSites::from_rows(sites_flat.as_flat(), sites_flat.dim());
        group.bench_function(format!("flat_k{k}"), |b| {
            b.iter(|| {
                black_box(database_permutations_flat(&L2Squared, &sites_t, db_flat.as_flat()).len())
            });
        });
    }
    group.finish();
}

fn bench_lehmer(c: &mut Criterion) {
    let perms: Vec<Permutation> = Permutation::all(8).collect();
    c.bench_function("lehmer_rank_k8", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let p = &perms[i % perms.len()];
            i += 1;
            black_box(rank(p))
        });
    });
    c.bench_function("lehmer_unrank_k8", |b| {
        let mut r = 0u128;
        b.iter(|| {
            r = (r + 12345) % 40320;
            black_box(unrank(8, r))
        });
    });
}

fn bench_permutation_distances(c: &mut Criterion) {
    let perms: Vec<Permutation> = Permutation::all(8).step_by(97).collect();
    c.bench_function("spearman_footrule_k8", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = &perms[i % perms.len()];
            let y = &perms[(i * 7 + 3) % perms.len()];
            i += 1;
            black_box(spearman_footrule(x, y))
        });
    });
    c.bench_function("kendall_tau_k8", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = &perms[i % perms.len()];
            let y = &perms[(i * 7 + 3) % perms.len()];
            i += 1;
            black_box(kendall_tau(x, y))
        });
    });
}

fn bench_enumeration(c: &mut Criterion) {
    c.bench_function("next_lex_sweep_k8", |b| {
        b.iter(|| {
            let mut p = Permutation::identity(8);
            let mut n = 1u32;
            while p.next_lex() {
                n += 1;
            }
            black_box(n)
        });
    });
}

criterion_group!(
    benches,
    bench_distance_permutation,
    bench_database_permutations_flat,
    bench_lehmer,
    bench_permutation_distances,
    bench_enumeration
);
criterion_main!(benches);
