//! Streaming sharded counting vs the in-memory engine: time *and*
//! bounded-memory evidence on the survey's counting core.
//!
//! One cell = one k = 16 sharded survey (u128 keys) over uniform d = 2
//! points at n = 10⁵ and 10⁶, across shard sizes from aggressive
//! (16384 rows/shard) to lazy (262144), with `inmem` (shard-rows 0,
//! the buffer-everything engine) as the reference row.  d = 2 keeps the
//! distinct count far below n, so the runs show the streaming trade
//! honestly: the counter's working set is one shard of keys plus one
//! `(key, count)` run per distinct permutation, instead of all n keys.
//!
//! The `peak_kib_*` rows encode the measured high-water working set of
//! a [`ShardedCounter`] drive over the same keys — reported through the
//! benchmark's throughput column (KiB as "elements") rather than a
//! side-channel file, so the JSON baseline carries the memory story
//! next to the time story.
//!
//! Set `CRITERION_JSON=BENCH_sharded.json` to append machine-readable
//! medians; the committed baseline was recorded that way.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_core::{survey_database_flat_sharded, SurveyConfig};
use dp_datasets::vectors::uniform_unit_cube_flat;
use dp_metric::{L2Squared, TransposedSites};
use dp_permutation::compute::packed_keys_flat;
use dp_permutation::ShardedCounter;
use std::hint::black_box;

const DIM: usize = 2;
const K: usize = 16;
const SHARDS: [usize; 3] = [16_384, 65_536, 262_144];

/// High-water working set of the streaming counter in KiB: the shard
/// key buffer plus the peak merge frontier of `(key, count)` runs.
fn peak_working_set_kib(keys: &[u128], shard_rows: usize) -> u64 {
    let mut counter = ShardedCounter::<u128>::new(K, shard_rows);
    for &key in keys {
        counter.insert_key(key);
    }
    counter.flush();
    let buffered = shard_rows.min(keys.len()) * std::mem::size_of::<u128>();
    let frontier = counter.peak_frontier_entries() * std::mem::size_of::<(u128, u64)>();
    ((buffered + frontier) / 1024) as u64
}

fn bench_sharded(c: &mut Criterion) {
    for n in [100_000usize, 1_000_000] {
        let db = uniform_unit_cube_flat(n, DIM, 1);
        let sites = uniform_unit_cube_flat(K, DIM, 2);
        let sites_t = TransposedSites::from_rows(sites.as_flat(), DIM);
        let cfg = SurveyConfig { ks: vec![K], ..Default::default() };
        let mut group = c.benchmark_group(format!("sharded_survey_n{n}_k{K}_d{DIM}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function("inmem", |b| {
            b.iter(|| {
                black_box(
                    survey_database_flat_sharded(&L2Squared, &db, &cfg, 1, 0).per_k[0]
                        .report
                        .distinct,
                )
            });
        });
        for shard_rows in SHARDS {
            group.bench_function(format!("shard{shard_rows}"), |b| {
                b.iter(|| {
                    black_box(
                        survey_database_flat_sharded(&L2Squared, &db, &cfg, 1, shard_rows).per_k[0]
                            .report
                            .distinct,
                    )
                });
            });
        }
        // Memory rows: the measured peak working set, encoded as KiB in
        // the throughput column (the time per "iteration" is just the
        // counter drive and is not the statistic of interest).
        let keys: Vec<u128> = packed_keys_flat(&L2Squared, &sites_t, db.as_flat());
        let inmem_kib = (keys.len() * std::mem::size_of::<u128>() / 1024) as u64;
        group.throughput(Throughput::Elements(inmem_kib));
        group.bench_function("peak_kib_inmem", |b| b.iter(|| black_box(keys.len())));
        for shard_rows in SHARDS {
            let kib = peak_working_set_kib(&keys, shard_rows);
            group.throughput(Throughput::Elements(kib));
            group.bench_function(format!("peak_kib_shard{shard_rows}"), |b| {
                b.iter(|| black_box(peak_working_set_kib(&keys, shard_rows)));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
