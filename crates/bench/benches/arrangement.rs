//! Benchmarks for the exact geometry: rational line-arrangement cell
//! counting (the Fig 3 verifier) and the 1-D midpoint counter.

use criterion::{criterion_group, criterion_main, Criterion};
use dp_geometry::arrangement::euclidean_cells;
use dp_geometry::oned::exact_count_1d;
use dp_geometry::sampling::{grid_count, BBox};
use dp_metric::L1;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_sites(k: usize, spread: i64, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let p = (rng.random_range(-spread..spread), rng.random_range(-spread..spread));
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

fn bench_euclidean_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("euclidean_cells");
    for k in [6usize, 10, 14] {
        let sites = random_sites(k, 10_000, k as u64);
        group.bench_function(format!("k{k}"), |b| b.iter(|| black_box(euclidean_cells(&sites))));
    }
    group.finish();
}

fn bench_oned(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let mut sites: Vec<i64> = Vec::new();
    while sites.len() < 64 {
        let v = rng.random_range(-1_000_000i64..1_000_000);
        if !sites.contains(&v) {
            sites.push(v);
        }
    }
    c.bench_function("exact_count_1d_k64", |b| b.iter(|| black_box(exact_count_1d(&sites))));
}

fn bench_grid_count(c: &mut Criterion) {
    let sites: Vec<Vec<f64>> = vec![
        vec![0.9867, 0.5630],
        vec![0.3364, 0.5875],
        vec![0.4702, 0.8210],
        vec![0.8423, 0.3812],
    ];
    let bbox = BBox { x_min: -0.5, x_max: 1.5, y_min: -0.5, y_max: 1.5 };
    let mut group = c.benchmark_group("grid_count_l1_k4");
    group.sample_size(20);
    group.bench_function("200x200", |b| {
        b.iter(|| black_box(grid_count(&L1, &sites, bbox, 200, 200).distinct()));
    });
    group.finish();
}

criterion_group!(benches, bench_euclidean_cells, bench_oned, bench_grid_count);
criterion_main!(benches);
