//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **counting strategy** — FxHash set vs std SipHash set vs the k!-rank
//!   bitmap (distinct counting is the inner loop of Tables 2 and 3);
//! * **scratch reuse** — `DistPermComputer` vs a fresh allocation per
//!   point (the perf-book "reusing collections" guidance);
//! * **metric monotone-equivalence** — L2 vs L2Squared for permutation
//!   computation (identical permutations, no square root).

use criterion::{criterion_group, criterion_main, Criterion};
use dp_datasets::uniform_unit_cube;
use dp_metric::{L2Squared, Metric, L2};
use dp_permutation::compute::{database_permutations, distance_permutation, DistPermComputer};
use dp_permutation::counter::RankBitmap;
use dp_permutation::fxhash::FxHashSet;
use dp_permutation::Permutation;
use std::collections::HashSet;
use std::hint::black_box;

fn bench_counting_strategies(c: &mut Criterion) {
    // One shared permutation stream: 20k points, k = 8, 4-D.
    let db = uniform_unit_cube(20_000, 4, 1);
    let sites = uniform_unit_cube(8, 4, 2);
    let perms = database_permutations(&L2Squared, &sites, &db);

    let mut group = c.benchmark_group("distinct_counting_20k_k8");
    group.bench_function("fx_hash_set", |b| {
        b.iter(|| {
            let mut set: FxHashSet<Permutation> = FxHashSet::default();
            for &p in &perms {
                set.insert(p);
            }
            black_box(set.len())
        });
    });
    group.bench_function("sip_hash_set", |b| {
        b.iter(|| {
            let mut set: HashSet<Permutation> = HashSet::new();
            for &p in &perms {
                set.insert(p);
            }
            black_box(set.len())
        });
    });
    group.bench_function("rank_bitmap", |b| {
        b.iter(|| {
            let mut bm = RankBitmap::new(8);
            for p in &perms {
                bm.insert(p);
            }
            black_box(bm.distinct())
        });
    });
    group.finish();
}

fn bench_scratch_reuse(c: &mut Criterion) {
    let db = uniform_unit_cube(4_096, 4, 3);
    let sites = uniform_unit_cube(12, 4, 4);
    let mut group = c.benchmark_group("scratch_reuse_k12");
    group.bench_function("reused_computer", |b| {
        let mut computer = DistPermComputer::new(12);
        b.iter(|| {
            let mut acc = 0usize;
            for y in &db {
                acc += computer.compute(&L2Squared, &sites, y).get(0) as usize;
            }
            black_box(acc)
        });
    });
    group.bench_function("fresh_allocation", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for y in &db {
                acc += distance_permutation(&L2Squared, &sites, y).get(0) as usize;
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_l2_vs_squared(c: &mut Criterion) {
    let db = uniform_unit_cube(4_096, 8, 5);
    let sites = uniform_unit_cube(8, 8, 6);
    let mut group = c.benchmark_group("metric_equivalence_d8_k8");
    group.bench_function("l2_sqrt", |b| {
        let mut computer = DistPermComputer::new(8);
        b.iter(|| {
            let mut acc = 0usize;
            for y in &db {
                acc += computer.compute(&L2, &sites, y).get(0) as usize;
            }
            black_box(acc)
        });
    });
    group.bench_function("l2_squared", |b| {
        let mut computer = DistPermComputer::new(8);
        b.iter(|| {
            let mut acc = 0usize;
            for y in &db {
                acc += computer.compute(&L2Squared, &sites, y).get(0) as usize;
            }
            black_box(acc)
        });
    });
    // Guard: the two metrics really do induce the same permutations.
    let mut computer = DistPermComputer::new(8);
    for y in db.iter().take(64) {
        assert_eq!(computer.compute(&L2, &sites, y), computer.compute(&L2Squared, &sites, y));
    }
    let _ = L2.distance(&db[0][..], &db[1][..]);
    group.finish();
}

criterion_group!(benches, bench_counting_strategies, bench_scratch_reuse, bench_l2_vs_squared);
criterion_main!(benches);
