//! Microbenchmarks for the permutation storage layouts (E13's kernels):
//! packing, codebook interning, random access into the bit-packed store,
//! and Huffman encode/decode throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_metric::L2Squared;
use dp_permutation::huffman::HuffmanPermStore;
use dp_permutation::store::{PackedPermStore, RawPermStore};
use dp_permutation::{distance_permutation, Codebook, Permutation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn permutation_column(n: usize, d: usize, k: usize, seed: u64) -> Vec<Permutation> {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<Vec<f64>> =
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect();
    let sites: Vec<Vec<f64>> = points[..k].to_vec();
    points.iter().map(|y| distance_permutation(&L2Squared, &sites, y)).collect()
}

fn bench_store_build(c: &mut Criterion) {
    let perms = permutation_column(20_000, 3, 10, 1);
    let mut group = c.benchmark_group("store_build_n20k_k10");
    group.throughput(Throughput::Elements(perms.len() as u64));
    group.bench_function("raw", |b| {
        b.iter(|| black_box(RawPermStore::from_permutations(10, &perms)));
    });
    group.bench_function("packed_codebook", |b| {
        b.iter(|| black_box(PackedPermStore::from_permutations(&perms)));
    });
    group.bench_function("huffman", |b| {
        b.iter(|| black_box(HuffmanPermStore::from_permutations(&perms)));
    });
    group.finish();
}

fn bench_random_access(c: &mut Criterion) {
    let perms = permutation_column(20_000, 3, 10, 2);
    let raw = RawPermStore::from_permutations(10, &perms);
    let packed = PackedPermStore::from_permutations(&perms);
    let mut group = c.benchmark_group("store_get_n20k_k10");
    group.bench_function("raw", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 2654435761 + 1) % 20_000;
            black_box(raw.get(i))
        });
    });
    group.bench_function("packed_codebook", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 2654435761 + 1) % 20_000;
            black_box(packed.get(i))
        });
    });
    group.finish();
}

fn bench_sequential_decode(c: &mut Criterion) {
    let perms = permutation_column(20_000, 3, 10, 3);
    let packed = PackedPermStore::from_permutations(&perms);
    let huff = HuffmanPermStore::from_permutations(&perms);
    let mut group = c.benchmark_group("store_scan_n20k_k10");
    group.throughput(Throughput::Elements(perms.len() as u64));
    group.bench_function("packed_codebook", |b| {
        b.iter(|| black_box(packed.iter().map(|p| p.get(0) as u64).sum::<u64>()));
    });
    group.bench_function("huffman", |b| {
        b.iter(|| black_box(huff.iter().map(|p| p.get(0) as u64).sum::<u64>()));
    });
    group.finish();
}

fn bench_codebook_intern(c: &mut Criterion) {
    let perms = permutation_column(20_000, 3, 10, 4);
    let mut group = c.benchmark_group("codebook_n20k_k10");
    group.throughput(Throughput::Elements(perms.len() as u64));
    group.bench_function("intern_all", |b| {
        b.iter(|| {
            let cb: Codebook = perms.iter().copied().collect();
            black_box(cb.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_store_build,
    bench_random_access,
    bench_sequential_decode,
    bench_codebook_intern
);
criterion_main!(benches);
