//! Flat engine vs nested `Vec<Vec<f64>>`: build + count throughput on
//! the repo's headline workload (Table 3 style counting).
//!
//! Grid: n ∈ {10k, 100k}, k ∈ {4, 12}, d = 8, L2² distances.  Each cell
//! benchmarks the full single-run pipeline — distance-permutation scan
//! feeding the distinct counter — on identical coordinates (flat and
//! nested generators share the RNG stream, so both paths count the same
//! permutations).
//!
//! Set `CRITERION_JSON=BENCH_flat.json` to append machine-readable
//! medians; the committed baseline was recorded that way.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_core::count::{count_permutations, count_permutations_flat};
use dp_datasets::vectors::{uniform_unit_cube, uniform_unit_cube_flat};
use dp_metric::L2Squared;
use std::hint::black_box;

const DIM: usize = 8;

fn bench_count(c: &mut Criterion) {
    for (n, samples) in [(10_000usize, 20usize), (100_000, 10)] {
        let mut group = c.benchmark_group(format!("count_n{n}_d{DIM}"));
        group.sample_size(samples);
        group.throughput(Throughput::Elements(n as u64));
        for k in [4usize, 12] {
            let nested_db = uniform_unit_cube(n, DIM, 1);
            let nested_sites = uniform_unit_cube(k, DIM, 2);
            let flat_db = uniform_unit_cube_flat(n, DIM, 1);
            let flat_sites = uniform_unit_cube_flat(k, DIM, 2);
            group.bench_function(format!("nested_k{k}"), |b| {
                b.iter(|| {
                    black_box(count_permutations(&L2Squared, &nested_sites, &nested_db).distinct)
                });
            });
            group.bench_function(format!("flat_k{k}"), |b| {
                b.iter(|| {
                    black_box(count_permutations_flat(&L2Squared, &flat_sites, &flat_db).distinct)
                });
            });
        }
        group.finish();
    }
}

fn bench_build(c: &mut Criterion) {
    // Generator throughput: nested allocates n boxes, flat fills one
    // buffer (identical streams).
    let mut group = c.benchmark_group(format!("generate_n100k_d{DIM}"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("nested", |b| {
        b.iter(|| black_box(uniform_unit_cube(100_000, DIM, 3).len()));
    });
    group.bench_function("flat", |b| {
        b.iter(|| black_box(uniform_unit_cube_flat(100_000, DIM, 3).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_count, bench_build);
criterion_main!(benches);
