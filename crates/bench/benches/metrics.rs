//! Microbenchmarks for the metric kernels — the unit of cost in all of
//! the paper's experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use dp_datasets::dictionary::{generate_words, language_profiles};
use dp_datasets::documents::{generate_documents, short_profile};
use dp_metric::{CosineDistance, LInf, Levenshtein, Metric, PrefixDistance, L1, L2};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
}

fn bench_vector_metrics(c: &mut Criterion) {
    for d in [8usize, 32, 112] {
        let pts = random_points(256, d, 1);
        let mut group = c.benchmark_group(format!("vector_d{d}"));
        group.bench_function("L1", |b| {
            let mut i = 0usize;
            b.iter(|| {
                let x = &pts[i & 255];
                let y = &pts[(i + 7) & 255];
                i += 1;
                black_box(L1.distance(x, y))
            });
        });
        group.bench_function("L2", |b| {
            let mut i = 0usize;
            b.iter(|| {
                let x = &pts[i & 255];
                let y = &pts[(i + 7) & 255];
                i += 1;
                black_box(L2.distance(x, y))
            });
        });
        group.bench_function("Linf", |b| {
            let mut i = 0usize;
            b.iter(|| {
                let x = &pts[i & 255];
                let y = &pts[(i + 7) & 255];
                i += 1;
                black_box(LInf.distance(x, y))
            });
        });
        group.finish();
    }
}

fn bench_string_metrics(c: &mut Criterion) {
    let words = generate_words(&language_profiles()[1], 256, 5);
    c.bench_function("levenshtein_dictionary", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = &words[i & 255];
            let y = &words[(i + 31) & 255];
            i += 1;
            black_box(Levenshtein.distance(x, y))
        });
    });
    c.bench_function("prefix_distance_dictionary", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = &words[i & 255];
            let y = &words[(i + 31) & 255];
            i += 1;
            black_box(PrefixDistance.distance(x, y))
        });
    });
}

fn bench_cosine(c: &mut Criterion) {
    let docs = generate_documents(short_profile(), 256, 9);
    c.bench_function("cosine_short_documents", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let x = &docs[i & 255];
            let y = &docs[(i + 31) & 255];
            i += 1;
            black_box(CosineDistance.distance(x, y))
        });
    });
}

criterion_group!(benches, bench_vector_metrics, bench_string_metrics, bench_cosine);
criterion_main!(benches);
