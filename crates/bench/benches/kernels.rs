//! Strip-mined vs row-at-a-time batch-distance kernels, and the full
//! counting pipeline on top of each — the ROADMAP's "another ~2× in
//! `BatchDistance`" lever, measured.
//!
//! Two layers on the paper's headline 100k-point, k = 12, d = 8
//! configuration (plus a k = 4 point for the small-k regime):
//!
//! * `batch_dist_*` — the raw kernel: all `n × k` distances into one
//!   buffer, strip-mined ([`BatchDistance::batch_distances`]) vs the
//!   row-at-a-time reference (`batch_distances_rowwise`, the pre-strip
//!   flat kernel).  The acceptance bar for the strip kernel is ≥ 1.4×
//!   the rowwise kernel on the k = 12 configuration.
//! * `count_*` — the full Table 3 counting pipeline
//!   (`count_permutations_flat`) through each kernel; `Rowwise<M>`
//!   routes `batch_distances` to the reference kernel so the identical
//!   pipeline can be measured both ways.
//!
//! Set `CRITERION_JSON=BENCH_kernels.json` to append machine-readable
//! medians; the committed baseline was recorded that way.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_core::count::count_permutations_flat;
use dp_datasets::vectors::uniform_unit_cube_flat;
use dp_datasets::VectorSet;
use dp_metric::{BatchDistance, F64Dist, L2Squared, Metric, TransposedSites};
use std::hint::black_box;

const DIM: usize = 8;
const N: usize = 100_000;

/// Routes the strip-mined entry point to the row-at-a-time reference
/// kernel, so any flat consumer can be benchmarked "as before the
/// strip-mining" without a second code path.
#[derive(Debug, Clone, Copy)]
struct Rowwise<M>(M);

impl<M: Metric<[f64], Dist = F64Dist>> Metric<[f64]> for Rowwise<M> {
    type Dist = F64Dist;

    fn distance(&self, a: &[f64], b: &[f64]) -> F64Dist {
        self.0.distance(a, b)
    }
}

impl<M: BatchDistance> BatchDistance for Rowwise<M> {
    fn batch_distances(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        self.0.batch_distances_rowwise(rows, sites, out);
    }

    fn batch_distances_rowwise(&self, rows: &[f64], sites: &TransposedSites, out: &mut [f64]) {
        self.0.batch_distances_rowwise(rows, sites, out);
    }
}

fn bench_batch_distances(c: &mut Criterion) {
    for k in [4usize, 12] {
        let db = uniform_unit_cube_flat(N, DIM, 1);
        let sites = uniform_unit_cube_flat(k, DIM, 2);
        let sites_t = TransposedSites::from_rows(sites.as_flat(), DIM);
        let mut out = vec![0.0f64; N * k];
        let mut group = c.benchmark_group(format!("batch_dist_n{N}_k{k}_d{DIM}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements((N * k) as u64));
        group.bench_function("rowwise", |b| {
            b.iter(|| {
                L2Squared.batch_distances_rowwise(db.as_flat(), &sites_t, &mut out);
                black_box(out[0])
            });
        });
        group.bench_function("strip", |b| {
            b.iter(|| {
                L2Squared.batch_distances(db.as_flat(), &sites_t, &mut out);
                black_box(out[0])
            });
        });
        group.finish();
    }
}

fn bench_count(c: &mut Criterion) {
    let db = uniform_unit_cube_flat(N, DIM, 1);
    let k = 12usize;
    let sites: VectorSet = uniform_unit_cube_flat(k, DIM, 2);
    let mut group = c.benchmark_group(format!("count_n{N}_k{k}_d{DIM}"));
    group.sample_size(30);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("flat_rowwise", |b| {
        b.iter(|| black_box(count_permutations_flat(&Rowwise(L2Squared), &sites, &db).distinct));
    });
    group.bench_function("flat_strip", |b| {
        b.iter(|| black_box(count_permutations_flat(&L2Squared, &sites, &db).distinct));
    });
    group.finish();
}

criterion_group!(benches, bench_batch_distances, bench_count);
criterion_main!(benches);
