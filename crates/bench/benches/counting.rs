//! Benchmarks for the paper's central measurement: counting distinct
//! distance permutations over a database (Table 2/3 inner loop), plus
//! the codebook machinery behind the storage result.

use criterion::{criterion_group, criterion_main, Criterion};
use dp_core::count::{
    count_permutations, count_permutations_flat, count_permutations_flat_parallel,
    count_permutations_parallel,
};
use dp_datasets::{uniform_unit_cube, uniform_unit_cube_flat};
use dp_metric::L2Squared;
use dp_permutation::encoding::Codebook;
use dp_permutation::{compute::database_permutations, PermutationCounter};
use std::hint::black_box;

fn bench_count_distinct(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_distinct_n10k");
    group.sample_size(20);
    for (d, k) in [(2usize, 8usize), (6, 8), (6, 12)] {
        let db = uniform_unit_cube(10_000, d, 1);
        let sites = uniform_unit_cube(k, d, 2);
        group.bench_function(format!("d{d}_k{k}"), |b| {
            b.iter(|| black_box(count_permutations(&L2Squared, &sites, &db).distinct));
        });
        // Same coordinates through the flat batched engine.
        let db_flat = uniform_unit_cube_flat(10_000, d, 1);
        let sites_flat = uniform_unit_cube_flat(k, d, 2);
        group.bench_function(format!("d{d}_k{k}_flat"), |b| {
            b.iter(|| {
                black_box(count_permutations_flat(&L2Squared, &sites_flat, &db_flat).distinct)
            });
        });
    }
    group.finish();
}

fn bench_count_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_parallel_n50k_d6_k12");
    group.sample_size(10);
    let db = uniform_unit_cube(50_000, 6, 3);
    let sites = uniform_unit_cube(12, 6, 4);
    let db_flat = uniform_unit_cube_flat(50_000, 6, 3);
    let sites_flat = uniform_unit_cube_flat(12, 6, 4);
    for threads in [1usize, 4, 8] {
        group.bench_function(format!("threads{threads}"), |b| {
            b.iter(|| {
                black_box(count_permutations_parallel(&L2Squared, &sites, &db, threads).distinct)
            });
        });
        group.bench_function(format!("threads{threads}_flat"), |b| {
            b.iter(|| {
                black_box(
                    count_permutations_flat_parallel(&L2Squared, &sites_flat, &db_flat, threads)
                        .distinct,
                )
            });
        });
    }
    group.finish();
}

fn bench_counter_and_codebook(c: &mut Criterion) {
    let db = uniform_unit_cube(20_000, 4, 5);
    let sites = uniform_unit_cube(8, 4, 6);
    let perms = database_permutations(&L2Squared, &sites, &db);
    c.bench_function("permutation_counter_insert_20k", |b| {
        b.iter(|| {
            let mut counter = PermutationCounter::new();
            for &p in &perms {
                counter.insert(p);
            }
            black_box(counter.distinct())
        });
    });
    c.bench_function("codebook_intern_20k", |b| {
        b.iter(|| {
            let mut cb = Codebook::new();
            for &p in &perms {
                cb.intern(p);
            }
            black_box(cb.len())
        });
    });
}

criterion_group!(benches, bench_count_distinct, bench_count_parallel, bench_counter_and_codebook);
criterion_main!(benches);
