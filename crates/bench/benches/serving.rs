//! Parallel batch-serving throughput over the flat distperm engine.
//!
//! Measures `serve::query_batch_parallel` on a [`FlatDistPermIndex`] at
//! 1 vs N worker threads — the ROADMAP's "thread-parallel query serving"
//! baseline.  One searcher session per worker, contiguous chunks,
//! deterministic output; the property suite guarantees every thread
//! count returns bit-identical answers, so this bench is purely about
//! wall-clock.
//!
//! Record the baseline with:
//! `CRITERION_JSON=BENCH_serving.json cargo bench -p dp-bench --bench serving`
//!
//! Note: the speedup at N threads is bounded by the cores the machine
//! actually grants; on a single-core container all rows collapse to ~1×.

use criterion::{criterion_group, criterion_main, Criterion};
use dp_datasets::uniform_unit_cube_flat;
use dp_index::laesa::PivotSelection;
use dp_index::serve::{
    query_batch_parallel, serve_resilient, ApproxRequest, BatchOptions, FaultPlan, Request,
    ServeRequest,
};
use dp_index::FlatDistPermIndex;
use dp_metric::L2;
use std::hint::black_box;

const N: usize = 20_000;
const D: usize = 8;
const K: usize = 12;
const BATCH: usize = 64;

fn bench_serving(c: &mut Criterion) {
    let points = uniform_unit_cube_flat(N, D, 1);
    let queries = uniform_unit_cube_flat(BATCH, D, 2);
    let index = FlatDistPermIndex::build(L2, points, K, PivotSelection::MaxMin, 4);
    let rows: Vec<&[f64]> = queries.rows().collect();

    let mut group = c.benchmark_group(format!("serve_knn3_n{N}_batch{BATCH}"));
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                black_box(query_batch_parallel::<[f64], _, _>(
                    &index,
                    &rows,
                    Request::Knn { k: 3 },
                    threads,
                ))
            });
        });
    }
    group.finish();
}

/// Work-stealing vs contiguous chunking on a cost-skewed batch: one
/// query in eight carries a full scan budget, the rest are cheap.
/// Contiguous splits strand whole chunks behind the expensive queries;
/// the atomic-cursor engine (chunk 1) rebalances.  Run single-threaded
/// the two dispatchers are equivalent, so the gap only opens with real
/// cores (see the single-core note above).
fn bench_serving_steal(c: &mut Criterion) {
    const STEAL_BATCH: usize = 128;
    const THREADS: usize = 4;
    let points = uniform_unit_cube_flat(N, D, 3);
    let queries = uniform_unit_cube_flat(STEAL_BATCH, D, 4);
    let index = FlatDistPermIndex::build(L2, points, K, PivotSelection::MaxMin, 4);
    let rows: Vec<&[f64]> = queries.rows().collect();
    // Skew: every eighth query scans the full database, the rest 2%.
    let request_of = |i: usize| {
        let frac = if i.is_multiple_of(8) { 1.0 } else { 0.02 };
        ServeRequest::Approx(ApproxRequest::Knn { k: 3, frac })
    };

    let mut group = c.benchmark_group(format!("serve_steal_skewed_batch{STEAL_BATCH}"));
    group.sample_size(10);
    // Contiguous chunking: one cursor bump claims a worker-sized run.
    let contiguous = STEAL_BATCH.div_ceil(THREADS);
    for (label, chunk) in [("stealing_chunk1", 1), ("contiguous", contiguous)] {
        let options = BatchOptions::with_threads(THREADS).chunk(chunk);
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(serve_resilient::<[f64], _, _, _>(
                    &index,
                    &rows,
                    request_of,
                    &options,
                    &FaultPlan::none(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serving, bench_serving_steal);
criterion_main!(benches);
