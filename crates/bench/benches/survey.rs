//! Generic vs flat §5 survey on the headline database configuration.
//!
//! One cell = one full [`dp_core::survey_database`]-protocol run: the ρ
//! estimate (20k sampled pairs) plus the k = 12 distance-permutation
//! count with storage costs, over 100k uniform d = 8 points — the
//! configuration the ROADMAP names for the survey speedup.  The
//! `generic` row is the per-point engine on nested storage; `flat` is
//! [`dp_core::survey_database_flat`] (site-transposed kernels,
//! packed-u64 counting); `flat_t4` adds 4 counting workers (expect
//! overhead, not speedup, on a single-core container).
//!
//! Set `CRITERION_JSON=BENCH_survey.json` to append machine-readable
//! medians; the committed baseline was recorded that way.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_core::{survey_database, survey_database_flat, survey_database_flat_parallel, SurveyConfig};
use dp_datasets::vectors::{uniform_unit_cube, uniform_unit_cube_flat};
use dp_metric::L2Squared;
use std::hint::black_box;

const N: usize = 100_000;
const DIM: usize = 8;
const K: usize = 12;

fn bench_survey(c: &mut Criterion) {
    let cfg = SurveyConfig { ks: vec![K], ..Default::default() };
    let nested = uniform_unit_cube(N, DIM, 1);
    let flat = uniform_unit_cube_flat(N, DIM, 1);
    let mut group = c.benchmark_group(format!("survey_n{N}_d{DIM}"));
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(format!("generic_k{K}"), |b| {
        b.iter(|| black_box(survey_database(&L2Squared, &nested, &cfg).per_k[0].report.distinct));
    });
    group.bench_function(format!("flat_k{K}"), |b| {
        b.iter(|| {
            black_box(survey_database_flat(&L2Squared, &flat, &cfg).per_k[0].report.distinct)
        });
    });
    group.bench_function(format!("flat_k{K}_t4"), |b| {
        b.iter(|| {
            black_box(
                survey_database_flat_parallel(&L2Squared, &flat, &cfg, 4).per_k[0].report.distinct,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_survey);
criterion_main!(benches);
