//! Wide packed keys vs the hash fallback across the k sweep the
//! width-generic refactor opened up.
//!
//! Before PR 9 every k > 12 fell off the packed radix path onto the
//! hash-interning counter; now k ≤ 25 packs into a `u128` and runs the
//! same sort-and-scan pipeline as the `u64` headline configuration.
//! This bench sweeps k ∈ {8, 12, 16, 20, 24} on the 100k-point, d = 8
//! workload and times both engines at every k, twice over:
//!
//! * the `count` groups run the bare counting pipeline (distances →
//!   ranking → count) — `packed` is the width the `for_packed_k!`
//!   dispatcher would pick (`u64` for k ≤ 12, `u128` above) via
//!   [`collect_packed_flat`]; `hash` is the permutation-materialising
//!   counter ([`collect_counter_flat`]), the only pre-PR option for
//!   k > 12 and still the reference oracle;
//! * the `survey` groups add the per-k survey tail on top — the
//!   codebook-ordered frequency table (`lexicographic_counts`, a clone
//!   of the occupancy scan under the lexicographic key layout, vs the
//!   hash arm's lexicographic `sorted_counts` over materialised
//!   permutations, exactly the two arms of `survey_one_k`) and the
//!   shared Huffman + entropy sums.  This is where wide keys pay off
//!   hardest: the hash arm re-sorts `Vec<u8>` permutations while the
//!   packed arm's key order already *is* the codebook order.
//!
//! The k ≤ 12 cells double as a regression guard: the width-generic
//! dispatch must not tax the narrow `u64` path that set the flat-count
//! baseline in `BENCH_flat.json`.
//!
//! Set `CRITERION_JSON=BENCH_wide_keys.json` to append machine-readable
//! medians; the committed baseline was recorded that way.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dp_datasets::vectors::uniform_unit_cube_flat;
use dp_metric::{L2Squared, TransposedSites};
use dp_permutation::huffman::{entropy_bits, HuffmanCode};
use dp_permutation::{collect_counter_flat, collect_packed_flat, PackedKey, PACKED_MAX_K};
use std::hint::black_box;

const N: usize = 100_000;
const DIM: usize = 8;

fn setup(k: usize) -> (Vec<f64>, TransposedSites) {
    let db = uniform_unit_cube_flat(N, DIM, 1);
    let sites = uniform_unit_cube_flat(k, DIM, 2);
    let sites_t = TransposedSites::from_rows(sites.as_flat(), DIM);
    (db.as_flat().to_vec(), sites_t)
}

/// The shared storage-cost tail of both survey arms.
fn huffman_tail(freqs: &[u64]) -> f64 {
    let code = HuffmanCode::from_frequencies(freqs);
    code.mean_bits(freqs) + entropy_bits(freqs)
}

fn count_packed<K: PackedKey>(sites_t: &TransposedSites, rows: &[f64]) -> usize {
    collect_packed_flat::<K, _>(&L2Squared, sites_t, rows).finalize().distinct()
}

fn survey_packed<K: PackedKey>(sites_t: &TransposedSites, rows: &[f64]) -> f64 {
    let summary = collect_packed_flat::<K, _>(&L2Squared, sites_t, rows).finalize();
    huffman_tail(&summary.lexicographic_counts())
}

fn bench_wide_counting(c: &mut Criterion) {
    for k in [8usize, 12, 16, 20, 24] {
        let (db, sites_t) = setup(k);
        let mut group = c.benchmark_group(format!("wide_keys_count_n{N}_k{k}_d{DIM}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(N as u64));
        group.bench_function("packed", |b| {
            if k <= PACKED_MAX_K {
                b.iter(|| black_box(count_packed::<u64>(&sites_t, &db)));
            } else {
                b.iter(|| black_box(count_packed::<u128>(&sites_t, &db)));
            }
        });
        group.bench_function("hash", |b| {
            b.iter(|| black_box(collect_counter_flat(&L2Squared, &sites_t, &db).distinct()));
        });
        group.finish();
    }
}

fn bench_wide_survey(c: &mut Criterion) {
    for k in [8usize, 12, 16, 20, 24] {
        let (db, sites_t) = setup(k);
        let mut group = c.benchmark_group(format!("wide_keys_survey_n{N}_k{k}_d{DIM}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(N as u64));
        group.bench_function("packed", |b| {
            if k <= PACKED_MAX_K {
                b.iter(|| black_box(survey_packed::<u64>(&sites_t, &db)));
            } else {
                b.iter(|| black_box(survey_packed::<u128>(&sites_t, &db)));
            }
        });
        group.bench_function("hash", |b| {
            b.iter(|| {
                let counter = collect_counter_flat(&L2Squared, &sites_t, &db);
                let freqs: Vec<u64> = counter.sorted_counts().into_iter().map(|(_, c)| c).collect();
                black_box(huffman_tail(&freqs))
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_wide_counting, bench_wide_survey);
criterion_main!(benches);
