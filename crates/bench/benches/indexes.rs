//! Benchmarks for the index substrate: wall-clock per 1-NN query.
//! (Evaluation *counts* — the field's cost model — are reported by the
//! `search_eval` binary; criterion measures time.)
//!
//! Every structure is built by [`IndexSpec`] and queried through one
//! reused `ProximityIndex` searcher session, so this file is one loop
//! over specs instead of one hand-written benchmark per type.

use criterion::{criterion_group, criterion_main, Criterion};
use dp_datasets::uniform_unit_cube;
use dp_index::laesa::PivotSelection;
use dp_index::{AnyIndex, ApproxSearcher, IndexSpec, ProximityIndex, Searcher};
use dp_metric::L2;
use std::hint::black_box;

const N: usize = 2_000;
const D: usize = 4;

fn bench_knn(c: &mut Criterion) {
    let pts = uniform_unit_cube(N, D, 1);
    let queries = uniform_unit_cube(256, D, 2);

    let mut group = c.benchmark_group("knn1_n2000_d4");
    let cases = [
        ("linear_scan", IndexSpec::Linear),
        ("laesa_k12", IndexSpec::Laesa { k: 12 }),
        ("aesa", IndexSpec::Aesa),
        ("vp_tree", IndexSpec::VpTree),
        ("gh_tree", IndexSpec::GhTree),
    ];
    for (name, spec) in cases {
        let idx =
            AnyIndex::build(spec, L2, pts.clone(), PivotSelection::MaxMin).expect("generic spec");
        group.bench_function(name, |b| {
            let mut searcher = idx.searcher();
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i & 255];
                i += 1;
                black_box(searcher.knn(q, 1))
            });
        });
    }

    let dp = AnyIndex::build(IndexSpec::DistPerm { k: 12 }, L2, pts, PivotSelection::MaxMin)
        .expect("distperm spec");
    group.bench_function("distperm_frac0.1", |b| {
        let mut searcher = dp.searcher();
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i & 255];
            i += 1;
            black_box(searcher.knn_approx(q, 1, 0.1))
        });
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let pts = uniform_unit_cube(N, D, 3);
    let mut group = c.benchmark_group("build_n2000_d4");
    group.sample_size(10);
    for (name, spec) in
        [("vp_tree", IndexSpec::VpTree), ("distperm_k12", IndexSpec::DistPerm { k: 12 })]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let idx = AnyIndex::build(spec, L2, pts.clone(), PivotSelection::MaxMin)
                    .expect("generic spec");
                black_box(idx.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn, bench_build);
criterion_main!(benches);
