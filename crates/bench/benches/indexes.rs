//! Benchmarks for the index substrate: wall-clock per 1-NN query.
//! (Evaluation *counts* — the field's cost model — are reported by the
//! `search_eval` binary; criterion measures time.)

use criterion::{criterion_group, criterion_main, Criterion};
use dp_datasets::uniform_unit_cube;
use dp_index::laesa::PivotSelection;
use dp_index::{Aesa, DistPermIndex, GhTree, Laesa, LinearScan, VpTree};
use dp_metric::L2;
use std::hint::black_box;

const N: usize = 2_000;
const D: usize = 4;

fn bench_knn(c: &mut Criterion) {
    let pts = uniform_unit_cube(N, D, 1);
    let queries = uniform_unit_cube(256, D, 2);
    let scan = LinearScan::new(pts.clone());
    let laesa = Laesa::build(L2, pts.clone(), 12, PivotSelection::MaxMin);
    let aesa = Aesa::build(L2, pts.clone());
    let vp = VpTree::build(L2, pts.clone());
    let gh = GhTree::build(L2, pts.clone());
    let dp = DistPermIndex::build(L2, pts, 12, PivotSelection::MaxMin);

    let mut group = c.benchmark_group("knn1_n2000_d4");
    group.bench_function("linear_scan", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i & 255];
            i += 1;
            black_box(scan.knn(&L2, q, 1))
        })
    });
    group.bench_function("laesa_k12", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i & 255];
            i += 1;
            black_box(laesa.knn(q, 1))
        })
    });
    group.bench_function("aesa", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i & 255];
            i += 1;
            black_box(aesa.knn(q, 1))
        })
    });
    group.bench_function("vp_tree", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i & 255];
            i += 1;
            black_box(vp.knn(q, 1))
        })
    });
    group.bench_function("gh_tree", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i & 255];
            i += 1;
            black_box(gh.knn(q, 1))
        })
    });
    group.bench_function("distperm_frac0.1", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i & 255];
            i += 1;
            black_box(dp.knn_approx(q, 1, 0.1))
        })
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let pts = uniform_unit_cube(N, D, 3);
    let mut group = c.benchmark_group("build_n2000_d4");
    group.sample_size(10);
    group.bench_function("vp_tree", |b| b.iter(|| black_box(VpTree::build(L2, pts.clone()).len())));
    group.bench_function("distperm_k12", |b| {
        b.iter(|| {
            black_box(DistPermIndex::build(L2, pts.clone(), 12, PivotSelection::MaxMin).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_knn, bench_build);
criterion_main!(benches);
