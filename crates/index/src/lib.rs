//! # dp-index — proximity-search index substrate
//!
//! A from-scratch reimplementation of the slice of the SISAP metric-space
//! library that *Counting distance permutations* builds on (§5: "we
//! implemented distance permutations for the SISAP library … as a new
//! index type called `distperm`, a minor modification of the library's
//! `pivots` index type").  The cost model is the field's: **count metric
//! evaluations**, everything else is free.
//!
//! ## The unified query API
//!
//! Every index type answers queries through the same trait family
//! ([`api`]):
//!
//! * [`ProximityIndex`] — the immutable, `Sync` build product; exact
//!   `knn`/`range` with answers identical to [`LinearScan`];
//! * [`Searcher`] — a per-session cursor from
//!   [`ProximityIndex::searcher`] that owns all per-query scratch, is
//!   `Send`, and counts metric evaluations natively: every query returns
//!   `(Vec<Neighbor>, QueryStats)`;
//! * [`ApproxIndex`] / [`ApproxSearcher`] — the budgeted surface of the
//!   permutation family (`knn_approx`/`range_approx` with a scan
//!   fraction; `frac = 1.0` is exact).
//!
//! On top of the traits sit [`spec`] — build any index by name
//! ([`IndexSpec`] → [`AnyIndex`]) — and [`serve`] — deterministic batch
//! serving, sequentially or across scoped worker threads with one
//! searcher per worker ([`serve::query_batch_parallel`]).
//!
//! ## Serving & failure model
//!
//! The [`serve`] module also hosts the fault-tolerant serving subsystem
//! behind `distperm serve` (see its module docs for the full contract):
//!
//! * **isolation** — every query runs under `catch_unwind`
//!   ([`serve::serve_resilient`]); a panicking query becomes a
//!   structured [`serve::QueryError`] in its own slot and the worker's
//!   searcher is rebuilt — one bad query can neither kill the process
//!   nor corrupt its successors;
//! * **degradation** — past a batch's soft deadline, remaining exact
//!   queries downgrade to the budgeted [`ApproxSearcher`] surface at a
//!   configured fraction, flagged [`serve::Outcome::Degraded`]; a
//!   client's own budget is never raised;
//! * **backpressure** — the session loop ([`serve::serve_session`])
//!   admits a bounded number of batches and *sheds* the excess with
//!   explicit replies instead of queueing without bound;
//! * **hardening** — the line protocol parser ([`serve::LineParser`])
//!   is total: garbage input yields typed error replies, never a dead
//!   session.
//!
//! With zero faults and no deadline the resilient path returns answers
//! and stats bit-identical to [`serve::query_batch_parallel`] at any
//! thread count — the release-mode robustness suite pins this.
//!
//! ## Index types
//!
//! * [`LinearScan`] — the naive baseline (n evaluations per query);
//! * [`Aesa`] — Vidal's AESA: the full O(n²) distance matrix, fewest
//!   evaluations, impractical storage (the paper's framing in §1);
//! * [`Laesa`] — Micó–Oncina–Vidal LAESA: k pivot distances per element
//!   (the SISAP `pivots` type);
//! * [`DistPermIndex`] — the paper's `distperm`: one distance permutation
//!   per element; supports exporting/counting the permutation multiset
//!   (the paper's measurement) and permutation-ordered approximate search
//!   (Chávez–Figueroa–Navarro);
//! * [`FlatDistPermIndex`] — `distperm` over flat
//!   [`dp_datasets::VectorSet`] storage with batched distance kernels;
//! * [`PrefixPermIndex`] — truncated permutations (length-ℓ prefixes);
//! * [`IAesa`] — improved AESA (Figueroa–Chávez–Navarro–Paredes): AESA
//!   elimination with permutation-similarity candidate ordering;
//! * [`VpTree`] / [`GhTree`] — classical metric trees (Uhlmann, Yianilos)
//!   for comparison;
//! * [`BkTree`] — Burkhard–Keller tree for integer-valued metrics.
//!
//! Exact structures are property-tested to return *identical* answers to
//! [`LinearScan`] through the trait surface.  [`counting::CountingMetric`]
//! remains for instrumenting *build* costs; query costs ride in
//! [`QueryStats`].

#![forbid(unsafe_code)]

pub mod aesa;
pub mod api;
pub mod bktree;
pub mod counting;
pub mod distperm;
pub mod flatperm;
pub mod ghtree;
pub mod iaesa;
pub mod laesa;
pub mod linear;
pub mod pivots;
pub mod prefixindex;
pub mod query;
pub mod serve;
pub mod spec;
pub mod vptree;

pub use aesa::{Aesa, AesaSearcher};
pub use api::{ApproxIndex, ApproxSearcher, ProximityIndex, Searcher};
pub use bktree::{BkSearcher, BkTree};
pub use counting::CountingMetric;
pub use distperm::{DistPermIndex, DistPermSearcher, OrderingKind};
pub use flatperm::{FlatDistPermIndex, FlatDistPermSearcher};
pub use ghtree::{GhSearcher, GhTree};
pub use iaesa::{IAesa, IAesaSearcher};
pub use laesa::{Laesa, LaesaSearcher, PivotSelection};
pub use linear::{LinearScan, LinearSearcher};
pub use prefixindex::{PrefixPermIndex, PrefixPermSearcher};
pub use query::{Neighbor, QueryStats};
pub use spec::{AnyIndex, AnySearcher, IndexSpec, SpecError, DEFAULT_K};
pub use vptree::{VpSearcher, VpTree};
