//! # dp-index — proximity-search index substrate
//!
//! A from-scratch reimplementation of the slice of the SISAP metric-space
//! library that *Counting distance permutations* builds on (§5: "we
//! implemented distance permutations for the SISAP library … as a new
//! index type called `distperm`, a minor modification of the library's
//! `pivots` index type").  The cost model is the field's: **count metric
//! evaluations**, everything else is free.
//!
//! Index types:
//!
//! * [`LinearScan`] — the naive baseline (n evaluations per query);
//! * [`Aesa`] — Vidal's AESA: the full O(n²) distance matrix, fewest
//!   evaluations, impractical storage (the paper's framing in §1);
//! * [`Laesa`] — Micó–Oncina–Vidal LAESA: k pivot distances per element
//!   (the SISAP `pivots` type);
//! * [`DistPermIndex`] — the paper's `distperm`: one distance permutation
//!   per element; supports exporting/counting the permutation multiset
//!   (the paper's measurement) and permutation-ordered approximate search
//!   (Chávez–Figueroa–Navarro);
//! * [`IAesa`] — improved AESA (Figueroa–Chávez–Navarro–Paredes): AESA
//!   elimination with permutation-similarity candidate ordering;
//! * [`VpTree`] / [`GhTree`] — classical metric trees (Uhlmann, Yianilos)
//!   for comparison.
//!
//! Exact structures are property-tested to return *identical* answers to
//! [`LinearScan`]; [`counting::CountingMetric`] instruments any metric so
//! the harness can report evaluation counts per query.

pub mod aesa;
pub mod bktree;
pub mod counting;
pub mod distperm;
pub mod flatperm;
pub mod ghtree;
pub mod iaesa;
pub mod laesa;
pub mod linear;
pub mod pivots;
pub mod prefixindex;
pub mod query;
pub mod vptree;

pub use aesa::Aesa;
pub use bktree::BkTree;
pub use counting::CountingMetric;
pub use distperm::{DistPermIndex, DistPermSearcher, OrderingKind};
pub use flatperm::{FlatDistPermIndex, FlatDistPermSearcher};
pub use ghtree::GhTree;
pub use iaesa::IAesa;
pub use laesa::{Laesa, PivotSelection};
pub use linear::LinearScan;
pub use prefixindex::PrefixPermIndex;
pub use query::Neighbor;
pub use vptree::VpTree;
