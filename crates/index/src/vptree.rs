//! Vantage-point tree (Uhlmann 1991, Yianilos 1993).
//!
//! One of the classical triangle-inequality tree indexes the paper's §1
//! surveys (VP-trees and GH-trees "organise the points into trees and the
//! search algorithm attempts to exclude subtrees").  Included as the
//! tree-structured baseline next to the matrix-based AESA family.

use crate::api::{ProximityIndex, Searcher};
use crate::query::{KnnHeap, Neighbor, QueryStats};
use dp_metric::{Distance, Metric};

const LEAF_SIZE: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        ids: Vec<usize>,
    },
    Inner {
        vantage: usize,
        /// Median distance from the vantage point (inside iff d <= mu).
        mu: f64,
        inside: usize,
        outside: usize,
    },
}

/// Vantage-point tree over an owned database.
#[derive(Debug, Clone)]
pub struct VpTree<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    nodes: Vec<Node>,
    root: usize,
}

impl<P, M: Metric<P>> VpTree<P, M> {
    /// Builds the tree with O(n log n) expected metric evaluations.
    pub fn build(metric: M, points: Vec<P>) -> Self {
        let ids: Vec<usize> = (0..points.len()).collect();
        let mut tree = Self { metric, points, nodes: Vec::new(), root: 0 };
        tree.root = tree.build_node(ids);
        tree
    }

    fn build_node(&mut self, mut ids: Vec<usize>) -> usize {
        if ids.len() <= LEAF_SIZE {
            self.nodes.push(Node::Leaf { ids });
            return self.nodes.len() - 1;
        }
        // Deterministic vantage: the first id of the subset.
        let vantage = ids.remove(0);
        let mut with_d: Vec<(f64, usize)> = ids
            .iter()
            .map(|&i| (self.metric.distance(&self.points[vantage], &self.points[i]).to_f64(), i))
            .collect();
        with_d.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mid = with_d.len() / 2;
        let mu = with_d[mid.saturating_sub(1)].0;
        let inside_ids: Vec<usize> =
            with_d.iter().filter(|&&(d, _)| d <= mu).map(|&(_, i)| i).collect();
        let outside_ids: Vec<usize> =
            with_d.iter().filter(|&&(d, _)| d > mu).map(|&(_, i)| i).collect();
        // Degenerate split (all equidistant): fall back to a leaf to
        // guarantee termination.
        if inside_ids.is_empty() || outside_ids.is_empty() {
            let mut all = vec![vantage];
            all.extend(inside_ids);
            all.extend(outside_ids);
            self.nodes.push(Node::Leaf { ids: all });
            return self.nodes.len() - 1;
        }
        let inside = self.build_node(inside_ids);
        let outside = self.build_node(outside_ids);
        self.nodes.push(Node::Inner { vantage, mu, inside, outside });
        self.nodes.len() - 1
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// A reusable query session (the traversal lives on the call stack;
    /// the session carries the native evaluation counter).
    pub fn session(&self) -> VpSearcher<'_, P, M> {
        VpSearcher { index: self }
    }

    /// Exact k nearest neighbours.
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        self.session().knn(query, k).0
    }

    /// All elements within `radius` (inclusive), sorted by (distance, id).
    pub fn range(&self, query: &P, radius: M::Dist) -> Vec<Neighbor<M::Dist>> {
        self.session().range(query, radius).0
    }

    fn knn_node(&self, node: usize, query: &P, heap: &mut KnnHeap<M::Dist>, evals: &mut u64) {
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &i in ids {
                    *evals += 1;
                    heap.push(i, self.metric.distance(query, &self.points[i]));
                }
            }
            Node::Inner { vantage, mu, inside, outside } => {
                *evals += 1;
                let d = self.metric.distance(query, &self.points[*vantage]);
                heap.push(*vantage, d);
                let df = d.to_f64();
                let (first, second) =
                    if df <= *mu { (*inside, *outside) } else { (*outside, *inside) };
                self.knn_node(first, query, heap, evals);
                let tau = heap.bound().map_or(f64::INFINITY, dp_metric::Distance::to_f64);
                let second_viable =
                    if second == *inside { df - tau <= *mu } else { df + tau > *mu };
                if second_viable {
                    self.knn_node(second, query, heap, evals);
                }
            }
        }
    }

    fn range_node(
        &self,
        node: usize,
        query: &P,
        radius: M::Dist,
        out: &mut Vec<Neighbor<M::Dist>>,
        evals: &mut u64,
    ) {
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &i in ids {
                    *evals += 1;
                    let d = self.metric.distance(query, &self.points[i]);
                    if d <= radius {
                        out.push(Neighbor { id: i, dist: d });
                    }
                }
            }
            Node::Inner { vantage, mu, inside, outside } => {
                *evals += 1;
                let d = self.metric.distance(query, &self.points[*vantage]);
                if d <= radius {
                    out.push(Neighbor { id: *vantage, dist: d });
                }
                let df = d.to_f64();
                let r = radius.to_f64();
                if df - r <= *mu {
                    self.range_node(*inside, query, radius, out, evals);
                }
                if df + r > *mu {
                    self.range_node(*outside, query, radius, out, evals);
                }
            }
        }
    }
}

/// Query session over a [`VpTree`].
#[derive(Debug, Clone)]
pub struct VpSearcher<'a, P, M: Metric<P>> {
    index: &'a VpTree<P, M>,
}

impl<P, M: Metric<P>> VpSearcher<'_, P, M> {
    /// The underlying index.
    pub fn index(&self) -> &VpTree<P, M> {
        self.index
    }

    /// Exact k-NN with subtree pruning.
    pub fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        if index.points.is_empty() || k == 0 {
            return (Vec::new(), QueryStats::default());
        }
        let mut heap = KnnHeap::new(k.min(index.points.len()));
        let mut evals = 0u64;
        index.knn_node(index.root, query, &mut heap, &mut evals);
        (heap.into_sorted(), QueryStats::new(evals))
    }

    /// Exact range query with subtree pruning.
    pub fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        let mut out = Vec::new();
        let mut evals = 0u64;
        if !index.points.is_empty() {
            index.range_node(index.root, query, radius, &mut out, &mut evals);
        }
        out.sort_unstable();
        (out, QueryStats::new(evals))
    }
}

impl<P: Sync, M: Metric<P> + Sync> ProximityIndex<P> for VpTree<P, M> {
    type Dist = M::Dist;
    type Searcher<'s>
        = VpSearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> VpSearcher<'_, P, M> {
        self.session()
    }
}

impl<P: Sync, M: Metric<P> + Sync> Searcher<P> for VpSearcher<'_, P, M> {
    type Dist = M::Dist;

    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        VpSearcher::knn(self, query, k)
    }

    fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        VpSearcher::range(self, query, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use crate::linear::LinearScan;
    use dp_metric::{F64Dist, Levenshtein, L2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn knn_matches_linear_scan() {
        let pts = random_points(400, 3, 1);
        let scan = LinearScan::new(L2, pts.clone());
        let tree = VpTree::build(L2, pts);
        for q in random_points(30, 3, 2) {
            assert_eq!(tree.knn(&q, 5), scan.knn(&q, 5), "query {q:?}");
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let pts = random_points(300, 2, 3);
        let scan = LinearScan::new(L2, pts.clone());
        let tree = VpTree::build(L2, pts);
        for q in random_points(20, 2, 4) {
            for r in [0.05, 0.2, 0.6] {
                let radius = F64Dist::new(r);
                assert_eq!(tree.range(&q, radius), scan.range(&q, radius));
            }
        }
    }

    #[test]
    fn native_stats_prune_in_low_dimension() {
        let pts = random_points(2000, 2, 5);
        let tree = VpTree::build(L2, pts);
        let queries = random_points(20, 2, 6);
        let mut session = tree.session();
        let total: u64 = queries.iter().map(|q| session.knn(q, 1).1.metric_evals).sum();
        let mean = total as f64 / queries.len() as f64;
        assert!(mean < 700.0, "VP-tree averaged {mean} evals on n=2000");
    }

    #[test]
    fn native_stats_agree_with_counting_metric() {
        let pts = random_points(400, 2, 8);
        let tree = VpTree::build(CountingMetric::new(L2), pts);
        for q in random_points(10, 2, 9) {
            tree.metric().reset();
            let (_, stats) = tree.session().knn(&q, 3);
            assert_eq!(stats.metric_evals, tree.metric().count());
            tree.metric().reset();
            let (_, stats) = tree.session().range(&q, F64Dist::new(0.15));
            assert_eq!(stats.metric_evals, tree.metric().count());
        }
    }

    #[test]
    fn works_on_strings() {
        let words: Vec<String> = [
            "apple", "apply", "ample", "maple", "staple", "stable", "table", "cable", "fable",
            "ladle", "paddle", "saddle",
        ]
        .map(String::from)
        .to_vec();
        let scan = LinearScan::new(Levenshtein, words.clone());
        let tree = VpTree::build(Levenshtein, words);
        let q = String::from("sable");
        assert_eq!(tree.knn(&q, 4), scan.knn(&q, 4));
    }

    #[test]
    fn duplicate_points_handled() {
        let mut pts = vec![vec![0.5, 0.5]; 40];
        pts.extend(random_points(40, 2, 7));
        let scan = LinearScan::new(L2, pts.clone());
        let tree = VpTree::build(L2, pts);
        let q = vec![0.5, 0.5];
        assert_eq!(tree.knn(&q, 3), scan.knn(&q, 3));
    }

    #[test]
    fn empty_tree() {
        let tree: VpTree<Vec<f64>, L2> = VpTree::build(L2, vec![]);
        assert!(tree.knn(&vec![0.0], 1).is_empty());
        assert!(tree.range(&vec![0.0], F64Dist::new(1.0)).is_empty());
    }
}
