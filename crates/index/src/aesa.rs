//! AESA (Vidal 1986): the full pairwise distance matrix.
//!
//! AESA answers queries with remarkably few metric evaluations by using
//! every already-examined element as a pivot: for examined e with
//! d(q, e) known, the triangle inequality gives the lower bound
//! `|d(q,e) − d(e,x)| ≤ d(q,x)` for every candidate x, and candidates
//! whose bound exceeds the current search radius are eliminated without
//! being measured.  The price is the Θ(n²) precomputed matrix — the paper
//! cites exactly this trade-off as the motivation for LAESA and for
//! distance permutations.

use crate::api::{ProximityIndex, Searcher};
use crate::query::{KnnHeap, Neighbor, QueryStats};
use dp_metric::{Distance, Metric};

/// AESA index: owns the metric, the database and the full matrix.
#[derive(Debug, Clone)]
pub struct Aesa<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    /// Row-major symmetric distance matrix, as exact distances.
    matrix: Vec<M::Dist>,
}

impl<P, M: Metric<P>> Aesa<P, M> {
    /// Builds the index with n(n−1)/2 metric evaluations.
    pub fn build(metric: M, points: Vec<P>) -> Self {
        let n = points.len();
        let mut matrix = vec![M::Dist::ZERO; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.distance(&points[i], &points[j]);
                matrix[i * n + j] = d;
                matrix[j * n + i] = d;
            }
        }
        Self { metric, points, matrix }
    }

    /// Index storage in bits: the full n×n distance matrix.
    pub fn storage_bits(&self) -> u64 {
        (self.matrix.len() as u64) * (std::mem::size_of::<M::Dist>() as u64) * 8
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Stored distance between database elements `i` and `j`.
    pub fn stored(&self, i: usize, j: usize) -> M::Dist {
        self.matrix[i * self.points.len() + j]
    }

    /// A reusable query session: the elimination state (lower bounds,
    /// liveness flags) is allocated once and reused across queries.
    pub fn session(&self) -> AesaSearcher<'_, P, M> {
        AesaSearcher { index: self, lb: Vec::new(), alive: Vec::new(), examined: Vec::new() }
    }

    /// The k nearest neighbours of `query`, identical to a linear scan's
    /// answer but usually with far fewer metric evaluations.
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        self.session().knn(query, k).0
    }

    /// All elements within `radius` of `query` (inclusive), sorted by
    /// (distance, id).
    pub fn range(&self, query: &P, radius: M::Dist) -> Vec<Neighbor<M::Dist>> {
        self.session().range(query, radius).0
    }
}

/// Query session over an [`Aesa`] index, reusing elimination scratch.
#[derive(Debug, Clone)]
pub struct AesaSearcher<'a, P, M: Metric<P>> {
    index: &'a Aesa<P, M>,
    lb: Vec<f64>,
    alive: Vec<bool>,
    examined: Vec<bool>,
}

impl<P, M: Metric<P>> AesaSearcher<'_, P, M> {
    /// The underlying index.
    pub fn index(&self) -> &Aesa<P, M> {
        self.index
    }

    fn reset(&mut self) {
        let n = self.index.points.len();
        self.lb.clear();
        self.lb.resize(n, 0.0);
        self.alive.clear();
        self.alive.resize(n, true);
        self.examined.clear();
        self.examined.resize(n, false);
    }

    /// Next candidate: smallest lower bound among alive unexamined.
    fn next_candidate(&self) -> Option<usize> {
        let mut next: Option<(usize, f64)> = None;
        for i in 0..self.lb.len() {
            if self.alive[i] && !self.examined[i] && next.is_none_or(|(_, b)| self.lb[i] < b) {
                next = Some((i, self.lb[i]));
            }
        }
        next.map(|(i, _)| i)
    }

    /// Exact k-NN with AESA elimination.
    pub fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        if index.points.is_empty() || k == 0 {
            return (Vec::new(), QueryStats::default());
        }
        self.reset();
        let n = index.points.len();
        let mut heap = KnnHeap::new(k.min(n));
        let mut evals = 0u64;
        while let Some(c) = self.next_candidate() {
            self.examined[c] = true;
            evals += 1;
            let d = index.metric.distance(query, &index.points[c]);
            heap.push(c, d);
            let bound = heap.bound().map(Distance::to_f64);
            let df = d.to_f64();
            for i in 0..n {
                if self.alive[i] && !self.examined[i] {
                    let candidate_lb = (df - index.stored(c, i).to_f64()).abs();
                    if candidate_lb > self.lb[i] {
                        self.lb[i] = candidate_lb;
                    }
                    if let Some(b) = bound {
                        if self.lb[i] > b {
                            self.alive[i] = false;
                        }
                    }
                }
            }
        }
        (heap.into_sorted(), QueryStats::new(evals))
    }

    /// Exact range query with AESA elimination.
    pub fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        self.reset();
        let n = index.points.len();
        let r = radius.to_f64();
        let mut out = Vec::new();
        let mut evals = 0u64;
        while let Some(c) = self.next_candidate() {
            self.examined[c] = true;
            evals += 1;
            let d = index.metric.distance(query, &index.points[c]);
            if d <= radius {
                out.push(Neighbor { id: c, dist: d });
            }
            let df = d.to_f64();
            for i in 0..n {
                if self.alive[i] && !self.examined[i] {
                    let candidate_lb = (df - index.stored(c, i).to_f64()).abs();
                    if candidate_lb > self.lb[i] {
                        self.lb[i] = candidate_lb;
                    }
                    if self.lb[i] > r {
                        self.alive[i] = false;
                    }
                }
            }
        }
        out.sort_unstable();
        (out, QueryStats::new(evals))
    }
}

impl<P: Sync, M: Metric<P> + Sync> ProximityIndex<P> for Aesa<P, M> {
    type Dist = M::Dist;
    type Searcher<'s>
        = AesaSearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> AesaSearcher<'_, P, M> {
        self.session()
    }
}

impl<P: Sync, M: Metric<P> + Sync> Searcher<P> for AesaSearcher<'_, P, M> {
    type Dist = M::Dist;

    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        AesaSearcher::knn(self, query, k)
    }

    fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        AesaSearcher::range(self, query, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use crate::linear::LinearScan;
    use dp_metric::{F64Dist, Levenshtein, L2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn knn_matches_linear_scan() {
        let pts = random_points(120, 3, 1);
        let scan = LinearScan::new(L2, pts.clone());
        let aesa = Aesa::build(L2, pts);
        let queries = random_points(25, 3, 2);
        for q in &queries {
            assert_eq!(aesa.knn(q, 5), scan.knn(q, 5));
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let pts = random_points(100, 2, 3);
        let scan = LinearScan::new(L2, pts.clone());
        let aesa = Aesa::build(L2, pts);
        for q in random_points(15, 2, 4) {
            let r = F64Dist::new(0.3);
            assert_eq!(aesa.range(&q, r), scan.range(&q, r));
        }
    }

    #[test]
    fn native_stats_use_fewer_evaluations_than_linear_scan() {
        let pts = random_points(300, 2, 5);
        let aesa = Aesa::build(L2, pts);
        let mut total = QueryStats::default();
        let queries = random_points(20, 2, 6);
        let mut session = aesa.session();
        for q in &queries {
            let (_, stats) = session.knn(q, 1);
            total.merge(stats);
        }
        let mean = total.metric_evals as f64 / queries.len() as f64;
        assert!(mean < 100.0, "AESA averaged {mean} evals on n=300 (linear = 300)");
    }

    #[test]
    fn native_stats_agree_with_counting_metric() {
        let pts = random_points(150, 2, 8);
        let aesa = Aesa::build(CountingMetric::new(L2), pts);
        for q in random_points(10, 2, 9) {
            aesa.metric().reset();
            let (_, stats) = aesa.session().knn(&q, 3);
            assert_eq!(stats.metric_evals, aesa.metric().count());
            aesa.metric().reset();
            let (_, stats) = aesa.session().range(&q, F64Dist::new(0.25));
            assert_eq!(stats.metric_evals, aesa.metric().count());
        }
    }

    #[test]
    fn build_cost_is_quadratic() {
        let pts = random_points(50, 2, 7);
        let aesa = Aesa::build(CountingMetric::new(L2), pts);
        assert_eq!(aesa.metric().count(), 50 * 49 / 2);
    }

    #[test]
    fn works_on_strings() {
        let words: Vec<String> =
            ["hello", "help", "hold", "world", "word", "house", "mouse", "moose"]
                .map(String::from)
                .to_vec();
        let scan = LinearScan::new(Levenshtein, words.clone());
        let aesa = Aesa::build(Levenshtein, words);
        let q = String::from("helm");
        assert_eq!(aesa.knn(&q, 3), scan.knn(&q, 3));
    }

    #[test]
    fn empty_and_tiny_databases() {
        let aesa: Aesa<Vec<f64>, L2> = Aesa::build(L2, vec![]);
        assert!(aesa.knn(&vec![0.0], 3).is_empty());
        let one = Aesa::build(L2, vec![vec![1.0]]);
        let out = one.knn(&vec![0.0], 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
    }
}
