//! AESA (Vidal 1986): the full pairwise distance matrix.
//!
//! AESA answers queries with remarkably few metric evaluations by using
//! every already-examined element as a pivot: for examined e with
//! d(q, e) known, the triangle inequality gives the lower bound
//! `|d(q,e) − d(e,x)| ≤ d(q,x)` for every candidate x, and candidates
//! whose bound exceeds the current search radius are eliminated without
//! being measured.  The price is the Θ(n²) precomputed matrix — the paper
//! cites exactly this trade-off as the motivation for LAESA and for
//! distance permutations.

use crate::query::{KnnHeap, Neighbor};
use dp_metric::{Distance, Metric};

/// AESA index: owns the metric, the database and the full matrix.
#[derive(Debug, Clone)]
pub struct Aesa<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    /// Row-major symmetric distance matrix, as exact distances.
    matrix: Vec<M::Dist>,
}

impl<P, M: Metric<P>> Aesa<P, M> {
    /// Builds the index with n(n−1)/2 metric evaluations.
    pub fn build(metric: M, points: Vec<P>) -> Self {
        let n = points.len();
        let mut matrix = vec![M::Dist::ZERO; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.distance(&points[i], &points[j]);
                matrix[i * n + j] = d;
                matrix[j * n + i] = d;
            }
        }
        Self { metric, points, matrix }
    }

    /// Index storage in bits: the full n×n distance matrix.
    pub fn storage_bits(&self) -> u64 {
        (self.matrix.len() as u64) * (std::mem::size_of::<M::Dist>() as u64) * 8
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Stored distance between database elements `i` and `j`.
    pub fn stored(&self, i: usize, j: usize) -> M::Dist {
        self.matrix[i * self.points.len() + j]
    }

    /// The k nearest neighbours of `query`, identical to a linear scan's
    /// answer but usually with far fewer metric evaluations.
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let n = self.points.len();
        let mut heap = KnnHeap::new(k.min(n));
        let mut lb = vec![0.0f64; n];
        let mut alive = vec![true; n];
        let mut examined = vec![false; n];

        loop {
            // Next candidate: smallest lower bound among alive unexamined.
            let mut next: Option<(usize, f64)> = None;
            for i in 0..n {
                if alive[i] && !examined[i] && next.is_none_or(|(_, b)| lb[i] < b) {
                    next = Some((i, lb[i]));
                }
            }
            let Some((c, _)) = next else { break };
            examined[c] = true;
            let d = self.metric.distance(query, &self.points[c]);
            heap.push(c, d);
            let bound = heap.bound().map(Distance::to_f64);
            let df = d.to_f64();
            for i in 0..n {
                if alive[i] && !examined[i] {
                    let candidate_lb = (df - self.stored(c, i).to_f64()).abs();
                    if candidate_lb > lb[i] {
                        lb[i] = candidate_lb;
                    }
                    if let Some(b) = bound {
                        if lb[i] > b {
                            alive[i] = false;
                        }
                    }
                }
            }
        }
        heap.into_sorted()
    }

    /// All elements within `radius` of `query` (inclusive), sorted by
    /// (distance, id).
    pub fn range(&self, query: &P, radius: M::Dist) -> Vec<Neighbor<M::Dist>> {
        let n = self.points.len();
        let r = radius.to_f64();
        let mut out = Vec::new();
        let mut lb = vec![0.0f64; n];
        let mut alive = vec![true; n];
        let mut examined = vec![false; n];
        loop {
            let mut next: Option<(usize, f64)> = None;
            for i in 0..n {
                if alive[i] && !examined[i] && next.is_none_or(|(_, b)| lb[i] < b) {
                    next = Some((i, lb[i]));
                }
            }
            let Some((c, _)) = next else { break };
            examined[c] = true;
            let d = self.metric.distance(query, &self.points[c]);
            if d <= radius {
                out.push(Neighbor { id: c, dist: d });
            }
            let df = d.to_f64();
            for i in 0..n {
                if alive[i] && !examined[i] {
                    let candidate_lb = (df - self.stored(c, i).to_f64()).abs();
                    if candidate_lb > lb[i] {
                        lb[i] = candidate_lb;
                    }
                    if lb[i] > r {
                        alive[i] = false;
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use crate::linear::LinearScan;
    use dp_metric::{F64Dist, Levenshtein, L2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn knn_matches_linear_scan() {
        let pts = random_points(120, 3, 1);
        let scan = LinearScan::new(pts.clone());
        let aesa = Aesa::build(L2, pts);
        let queries = random_points(25, 3, 2);
        for q in &queries {
            assert_eq!(aesa.knn(q, 5), scan.knn(&L2, q, 5));
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let pts = random_points(100, 2, 3);
        let scan = LinearScan::new(pts.clone());
        let aesa = Aesa::build(L2, pts);
        for q in random_points(15, 2, 4) {
            let r = F64Dist::new(0.3);
            assert_eq!(aesa.range(&q, r), scan.range(&L2, &q, r));
        }
    }

    #[test]
    fn uses_fewer_evaluations_than_linear_scan() {
        let pts = random_points(300, 2, 5);
        let aesa = Aesa::build(CountingMetric::new(L2), pts);
        aesa.metric().reset();
        let mut total = 0u64;
        let queries = random_points(20, 2, 6);
        for q in &queries {
            aesa.metric().reset();
            let _ = aesa.knn(q, 1);
            total += aesa.metric().count();
        }
        let mean = total as f64 / queries.len() as f64;
        assert!(mean < 100.0, "AESA averaged {mean} evals on n=300 (linear = 300)");
    }

    #[test]
    fn build_cost_is_quadratic() {
        let pts = random_points(50, 2, 7);
        let aesa = Aesa::build(CountingMetric::new(L2), pts);
        assert_eq!(aesa.metric().count(), 50 * 49 / 2);
    }

    #[test]
    fn works_on_strings() {
        let words: Vec<String> =
            ["hello", "help", "hold", "world", "word", "house", "mouse", "moose"]
                .map(String::from)
                .to_vec();
        let scan = LinearScan::new(words.clone());
        let aesa = Aesa::build(Levenshtein, words);
        let q = String::from("helm");
        assert_eq!(aesa.knn(&q, 3), scan.knn(&Levenshtein, &q, 3));
    }

    #[test]
    fn empty_and_tiny_databases() {
        let aesa: Aesa<Vec<f64>, L2> = Aesa::build(L2, vec![]);
        assert!(aesa.knn(&vec![0.0], 3).is_empty());
        let one = Aesa::build(L2, vec![vec![1.0]]);
        let out = one.knn(&vec![0.0], 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 0);
    }
}
