//! The `distperm` index over flat [`VectorSet`] storage.
//!
//! [`FlatDistPermIndex`] is the vector-workload specialisation of
//! [`crate::DistPermIndex`]: points live in one contiguous row-major
//! buffer, the build runs through the batched site-transposed kernels
//! (`dp_permutation::compute::database_permutations_flat_parallel`), and
//! queries reuse the same vectorized distance kernel for the k site
//! evaluations.  Permutations, candidate ordering and budget semantics
//! are **identical** to the generic index on the same data — only the
//! storage layout and throughput differ.
//!
//! The generic `DistPermIndex` remains the path for strings, trees and
//! any non-`f64` point type.  Through the trait family this index is a
//! `ProximityIndex<[f64]>`: queries are plain `&[f64]` rows, which is
//! what makes it the natural engine under
//! [`crate::serve::query_batch_parallel`].

use crate::api::{ApproxIndex, ApproxSearcher, ProximityIndex, Searcher};
use crate::distperm::OrderingKind;
use crate::laesa::{choose_pivots, PivotSelection};
use crate::query::{
    assert_frac, budgeted_order, knn_budget, range_budget, KnnHeap, Neighbor, QueryStats,
};
use dp_datasets::VectorSet;
use dp_metric::{BatchDistance, Distance, F64Dist, SliceRefMetric, TransposedSites, STRIP_POINTS};
use dp_permutation::compute::{database_permutations_flat_parallel, PACKED_MAX_K, WIDE_MAX_K};
use dp_permutation::{pack_perm, PackedKey, Permutation, PermutationCounter, MAX_K};

/// Candidate rows gathered per batched distance call in the budgeted
/// scans: a multiple of [`STRIP_POINTS`] so full blocks stay on the
/// strip-mined kernel path, small enough that the gather buffer and its
/// distances stay in L1.
const CANDIDATE_BLOCK_ROWS: usize = 16 * STRIP_POINTS;

/// Cached inverse-position keys for the footrule candidate ordering,
/// packed at the key width that fits k (field `e` of a point's key is
/// the *position* of site `e` in its permutation).  The Spearman
/// footrule is then a field-wise `abs_diff` sum over two keys — the
/// same u64 the permutation walk produces, without materialising an
/// inverse permutation per candidate per query.
#[derive(Debug, Clone)]
enum OrderingKeys {
    /// k ≤ 12: one `u64` key per point.
    Narrow(Vec<u64>),
    /// 13 ≤ k ≤ 25: one `u128` key per point.
    Wide(Vec<u128>),
    /// k > 25: no cache — orderings walk the stored permutations.
    Uncached,
}

impl OrderingKeys {
    /// Packs one inverse-position key per stored permutation at the
    /// width fitting `k`.
    fn build(perms: &[Permutation], k: usize) -> Self {
        if k <= PACKED_MAX_K {
            OrderingKeys::Narrow(perms.iter().map(|p| pack_perm::<u64>(&p.inverse())).collect())
        } else if k <= WIDE_MAX_K {
            OrderingKeys::Wide(perms.iter().map(|p| pack_perm::<u128>(&p.inverse())).collect())
        } else {
            OrderingKeys::Uncached
        }
    }
}

/// Spearman footrule over packed inverse-position keys: field `e` holds
/// a position, so the rank displacement of site `e` is the field-wise
/// `abs_diff`.  Equal to `spearman_footrule` on the unpacked
/// permutations, bit for bit.
fn footrule_keys<K: PackedKey>(a: K, b: K, k: usize) -> u64 {
    let mut sum = 0u64;
    for pos in 0..k {
        sum += u64::from(a.field(pos).abs_diff(b.field(pos)));
    }
    sum
}

/// Distance-permutation index over flat vector storage.
#[derive(Debug, Clone)]
pub struct FlatDistPermIndex<M: BatchDistance> {
    metric: M,
    points: VectorSet,
    site_ids: Vec<usize>,
    sites: VectorSet,
    sites_t: TransposedSites,
    perms: Vec<Permutation>,
    order_keys: OrderingKeys,
}

impl<M: BatchDistance + Sync> FlatDistPermIndex<M> {
    /// Builds the index: chooses `k` sites with `strategy`, then computes
    /// every row's permutation on `threads` workers through the batched
    /// kernel (k·n metric evaluations, deterministic in thread count).
    pub fn build(
        metric: M,
        points: VectorSet,
        k: usize,
        strategy: PivotSelection,
        threads: usize,
    ) -> Self {
        let rows: Vec<&[f64]> = points.rows().collect();
        let site_ids = choose_pivots(&SliceRefMetric(&metric), &rows, k, strategy);
        drop(rows);
        Self::build_with_sites(metric, points, site_ids, threads)
    }

    /// Builds with explicitly provided site ids.
    ///
    /// # Panics
    /// Panics if a site id is out of range or `site_ids.len() > MAX_K`.
    pub fn build_with_sites(
        metric: M,
        points: VectorSet,
        site_ids: Vec<usize>,
        threads: usize,
    ) -> Self {
        assert!(site_ids.iter().all(|&i| i < points.len()), "site id out of range");
        assert!(site_ids.len() <= MAX_K, "k = {} exceeds MAX_K = {MAX_K}", site_ids.len());
        let sites = points.gather(&site_ids);
        let sites_t = TransposedSites::from_rows(sites.as_flat(), sites.dim());
        let perms =
            database_permutations_flat_parallel(&metric, &sites_t, points.as_flat(), threads);
        let order_keys = OrderingKeys::build(&perms, site_ids.len());
        Self { metric, points, site_ids, sites, sites_t, perms, order_keys }
    }
}

impl<M: BatchDistance> FlatDistPermIndex<M> {
    /// Reassembles an index from its build products without recomputing
    /// anything — the loading path of the on-disk store (`dp-store`).
    ///
    /// The caller must pass exactly what [`Self::build_with_sites`]
    /// produced for the same inputs: `sites_t` is the coordinate-major
    /// transpose of the gathered site rows and `perms` holds one
    /// length-`k` permutation per point.  With that contract met, the
    /// result is field-for-field identical to the freshly built index,
    /// so every query answers bit-identically.
    ///
    /// # Panics
    /// Panics if the parts are inconsistent: a site id out of range,
    /// `site_ids.len() > MAX_K`, a transposed buffer whose shape is not
    /// `k × dim`, a permutation count differing from `points.len()`, or
    /// a permutation whose length is not `k`.  (The store reader
    /// validates all of this against hostile bytes *before* calling —
    /// these asserts guard in-process misuse, not I/O.)
    pub fn from_parts(
        metric: M,
        points: VectorSet,
        site_ids: Vec<usize>,
        sites_t: TransposedSites,
        perms: Vec<Permutation>,
    ) -> Self {
        assert!(site_ids.iter().all(|&i| i < points.len()), "site id out of range");
        assert!(site_ids.len() <= MAX_K, "k = {} exceeds MAX_K = {MAX_K}", site_ids.len());
        assert_eq!(sites_t.k(), site_ids.len(), "transposed sites disagree with site count");
        let sites = points.gather(&site_ids);
        assert_eq!(sites_t.dim(), sites.dim(), "transposed sites disagree with point dimension");
        assert_eq!(perms.len(), points.len(), "one permutation per point required");
        assert!(
            perms.iter().all(|p| p.len() == site_ids.len()),
            "permutation length disagrees with k"
        );
        let order_keys = OrderingKeys::build(&perms, site_ids.len());
        Self { metric, points, site_ids, sites, sites_t, perms, order_keys }
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of sites k.
    pub fn k(&self) -> usize {
        self.site_ids.len()
    }

    /// The site element ids.
    pub fn site_ids(&self) -> &[usize] {
        &self.site_ids
    }

    /// The materialised site rows.
    pub fn sites(&self) -> &VectorSet {
        &self.sites
    }

    /// The owned metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The indexed points.
    pub fn points(&self) -> &VectorSet {
        &self.points
    }

    /// The coordinate-major site transpose the batched kernels read —
    /// the serialization view for the on-disk store.
    pub fn sites_transposed(&self) -> &TransposedSites {
        &self.sites_t
    }

    /// The stored permutations, parallel to the database.
    pub fn permutations(&self) -> &[Permutation] {
        &self.perms
    }

    /// The candidate-ordering engine footrule scans run on: packed
    /// inverse-position keys at the width that fits k (`"packed-u64"`
    /// for k ≤ 12, `"packed-u128"` for k ≤ 25) or direct permutation
    /// walks beyond the packed range (`"permutation"`).  All engines
    /// order candidates identically; the label exists so callers (the
    /// CLI in particular) can report which one serves a given k.
    pub fn ordering_engine(&self) -> &'static str {
        match self.order_keys {
            OrderingKeys::Narrow(_) => "packed-u64",
            OrderingKeys::Wide(_) => "packed-u128",
            OrderingKeys::Uncached => "permutation",
        }
    }

    /// Occurrence counter over the stored permutations (the paper's
    /// measurement).
    pub fn counter(&self) -> PermutationCounter {
        let mut c = PermutationCounter::new();
        for &p in &self.perms {
            c.insert(p);
        }
        c
    }

    /// Number of distinct permutations in the index.
    pub fn distinct_permutations(&self) -> usize {
        self.counter().distinct()
    }

    /// The query's distance permutation: k metric evaluations through
    /// the batched kernel.
    pub fn query_permutation(&self, query: &[f64]) -> Permutation {
        self.session().query_permutation(query)
    }

    /// A reusable query cursor (scratch allocated once): site-distance
    /// buffer, candidate order, and the gather/distance blocks of the
    /// batched candidate measurement — sized in whole
    /// [`STRIP_POINTS`]-strips so serving never re-allocates.
    pub fn session(&self) -> FlatDistPermSearcher<'_, M> {
        FlatDistPermSearcher {
            index: self,
            dists: vec![0.0; self.k()],
            order: Vec::new(),
            query_site: TransposedSites::from_rows(&[], 0),
            gather: Vec::with_capacity(CANDIDATE_BLOCK_ROWS * self.points.dim()),
            cand_dists: vec![0.0; CANDIDATE_BLOCK_ROWS],
        }
    }

    /// Approximate k-NN over the `frac` permutation-nearest fraction
    /// (Spearman footrule ordering; `frac = 1.0` is exact).
    pub fn knn_approx(&self, query: &[f64], k: usize, frac: f64) -> Vec<Neighbor<F64Dist>> {
        self.session().knn_approx(query, k, frac).0
    }

    /// [`Self::knn_approx`] with an explicit ordering measure.
    pub fn knn_approx_ordered(
        &self,
        query: &[f64],
        k: usize,
        frac: f64,
        ordering: OrderingKind,
    ) -> Vec<Neighbor<F64Dist>> {
        self.session().knn_approx_ordered(query, k, frac, ordering).0
    }

    /// Approximate range query over the `frac` permutation-nearest
    /// fraction (subset of the true answer; `frac = 1.0` is exact).
    pub fn range_approx(
        &self,
        query: &[f64],
        radius: F64Dist,
        frac: f64,
    ) -> Vec<Neighbor<F64Dist>> {
        self.session().range_approx(query, radius, frac).0
    }
}

/// Reusable query cursor over a [`FlatDistPermIndex`].
#[derive(Debug, Clone)]
pub struct FlatDistPermSearcher<'a, M: BatchDistance> {
    index: &'a FlatDistPermIndex<M>,
    dists: Vec<f64>,
    order: Vec<(u64, usize)>,
    query_site: TransposedSites,
    gather: Vec<f64>,
    cand_dists: Vec<f64>,
}

impl<M: BatchDistance> FlatDistPermSearcher<'_, M> {
    /// The underlying index.
    pub fn index(&self) -> &FlatDistPermIndex<M> {
        self.index
    }

    /// The query's distance permutation (k batched metric evaluations).
    pub fn query_permutation(&mut self, query: &[f64]) -> Permutation {
        query_permutation_into(self.index, &mut self.dists, query)
    }

    /// Budgeted k-NN with the default footrule ordering.
    pub fn knn_approx(
        &mut self,
        query: &[f64],
        k: usize,
        frac: f64,
    ) -> (Vec<Neighbor<F64Dist>>, QueryStats) {
        self.knn_approx_ordered(query, k, frac, OrderingKind::Footrule)
    }

    /// [`Self::knn_approx`] with an explicit ordering measure.
    ///
    /// Candidate measurement runs through the strip-mined batched kernel
    /// (the query acts as a 1-site transposed set, candidates are
    /// gathered in 64-row blocks), which for every
    /// supported metric produces the same bits as the per-point
    /// `metric.distance(query, row)` — `|x − s|`, `(x − s)²` and
    /// `|x − s|^p` are all exactly symmetric — so answers are identical
    /// to the generic [`crate::DistPermIndex`] on the same data.
    pub fn knn_approx_ordered(
        &mut self,
        query: &[f64],
        k: usize,
        frac: f64,
        ordering: OrderingKind,
    ) -> (Vec<Neighbor<F64Dist>>, QueryStats) {
        let index = self.index;
        assert_frac(frac);
        let n = index.len();
        if n == 0 || k == 0 {
            return (Vec::new(), QueryStats::default());
        }
        let budget = knn_budget(n, k, frac);
        let qperm = query_permutation_into(index, &mut self.dists, query);
        order_candidates_cached(index, &qperm, ordering, budget, &mut self.order);
        let mut heap = KnnHeap::new(k.min(n));
        measure_candidates(
            index,
            &self.order[..budget],
            query,
            &mut self.query_site,
            &mut self.gather,
            &mut self.cand_dists,
            |i, d| heap.push(i, d),
        );
        (heap.into_sorted(), QueryStats::new((index.k() + budget) as u64))
    }

    /// Budgeted range query; a subset of the true answer, exact at
    /// `frac = 1.0`.  Candidates are measured through the batched kernel
    /// exactly as in [`Self::knn_approx_ordered`].
    pub fn range_approx(
        &mut self,
        query: &[f64],
        radius: F64Dist,
        frac: f64,
    ) -> (Vec<Neighbor<F64Dist>>, QueryStats) {
        let index = self.index;
        assert_frac(frac);
        let n = index.len();
        if n == 0 {
            return (Vec::new(), QueryStats::default());
        }
        let budget = range_budget(n, frac);
        let qperm = query_permutation_into(index, &mut self.dists, query);
        order_candidates_cached(index, &qperm, OrderingKind::Footrule, budget, &mut self.order);
        let mut out: Vec<Neighbor<F64Dist>> = Vec::new();
        measure_candidates(
            index,
            &self.order[..budget],
            query,
            &mut self.query_site,
            &mut self.gather,
            &mut self.cand_dists,
            |i, d| {
                if d <= radius {
                    out.push(Neighbor { id: i, dist: d });
                }
            },
        );
        out.sort_unstable();
        (out, QueryStats::new((index.k() + budget) as u64))
    }
}

/// Orders candidates for the flat searchers: footrule queries run over
/// the index's cached packed inverse-position keys when k fits a key
/// width (same `(distance, id)` pairs as the permutation walk, so the
/// budgeted prefix is identical to the bit); every other case falls
/// back to [`crate::distperm::order_candidates`].
fn order_candidates_cached<M: BatchDistance>(
    index: &FlatDistPermIndex<M>,
    qperm: &Permutation,
    ordering: OrderingKind,
    budget: usize,
    order: &mut Vec<(u64, usize)>,
) {
    if ordering == OrderingKind::Footrule {
        match &index.order_keys {
            OrderingKeys::Narrow(keys) => {
                let q = pack_perm::<u64>(&qperm.inverse());
                let k = index.k();
                budgeted_order(keys.iter().map(|&p| footrule_keys(q, p, k)), budget, order);
                return;
            }
            OrderingKeys::Wide(keys) => {
                let q = pack_perm::<u128>(&qperm.inverse());
                let k = index.k();
                budgeted_order(keys.iter().map(|&p| footrule_keys(q, p, k)), budget, order);
                return;
            }
            OrderingKeys::Uncached => {}
        }
    }
    crate::distperm::order_candidates(&index.perms, qperm, ordering, budget, order);
}

/// Measures the ordered candidates against `query` through the batched
/// kernel: gathers [`CANDIDATE_BLOCK_ROWS`] candidate rows at a time and
/// treats the query as a single transposed site, feeding each `(id,
/// distance)` pair to `sink` in candidate order.  NaN distances panic
/// (at `F64Dist::new`) exactly like the scalar path.
fn measure_candidates<M: BatchDistance>(
    index: &FlatDistPermIndex<M>,
    candidates: &[(u64, usize)],
    query: &[f64],
    query_site: &mut TransposedSites,
    gather: &mut Vec<f64>,
    cand_dists: &mut [f64],
    mut sink: impl FnMut(usize, F64Dist),
) {
    let dim = index.points.dim();
    assert_eq!(
        query.len(),
        dim,
        "vector metric applied to vectors of different dimension ({} vs {dim})",
        query.len()
    );
    query_site.assign_rows(query, dim);
    for block in candidates.chunks(CANDIDATE_BLOCK_ROWS) {
        gather.clear();
        for &(_, i) in block {
            gather.extend_from_slice(index.points.row(i));
        }
        let out = &mut cand_dists[..block.len()];
        index.metric.batch_distances(gather, query_site, out);
        for (&(_, i), &d) in block.iter().zip(out.iter()) {
            sink(i, F64Dist::new(d));
        }
    }
}

/// The batched query-permutation kernel, taking the searcher's scratch
/// by parts so the budgeted-scan closures can borrow disjoint fields.
fn query_permutation_into<M: BatchDistance>(
    index: &FlatDistPermIndex<M>,
    dists: &mut [f64],
    query: &[f64],
) -> Permutation {
    let k = index.k();
    index.metric.batch_distances(query, &index.sites_t, dists);
    let mut pairs = [(F64Dist::ZERO, 0u8); MAX_K];
    for (j, (&d, pair)) in dists.iter().zip(pairs.iter_mut()).enumerate() {
        *pair = (F64Dist::new(d), j as u8);
    }
    pairs[..k].sort_unstable();
    let mut items = [0u8; MAX_K];
    for (slot, &(_, j)) in items.iter_mut().zip(pairs[..k].iter()) {
        *slot = j;
    }
    Permutation::from_slice(&items[..k]).expect("ranks form a permutation")
}

impl<M: BatchDistance + Sync> ProximityIndex<[f64]> for FlatDistPermIndex<M> {
    type Dist = F64Dist;
    type Searcher<'s>
        = FlatDistPermSearcher<'s, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> FlatDistPermSearcher<'_, M> {
        self.session()
    }
}

impl<M: BatchDistance + Sync> Searcher<[f64]> for FlatDistPermSearcher<'_, M> {
    type Dist = F64Dist;

    /// Exact k-NN as the full-budget scan (k + n evaluations).
    fn knn(&mut self, query: &[f64], k: usize) -> (Vec<Neighbor<F64Dist>>, QueryStats) {
        self.knn_approx(query, k, 1.0)
    }

    /// Exact range query as the full-budget scan (k + n evaluations).
    fn range(&mut self, query: &[f64], radius: F64Dist) -> (Vec<Neighbor<F64Dist>>, QueryStats) {
        FlatDistPermSearcher::range_approx(self, query, radius, 1.0)
    }
}

impl<M: BatchDistance + Sync> ApproxSearcher<[f64]> for FlatDistPermSearcher<'_, M> {
    fn knn_approx(
        &mut self,
        query: &[f64],
        k: usize,
        frac: f64,
    ) -> (Vec<Neighbor<F64Dist>>, QueryStats) {
        FlatDistPermSearcher::knn_approx(self, query, k, frac)
    }

    fn range_approx(
        &mut self,
        query: &[f64],
        radius: F64Dist,
        frac: f64,
    ) -> (Vec<Neighbor<F64Dist>>, QueryStats) {
        FlatDistPermSearcher::range_approx(self, query, radius, frac)
    }
}

impl<M: BatchDistance + Sync> ApproxIndex<[f64]> for FlatDistPermIndex<M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distperm::DistPermIndex;
    use dp_metric::{L2Squared, L2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn flat_index_matches_generic_index() {
        let nested = random_points(600, 3, 41);
        let flat = VectorSet::from_nested(&nested);
        let site_ids: Vec<usize> = vec![17, 3, 99, 250, 4, 511];
        let generic = DistPermIndex::build_with_sites(L2, nested, site_ids.clone());
        let flat_idx = FlatDistPermIndex::build_with_sites(L2, flat, site_ids, 4);
        assert_eq!(flat_idx.permutations(), generic.permutations());
        assert_eq!(flat_idx.distinct_permutations(), generic.distinct_permutations());
        for q in random_points(10, 3, 42) {
            assert_eq!(flat_idx.query_permutation(&q), generic.query_permutation(&q));
            assert_eq!(flat_idx.knn_approx(&q, 5, 0.2), generic.knn_approx(&q, 5, 0.2));
            assert_eq!(flat_idx.knn_approx(&q, 5, 1.0), generic.knn_approx(&q, 5, 1.0));
            let radius = F64Dist::new(0.3);
            assert_eq!(
                flat_idx.range_approx(&q, radius, 0.5),
                generic.range_approx(&q, radius, 0.5)
            );
        }
    }

    #[test]
    fn footrule_over_keys_matches_the_permutation_walk() {
        use dp_permutation::permdist::spearman_footrule;
        let perms: Vec<Permutation> = (0..200u64)
            .map(|s| {
                let mut items: Vec<u8> = (0..20u8).collect();
                let mut seed = s;
                for i in (1..items.len()).rev() {
                    seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                    let j = (seed >> 33) as usize % (i + 1);
                    items.swap(i, j);
                }
                Permutation::from_slice(&items).unwrap()
            })
            .collect();
        for pair in perms.chunks(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let ka = pack_perm::<u128>(&a.inverse());
            let kb = pack_perm::<u128>(&b.inverse());
            assert_eq!(footrule_keys(ka, kb, 20), spearman_footrule(a, b));
        }
        // And at the narrow width.
        let a = Permutation::from_slice(&[2, 0, 3, 1]).unwrap();
        let b = Permutation::from_slice(&[3, 1, 0, 2]).unwrap();
        let ka = pack_perm::<u64>(&a.inverse());
        let kb = pack_perm::<u64>(&b.inverse());
        assert_eq!(footrule_keys(ka, kb, 4), spearman_footrule(&a, &b));
    }

    #[test]
    fn ordering_engine_labels_follow_k() {
        let flat = VectorSet::from_nested(&random_points(100, 3, 50));
        for (k, label) in [(8usize, "packed-u64"), (16, "packed-u128"), (26, "permutation")] {
            let idx = FlatDistPermIndex::build(L2, flat.clone(), k, PivotSelection::Prefix, 1);
            assert_eq!(idx.ordering_engine(), label, "k = {k}");
        }
    }

    #[test]
    fn wide_and_uncached_orderings_match_generic_index() {
        // k = 16 exercises the u128 cached-key footrule; k = 26 the
        // uncached permutation-walk fallback.  Both must answer exactly
        // like the generic index, budgeted and exact.
        for k in [16usize, 26] {
            let nested = random_points(500, 3, 60 + k as u64);
            let flat = VectorSet::from_nested(&nested);
            let site_ids: Vec<usize> = (0..k).map(|i| (i * 17) % 500).collect();
            let generic = DistPermIndex::build_with_sites(L2, nested, site_ids.clone());
            let flat_idx = FlatDistPermIndex::build_with_sites(L2, flat, site_ids, 2);
            assert_eq!(flat_idx.permutations(), generic.permutations(), "k = {k}");
            for q in random_points(6, 3, 61) {
                assert_eq!(flat_idx.knn_approx(&q, 5, 0.2), generic.knn_approx(&q, 5, 0.2));
                assert_eq!(flat_idx.knn_approx(&q, 5, 1.0), generic.knn_approx(&q, 5, 1.0));
                let radius = F64Dist::new(0.4);
                assert_eq!(
                    flat_idx.range_approx(&q, radius, 0.5),
                    generic.range_approx(&q, radius, 0.5),
                    "k = {k}"
                );
            }
        }
    }

    #[test]
    fn from_parts_rebuilds_the_ordering_cache() {
        // The store loading path must answer bit-identically to the
        // fresh build at a wide k — including the cached-key ordering.
        let flat = VectorSet::from_nested(&random_points(300, 2, 70));
        let built = FlatDistPermIndex::build(L2, flat.clone(), 14, PivotSelection::MaxMin, 2);
        let loaded = FlatDistPermIndex::from_parts(
            L2,
            flat,
            built.site_ids().to_vec(),
            built.sites_transposed().clone(),
            built.permutations().to_vec(),
        );
        assert_eq!(loaded.ordering_engine(), "packed-u128");
        for q in random_points(5, 2, 71) {
            assert_eq!(loaded.knn_approx(&q, 4, 0.3), built.knn_approx(&q, 4, 0.3));
        }
    }

    #[test]
    fn build_strategies_match_generic_choice() {
        let nested = random_points(300, 2, 43);
        let flat = VectorSet::from_nested(&nested);
        for strategy in [
            PivotSelection::Prefix,
            PivotSelection::MaxMin,
            PivotSelection::Random(7),
            PivotSelection::PermDiversity(7),
        ] {
            let generic = DistPermIndex::build(L2Squared, nested.clone(), 5, strategy);
            let flat_idx = FlatDistPermIndex::build(L2Squared, flat.clone(), 5, strategy, 2);
            assert_eq!(flat_idx.site_ids(), generic.site_ids(), "{strategy:?}");
            assert_eq!(flat_idx.permutations(), generic.permutations(), "{strategy:?}");
        }
    }

    #[test]
    fn searcher_reuse_matches_one_shot() {
        let flat = VectorSet::from_nested(&random_points(400, 3, 44));
        let idx = FlatDistPermIndex::build(L2, flat, 8, PivotSelection::MaxMin, 2);
        let mut searcher = idx.session();
        for q in random_points(8, 3, 45) {
            assert_eq!(searcher.knn_approx(&q, 3, 0.15).0, idx.knn_approx(&q, 3, 0.15));
        }
    }

    #[test]
    fn trait_stats_count_sites_plus_budget() {
        let flat = VectorSet::from_nested(&random_points(200, 2, 46));
        let idx = FlatDistPermIndex::build(L2, flat, 10, PivotSelection::MaxMin, 1);
        let q = [0.5, 0.5];
        let (_, stats) = idx.query_knn(&q[..], 3);
        assert_eq!(stats, QueryStats::new(10 + 200));
        let (_, stats) = idx.session().knn_approx(&q, 3, 0.25);
        assert_eq!(stats, QueryStats::new(10 + 50));
    }

    #[test]
    fn empty_index_yields_empty_answers() {
        let idx = FlatDistPermIndex::build_with_sites(L2, VectorSet::new(2), vec![], 1);
        assert!(idx.is_empty());
        assert!(idx.knn_approx(&[0.0, 0.0], 3, 1.0).is_empty());
    }
}
