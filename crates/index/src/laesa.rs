//! LAESA (Micó–Oncina–Vidal 1994): k pivot distances per element.
//!
//! LAESA keeps only the k rows of AESA's matrix that correspond to a fixed
//! pivot set, cutting storage from Θ(n²) to Θ(kn) distances — the paper's
//! §1 baseline, whose storage the distance-permutation representation then
//! improves to Θ(nk log k) bits and (this paper) Θ(nd log k) bits in
//! d-dimensional Euclidean space.  This is the SISAP `pivots` index type
//! that the paper's `distperm` code modifies.

use crate::query::{KnnHeap, Neighbor};
use dp_metric::{Distance, Metric};

/// Pivot selection strategies for [`Laesa::build`] and
/// [`crate::DistPermIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotSelection {
    /// Maximum-minimum-distance greedy ("farthest-first") from element 0 —
    /// the classical LAESA choice.
    MaxMin,
    /// The first k elements; useful with pre-shuffled data and in tests.
    Prefix,
    /// k distinct uniformly random elements from the given seed — the
    /// paper's Table 3 protocol ("random choice of sites").
    Random(u64),
    /// Greedy maximisation of *distinct distance permutations* over a data
    /// sample — the selection objective this paper's analysis suggests:
    /// sites are only as good as the number of permutation cells they
    /// carve (§4's "little value in adding more sites" once cells stop
    /// splitting).  See [`crate::pivots::perm_diversity_pivots`].
    PermDiversity(u64),
}

/// Chooses `k` pivot ids from `points` under `strategy`.
pub(crate) fn choose_pivots<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    k: usize,
    strategy: PivotSelection,
) -> Vec<usize> {
    assert!(k <= points.len(), "asked for {k} pivots from {} points", points.len());
    match strategy {
        PivotSelection::Prefix => (0..k).collect(),
        PivotSelection::Random(seed) => crate::pivots::random_pivots(points.len(), k, seed),
        PivotSelection::PermDiversity(seed) => {
            crate::pivots::perm_diversity_pivots(metric, points, k, seed)
        }
        PivotSelection::MaxMin => {
            let mut pivots = Vec::with_capacity(k);
            if k == 0 {
                return pivots;
            }
            pivots.push(0);
            let mut min_dist: Vec<f64> =
                points.iter().map(|p| metric.distance(&points[0], p).to_f64()).collect();
            while pivots.len() < k {
                let (best, _) = min_dist
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("non-empty");
                pivots.push(best);
                for (i, md) in min_dist.iter_mut().enumerate() {
                    let d = metric.distance(&points[best], &points[i]).to_f64();
                    if d < *md {
                        *md = d;
                    }
                }
            }
            pivots
        }
    }
}

/// LAESA index: k pivots and the k×n distance table.
#[derive(Debug, Clone)]
pub struct Laesa<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    pivots: Vec<usize>,
    /// `table[j * n + i]` = d(pivot_j, point_i).
    table: Vec<M::Dist>,
}

impl<P, M: Metric<P>> Laesa<P, M> {
    /// Builds the index with O(kn) metric evaluations.
    pub fn build(metric: M, points: Vec<P>, k: usize, strategy: PivotSelection) -> Self {
        let pivots = choose_pivots(&metric, &points, k, strategy);
        let n = points.len();
        let mut table = vec![M::Dist::ZERO; pivots.len() * n];
        for (j, &pv) in pivots.iter().enumerate() {
            for i in 0..n {
                table[j * n + i] = metric.distance(&points[pv], &points[i]);
            }
        }
        Self { metric, points, pivots, table }
    }

    /// Index storage in bits: the k×n distance table (the paper's
    /// O(nk log n)-distance baseline, with log n ≈ the width of one
    /// stored distance).
    pub fn storage_bits(&self) -> u64 {
        (self.table.len() as u64) * (std::mem::size_of::<M::Dist>() as u64) * 8
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The pivot element ids.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Lower bounds for every element given the query-to-pivot distances.
    fn lower_bounds(&self, dq: &[f64]) -> Vec<f64> {
        let n = self.points.len();
        let mut lb = vec![0.0f64; n];
        for (j, &dqj) in dq.iter().enumerate() {
            let row = &self.table[j * n..(j + 1) * n];
            for (l, stored) in lb.iter_mut().zip(row) {
                let b = (dqj - stored.to_f64()).abs();
                if b > *l {
                    *l = b;
                }
            }
        }
        lb
    }

    /// The k nearest neighbours (exact; identical to a linear scan).
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k.min(self.points.len()));
        // Measure the pivots; they double as the first examined elements.
        let dq: Vec<f64> = self
            .pivots
            .iter()
            .map(|&pv| {
                let d = self.metric.distance(query, &self.points[pv]);
                heap.push(pv, d);
                d.to_f64()
            })
            .collect();
        let lb = self.lower_bounds(&dq);

        // Examine the rest in increasing lower-bound order; once the bound
        // exceeds the k-th best distance the remainder cannot qualify.
        let mut order: Vec<usize> =
            (0..self.points.len()).filter(|i| !self.pivots.contains(i)).collect();
        order.sort_unstable_by(|&a, &b| lb[a].total_cmp(&lb[b]).then(a.cmp(&b)));
        for &i in &order {
            if let Some(b) = heap.bound() {
                if lb[i] > b.to_f64() {
                    break;
                }
            }
            let d = self.metric.distance(query, &self.points[i]);
            heap.push(i, d);
        }
        heap.into_sorted()
    }

    /// All elements within `radius` (inclusive; exact).
    pub fn range(&self, query: &P, radius: M::Dist) -> Vec<Neighbor<M::Dist>> {
        let r = radius.to_f64();
        let mut out = Vec::new();
        let dq: Vec<f64> = self
            .pivots
            .iter()
            .map(|&pv| {
                let d = self.metric.distance(query, &self.points[pv]);
                if d <= radius {
                    out.push(Neighbor { id: pv, dist: d });
                }
                d.to_f64()
            })
            .collect();
        let lb = self.lower_bounds(&dq);
        for (i, (point, &bound)) in self.points.iter().zip(&lb).enumerate() {
            if self.pivots.contains(&i) || bound > r {
                continue;
            }
            let d = self.metric.distance(query, point);
            if d <= radius {
                out.push(Neighbor { id: i, dist: d });
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use crate::linear::LinearScan;
    use dp_metric::{F64Dist, Levenshtein, L2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn maxmin_pivots_are_spread() {
        let mut pts = random_points(60, 2, 1);
        pts.push(vec![100.0, 100.0]); // an outlier must be picked early
        let pivots = choose_pivots(&L2, &pts, 3, PivotSelection::MaxMin);
        assert!(pivots.contains(&60), "outlier not chosen: {pivots:?}");
        assert_eq!(pivots.len(), 3);
        let set: std::collections::HashSet<_> = pivots.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn knn_matches_linear_scan() {
        let pts = random_points(150, 3, 2);
        let scan = LinearScan::new(pts.clone());
        let laesa = Laesa::build(L2, pts, 8, PivotSelection::MaxMin);
        for q in random_points(25, 3, 3) {
            assert_eq!(laesa.knn(&q, 4), scan.knn(&L2, &q, 4));
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let pts = random_points(120, 2, 4);
        let scan = LinearScan::new(pts.clone());
        let laesa = Laesa::build(L2, pts, 6, PivotSelection::MaxMin);
        for q in random_points(15, 2, 5) {
            let r = F64Dist::new(0.25);
            assert_eq!(laesa.range(&q, r), scan.range(&L2, &q, r));
        }
    }

    #[test]
    fn prunes_compared_to_linear_scan() {
        let pts = random_points(500, 2, 6);
        let laesa = Laesa::build(CountingMetric::new(L2), pts, 12, PivotSelection::MaxMin);
        let mut total = 0u64;
        let queries = random_points(20, 2, 7);
        for q in &queries {
            laesa.metric().reset();
            let _ = laesa.knn(q, 1);
            total += laesa.metric().count();
        }
        let mean = total as f64 / queries.len() as f64;
        assert!(mean < 250.0, "LAESA averaged {mean} evals on n=500");
    }

    #[test]
    fn build_cost_is_k_times_n_plus_selection() {
        let pts = random_points(80, 2, 8);
        let laesa = Laesa::build(CountingMetric::new(L2), pts, 5, PivotSelection::Prefix);
        // Prefix selection does no selection-time evaluations.
        assert_eq!(laesa.metric().reset(), 5 * 80);
    }

    #[test]
    fn works_on_strings() {
        let words: Vec<String> =
            ["stone", "store", "stare", "spare", "space", "grace", "trace", "track"]
                .map(String::from)
                .to_vec();
        let scan = LinearScan::new(words.clone());
        let laesa = Laesa::build(Levenshtein, words, 3, PivotSelection::MaxMin);
        let q = String::from("stack");
        assert_eq!(laesa.knn(&q, 3), scan.knn(&Levenshtein, &q, 3));
    }

    #[test]
    fn zero_pivots_degenerates_to_linear_scan() {
        let pts = random_points(30, 2, 9);
        let scan = LinearScan::new(pts.clone());
        let laesa = Laesa::build(L2, pts, 0, PivotSelection::MaxMin);
        let q = vec![0.5, 0.5];
        assert_eq!(laesa.knn(&q, 3), scan.knn(&L2, &q, 3));
    }
}
