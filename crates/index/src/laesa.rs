//! LAESA (Micó–Oncina–Vidal 1994): k pivot distances per element.
//!
//! LAESA keeps only the k rows of AESA's matrix that correspond to a fixed
//! pivot set, cutting storage from Θ(n²) to Θ(kn) distances — the paper's
//! §1 baseline, whose storage the distance-permutation representation then
//! improves to Θ(nk log k) bits and (this paper) Θ(nd log k) bits in
//! d-dimensional Euclidean space.  This is the SISAP `pivots` index type
//! that the paper's `distperm` code modifies.

use crate::api::{ProximityIndex, Searcher};
use crate::query::{KnnHeap, Neighbor, QueryStats};
use dp_metric::{Distance, Metric};

/// Pivot selection strategies for [`Laesa::build`] and
/// [`crate::DistPermIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotSelection {
    /// Maximum-minimum-distance greedy ("farthest-first") from element 0 —
    /// the classical LAESA choice.
    MaxMin,
    /// The first k elements; useful with pre-shuffled data and in tests.
    Prefix,
    /// k distinct uniformly random elements from the given seed — the
    /// paper's Table 3 protocol ("random choice of sites").
    Random(u64),
    /// Greedy maximisation of *distinct distance permutations* over a data
    /// sample — the selection objective this paper's analysis suggests:
    /// sites are only as good as the number of permutation cells they
    /// carve (§4's "little value in adding more sites" once cells stop
    /// splitting).  See [`crate::pivots::perm_diversity_pivots`].
    PermDiversity(u64),
}

/// Chooses `k` pivot ids from `points` under `strategy`.
pub(crate) fn choose_pivots<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    k: usize,
    strategy: PivotSelection,
) -> Vec<usize> {
    assert!(k <= points.len(), "asked for {k} pivots from {} points", points.len());
    match strategy {
        PivotSelection::Prefix => (0..k).collect(),
        PivotSelection::Random(seed) => crate::pivots::random_pivots(points.len(), k, seed),
        PivotSelection::PermDiversity(seed) => {
            crate::pivots::perm_diversity_pivots(metric, points, k, seed)
        }
        PivotSelection::MaxMin => {
            let mut pivots = Vec::with_capacity(k);
            if k == 0 {
                return pivots;
            }
            pivots.push(0);
            let mut min_dist: Vec<f64> =
                points.iter().map(|p| metric.distance(&points[0], p).to_f64()).collect();
            while pivots.len() < k {
                let (best, _) = min_dist
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("non-empty");
                pivots.push(best);
                for (i, md) in min_dist.iter_mut().enumerate() {
                    let d = metric.distance(&points[best], &points[i]).to_f64();
                    if d < *md {
                        *md = d;
                    }
                }
            }
            pivots
        }
    }
}

/// LAESA index: k pivots and the k×n distance table.
#[derive(Debug, Clone)]
pub struct Laesa<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    pivots: Vec<usize>,
    /// `table[j * n + i]` = d(pivot_j, point_i).
    table: Vec<M::Dist>,
}

impl<P, M: Metric<P>> Laesa<P, M> {
    /// Builds the index with O(kn) metric evaluations.
    pub fn build(metric: M, points: Vec<P>, k: usize, strategy: PivotSelection) -> Self {
        let pivots = choose_pivots(&metric, &points, k, strategy);
        let n = points.len();
        let mut table = vec![M::Dist::ZERO; pivots.len() * n];
        for (j, &pv) in pivots.iter().enumerate() {
            for i in 0..n {
                table[j * n + i] = metric.distance(&points[pv], &points[i]);
            }
        }
        Self { metric, points, pivots, table }
    }

    /// Index storage in bits: the k×n distance table (the paper's
    /// O(nk log n)-distance baseline, with log n ≈ the width of one
    /// stored distance).
    pub fn storage_bits(&self) -> u64 {
        (self.table.len() as u64) * (std::mem::size_of::<M::Dist>() as u64) * 8
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The pivot element ids.
    pub fn pivots(&self) -> &[usize] {
        &self.pivots
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// A reusable query session: pivot-distance and lower-bound arrays
    /// are allocated once and reused across queries.
    pub fn session(&self) -> LaesaSearcher<'_, P, M> {
        LaesaSearcher { index: self, dq: Vec::new(), lb: Vec::new(), order: Vec::new() }
    }

    /// The k nearest neighbours (exact; identical to a linear scan).
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        self.session().knn(query, k).0
    }

    /// All elements within `radius` (inclusive; exact).
    pub fn range(&self, query: &P, radius: M::Dist) -> Vec<Neighbor<M::Dist>> {
        self.session().range(query, radius).0
    }
}

/// Query session over a [`Laesa`] index, reusing bound scratch.
#[derive(Debug, Clone)]
pub struct LaesaSearcher<'a, P, M: Metric<P>> {
    index: &'a Laesa<P, M>,
    dq: Vec<f64>,
    lb: Vec<f64>,
    order: Vec<usize>,
}

impl<P, M: Metric<P>> LaesaSearcher<'_, P, M> {
    /// The underlying index.
    pub fn index(&self) -> &Laesa<P, M> {
        self.index
    }

    /// Lower bounds for every element given the query-to-pivot distances
    /// in `self.dq`.
    fn lower_bounds(&mut self) {
        let n = self.index.points.len();
        self.lb.clear();
        self.lb.resize(n, 0.0);
        for (j, &dqj) in self.dq.iter().enumerate() {
            let row = &self.index.table[j * n..(j + 1) * n];
            for (l, stored) in self.lb.iter_mut().zip(row) {
                let b = (dqj - stored.to_f64()).abs();
                if b > *l {
                    *l = b;
                }
            }
        }
    }

    /// Exact k-NN with pivot-based elimination.
    pub fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        if index.points.is_empty() || k == 0 {
            return (Vec::new(), QueryStats::default());
        }
        let mut evals = 0u64;
        let mut heap = KnnHeap::new(k.min(index.points.len()));
        // Measure the pivots; they double as the first examined elements.
        self.dq.clear();
        for &pv in &index.pivots {
            evals += 1;
            let d = index.metric.distance(query, &index.points[pv]);
            heap.push(pv, d);
            self.dq.push(d.to_f64());
        }
        self.lower_bounds();

        // Examine the rest in increasing lower-bound order; once the bound
        // exceeds the k-th best distance the remainder cannot qualify.
        self.order.clear();
        self.order.extend((0..index.points.len()).filter(|i| !index.pivots.contains(i)));
        let lb = &self.lb;
        self.order.sort_unstable_by(|&a, &b| lb[a].total_cmp(&lb[b]).then(a.cmp(&b)));
        for &i in &self.order {
            if let Some(b) = heap.bound() {
                if self.lb[i] > b.to_f64() {
                    break;
                }
            }
            evals += 1;
            let d = index.metric.distance(query, &index.points[i]);
            heap.push(i, d);
        }
        (heap.into_sorted(), QueryStats::new(evals))
    }

    /// Exact range query with pivot-based elimination.
    pub fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        let r = radius.to_f64();
        let mut evals = 0u64;
        let mut out = Vec::new();
        self.dq.clear();
        for &pv in &index.pivots {
            evals += 1;
            let d = index.metric.distance(query, &index.points[pv]);
            if d <= radius {
                out.push(Neighbor { id: pv, dist: d });
            }
            self.dq.push(d.to_f64());
        }
        self.lower_bounds();
        for (i, (point, &bound)) in index.points.iter().zip(&self.lb).enumerate() {
            if index.pivots.contains(&i) || bound > r {
                continue;
            }
            evals += 1;
            let d = index.metric.distance(query, point);
            if d <= radius {
                out.push(Neighbor { id: i, dist: d });
            }
        }
        out.sort_unstable();
        (out, QueryStats::new(evals))
    }
}

impl<P: Sync, M: Metric<P> + Sync> ProximityIndex<P> for Laesa<P, M> {
    type Dist = M::Dist;
    type Searcher<'s>
        = LaesaSearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> LaesaSearcher<'_, P, M> {
        self.session()
    }
}

impl<P: Sync, M: Metric<P> + Sync> Searcher<P> for LaesaSearcher<'_, P, M> {
    type Dist = M::Dist;

    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        LaesaSearcher::knn(self, query, k)
    }

    fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        LaesaSearcher::range(self, query, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use crate::linear::LinearScan;
    use dp_metric::{F64Dist, Levenshtein, L2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn maxmin_pivots_are_spread() {
        let mut pts = random_points(60, 2, 1);
        pts.push(vec![100.0, 100.0]); // an outlier must be picked early
        let pivots = choose_pivots(&L2, &pts, 3, PivotSelection::MaxMin);
        assert!(pivots.contains(&60), "outlier not chosen: {pivots:?}");
        assert_eq!(pivots.len(), 3);
        let set: std::collections::HashSet<_> = pivots.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn knn_matches_linear_scan() {
        let pts = random_points(150, 3, 2);
        let scan = LinearScan::new(L2, pts.clone());
        let laesa = Laesa::build(L2, pts, 8, PivotSelection::MaxMin);
        for q in random_points(25, 3, 3) {
            assert_eq!(laesa.knn(&q, 4), scan.knn(&q, 4));
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let pts = random_points(120, 2, 4);
        let scan = LinearScan::new(L2, pts.clone());
        let laesa = Laesa::build(L2, pts, 6, PivotSelection::MaxMin);
        for q in random_points(15, 2, 5) {
            let r = F64Dist::new(0.25);
            assert_eq!(laesa.range(&q, r), scan.range(&q, r));
        }
    }

    #[test]
    fn native_stats_prune_compared_to_linear_scan() {
        let pts = random_points(500, 2, 6);
        let laesa = Laesa::build(L2, pts, 12, PivotSelection::MaxMin);
        let queries = random_points(20, 2, 7);
        let mut session = laesa.session();
        let total: u64 = queries.iter().map(|q| session.knn(q, 1).1.metric_evals).sum();
        let mean = total as f64 / queries.len() as f64;
        assert!(mean < 250.0, "LAESA averaged {mean} evals on n=500");
    }

    #[test]
    fn native_stats_agree_with_counting_metric() {
        let pts = random_points(200, 2, 10);
        let laesa = Laesa::build(CountingMetric::new(L2), pts, 7, PivotSelection::Prefix);
        let mut session = laesa.session();
        for q in random_points(8, 2, 11) {
            laesa.metric().reset();
            let (_, stats) = session.knn(&q, 2);
            assert_eq!(stats.metric_evals, laesa.metric().count());
            laesa.metric().reset();
            let (_, stats) = session.range(&q, F64Dist::new(0.2));
            assert_eq!(stats.metric_evals, laesa.metric().count());
        }
    }

    #[test]
    fn build_cost_is_k_times_n_plus_selection() {
        let pts = random_points(80, 2, 8);
        let laesa = Laesa::build(CountingMetric::new(L2), pts, 5, PivotSelection::Prefix);
        // Prefix selection does no selection-time evaluations.
        assert_eq!(laesa.metric().reset(), 5 * 80);
    }

    #[test]
    fn works_on_strings() {
        let words: Vec<String> =
            ["stone", "store", "stare", "spare", "space", "grace", "trace", "track"]
                .map(String::from)
                .to_vec();
        let scan = LinearScan::new(Levenshtein, words.clone());
        let laesa = Laesa::build(Levenshtein, words, 3, PivotSelection::MaxMin);
        let q = String::from("stack");
        assert_eq!(laesa.knn(&q, 3), scan.knn(&q, 3));
    }

    #[test]
    fn zero_pivots_degenerates_to_linear_scan() {
        let pts = random_points(30, 2, 9);
        let scan = LinearScan::new(L2, pts.clone());
        let laesa = Laesa::build(L2, pts, 0, PivotSelection::MaxMin);
        let q = vec![0.5, 0.5];
        assert_eq!(laesa.knn(&q, 3), scan.knn(&q, 3));
    }
}
