//! Truncated-permutation index: store only the ℓ nearest sites.
//!
//! The practical deployment of the permutation idea
//! (Chávez–Figueroa–Navarro) keeps a *prefix* of each element's distance
//! permutation.  The paper's refinement-chain view (§2) says exactly what
//! is lost: the length-ℓ ordered prefixes partition the space more
//! coarsely than full permutations (Figs 1–3), so fewer distinct keys ⇒
//! fewer storage bits (`dp-theory::prefixes` gives the ceilings) but a
//! blunter candidate ordering.  [`PrefixPermIndex`] makes that trade-off
//! measurable against the full-permutation [`crate::DistPermIndex`].

use crate::api::{ApproxIndex, ApproxSearcher, ProximityIndex, Searcher};
use crate::laesa::{choose_pivots, PivotSelection};
use crate::query::{budgeted_knn_scan, budgeted_order, budgeted_range_scan, Neighbor, QueryStats};
use dp_metric::Metric;
use dp_permutation::encoding::element_bits;
use dp_permutation::fxhash::FxHashSet;
use dp_permutation::prefix::{prefix_footrule, PrefixPermutation};
use dp_permutation::DistPermComputer;

/// Distance-permutation index storing length-ℓ prefixes.
///
/// Sites are materialised once at build time, so a query costs k metric
/// evaluations plus prefix comparisons.
#[derive(Debug, Clone)]
pub struct PrefixPermIndex<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    site_ids: Vec<usize>,
    sites: Vec<P>,
    prefixes: Vec<PrefixPermutation>,
    prefix_len: usize,
}

impl<P: Clone, M: Metric<P>> PrefixPermIndex<P, M> {
    /// Builds the index with `k` sites, keeping length-`prefix_len`
    /// prefixes (k·n metric evaluations plus selection cost).
    ///
    /// # Panics
    /// Panics if `prefix_len > k`.
    pub fn build(
        metric: M,
        points: Vec<P>,
        k: usize,
        prefix_len: usize,
        strategy: PivotSelection,
    ) -> Self {
        assert!(prefix_len <= k, "prefix length {prefix_len} exceeds k = {k}");
        let site_ids = choose_pivots(&metric, &points, k, strategy);
        Self::finish(metric, points, site_ids, prefix_len)
    }

    /// Builds with explicitly provided site ids.
    pub fn build_with_sites(
        metric: M,
        points: Vec<P>,
        site_ids: Vec<usize>,
        prefix_len: usize,
    ) -> Self {
        assert!(site_ids.iter().all(|&i| i < points.len()), "site id out of range");
        assert!(prefix_len <= site_ids.len(), "prefix length exceeds site count");
        Self::finish(metric, points, site_ids, prefix_len)
    }

    fn finish(metric: M, points: Vec<P>, site_ids: Vec<usize>, prefix_len: usize) -> Self {
        let sites: Vec<P> = site_ids.iter().map(|&i| points[i].clone()).collect();
        let mut computer = DistPermComputer::new(site_ids.len());
        let prefixes = points
            .iter()
            .map(|p| {
                let full = computer.compute(&metric, &sites, p);
                PrefixPermutation::from_permutation(&full, prefix_len)
            })
            .collect();
        Self { metric, points, site_ids, sites, prefixes, prefix_len }
    }
}

impl<P, M: Metric<P>> PrefixPermIndex<P, M> {
    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of sites k.
    pub fn k(&self) -> usize {
        self.site_ids.len()
    }

    /// Stored prefix length ℓ.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// The site element ids.
    pub fn site_ids(&self) -> &[usize] {
        &self.site_ids
    }

    /// The cached site points, parallel to [`Self::site_ids`].
    pub fn sites(&self) -> &[P] {
        &self.sites
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The stored prefixes, parallel to the database.
    pub fn prefixes(&self) -> &[PrefixPermutation] {
        &self.prefixes
    }

    /// Number of distinct stored prefixes — the ordered point on §2's
    /// refinement chain at length ℓ.
    pub fn distinct_prefixes(&self) -> usize {
        let set: FxHashSet<PrefixPermutation> = self.prefixes.iter().copied().collect();
        set.len()
    }

    /// Raw storage bits for the prefix column: n·ℓ·⌈log₂ k⌉.
    pub fn storage_bits_raw(&self) -> u64 {
        self.len() as u64 * self.prefix_len as u64 * u64::from(element_bits(self.k()))
    }

    /// Codebook storage bits: n·⌈log₂ N_ℓ⌉ for the id column plus the
    /// table of N_ℓ distinct prefixes.
    pub fn storage_bits_codebook(&self) -> u64 {
        let n_distinct = self.distinct_prefixes();
        let ids = self.len() as u64 * u64::from(element_bits(n_distinct));
        let table = n_distinct as u64 * self.prefix_len as u64 * u64::from(element_bits(self.k()));
        ids + table
    }

    /// The query's length-ℓ prefix (k metric evaluations).
    pub fn query_prefix(&self, query: &P) -> PrefixPermutation {
        self.session().query_prefix(query)
    }

    /// A reusable query cursor (permutation scratch and candidate buffer
    /// allocated once).
    pub fn session(&self) -> PrefixPermSearcher<'_, P, M> {
        PrefixPermSearcher {
            index: self,
            computer: DistPermComputer::new(self.k()),
            order: Vec::new(),
        }
    }

    /// Approximate k-NN: measure the `frac` fraction of the database
    /// whose stored prefix is most similar (induced footrule) to the
    /// query's.  `frac = 1.0` measures everything and is exact.
    pub fn knn_approx(&self, query: &P, k: usize, frac: f64) -> Vec<Neighbor<M::Dist>> {
        self.session().knn_approx(query, k, frac).0
    }

    /// Approximate range query over the `frac` prefix-nearest fraction
    /// (subset of the true answer; `frac = 1.0` is exact).
    pub fn range_approx(&self, query: &P, radius: M::Dist, frac: f64) -> Vec<Neighbor<M::Dist>> {
        self.session().range_approx(query, radius, frac).0
    }
}

/// Reusable query cursor over a [`PrefixPermIndex`].
#[derive(Debug, Clone)]
pub struct PrefixPermSearcher<'a, P, M: Metric<P>> {
    index: &'a PrefixPermIndex<P, M>,
    computer: DistPermComputer<M::Dist>,
    order: Vec<(u64, usize)>,
}

impl<P, M: Metric<P>> PrefixPermSearcher<'_, P, M> {
    /// The underlying index.
    pub fn index(&self) -> &PrefixPermIndex<P, M> {
        self.index
    }

    /// The query's length-ℓ prefix (k metric evaluations), using the
    /// cursor's scratch.
    pub fn query_prefix(&mut self, query: &P) -> PrefixPermutation {
        query_prefix_with(self.index, &mut self.computer, query)
    }

    /// Budgeted k-NN over the `frac` prefix-nearest fraction.
    ///
    /// Candidate ordering is by induced prefix footrule, through the
    /// same select-then-sort-prefix fast path as the full-permutation
    /// searchers (keys `(footrule, id)` are distinct, so the prefix
    /// equals the full sort's).
    pub fn knn_approx(
        &mut self,
        query: &P,
        k: usize,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        let computer = &mut self.computer;
        budgeted_knn_scan(
            index.points.len(),
            k,
            frac,
            index.k(),
            &mut self.order,
            |budget, order| {
                let qpre = query_prefix_with(index, computer, query);
                budgeted_order(
                    index.prefixes.iter().map(|p| prefix_footrule(&qpre, p)),
                    budget,
                    order,
                );
            },
            |i| index.metric.distance(query, &index.points[i]),
        )
    }

    /// Budgeted range query; a subset of the true answer, exact at
    /// `frac = 1.0`.
    pub fn range_approx(
        &mut self,
        query: &P,
        radius: M::Dist,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        let computer = &mut self.computer;
        budgeted_range_scan(
            index.points.len(),
            frac,
            index.k(),
            radius,
            &mut self.order,
            |budget, order| {
                let qpre = query_prefix_with(index, computer, query);
                budgeted_order(
                    index.prefixes.iter().map(|p| prefix_footrule(&qpre, p)),
                    budget,
                    order,
                );
            },
            |i| index.metric.distance(query, &index.points[i]),
        )
    }
}

/// The prefix computation, taking the searcher's scratch by parts so
/// the budgeted-scan closures can borrow disjoint fields.
fn query_prefix_with<P, M: Metric<P>>(
    index: &PrefixPermIndex<P, M>,
    computer: &mut DistPermComputer<M::Dist>,
    query: &P,
) -> PrefixPermutation {
    let full = computer.compute(&index.metric, &index.sites, query);
    PrefixPermutation::from_permutation(&full, index.prefix_len)
}

impl<P: Sync, M: Metric<P> + Sync> ProximityIndex<P> for PrefixPermIndex<P, M> {
    type Dist = M::Dist;
    type Searcher<'s>
        = PrefixPermSearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> PrefixPermSearcher<'_, P, M> {
        self.session()
    }
}

impl<P: Sync, M: Metric<P> + Sync> Searcher<P> for PrefixPermSearcher<'_, P, M> {
    type Dist = M::Dist;

    /// Exact k-NN as the full-budget scan (k + n evaluations).
    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        self.knn_approx(query, k, 1.0)
    }

    /// Exact range query as the full-budget scan (k + n evaluations).
    fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        PrefixPermSearcher::range_approx(self, query, radius, 1.0)
    }
}

impl<P: Sync, M: Metric<P> + Sync> ApproxSearcher<P> for PrefixPermSearcher<'_, P, M> {
    fn knn_approx(
        &mut self,
        query: &P,
        k: usize,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        PrefixPermSearcher::knn_approx(self, query, k, frac)
    }

    fn range_approx(
        &mut self,
        query: &P,
        radius: M::Dist,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        PrefixPermSearcher::range_approx(self, query, radius, frac)
    }
}

impl<P: Sync, M: Metric<P> + Sync> ApproxIndex<P> for PrefixPermIndex<P, M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distperm::DistPermIndex;
    use crate::linear::LinearScan;
    use dp_metric::L2;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn full_length_prefix_matches_distperm_distinct_count() {
        let pts = random_points(500, 2, 1);
        let full = DistPermIndex::build(L2, pts.clone(), 6, PivotSelection::Prefix);
        let pre = PrefixPermIndex::build(L2, pts, 6, 6, PivotSelection::Prefix);
        assert_eq!(pre.distinct_prefixes(), full.distinct_permutations());
    }

    #[test]
    fn distinct_prefixes_monotone_in_length() {
        let pts = random_points(2000, 3, 2);
        let mut prev = 0usize;
        for l in 1..=6usize {
            let idx = PrefixPermIndex::build(L2, pts.clone(), 6, l, PivotSelection::Prefix);
            let n = idx.distinct_prefixes();
            assert!(n >= prev, "chain not monotone at l={l}: {n} < {prev}");
            prev = n;
        }
    }

    #[test]
    fn length_one_counts_occupied_voronoi_cells() {
        let pts = random_points(3000, 2, 3);
        let idx = PrefixPermIndex::build(L2, pts, 8, 1, PivotSelection::MaxMin);
        let n = idx.distinct_prefixes();
        assert!(n <= 8);
        assert!(n >= 6, "dense data misses many Voronoi cells: {n}");
    }

    #[test]
    fn full_budget_knn_is_exact() {
        let pts = random_points(300, 3, 4);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = PrefixPermIndex::build(L2, pts, 8, 3, PivotSelection::MaxMin);
        for q in random_points(10, 3, 5) {
            assert_eq!(idx.knn_approx(&q, 4, 1.0), scan.knn(&q, 4));
        }
    }

    #[test]
    fn range_approx_full_budget_matches_linear_scan() {
        let pts = random_points(250, 2, 11);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = PrefixPermIndex::build(L2, pts, 8, 4, PivotSelection::MaxMin);
        for q in random_points(8, 2, 12) {
            let radius = dp_metric::F64Dist::new(0.25);
            assert_eq!(idx.range_approx(&q, radius, 1.0), scan.range(&q, radius));
        }
    }

    #[test]
    fn range_approx_budgeted_is_subset_of_truth() {
        let pts = random_points(400, 3, 13);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = PrefixPermIndex::build(L2, pts, 10, 5, PivotSelection::MaxMin);
        for q in random_points(8, 3, 14) {
            let radius = dp_metric::F64Dist::new(0.3);
            let truth = scan.range(&q, radius);
            for n in &idx.range_approx(&q, radius, 0.2) {
                assert!(truth.contains(n), "false positive {n:?}");
            }
        }
    }

    #[test]
    fn budgeted_knn_recall_grows_with_prefix_length() {
        let pts = random_points(1500, 3, 6);
        let scan = LinearScan::new(L2, pts.clone());
        let queries = random_points(40, 3, 7);
        let recall = |l: usize| {
            let idx = PrefixPermIndex::build(L2, pts.clone(), 12, l, PivotSelection::MaxMin);
            queries
                .iter()
                .filter(|q| {
                    let truth = scan.knn(q, 1)[0].id;
                    idx.knn_approx(q, 1, 0.08).first().map(|n| n.id) == Some(truth)
                })
                .count()
        };
        let short = recall(2);
        let long = recall(12);
        assert!(long >= short, "longer prefixes should not hurt recall: l=12 {long} < l=2 {short}");
        assert!(long >= 30, "full-permutation recall too low: {long}/40");
    }

    #[test]
    fn storage_shrinks_with_prefix_length() {
        let pts = random_points(2000, 3, 8);
        let full = PrefixPermIndex::build(L2, pts.clone(), 12, 12, PivotSelection::Prefix);
        let short = PrefixPermIndex::build(L2, pts, 12, 3, PivotSelection::Prefix);
        assert!(short.storage_bits_raw() < full.storage_bits_raw());
        assert!(short.storage_bits_codebook() < full.storage_bits_codebook());
        // Raw formula check: n=2000, l=3, ⌈log₂ 12⌉=4.
        assert_eq!(short.storage_bits_raw(), 2000 * 3 * 4);
    }

    #[test]
    fn query_prefix_matches_stored_prefix_for_database_points() {
        let pts = random_points(100, 2, 9);
        let idx = PrefixPermIndex::build(L2, pts.clone(), 5, 2, PivotSelection::Prefix);
        for (i, p) in pts.iter().enumerate().step_by(13) {
            assert_eq!(idx.query_prefix(p), idx.prefixes()[i]);
        }
    }

    #[test]
    fn searcher_reuse_matches_one_shot_and_counts_evals() {
        let pts = random_points(300, 2, 15);
        let idx = PrefixPermIndex::build(L2, pts, 6, 3, PivotSelection::MaxMin);
        let mut searcher = idx.session();
        for q in random_points(8, 2, 16) {
            let (got, stats) = searcher.knn_approx(&q, 3, 0.1);
            assert_eq!(got, idx.knn_approx(&q, 3, 0.1));
            assert_eq!(stats, QueryStats::new(6 + 30));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds k")]
    fn overlong_prefix_rejected() {
        let pts = random_points(10, 2, 10);
        let _ = PrefixPermIndex::build(L2, pts, 3, 4, PivotSelection::Prefix);
    }
}
