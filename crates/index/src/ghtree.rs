//! Generalised-hyperplane tree (Uhlmann 1991).
//!
//! Each node holds two pivots; elements go to the side of the pivot they
//! are closer to, and queries prune a side when the hyperplane margin
//! `(d(q, far) − d(q, near)) / 2` exceeds the search radius.  The paper's
//! §1 cites GH-trees (with VP-trees) as the tree-structured alternatives
//! to the AESA family.

use crate::api::{ProximityIndex, Searcher};
use crate::query::{KnnHeap, Neighbor, QueryStats};
use dp_metric::{Distance, Metric};

const LEAF_SIZE: usize = 8;

#[derive(Debug, Clone)]
enum Node {
    Leaf { ids: Vec<usize> },
    Inner { a: usize, b: usize, left: usize, right: usize },
}

/// GH-tree over an owned database.
#[derive(Debug, Clone)]
pub struct GhTree<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    nodes: Vec<Node>,
    root: usize,
}

impl<P, M: Metric<P>> GhTree<P, M> {
    /// Builds the tree.
    pub fn build(metric: M, points: Vec<P>) -> Self {
        let ids: Vec<usize> = (0..points.len()).collect();
        let mut tree = Self { metric, points, nodes: Vec::new(), root: 0 };
        tree.root = tree.build_node(ids);
        tree
    }

    fn build_node(&mut self, mut ids: Vec<usize>) -> usize {
        if ids.len() <= LEAF_SIZE.max(2) {
            self.nodes.push(Node::Leaf { ids });
            return self.nodes.len() - 1;
        }
        // Deterministic pivots: the first two ids.
        let a = ids.remove(0);
        let b = ids.remove(0);
        let mut left_ids = Vec::new();
        let mut right_ids = Vec::new();
        for &i in &ids {
            let da = self.metric.distance(&self.points[a], &self.points[i]);
            let db = self.metric.distance(&self.points[b], &self.points[i]);
            if da <= db {
                left_ids.push(i);
            } else {
                right_ids.push(i);
            }
        }
        // A lopsided split (e.g. b duplicates a) degenerates to a leaf.
        if left_ids.is_empty() || right_ids.is_empty() {
            let mut all = vec![a, b];
            all.extend(left_ids);
            all.extend(right_ids);
            self.nodes.push(Node::Leaf { ids: all });
            return self.nodes.len() - 1;
        }
        let left = self.build_node(left_ids);
        let right = self.build_node(right_ids);
        self.nodes.push(Node::Inner { a, b, left, right });
        self.nodes.len() - 1
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// A reusable query session (the traversal lives on the call stack;
    /// the session carries the native evaluation counter).
    pub fn session(&self) -> GhSearcher<'_, P, M> {
        GhSearcher { index: self }
    }

    /// Exact k nearest neighbours.
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        self.session().knn(query, k).0
    }

    /// All elements within `radius` (inclusive), sorted by (distance, id).
    pub fn range(&self, query: &P, radius: M::Dist) -> Vec<Neighbor<M::Dist>> {
        self.session().range(query, radius).0
    }

    fn knn_node(&self, node: usize, query: &P, heap: &mut KnnHeap<M::Dist>, evals: &mut u64) {
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &i in ids {
                    *evals += 1;
                    heap.push(i, self.metric.distance(query, &self.points[i]));
                }
            }
            Node::Inner { a, b, left, right } => {
                *evals += 2;
                let da = self.metric.distance(query, &self.points[*a]);
                let db = self.metric.distance(query, &self.points[*b]);
                heap.push(*a, da);
                heap.push(*b, db);
                let (daf, dbf) = (da.to_f64(), db.to_f64());
                let (first, second, margin) = if daf <= dbf {
                    (*left, *right, (dbf - daf) / 2.0)
                } else {
                    (*right, *left, (daf - dbf) / 2.0)
                };
                self.knn_node(first, query, heap, evals);
                let tau = heap.bound().map_or(f64::INFINITY, dp_metric::Distance::to_f64);
                if margin <= tau {
                    self.knn_node(second, query, heap, evals);
                }
            }
        }
    }

    fn range_node(
        &self,
        node: usize,
        query: &P,
        radius: M::Dist,
        out: &mut Vec<Neighbor<M::Dist>>,
        evals: &mut u64,
    ) {
        match &self.nodes[node] {
            Node::Leaf { ids } => {
                for &i in ids {
                    *evals += 1;
                    let d = self.metric.distance(query, &self.points[i]);
                    if d <= radius {
                        out.push(Neighbor { id: i, dist: d });
                    }
                }
            }
            Node::Inner { a, b, left, right } => {
                *evals += 2;
                let da = self.metric.distance(query, &self.points[*a]);
                let db = self.metric.distance(query, &self.points[*b]);
                if da <= radius {
                    out.push(Neighbor { id: *a, dist: da });
                }
                if db <= radius {
                    out.push(Neighbor { id: *b, dist: db });
                }
                let (daf, dbf) = (da.to_f64(), db.to_f64());
                let r = radius.to_f64();
                // For x on the a-side, d(q,x) >= (d(q,a) - d(q,b)) / 2;
                // symmetrically for the b-side.
                if (daf - dbf) / 2.0 <= r {
                    self.range_node(*left, query, radius, out, evals);
                }
                if (dbf - daf) / 2.0 <= r {
                    self.range_node(*right, query, radius, out, evals);
                }
            }
        }
    }
}

/// Query session over a [`GhTree`].
#[derive(Debug, Clone)]
pub struct GhSearcher<'a, P, M: Metric<P>> {
    index: &'a GhTree<P, M>,
}

impl<P, M: Metric<P>> GhSearcher<'_, P, M> {
    /// The underlying index.
    pub fn index(&self) -> &GhTree<P, M> {
        self.index
    }

    /// Exact k-NN with hyperplane pruning.
    pub fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        if index.points.is_empty() || k == 0 {
            return (Vec::new(), QueryStats::default());
        }
        let mut heap = KnnHeap::new(k.min(index.points.len()));
        let mut evals = 0u64;
        index.knn_node(index.root, query, &mut heap, &mut evals);
        (heap.into_sorted(), QueryStats::new(evals))
    }

    /// Exact range query with hyperplane pruning.
    pub fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        let mut out = Vec::new();
        let mut evals = 0u64;
        if !index.points.is_empty() {
            index.range_node(index.root, query, radius, &mut out, &mut evals);
        }
        out.sort_unstable();
        (out, QueryStats::new(evals))
    }
}

impl<P: Sync, M: Metric<P> + Sync> ProximityIndex<P> for GhTree<P, M> {
    type Dist = M::Dist;
    type Searcher<'s>
        = GhSearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> GhSearcher<'_, P, M> {
        self.session()
    }
}

impl<P: Sync, M: Metric<P> + Sync> Searcher<P> for GhSearcher<'_, P, M> {
    type Dist = M::Dist;

    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        GhSearcher::knn(self, query, k)
    }

    fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        GhSearcher::range(self, query, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use crate::linear::LinearScan;
    use dp_metric::{F64Dist, Levenshtein, L2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn knn_matches_linear_scan() {
        let pts = random_points(350, 3, 1);
        let scan = LinearScan::new(L2, pts.clone());
        let tree = GhTree::build(L2, pts);
        for q in random_points(25, 3, 2) {
            assert_eq!(tree.knn(&q, 4), scan.knn(&q, 4));
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let pts = random_points(250, 2, 3);
        let scan = LinearScan::new(L2, pts.clone());
        let tree = GhTree::build(L2, pts);
        for q in random_points(15, 2, 4) {
            let radius = F64Dist::new(0.3);
            assert_eq!(tree.range(&q, radius), scan.range(&q, radius));
        }
    }

    #[test]
    fn native_stats_prune_in_low_dimension() {
        let pts = random_points(2000, 2, 5);
        let tree = GhTree::build(L2, pts);
        let queries = random_points(20, 2, 6);
        let mut session = tree.session();
        let total: u64 = queries.iter().map(|q| session.knn(q, 1).1.metric_evals).sum();
        let mean = total as f64 / queries.len() as f64;
        assert!(mean < 1200.0, "GH-tree averaged {mean} evals on n=2000");
    }

    #[test]
    fn native_stats_agree_with_counting_metric() {
        let pts = random_points(300, 2, 8);
        let tree = GhTree::build(CountingMetric::new(L2), pts);
        for q in random_points(10, 2, 9) {
            tree.metric().reset();
            let (_, stats) = tree.session().knn(&q, 2);
            assert_eq!(stats.metric_evals, tree.metric().count());
            tree.metric().reset();
            let (_, stats) = tree.session().range(&q, F64Dist::new(0.2));
            assert_eq!(stats.metric_evals, tree.metric().count());
        }
    }

    #[test]
    fn works_on_strings() {
        let words: Vec<String> = [
            "north", "forth", "worth", "wordy", "wormy", "south", "mouth", "month", "moth", "math",
            "myth", "mirth",
        ]
        .map(String::from)
        .to_vec();
        let scan = LinearScan::new(Levenshtein, words.clone());
        let tree = GhTree::build(Levenshtein, words);
        let q = String::from("motha");
        assert_eq!(tree.knn(&q, 4), scan.knn(&q, 4));
    }

    #[test]
    fn duplicates_and_empty() {
        let tree: GhTree<Vec<f64>, L2> = GhTree::build(L2, vec![]);
        assert!(tree.knn(&vec![0.0], 1).is_empty());
        let dup = GhTree::build(L2, vec![vec![1.0]; 30]);
        let out = dup.knn(&vec![1.0], 5);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|n| n.dist.get() == 0.0));
    }
}
