//! Panic isolation for serving workers, plus the test-only fault hook.
//!
//! The resilient serving engine ([`crate::serve::serve_resilient`]) runs
//! every query under [`std::panic::catch_unwind`]: a panicking query —
//! a bug in an index, a poisoned scratch buffer, an injected fault —
//! becomes a structured [`QueryError`] in that query's slot instead of a
//! process death.  The worker's searcher session is treated as poisoned
//! after a caught panic and rebuilt from the index before the next
//! query, so one bad query cannot corrupt its successors.
//!
//! [`FaultPlan`] is the test hook that drives the robustness suite:
//! it injects panics and delays at chosen query indices so release-mode
//! tests can prove the serving loop survives everything a query can
//! throw at it.  A default (empty) plan is free: the hot path checks one
//! `is_empty` flag.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A structured per-query failure: the query's batch index plus the
/// panic message that killed it.
///
/// This is the serving loop's replacement for a process death: the
/// query's slot in the batch carries the error, every other query's
/// answer is unaffected, and the connection stays up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Index of the query within its batch.
    pub index: usize,
    /// The panic payload, rendered (`&str`/`String` payloads verbatim,
    /// anything else as an opaque marker).
    pub message: String,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for QueryError {}

/// Renders a panic payload as a one-line message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` under `catch_unwind`, mapping a panic to its message.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: the engine's contract
/// is that state touched by a panicking closure (the searcher session)
/// is discarded and rebuilt, which is exactly the discipline that makes
/// the assertion sound.
pub(crate) fn run_guarded<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(panic_message)
}

/// Test-only fault injection: panics and delays at chosen query indices.
///
/// The plan is consulted by the resilient engine *inside* the unwind
/// guard, so an injected panic exercises the real isolation machinery
/// end to end — capture, searcher rebuild, structured error reporting.
/// Production callers pass [`FaultPlan::none`] (the default), which the
/// engine detects and skips with a single branch.
///
/// This type exists for the robustness test suite and benchmarks; it is
/// not a serving feature.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    panics: BTreeSet<usize>,
    delays: BTreeMap<usize, Duration>,
}

impl FaultPlan {
    /// The empty plan: no injected faults (the production value).
    pub fn none() -> Self {
        Self::default()
    }

    /// Injects a panic when the query at `index` runs.
    pub fn panic_on(mut self, index: usize) -> Self {
        self.panics.insert(index);
        self
    }

    /// Injects panics at every index in `indices`.
    pub fn panic_on_all(mut self, indices: impl IntoIterator<Item = usize>) -> Self {
        self.panics.extend(indices);
        self
    }

    /// Sleeps for `delay` before running the query at `index` (for
    /// deadline tests: a slow query that pushes the batch past its soft
    /// deadline).
    pub fn delay_on(mut self, index: usize, delay: Duration) -> Self {
        self.delays.insert(index, delay);
        self
    }

    /// True iff the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty() && self.delays.is_empty()
    }

    /// The query indices that will panic.
    pub fn panic_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.panics.iter().copied()
    }

    /// Fires the faults planned for query `index`: sleeps through any
    /// planned delay, then panics if a panic is planned.  Called inside
    /// the unwind guard.
    pub(crate) fn fire(&self, index: usize) {
        if let Some(&delay) = self.delays.get(&index) {
            std::thread::sleep(delay);
        }
        if self.panics.contains(&index) {
            panic!("injected fault at query {index}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_success_passes_value_through() {
        assert_eq!(run_guarded(|| 41 + 1), Ok(42));
    }

    #[test]
    fn guarded_panic_yields_message() {
        let err = run_guarded(|| -> u32 { panic!("boom {}", 7) }).unwrap_err();
        assert_eq!(err, "boom 7");
        let err = run_guarded(|| -> u32 { panic!("static str") }).unwrap_err();
        assert_eq!(err, "static str");
    }

    #[test]
    fn fault_plan_fires_only_planned_indices() {
        let plan = FaultPlan::none().panic_on(3).panic_on_all([5, 9]);
        assert!(!plan.is_empty());
        assert_eq!(plan.panic_indices().collect::<Vec<_>>(), vec![3, 5, 9]);
        assert!(run_guarded(|| plan.fire(0)).is_ok());
        let err = run_guarded(|| plan.fire(3)).unwrap_err();
        assert!(err.contains("injected fault at query 3"), "{err}");
    }

    #[test]
    fn empty_plan_is_default() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::default().panic_indices().next().is_none());
    }

    #[test]
    fn query_error_displays_index_and_message() {
        let e = QueryError { index: 4, message: "kaput".into() };
        assert_eq!(e.to_string(), "query 4 panicked: kaput");
    }
}
