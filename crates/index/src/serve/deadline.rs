//! Deadline-aware graceful degradation and the per-query outcome
//! envelope.
//!
//! A batch may carry a **soft deadline**.  Workers check it before each
//! query: once it has passed, remaining exact queries downgrade to
//! budgeted approximate queries ([`crate::ApproxSearcher`]) at the
//! batch's degrade fraction — the paper's §4 candidate-budget machinery
//! repurposed as a principled degraded mode — instead of making a late
//! batch later.  Every downgraded answer is flagged
//! [`Outcome::Degraded`] with the fraction actually served, so callers
//! can tell a full answer from a best-effort one.
//!
//! The deadline is *soft*: a query already running when it expires is
//! not interrupted (metric evaluations are not cancellable), so a batch
//! can overrun by at most one query per worker.

use crate::query::QueryStats;
use crate::serve::isolate::QueryError;
use crate::serve::{ApproxRequest, Request, Response};
use std::time::{Duration, Instant};

/// A batch's soft deadline: a fixed instant after which remaining
/// queries degrade.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: queries never degrade.
    pub fn unlimited() -> Self {
        Self { at: None }
    }

    /// A deadline `soft` from now (`None` = unlimited).
    pub fn after(soft: Option<Duration>) -> Self {
        Self { at: soft.map(|d| Instant::now() + d) }
    }

    /// True iff the deadline exists and has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

/// One query's request as the serving engine sees it: exact or
/// explicitly budgeted.
///
/// Exact requests run through [`crate::Searcher::knn`]/`range` — the
/// same code path as [`crate::serve::query_batch_parallel`], so the
/// zero-fault, no-deadline serve path is bit-identical to it.  Budgeted
/// requests run through the [`crate::ApproxSearcher`] surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServeRequest<D> {
    /// Exact k-NN or range query.
    Exact(Request<D>),
    /// Budgeted query at the client's requested fraction.
    Approx(ApproxRequest<D>),
}

impl<D: Copy> ServeRequest<D> {
    /// The scan fraction this request is asking for (exact = 1.0).
    pub fn requested_frac(&self) -> f64 {
        match self {
            ServeRequest::Exact(_) => 1.0,
            ServeRequest::Approx(r) => r.frac(),
        }
    }

    /// The degraded form of this request: the same query shape at
    /// `min(requested, degrade_frac)` — degradation never *increases* a
    /// client's budget.
    pub(crate) fn degraded(&self, degrade_frac: f64) -> ApproxRequest<D> {
        match *self {
            ServeRequest::Exact(Request::Knn { k }) => ApproxRequest::Knn { k, frac: degrade_frac },
            ServeRequest::Exact(Request::Range { radius }) => {
                ApproxRequest::Range { radius, frac: degrade_frac }
            }
            ServeRequest::Approx(ApproxRequest::Knn { k, frac }) => {
                ApproxRequest::Knn { k, frac: frac.min(degrade_frac) }
            }
            ServeRequest::Approx(ApproxRequest::Range { radius, frac }) => {
                ApproxRequest::Range { radius, frac: frac.min(degrade_frac) }
            }
        }
    }
}

/// One query's outcome in a resiliently served batch: the extended
/// response envelope of the serving subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome<D> {
    /// Served as requested (exact, or at the client's own budget).
    Ok(Response<D>),
    /// Served in degraded mode after the batch's soft deadline expired;
    /// `frac` is the scan fraction actually used.
    Degraded {
        /// The budgeted answer.
        response: Response<D>,
        /// The scan fraction actually served.
        frac: f64,
    },
    /// The query panicked; the failure is contained to this slot.
    Failed(QueryError),
}

impl<D> Outcome<D> {
    /// The answer, if the query produced one (ok or degraded).
    pub fn response(&self) -> Option<&Response<D>> {
        match self {
            Outcome::Ok(r) | Outcome::Degraded { response: r, .. } => Some(r),
            Outcome::Failed(_) => None,
        }
    }

    /// True iff served below the requested budget.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Outcome::Degraded { .. })
    }

    /// True iff the query failed.
    pub fn is_failed(&self) -> bool {
        matches!(self, Outcome::Failed(_))
    }

    /// The error, if the query failed.
    pub fn error(&self) -> Option<&QueryError> {
        match self {
            Outcome::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// A resiliently served batch: one [`Outcome`] per query, in query
/// order, plus batch-level accounting.
#[derive(Debug, Clone)]
pub struct BatchReport<D> {
    /// Per-query outcomes, indexed like the input batch.
    pub outcomes: Vec<Outcome<D>>,
    /// Wall-clock time spent serving the batch.
    pub elapsed: Duration,
}

impl<D> BatchReport<D> {
    /// Number of queries that produced an answer (ok + degraded).
    pub fn served(&self) -> usize {
        self.outcomes.iter().filter(|o| o.response().is_some()).count()
    }

    /// Number of degraded answers.
    pub fn degraded(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_degraded()).count()
    }

    /// Number of failed queries.
    pub fn failed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_failed()).count()
    }

    /// Sums the stats of every answered query.
    pub fn total_stats(&self) -> QueryStats {
        self.outcomes.iter().filter_map(|o| o.response()).map(|(_, s)| *s).sum()
    }

    /// The plain responses, provided every query was served as
    /// requested — `None` if anything degraded or failed.  This is the
    /// bridge to the strict batch API: with no faults and no deadline,
    /// the vector equals [`crate::serve::query_batch_parallel`]'s
    /// output bit for bit.
    pub fn ok_responses(&self) -> Option<Vec<Response<D>>>
    where
        D: Copy,
    {
        self.outcomes
            .iter()
            .map(|o| match o {
                Outcome::Ok(r) => Some(r.clone()),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Neighbor;

    fn resp(id: usize) -> Response<u32> {
        (vec![Neighbor { id, dist: 1u32 }], QueryStats::new(3))
    }

    #[test]
    fn unlimited_deadline_never_expires() {
        assert!(!Deadline::unlimited().expired());
        assert!(!Deadline::after(None).expired());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        assert!(Deadline::after(Some(Duration::ZERO)).expired());
    }

    #[test]
    fn degraded_request_never_raises_the_budget() {
        let exact: ServeRequest<u32> = ServeRequest::Exact(Request::Knn { k: 3 });
        assert_eq!(exact.requested_frac(), 1.0);
        assert_eq!(exact.degraded(0.25), ApproxRequest::Knn { k: 3, frac: 0.25 });

        let tight: ServeRequest<u32> = ServeRequest::Approx(ApproxRequest::Knn { k: 3, frac: 0.1 });
        assert_eq!(tight.degraded(0.25), ApproxRequest::Knn { k: 3, frac: 0.1 });

        let range: ServeRequest<u32> = ServeRequest::Exact(Request::Range { radius: 9 });
        assert_eq!(range.degraded(0.5), ApproxRequest::Range { radius: 9, frac: 0.5 });
    }

    #[test]
    fn report_counts_and_strict_bridge() {
        let report = BatchReport {
            outcomes: vec![
                Outcome::Ok(resp(0)),
                Outcome::Degraded { response: resp(1), frac: 0.25 },
                Outcome::Failed(QueryError { index: 2, message: "x".into() }),
            ],
            elapsed: Duration::ZERO,
        };
        assert_eq!(report.served(), 2);
        assert_eq!(report.degraded(), 1);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.total_stats(), QueryStats::new(6));
        assert!(report.ok_responses().is_none(), "degraded/failed batches are not strict");

        let clean = BatchReport {
            outcomes: vec![Outcome::Ok(resp(0)), Outcome::Ok(resp(1))],
            elapsed: Duration::ZERO,
        };
        assert_eq!(clean.ok_responses().unwrap(), vec![resp(0), resp(1)]);
    }
}
