//! The persistent serving loop behind `distperm serve`.
//!
//! [`serve_session`] reads protocol lines ([`super::protocol`]) from any
//! `BufRead`, groups them into batches, and serves each batch through
//! the resilient work-stealing engine ([`super::steal`]), writing one
//! reply line per event.  The loop is built not to die:
//!
//! - a **reader thread** parses input and never blocks on a full queue —
//!   **admission control** is a bounded batch queue, and a batch that
//!   arrives while the queue is full is *shed* with an explicit
//!   `shed <id> reason=queue-full` reply (visible backpressure) rather
//!   than queued without bound or silently dropped;
//! - malformed lines get `error line=<n> <diagnostic>` replies and the
//!   session keeps reading — garbage cannot kill the connection;
//! - query panics and deadline overruns are contained per query by the
//!   engine and reported as `failed`/degraded reply lines;
//! - EOF (even mid-batch) shuts the session down cleanly with a `bye`
//!   summary line.
//!
//! Reply grammar (one line per event, all counts in decimal):
//!
//! ```text
//! ready dim=<d> threads=<t> queue=<cap> max-batch=<m>
//! batch <id> queries=<n> depth=<queue depth> queued_us=<wait>
//! error line=<input line> <diagnostic>
//! ok <i> evals=<metric evals> <id>:<dist> ...
//! ok <i> degraded frac=<served frac> evals=<metric evals> <id>:<dist> ...
//! failed <i> <panic message>
//! done <id> ok=<a> degraded=<b> failed=<c> elapsed_us=<t>
//! shed <id> reason=queue-full|batch-too-large
//! bye batches=<served> queries=<answered> shed=<n> errors=<n>
//! ```

use crate::api::{ApproxSearcher, ProximityIndex};
use crate::serve::deadline::{Outcome, ServeRequest};
use crate::serve::isolate::FaultPlan;
use crate::serve::protocol::{Frame, LineParser, ProtocolError, QueryKind};
use crate::serve::steal::{serve_resilient, BatchOptions};
use crate::serve::{ApproxRequest, Request};
use dp_metric::F64Dist;
use std::borrow::Borrow;
use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Serving-loop policy: worker pool, admission bounds, and degradation
/// defaults (per-batch `begin` options may tighten, never widen, the
/// batch limits).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Worker threads per batch.
    pub threads: usize,
    /// Batches admitted but not yet served before shedding starts.
    pub queue_capacity: usize,
    /// Maximum queries per batch; larger batches are shed.
    pub max_batch: usize,
    /// Default soft deadline for batches that don't set `deadline-ms=`.
    pub soft_deadline: Option<Duration>,
    /// Scan fraction served after the deadline expires (overridable per
    /// batch via `frac=` on `begin`).
    pub degrade_frac: f64,
    /// Work-stealing chunk size (see [`BatchOptions::steal_chunk`]).
    pub steal_chunk: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            queue_capacity: 4,
            max_batch: 4096,
            soft_deadline: None,
            degrade_frac: 0.25,
            steal_chunk: 1,
        }
    }
}

/// End-of-session accounting, also rendered as the `bye` line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Batches served (admitted and answered).
    pub batches: usize,
    /// Queries answered as requested.
    pub ok: usize,
    /// Queries answered in degraded mode.
    pub degraded: usize,
    /// Queries that failed (contained panics).
    pub failed: usize,
    /// Batches shed by admission control.
    pub shed: usize,
    /// Malformed lines answered with `error` replies.
    pub parse_errors: usize,
}

impl SessionSummary {
    /// Queries that produced an answer.
    pub fn answered(&self) -> usize {
        self.ok + self.degraded
    }
}

/// Why a batch was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShedReason {
    QueueFull,
    BatchTooLarge,
}

impl ShedReason {
    fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::BatchTooLarge => "batch-too-large",
        }
    }
}

/// A fully read batch waiting in the admission queue.
struct PendingBatch {
    id: String,
    deadline_ms: Option<u64>,
    frac: Option<f64>,
    requests: Vec<ServeRequest<F64Dist>>,
    points: Vec<Vec<f64>>,
    /// Parse errors raised by lines inside this batch, replied with it.
    errors: Vec<(usize, ProtocolError)>,
    /// Queue depth at admission (for the `batch` reply line).
    depth: usize,
    enqueued: Instant,
}

/// Reader-to-server events, in input order.
enum Event {
    Batch(Box<PendingBatch>),
    LineError { line: usize, error: ProtocolError },
    Shed { id: String, reason: ShedReason },
    Eof { truncated: Option<(String, usize)> },
}

/// The bounded admission queue: reader pushes, serving loop pops.
///
/// Only admitted batches count against `capacity`; control events
/// (errors, sheds, EOF) always enqueue so the reply stream stays in
/// input order.  The reader never blocks — a full queue sheds.
struct Admission {
    state: Mutex<AdmissionState>,
    ready: Condvar,
}

struct AdmissionState {
    queue: VecDeque<Event>,
    admitted: usize,
}

impl Admission {
    fn new() -> Self {
        Self {
            state: Mutex::new(AdmissionState { queue: VecDeque::new(), admitted: 0 }),
            ready: Condvar::new(),
        }
    }

    /// Locks the admission state, recovering from poisoning: the state
    /// is a plain queue + counter, mutated only by non-panicking pushes
    /// and pops, so it is consistent even if a holder ever panicked —
    /// and a session that keeps serving beats one that dies on a
    /// bookkeeping lock.
    fn state(&self) -> MutexGuard<'_, AdmissionState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits `batch` unless the queue is at `capacity`; returns whether
    /// it was admitted (shedding is the caller's move).
    fn offer_batch(&self, capacity: usize, mut batch: Box<PendingBatch>) -> bool {
        let mut st = self.state();
        if st.admitted >= capacity.max(1) {
            return false;
        }
        st.admitted += 1;
        batch.depth = st.admitted;
        batch.enqueued = Instant::now();
        st.queue.push_back(Event::Batch(batch));
        self.ready.notify_one();
        true
    }

    /// Enqueues a control event (never shed, never counted).
    fn push_event(&self, event: Event) {
        let mut st = self.state();
        st.queue.push_back(event);
        self.ready.notify_one();
    }

    /// Blocks until an event is available and pops it.
    fn next(&self) -> Event {
        let mut st = self.state();
        loop {
            if let Some(event) = st.queue.pop_front() {
                return event;
            }
            // Condvar::wait re-acquires the same lock; recover from
            // poisoning for the same reason as `state()`.
            st = self.ready.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Releases one admission slot after a batch is served.
    fn batch_done(&self) {
        self.state().admitted -= 1;
    }
}

/// A batch being accumulated by the reader between `begin` and `end`.
struct OpenBatch {
    id: String,
    deadline_ms: Option<u64>,
    frac: Option<f64>,
    requests: Vec<ServeRequest<F64Dist>>,
    points: Vec<Vec<f64>>,
    errors: Vec<(usize, ProtocolError)>,
    /// Total query lines seen, including ones dropped after the batch
    /// went over `max_batch`.
    query_lines: usize,
}

impl OpenBatch {
    fn new(id: String, deadline_ms: Option<u64>, frac: Option<f64>) -> Self {
        Self {
            id,
            deadline_ms,
            frac,
            requests: Vec::new(),
            points: Vec::new(),
            errors: Vec::new(),
            query_lines: 0,
        }
    }
}

fn request_of_frame(kind: QueryKind, frac: Option<f64>) -> ServeRequest<F64Dist> {
    match (kind, frac) {
        (QueryKind::Knn { k }, None) => ServeRequest::Exact(Request::Knn { k }),
        (QueryKind::Knn { k }, Some(frac)) => ServeRequest::Approx(ApproxRequest::Knn { k, frac }),
        (QueryKind::Range { radius }, None) => {
            ServeRequest::Exact(Request::Range { radius: F64Dist::new(radius) })
        }
        (QueryKind::Range { radius }, Some(frac)) => {
            ServeRequest::Approx(ApproxRequest::Range { radius: F64Dist::new(radius), frac })
        }
    }
}

/// The reader side: parses lines, accumulates batches, and feeds the
/// admission queue.  Runs on its own thread so slow serving backs up
/// into explicit sheds, not into the input pipe.
fn read_input<R: BufRead>(
    input: R,
    parser: &LineParser,
    config: &SessionConfig,
    admission: &Admission,
) {
    let mut open: Option<OpenBatch> = None;
    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match line {
            Ok(line) => line,
            // Undecodable input: report and keep reading — the protocol
            // is line-delimited, so the next line resynchronises.
            Err(e) => {
                let error = ProtocolError::BadNumber { what: "input line", token: e.to_string() };
                match &mut open {
                    Some(batch) => batch.errors.push((lineno, error)),
                    None => admission.push_event(Event::LineError { line: lineno, error }),
                }
                continue;
            }
        };
        let frame = parser.parse(&line);
        match (frame, &mut open) {
            (Ok(Frame::Blank), _) => {}
            (Ok(Frame::Begin { id, deadline_ms, frac }), slot @ None) => {
                *slot = Some(OpenBatch::new(id, deadline_ms, frac));
            }
            (Ok(Frame::Begin { .. }), Some(batch)) => {
                batch.errors.push((lineno, ProtocolError::NestedBegin));
            }
            (Ok(Frame::Query { kind, frac, point }), Some(batch)) => {
                batch.query_lines += 1;
                if batch.query_lines <= config.max_batch {
                    batch.requests.push(request_of_frame(kind, frac));
                    batch.points.push(point);
                } else if batch.query_lines == config.max_batch + 1 {
                    // Over the limit: the batch will be shed at `end`;
                    // stop buffering points so a hostile batch cannot
                    // grow memory without bound.
                    batch.requests.clear();
                    batch.points.clear();
                }
            }
            (Ok(Frame::Query { .. }), None) => {
                admission.push_event(Event::LineError {
                    line: lineno,
                    error: ProtocolError::StrayQuery,
                });
            }
            (Ok(Frame::End), slot @ Some(_)) => {
                // dplint: allow(panic-boundary, reason = "the arm pattern just matched
                // Some on this very slot; take() observing None is unreachable")
                let batch = slot.take().expect("matched Some");
                if batch.query_lines > config.max_batch {
                    admission.push_event(Event::Shed {
                        id: batch.id,
                        reason: ShedReason::BatchTooLarge,
                    });
                    continue;
                }
                let pending = Box::new(PendingBatch {
                    id: batch.id,
                    deadline_ms: batch.deadline_ms,
                    frac: batch.frac,
                    requests: batch.requests,
                    points: batch.points,
                    errors: batch.errors,
                    depth: 0,
                    enqueued: Instant::now(),
                });
                let id = pending.id.clone();
                if !admission.offer_batch(config.queue_capacity, pending) {
                    admission.push_event(Event::Shed { id, reason: ShedReason::QueueFull });
                }
            }
            (Ok(Frame::End), None) => {
                admission
                    .push_event(Event::LineError { line: lineno, error: ProtocolError::StrayEnd });
            }
            (Err(error), Some(batch)) => batch.errors.push((lineno, error)),
            (Err(error), None) => admission.push_event(Event::LineError { line: lineno, error }),
        }
    }
    let truncated = open.take().map(|b| (b.id, b.query_lines));
    admission.push_event(Event::Eof { truncated });
}

/// Runs a serving session to EOF: reads protocol lines from `input`,
/// serves batches over `index`, writes reply lines to `out`.
///
/// The returned summary matches the final `bye` line.  The only errors
/// that escape are I/O errors on `out` — input garbage, query panics,
/// deadline overruns, and overload all stay inside the session as reply
/// lines.  `faults` injects test-only failures into every batch
/// ([`FaultPlan::none`] in production).
pub fn serve_session<'i, P, I, R, W>(
    index: &'i I,
    dim: usize,
    input: R,
    out: &mut W,
    config: &SessionConfig,
    faults: &FaultPlan,
) -> io::Result<SessionSummary>
where
    P: ?Sized + Sync,
    Vec<f64>: Borrow<P>,
    I: ProximityIndex<P, Dist = F64Dist>,
    I::Searcher<'i>: ApproxSearcher<P>,
    R: BufRead + Send,
    W: Write + ?Sized,
{
    let parser = LineParser::new(dim);
    let admission = Admission::new();
    writeln!(
        out,
        "ready dim={dim} threads={} queue={} max-batch={}",
        config.threads, config.queue_capacity, config.max_batch
    )?;
    out.flush()?;

    crossbeam::thread::scope(|scope| {
        scope.spawn(|_| read_input(input, &parser, config, &admission));
        serve_events(index, out, config, faults, &admission)
    })
    // dplint: allow(panic-boundary, reason = "scope Err means the reader thread
    // itself panicked; it runs only the total parser and lock-free pushes, and
    // with the reader gone no reply stream can be produced — nothing to serve
    // around")
    .expect("serve session scope failed")
}

/// The single-writer serving loop: pops events, serves batches, writes
/// replies in event order.
fn serve_events<'i, P, I, W>(
    index: &'i I,
    out: &mut W,
    config: &SessionConfig,
    faults: &FaultPlan,
    admission: &Admission,
) -> io::Result<SessionSummary>
where
    P: ?Sized + Sync,
    Vec<f64>: Borrow<P>,
    I: ProximityIndex<P, Dist = F64Dist>,
    I::Searcher<'i>: ApproxSearcher<P>,
    W: Write + ?Sized,
{
    let mut summary = SessionSummary::default();
    loop {
        match admission.next() {
            Event::Batch(batch) => {
                let queued = batch.enqueued.elapsed();
                writeln!(
                    out,
                    "batch {} queries={} depth={} queued_us={}",
                    batch.id,
                    batch.points.len(),
                    batch.depth,
                    queued.as_micros()
                )?;
                for (line, error) in &batch.errors {
                    summary.parse_errors += 1;
                    writeln!(out, "error line={line} {error}")?;
                }
                let options = BatchOptions {
                    threads: config.threads,
                    soft_deadline: batch
                        .deadline_ms
                        .map(Duration::from_millis)
                        .or(config.soft_deadline),
                    degrade_frac: batch.frac.unwrap_or(config.degrade_frac),
                    steal_chunk: config.steal_chunk,
                };
                let report =
                    serve_resilient(index, &batch.points, |i| batch.requests[i], &options, faults);
                admission.batch_done();
                for (i, outcome) in report.outcomes.iter().enumerate() {
                    match outcome {
                        Outcome::Ok((neighbors, stats)) => {
                            summary.ok += 1;
                            write!(out, "ok {i} evals={}", stats.metric_evals)?;
                            for n in neighbors {
                                write!(out, " {}:{}", n.id, n.dist)?;
                            }
                            writeln!(out)?;
                        }
                        Outcome::Degraded { response: (neighbors, stats), frac } => {
                            summary.degraded += 1;
                            write!(
                                out,
                                "ok {i} degraded frac={frac} evals={}",
                                stats.metric_evals
                            )?;
                            for n in neighbors {
                                write!(out, " {}:{}", n.id, n.dist)?;
                            }
                            writeln!(out)?;
                        }
                        Outcome::Failed(err) => {
                            summary.failed += 1;
                            writeln!(out, "failed {i} {}", err.message)?;
                        }
                    }
                }
                summary.batches += 1;
                writeln!(
                    out,
                    "done {} ok={} degraded={} failed={} elapsed_us={}",
                    batch.id,
                    report.outcomes.len() - report.degraded() - report.failed(),
                    report.degraded(),
                    report.failed(),
                    report.elapsed.as_micros()
                )?;
                out.flush()?;
            }
            Event::LineError { line, error } => {
                summary.parse_errors += 1;
                writeln!(out, "error line={line} {error}")?;
                out.flush()?;
            }
            Event::Shed { id, reason } => {
                summary.shed += 1;
                writeln!(out, "shed {id} reason={}", reason.as_str())?;
                out.flush()?;
            }
            Event::Eof { truncated } => {
                if let Some((id, queued)) = truncated {
                    summary.parse_errors += 1;
                    let error = ProtocolError::TruncatedBatch { id, queued };
                    writeln!(out, "error line=eof {error}")?;
                }
                writeln!(
                    out,
                    "bye batches={} queries={} shed={} errors={}",
                    summary.batches,
                    summary.answered() + summary.failed,
                    summary.shed,
                    summary.parse_errors
                )?;
                out.flush()?;
                return Ok(summary);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laesa::PivotSelection;
    use crate::DistPermIndex;
    use dp_metric::L2;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn small_index() -> DistPermIndex<Vec<f64>, L2> {
        let mut rng = StdRng::seed_from_u64(42);
        let pts: Vec<Vec<f64>> =
            (0..100).map(|_| (0..2).map(|_| rng.random::<f64>()).collect()).collect();
        DistPermIndex::build(L2, pts, 5, PivotSelection::MaxMin)
    }

    fn run(input: &str, config: &SessionConfig) -> (String, SessionSummary) {
        let index = small_index();
        let mut out = Vec::new();
        let summary = serve_session::<Vec<f64>, _, _, _>(
            &index,
            2,
            input.as_bytes(),
            &mut out,
            config,
            &FaultPlan::none(),
        )
        .expect("in-memory io");
        (String::from_utf8(out).expect("utf8 replies"), summary)
    }

    #[test]
    fn clean_batch_round_trip() {
        let input = "begin b1\nknn 2 0.5 0.5\nrange 0.4 0.1 0.9\nend\n";
        let (replies, summary) = run(input, &SessionConfig::default());
        assert!(replies.starts_with("ready dim=2 "), "{replies}");
        assert!(replies.contains("batch b1 queries=2 depth=1"), "{replies}");
        assert!(replies.contains("\nok 0 evals="), "{replies}");
        assert!(replies.contains("\nok 1 evals="), "{replies}");
        assert!(replies.contains("done b1 ok=2 degraded=0 failed=0"), "{replies}");
        assert!(replies.contains("bye batches=1 queries=2 shed=0 errors=0"), "{replies}");
        assert_eq!(summary.ok, 2);
        assert_eq!(summary.batches, 1);
    }

    #[test]
    fn garbage_lines_get_error_replies_and_session_survives() {
        let input = "wat\nknn 1 0.5 0.5\nbegin b1\nknn zero 1 2\nknn 1 0.3 0.3\nend\nend\n";
        let (replies, summary) = run(input, &SessionConfig::default());
        // Loose garbage, stray query, in-batch parse error, stray end —
        // all replied, and the valid query still serves.
        assert!(replies.contains("error line=1 unknown verb"), "{replies}");
        assert!(replies.contains("error line=2 query outside begin/end"), "{replies}");
        assert!(replies.contains("error line=4 bad knn k"), "{replies}");
        assert!(replies.contains("error line=7 end without an open batch"), "{replies}");
        assert!(replies.contains("done b1 ok=1"), "{replies}");
        assert!(replies.ends_with("bye batches=1 queries=1 shed=0 errors=4\n"), "{replies}");
        assert_eq!(summary.parse_errors, 4);
        assert_eq!(summary.ok, 1);
    }

    #[test]
    fn truncated_batch_reports_and_says_bye() {
        let input = "begin b1\nknn 1 0.5 0.5\n";
        let (replies, summary) = run(input, &SessionConfig::default());
        assert!(replies.contains("error line=eof input ended inside batch \"b1\""), "{replies}");
        assert!(replies.contains("bye batches=0 queries=0"), "{replies}");
        assert_eq!(summary.batches, 0);
        assert_eq!(summary.parse_errors, 1);
    }

    #[test]
    fn oversized_batch_is_shed() {
        let config = SessionConfig { max_batch: 2, ..SessionConfig::default() };
        let input =
            "begin big\nknn 1 0 0\nknn 1 0 0\nknn 1 0 0\nend\nbegin ok1\nknn 1 0.2 0.2\nend\n";
        let (replies, summary) = run(input, &config);
        assert!(replies.contains("shed big reason=batch-too-large"), "{replies}");
        assert!(replies.contains("done ok1 ok=1"), "{replies}");
        assert_eq!(summary.shed, 1);
        assert_eq!(summary.batches, 1);
    }

    #[test]
    fn per_batch_deadline_degrades() {
        let input = "begin slow deadline-ms=0 frac=0.2\nknn 2 0.5 0.5\nend\n";
        let (replies, summary) = run(input, &SessionConfig::default());
        assert!(replies.contains("ok 0 degraded frac=0.2 evals="), "{replies}");
        assert!(replies.contains("done slow ok=0 degraded=1 failed=0"), "{replies}");
        assert_eq!(summary.degraded, 1);
    }

    #[test]
    fn injected_fault_is_contained() {
        let index = small_index();
        let mut out = Vec::new();
        let input = "begin f\nknn 1 0.1 0.1\nknn 1 0.2 0.2\nend\n";
        let summary = serve_session::<Vec<f64>, _, _, _>(
            &index,
            2,
            input.as_bytes(),
            &mut out,
            &SessionConfig::default(),
            &FaultPlan::none().panic_on(1),
        )
        .expect("in-memory io");
        let replies = String::from_utf8(out).expect("utf8");
        assert!(replies.contains("\nok 0 evals="), "{replies}");
        assert!(replies.contains("failed 1 injected fault at query 1"), "{replies}");
        assert!(replies.contains("done f ok=1 degraded=0 failed=1"), "{replies}");
        assert!(replies.contains("bye batches=1 queries=2"), "{replies}");
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.ok, 1);
    }

    #[test]
    fn explicit_budgeted_query_stays_at_client_budget() {
        let input = "begin b\nknn 2 frac=0.3 0.5 0.5\nend\n";
        let (replies, summary) = run(input, &SessionConfig::default());
        // A client budget is not deadline degradation: the reply is a
        // plain ok.
        assert!(replies.contains("done b ok=1 degraded=0 failed=0"), "{replies}");
        assert_eq!(summary.ok, 1);
    }
}
