//! The resilient work-stealing batch engine.
//!
//! [`serve_resilient`] is the serving loop's workhorse: it dispatches a
//! batch of (possibly heterogeneous) queries to warm per-worker
//! [`crate::Searcher`] sessions via an **atomic-cursor** work queue
//! instead of the contiguous splits of
//! [`crate::serve::query_batch_parallel`].  Workers claim the next
//! `steal_chunk` query indices with one `fetch_add` and go back for
//! more, so a skewed batch — budgeted queries whose per-query cost
//! varies wildly (see "Cardinality of Balls in Permutation Spaces",
//! Dinu & Zara, on why candidate-set sizes spread so far) — cannot
//! strand a worker idle behind a statically assigned heavy chunk.
//!
//! Robustness layers applied per query, in order:
//!
//! 1. **deadline** ([`Deadline`]): expired ⇒ the request downgrades to
//!    its budgeted form at the batch's degrade fraction;
//! 2. **panic isolation** ([`super::isolate`]): the query (and any
//!    injected fault) runs under `catch_unwind`; a panic becomes
//!    [`Outcome::Failed`] and the worker's searcher is rebuilt;
//! 3. **determinism**: outcomes land in query order regardless of which
//!    worker served them, so the zero-fault, no-deadline path returns
//!    responses bit-identical to [`crate::serve::query_batch_parallel`]
//!    at any thread count and any chunk size.

use crate::api::{ApproxSearcher, ProximityIndex};
use crate::serve::deadline::{BatchReport, Deadline, Outcome, ServeRequest};
use crate::serve::isolate::{run_guarded, FaultPlan, QueryError};
use crate::serve::{run_one, run_one_approx, Request, Response};
use std::borrow::Borrow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning and policy knobs for one resiliently served batch.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads (clamped to `[1, queries]`; `<= 1` runs inline).
    pub threads: usize,
    /// Soft deadline after which remaining queries degrade
    /// (`None` = never).
    pub soft_deadline: Option<Duration>,
    /// Scan fraction served once the deadline has expired.
    pub degrade_frac: f64,
    /// Query indices claimed per cursor bump.  1 (the default) gives
    /// the best balance; larger values trade balance for fewer atomic
    /// operations.  `queries.div_ceil(threads)` reproduces contiguous
    /// chunking.
    pub steal_chunk: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self { threads: 1, soft_deadline: None, degrade_frac: 0.25, steal_chunk: 1 }
    }
}

impl BatchOptions {
    /// Default options at `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads, ..Self::default() }
    }

    /// Sets the soft deadline.
    pub fn deadline(mut self, soft: Duration) -> Self {
        self.soft_deadline = Some(soft);
        self
    }

    /// Sets the degrade fraction.
    ///
    /// # Panics
    /// Panics if `frac` is outside `[0, 1]`.
    pub fn degrade(mut self, frac: f64) -> Self {
        // dplint: allow(panic-boundary, reason = "documented precondition on the
        // operator-facing builder, caught at configuration time — never reachable
        // from query traffic, which min-clamps frac in the protocol layer")
        assert!((0.0..=1.0).contains(&frac), "degrade frac must be in [0,1], got {frac}");
        self.degrade_frac = frac;
        self
    }

    /// Sets the steal-chunk size (0 is treated as 1).
    pub fn chunk(mut self, steal_chunk: usize) -> Self {
        self.steal_chunk = steal_chunk;
        self
    }
}

/// Per-batch serving policy shared (immutably) by every worker.
struct BatchContext<'b> {
    deadline: Deadline,
    degrade_frac: f64,
    faults: &'b FaultPlan,
}

/// Serves one query with every robustness layer applied; never panics
/// for query-level failures (index-level failures — a searcher that
/// cannot even be *rebuilt* — still propagate, because nothing can be
/// served without a session).
fn run_resilient_one<'i, P, I>(
    ctx: &BatchContext<'_>,
    index: &'i I,
    searcher: &mut I::Searcher<'i>,
    i: usize,
    query: &P,
    request: ServeRequest<I::Dist>,
) -> Outcome<I::Dist>
where
    P: ?Sized,
    I: ProximityIndex<P>,
    I::Searcher<'i>: ApproxSearcher<P>,
{
    let degraded = ctx.deadline.expired().then(|| request.degraded(ctx.degrade_frac));
    let attempt = run_guarded(|| {
        if !ctx.faults.is_empty() {
            ctx.faults.fire(i);
        }
        match (&degraded, request) {
            (Some(req), _) => run_one_approx(searcher, query, *req),
            (None, ServeRequest::Exact(req)) => run_one(searcher, query, req),
            (None, ServeRequest::Approx(req)) => run_one_approx(searcher, query, req),
        }
    });
    match attempt {
        Ok(response) => match degraded {
            Some(req) => Outcome::Degraded { response, frac: req.frac() },
            None => Outcome::Ok(response),
        },
        Err(message) => {
            // The session's scratch may be mid-mutation; discard it and
            // start the next query from a fresh cursor.
            *searcher = index.searcher();
            Outcome::Failed(QueryError { index: i, message })
        }
    }
}

/// Serves a batch through work-stealing workers with panic isolation
/// and deadline-aware degradation; `request_of(i)` names each query's
/// request, so heterogeneous batches (mixed k-NN/range/budgets) are
/// first-class.
///
/// Outcomes are returned in query order.  With an empty [`FaultPlan`]
/// and no soft deadline every outcome is [`Outcome::Ok`] and the
/// responses are **bit-identical** to
/// [`crate::serve::query_batch_parallel`] /
/// [`crate::serve::query_batch_parallel_approx`] over the same
/// requests, at any thread count and chunk size — enforced by the
/// release-mode robustness suite.
pub fn serve_resilient<'i, P, Q, I, RF>(
    index: &'i I,
    queries: &[Q],
    request_of: RF,
    options: &BatchOptions,
    faults: &FaultPlan,
) -> BatchReport<I::Dist>
where
    P: ?Sized,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
    I::Searcher<'i>: ApproxSearcher<P>,
    RF: Fn(usize) -> ServeRequest<I::Dist> + Sync,
{
    let n = queries.len();
    let start = Instant::now();
    let ctx = BatchContext {
        deadline: Deadline::after(options.soft_deadline),
        degrade_frac: options.degrade_frac,
        faults,
    };
    let workers = options.threads.clamp(1, n.max(1));
    let chunk = options.steal_chunk.max(1);
    let cursor = AtomicUsize::new(0);

    let work = |out: &mut Vec<(usize, Outcome<I::Dist>)>| {
        let mut searcher = index.searcher();
        loop {
            // ordering: Relaxed suffices — the cursor only partitions indices
            // into disjoint claims (fetch_add is atomic at every ordering);
            // no other memory is published through it.  Results flow through
            // the collector mutex and the scope join below, which provide
            // all the happens-before edges the merge needs.
            let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
            if lo >= n {
                break;
            }
            let hi = n.min(lo + chunk);
            for (i, query) in (lo..hi).zip(&queries[lo..hi]) {
                let outcome =
                    run_resilient_one(&ctx, index, &mut searcher, i, query.borrow(), request_of(i));
                out.push((i, outcome));
            }
        }
    };

    let mut tagged: Vec<(usize, Outcome<I::Dist>)> = Vec::with_capacity(n);
    if workers <= 1 {
        work(&mut tagged);
    } else {
        let collected = Mutex::new(&mut tagged);
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|_| {
                        let mut local = Vec::new();
                        work(&mut local);
                        // dplint: allow(panic-boundary, reason = "poison here means a
                        // sibling worker died outside query isolation, which the join
                        // below already escalates; recovering would merge a batch with
                        // silently missing outcomes instead")
                        collected.lock().expect("collector lock").extend(local);
                    })
                })
                .collect();
            for h in handles {
                // Query panics are caught inside the worker; a join
                // failure means the *index* could not produce a session,
                // which nothing downstream could serve around.
                // dplint: allow(panic-boundary, reason = "join Err means
                // index.searcher() itself panicked — no session can exist, so
                // per-query isolation has nothing left to contain")
                h.join().expect("serving worker died outside query isolation");
            }
        })
        // dplint: allow(panic-boundary, reason = "scope Err repeats the join
        // escalation above: a worker died before reaching query isolation")
        .expect("serving scope failed");
    }

    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(tagged.iter().enumerate().all(|(pos, &(i, _))| pos == i));
    // dplint: allow(panic-boundary, reason = "totality guard: the engine's own
    // contract is one outcome per query — a miscount is a bug in this function,
    // not servable input, and must not reach clients as a silent short batch")
    assert_eq!(tagged.len(), n, "every query must produce exactly one outcome");
    let outcomes = tagged.into_iter().map(|(_, o)| o).collect();
    BatchReport { outcomes, elapsed: start.elapsed() }
}

/// [`crate::serve::query_batch_parallel`] with work-stealing instead of
/// contiguous chunks: bit-identical responses, better balance on skewed
/// batches.  Requires the index's budgeted surface because it shares
/// the resilient engine (panics propagate — use [`serve_resilient`] for
/// isolation).
pub fn query_batch_stealing<'i, P, Q, I>(
    index: &'i I,
    queries: &[Q],
    request: Request<I::Dist>,
    threads: usize,
) -> Vec<Response<I::Dist>>
where
    P: ?Sized,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
    I::Searcher<'i>: ApproxSearcher<P>,
{
    let report = serve_resilient(
        index,
        queries,
        |_| ServeRequest::Exact(request),
        &BatchOptions::with_threads(threads),
        &FaultPlan::none(),
    );
    match report.ok_responses() {
        Some(responses) => responses,
        None => {
            // dplint: allow(panic-boundary, reason = "query_batch_stealing is the
            // documented non-isolated wrapper: its contract is to re-raise the
            // first query panic, exactly like query_batch_parallel")
            let first = report.outcomes.iter().find_map(Outcome::error).expect("a failed query");
            // dplint: allow(panic-boundary, reason = "same contract: re-raise the
            // first query panic for the non-isolated wrapper")
            panic!("{first}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laesa::PivotSelection;
    use crate::serve::{query_batch_parallel, query_batch_parallel_approx, ApproxRequest};
    use crate::DistPermIndex;
    use dp_metric::L2;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn stealing_matches_contiguous_bit_for_bit() {
        let pts = random_points(300, 3, 1);
        let idx = DistPermIndex::build(L2, pts, 8, PivotSelection::MaxMin);
        let queries = random_points(29, 3, 2);
        let request = Request::Knn { k: 4 };
        let baseline = query_batch_parallel(&idx, &queries, request, 2);
        for threads in [1usize, 2, 5, 64] {
            for chunk in [1usize, 3, 29, 1000] {
                let report = serve_resilient(
                    &idx,
                    &queries,
                    |_| ServeRequest::Exact(request),
                    &BatchOptions::with_threads(threads).chunk(chunk),
                    &FaultPlan::none(),
                );
                assert_eq!(
                    report.ok_responses().expect("clean batch"),
                    baseline,
                    "threads={threads} chunk={chunk}"
                );
            }
            assert_eq!(query_batch_stealing(&idx, &queries, request, threads), baseline);
        }
    }

    #[test]
    fn injected_panics_become_failed_outcomes() {
        let pts = random_points(200, 2, 3);
        let idx = DistPermIndex::build(L2, pts, 6, PivotSelection::MaxMin);
        let queries = random_points(17, 2, 4);
        let request = Request::Knn { k: 2 };
        let baseline = query_batch_parallel(&idx, &queries, request, 1);
        let faults = FaultPlan::none().panic_on_all([0, 7, 16]);
        for threads in [1usize, 3] {
            let report = serve_resilient(
                &idx,
                &queries,
                |_| ServeRequest::Exact(request),
                &BatchOptions::with_threads(threads),
                &faults,
            );
            assert_eq!(report.failed(), 3);
            for (i, outcome) in report.outcomes.iter().enumerate() {
                if [0, 7, 16].contains(&i) {
                    let err = outcome.error().expect("failed slot");
                    assert_eq!(err.index, i);
                    assert!(err.message.contains("injected fault"), "{err}");
                } else {
                    assert_eq!(outcome.response().expect("served"), &baseline[i], "query {i}");
                }
            }
        }
    }

    #[test]
    fn expired_deadline_degrades_every_query() {
        let pts = random_points(400, 3, 5);
        let idx = DistPermIndex::build(L2, pts, 8, PivotSelection::MaxMin);
        let queries = random_points(13, 3, 6);
        let request = Request::Knn { k: 3 };
        // Deadline already expired at dispatch: every query downgrades
        // to the budgeted path, deterministically.
        let options = BatchOptions::with_threads(2).deadline(Duration::ZERO).degrade(0.2);
        let report = serve_resilient(
            &idx,
            &queries,
            |_| ServeRequest::Exact(request),
            &options,
            &FaultPlan::none(),
        );
        assert_eq!(report.degraded(), queries.len());
        let expected =
            query_batch_parallel_approx(&idx, &queries, ApproxRequest::Knn { k: 3, frac: 0.2 }, 1);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            match outcome {
                Outcome::Degraded { response, frac } => {
                    assert_eq!(*frac, 0.2);
                    assert_eq!(response, &expected[i], "query {i}");
                }
                other => panic!("query {i}: expected degraded, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let pts = random_points(50, 2, 7);
        let idx = DistPermIndex::build(L2, pts, 4, PivotSelection::MaxMin);
        let queries: Vec<Vec<f64>> = Vec::new();
        let report = serve_resilient(
            &idx,
            &queries,
            |_| ServeRequest::Exact(Request::Knn { k: 1 }),
            &BatchOptions::with_threads(8),
            &FaultPlan::none(),
        );
        assert!(report.outcomes.is_empty());
        assert_eq!(report.ok_responses(), Some(Vec::new()));
    }

    #[test]
    fn heterogeneous_requests_serve_per_query() {
        let pts = random_points(150, 2, 8);
        let idx = DistPermIndex::build(L2, pts, 5, PivotSelection::MaxMin);
        let queries = random_points(6, 2, 9);
        let requests: Vec<ServeRequest<_>> = (0..queries.len())
            .map(|i| {
                if i % 2 == 0 {
                    ServeRequest::Exact(Request::Knn { k: 1 + i })
                } else {
                    ServeRequest::Approx(ApproxRequest::Knn { k: 2, frac: 0.3 })
                }
            })
            .collect();
        let report = serve_resilient(
            &idx,
            &queries,
            |i| requests[i],
            &BatchOptions::with_threads(3),
            &FaultPlan::none(),
        );
        for (i, outcome) in report.outcomes.iter().enumerate() {
            let (neighbors, stats) = outcome.response().expect("served");
            let (expected, expected_stats) = match requests[i] {
                ServeRequest::Exact(Request::Knn { k }) => idx.query_knn(&queries[i], k),
                ServeRequest::Approx(ApproxRequest::Knn { k, frac }) => {
                    use crate::api::ApproxIndex;
                    idx.query_knn_approx(&queries[i], k, frac)
                }
                _ => unreachable!(),
            };
            assert_eq!(neighbors, &expected, "query {i}");
            assert_eq!(stats, &expected_stats, "query {i}");
        }
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn strict_stealing_wrapper_propagates_failures() {
        // query_batch_stealing has no isolation surface: a failure in
        // the underlying engine must surface as a panic, not silently
        // drop a query.
        let pts = random_points(40, 2, 10);
        let idx = DistPermIndex::build(L2, pts, 4, PivotSelection::MaxMin);
        let queries = random_points(3, 2, 11);
        let report = serve_resilient(
            &idx,
            &queries,
            |_| ServeRequest::Exact(Request::Knn { k: 1 }),
            &BatchOptions::default(),
            &FaultPlan::none().panic_on(1),
        );
        // Simulate the wrapper's unwrap on a faulted report.
        if report.ok_responses().is_none() {
            let first = report.outcomes.iter().find_map(Outcome::error).expect("failed");
            panic!("{first}");
        }
    }
}
