//! Batch query serving over any [`ProximityIndex`].
//!
//! The serving model is the one the trait family was shaped for: the
//! index is built once and shared (`Sync`), each worker owns one
//! [`Searcher`] session, and a batch of queries is partitioned into
//! contiguous chunks — one per worker — so the output order is
//! **deterministic** and [`query_batch_parallel`] returns bit-identical
//! results (and stats) to sequential [`query_batch`].  That equivalence
//! holds because a reused searcher answers exactly like a fresh one,
//! which the cross-crate property suite enforces for every index type.
//!
//! Workers are crossbeam-style scoped threads, so queries may borrow
//! from the caller's stack and no `'static` bounds infect the API.
//!
//! # Serving & failure model
//!
//! The strict batch API above is one-shot: a panicking query or one
//! slow skewed query takes the whole batch with it.  The submodules
//! layer a fault-tolerant serving subsystem on top, used by
//! `distperm serve`:
//!
//! - [`steal`] — [`serve_resilient`]: the work-stealing engine.
//!   Workers claim query indices off an atomic cursor (default chunk 1)
//!   instead of contiguous splits, so a skewed budgeted batch cannot
//!   strand workers idle; outcomes are merged back into query order, so
//!   the zero-fault, no-deadline path stays **bit-identical** to
//!   [`query_batch_parallel`] at any thread count.
//! - [`isolate`] — panic isolation: each query runs under
//!   `catch_unwind`; a panic becomes a structured [`QueryError`] in
//!   that query's slot and the worker's searcher is rebuilt.  The
//!   test-only [`FaultPlan`] injects panics and delays to prove it.
//! - [`deadline`] — graceful degradation: past a batch's soft deadline,
//!   remaining exact queries downgrade to budgeted queries at the
//!   configured fraction, flagged [`Outcome::Degraded`] with the
//!   fraction served.  Degradation never raises a client's own budget.
//! - [`protocol`] — the line-delimited request protocol: a typed,
//!   panic-free parser whose errors are per-line replies, so a session
//!   survives arbitrary garbage input.
//! - [`session`] — the serving loop: a bounded admission queue
//!   (explicit `shed` replies once full — backpressure is visible, not
//!   silent), a reader thread, and per-batch accounting
//!   ([`SessionSummary`]).

pub mod deadline;
pub mod isolate;
pub mod protocol;
pub mod session;
pub mod steal;

pub use deadline::{BatchReport, Deadline, Outcome, ServeRequest};
pub use isolate::{FaultPlan, QueryError};
pub use protocol::{Frame, LineParser, ProtocolError, QueryKind};
pub use session::{serve_session, SessionConfig, SessionSummary};
pub use steal::{query_batch_stealing, serve_resilient, BatchOptions};

use crate::api::{ApproxSearcher, ProximityIndex, Searcher};
use crate::query::{Neighbor, QueryStats};
use std::borrow::Borrow;

/// One batched query request, applied to every query point in the batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request<D> {
    /// Exact k nearest neighbours.
    Knn {
        /// Number of neighbours.
        k: usize,
    },
    /// Exact range query (inclusive radius).
    Range {
        /// Search radius.
        radius: D,
    },
}

/// One batched *budgeted* query request (see [`ApproxSearcher`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApproxRequest<D> {
    /// Budgeted k-NN over the `frac` most similar database fraction.
    Knn {
        /// Number of neighbours.
        k: usize,
        /// Scan budget in `[0, 1]`; `1.0` is exact.
        frac: f64,
    },
    /// Budgeted range query over the `frac` most similar fraction.
    Range {
        /// Search radius.
        radius: D,
        /// Scan budget in `[0, 1]`; `1.0` is exact.
        frac: f64,
    },
}

impl<D> ApproxRequest<D> {
    /// The request's scan budget in `[0, 1]`.
    pub fn frac(&self) -> f64 {
        match self {
            ApproxRequest::Knn { frac, .. } | ApproxRequest::Range { frac, .. } => *frac,
        }
    }
}

/// One query's answer: neighbours plus the query's own cost stats.
pub type Response<D> = (Vec<Neighbor<D>>, QueryStats);

/// Sums the metric-evaluation stats of a batch of responses.
pub fn total_stats<D>(responses: &[Response<D>]) -> QueryStats {
    responses.iter().map(|(_, s)| *s).sum()
}

pub(crate) fn run_one<P: ?Sized, S: Searcher<P>>(
    searcher: &mut S,
    query: &P,
    request: Request<S::Dist>,
) -> Response<S::Dist> {
    match request {
        Request::Knn { k } => searcher.knn(query, k),
        Request::Range { radius } => searcher.range(query, radius),
    }
}

pub(crate) fn run_one_approx<P: ?Sized, S: ApproxSearcher<P>>(
    searcher: &mut S,
    query: &P,
    request: ApproxRequest<S::Dist>,
) -> Response<S::Dist> {
    match request {
        ApproxRequest::Knn { k, frac } => searcher.knn_approx(query, k, frac),
        ApproxRequest::Range { radius, frac } => searcher.range_approx(query, radius, frac),
    }
}

/// Splits `n` queries into at most `threads` contiguous chunks of
/// near-equal size; returns the chunk length (0 for an empty batch).
///
/// The worker count is clamped to `max(1, min(threads, n))`: `threads`
/// = 0 serves sequentially, and `threads` > n spawns exactly n workers —
/// never an empty chunk, so oversubscribed batches cannot panic a
/// serving worker (and, by the chunks-in-order construction, results
/// stay bit-identical under the clamp).
fn chunk_len(n: usize, threads: usize) -> usize {
    let workers = threads.clamp(1, n.max(1));
    n.div_ceil(workers)
}

/// The one serving engine behind all four public entry points: splits
/// the batch into contiguous chunks, runs `serve_one` on each query
/// through a per-worker searcher, and concatenates chunk results in
/// order.  `threads <= 1` (or a single query) runs inline without
/// spawning.
fn serve_chunks<'i, P, Q, I, F>(
    index: &'i I,
    queries: &[Q],
    threads: usize,
    serve_one: F,
) -> Vec<Response<I::Dist>>
where
    P: ?Sized,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
    F: Fn(&mut I::Searcher<'i>, &P) -> Response<I::Dist> + Sync,
{
    if threads <= 1 || queries.len() <= 1 {
        let mut searcher = index.searcher();
        return queries.iter().map(|q| serve_one(&mut searcher, q.borrow())).collect();
    }
    let chunk = chunk_len(queries.len(), threads);
    let serve_one = &serve_one;
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    let mut searcher = index.searcher();
                    part.iter().map(|q| serve_one(&mut searcher, q.borrow())).collect::<Vec<_>>()
                })
            })
            .collect();
        // dplint: allow(panic-boundary, reason = "query_batch_parallel is the
        // documented strict engine: a query panic propagates to the caller,
        // exactly like the sequential path; serve_resilient is the isolated one")
        handles.into_iter().flat_map(|h| h.join().expect("serving worker panicked")).collect()
    })
    // dplint: allow(panic-boundary, reason = "same strict-engine contract: the
    // scope Err re-raises a worker panic the join above already surfaced")
    .expect("serving scope failed")
}

/// Serves a batch of queries sequentially through one reused searcher.
///
/// Queries are anything that borrows as the index's point type — e.g.
/// `Vec<f64>` rows against a `ProximityIndex<[f64]>`.
pub fn query_batch<P, Q, I>(
    index: &I,
    queries: &[Q],
    request: Request<I::Dist>,
) -> Vec<Response<I::Dist>>
where
    P: ?Sized,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
{
    serve_chunks(index, queries, 1, |searcher, q| run_one(searcher, q, request))
}

/// [`query_batch`] for budgeted queries.
pub fn query_batch_approx<'i, P, Q, I>(
    index: &'i I,
    queries: &[Q],
    request: ApproxRequest<I::Dist>,
) -> Vec<Response<I::Dist>>
where
    P: ?Sized,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
    I::Searcher<'i>: ApproxSearcher<P>,
{
    serve_chunks(index, queries, 1, |searcher, q| run_one_approx(searcher, q, request))
}

/// Serves a batch of queries on `threads` scoped worker threads, one
/// searcher per worker, returning results in query order.
///
/// Bit-identical to [`query_batch`] — same answers, same per-query
/// stats — regardless of the thread count; `threads <= 1` runs
/// sequentially without spawning.
pub fn query_batch_parallel<P, Q, I>(
    index: &I,
    queries: &[Q],
    request: Request<I::Dist>,
    threads: usize,
) -> Vec<Response<I::Dist>>
where
    P: ?Sized,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
{
    serve_chunks(index, queries, threads, |searcher, q| run_one(searcher, q, request))
}

/// [`query_batch_parallel`] for budgeted queries.
pub fn query_batch_parallel_approx<'i, P, Q, I>(
    index: &'i I,
    queries: &[Q],
    request: ApproxRequest<I::Dist>,
    threads: usize,
) -> Vec<Response<I::Dist>>
where
    P: ?Sized,
    Q: Borrow<P> + Sync,
    I: ProximityIndex<P>,
    I::Searcher<'i>: ApproxSearcher<P>,
{
    serve_chunks(index, queries, threads, |searcher, q| run_one_approx(searcher, q, request))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laesa::PivotSelection;
    use crate::{DistPermIndex, FlatDistPermIndex, LinearScan, VpTree};
    use dp_datasets::VectorSet;
    use dp_metric::{F64Dist, L2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn parallel_matches_sequential_on_vptree() {
        let pts = random_points(300, 3, 1);
        let tree = VpTree::build(L2, pts);
        let queries = random_points(37, 3, 2);
        let seq = query_batch(&tree, &queries, Request::Knn { k: 3 });
        for threads in [2usize, 3, 8, 64] {
            let par = query_batch_parallel(&tree, &queries, Request::Knn { k: 3 }, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn range_requests_match_linear_scan() {
        let pts = random_points(200, 2, 3);
        let scan = LinearScan::new(L2, pts);
        let queries = random_points(11, 2, 4);
        let radius = F64Dist::new(0.3);
        let out = query_batch_parallel(&scan, &queries, Request::Range { radius }, 4);
        assert_eq!(out.len(), queries.len());
        for (q, (neighbors, stats)) in queries.iter().zip(&out) {
            assert_eq!(neighbors, &scan.range(q, radius));
            assert_eq!(stats.metric_evals, 200);
        }
        assert_eq!(total_stats(&out).metric_evals, 200 * 11);
    }

    #[test]
    fn flat_index_serves_vector_rows() {
        let nested = random_points(400, 4, 5);
        let flat = VectorSet::from_nested(&nested);
        let idx = FlatDistPermIndex::build(L2, flat, 8, PivotSelection::MaxMin, 1);
        let queries = VectorSet::from_nested(&random_points(23, 4, 6));
        let rows: Vec<&[f64]> = queries.rows().collect();
        let seq = query_batch::<[f64], _, _>(&idx, &rows, Request::Knn { k: 2 });
        let par = query_batch_parallel::<[f64], _, _>(&idx, &rows, Request::Knn { k: 2 }, 5);
        assert_eq!(seq, par);
        assert_eq!(seq.len(), 23);
        // k sites + full scan per exact query.
        assert_eq!(seq[0].1, QueryStats::new(8 + 400));
    }

    #[test]
    fn approx_serving_matches_one_shot_sessions() {
        let pts = random_points(500, 3, 7);
        let idx = DistPermIndex::build(L2, pts, 10, PivotSelection::MaxMin);
        let queries = random_points(19, 3, 8);
        let req = ApproxRequest::Knn { k: 3, frac: 0.1 };
        let seq = query_batch_approx(&idx, &queries, req);
        let par = query_batch_parallel_approx(&idx, &queries, req, 3);
        assert_eq!(seq, par);
        for (q, (neighbors, stats)) in queries.iter().zip(&seq) {
            assert_eq!(neighbors, &idx.knn_approx(q, 3, 0.1));
            assert_eq!(*stats, QueryStats::new(10 + 50));
        }
    }

    #[test]
    fn empty_batch_and_oversubscribed_threads() {
        let pts = random_points(50, 2, 9);
        let tree = VpTree::build(L2, pts);
        let none: Vec<Vec<f64>> = Vec::new();
        assert!(query_batch_parallel(&tree, &none, Request::Knn { k: 1 }, 8).is_empty());
        let one = random_points(1, 2, 10);
        let out = query_batch_parallel(&tree, &one, Request::Knn { k: 1 }, 8);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn worker_clamp_keeps_results_bit_identical() {
        // Regression suite for the worker-count clamp: threads = 0,
        // threads > queries, and absurd oversubscription must all return
        // exactly the sequential answers and stats, for both the exact
        // and the budgeted serving surfaces.
        let pts = random_points(120, 3, 12);
        let flat = VectorSet::from_nested(&pts);
        let idx = FlatDistPermIndex::build(L2, flat, 6, PivotSelection::MaxMin, 1);
        for nq in [0usize, 1, 2, 7] {
            let queries = random_points(nq, 3, 13 + nq as u64);
            let rows: Vec<&[f64]> = queries.iter().map(Vec::as_slice).collect();
            let seq = query_batch::<[f64], _, _>(&idx, &rows, Request::Knn { k: 3 });
            let approx_req = ApproxRequest::Knn { k: 3, frac: 0.4 };
            let seq_approx = query_batch_approx::<[f64], _, _>(&idx, &rows, approx_req);
            for threads in [0usize, 1, nq, nq + 1, 1000] {
                let par = query_batch_parallel::<[f64], _, _>(
                    &idx,
                    &rows,
                    Request::Knn { k: 3 },
                    threads,
                );
                assert_eq!(par, seq, "exact: {nq} queries, {threads} threads");
                let par_approx =
                    query_batch_parallel_approx::<[f64], _, _>(&idx, &rows, approx_req, threads);
                assert_eq!(par_approx, seq_approx, "approx: {nq} queries, {threads} threads");
            }
        }
    }

    #[test]
    fn chunk_len_never_produces_empty_chunks() {
        for n in [0usize, 1, 2, 5, 64] {
            for threads in [0usize, 1, 2, n, n + 1, 1000] {
                let chunk = chunk_len(n, threads);
                if n == 0 {
                    assert_eq!(chunk, 0);
                    continue;
                }
                assert!(chunk >= 1, "n={n} threads={threads}");
                // At most `threads.max(1)` chunks, each non-empty.
                let chunks = n.div_ceil(chunk);
                assert!(chunks <= threads.max(1).min(n));
                assert!(chunk * chunks >= n);
            }
        }
    }

    #[test]
    fn sessions_are_send() {
        fn assert_send<T: Send>(_: T) {}
        let pts = random_points(20, 2, 11);
        let tree = VpTree::build(L2, pts.clone());
        assert_send(tree.searcher());
        let idx = DistPermIndex::build(L2, pts, 4, PivotSelection::Prefix);
        assert_send(idx.searcher());
    }
}
