//! The line-delimited serving protocol and its panic-free parser.
//!
//! Requests arrive as text lines; the session groups them into batches:
//!
//! ```text
//! begin b1 deadline-ms=50 frac=0.25
//! knn 3 0.1 0.2 0.8
//! range 0.5 0.0 0.0 0.0
//! end
//! ```
//!
//! - `begin <id> [deadline-ms=<u64>] [frac=<f64>]` opens a batch;
//! - `knn <k> <coord…>` / `range <radius> <coord…>` queue queries, with
//!   optional `frac=<f64>` *before* the coordinates for an explicitly
//!   budgeted query;
//! - `end` dispatches the batch;
//! - blank lines and `# comments` are ignored; CRLF line endings are
//!   tolerated.
//!
//! The parser is **total**: every input line maps to a [`Frame`] or a
//! typed [`ProtocolError`], never a panic — the hardening layer that
//! lets a session survive arbitrary garbage with a per-line `error`
//! reply instead of dying.  Oversized lines are rejected by length
//! before any token is inspected, bounding per-line work.

use std::fmt;

/// Limits enforced by the parser, line by line.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 16;

/// One query's shape inside a protocol batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// `knn <k> …`: k nearest neighbours.
    Knn {
        /// Number of neighbours (validated nonzero).
        k: usize,
    },
    /// `range <radius> …`: all points within `radius`.
    Range {
        /// Search radius (validated finite and nonnegative).
        radius: f64,
    },
}

/// One successfully parsed protocol line.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// `begin <id> [deadline-ms=..] [frac=..]`.
    Begin {
        /// Client-chosen batch id (echoed in replies).
        id: String,
        /// Optional per-batch soft deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Optional per-batch degrade fraction override.
        frac: Option<f64>,
    },
    /// `knn …` / `range …`.
    Query {
        /// The query's shape.
        kind: QueryKind,
        /// Explicit scan budget (`frac=`), if the client asked for a
        /// budgeted answer.
        frac: Option<f64>,
        /// The query point.
        point: Vec<f64>,
    },
    /// `end`: dispatch the open batch.
    End,
    /// A blank or comment line: nothing to do.
    Blank,
}

/// Every way a protocol line or session can be malformed.  `Display`
/// renders the one-line diagnostic sent back to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Line exceeded the parser's byte limit.
    OversizedLine {
        /// Observed length.
        len: usize,
        /// Configured limit.
        max: usize,
    },
    /// First token is not a known verb.
    UnknownVerb(String),
    /// A required token is absent (e.g. `begin` without an id).
    Missing(&'static str),
    /// A numeric token failed to parse.
    BadNumber {
        /// What the token was supposed to be.
        what: &'static str,
        /// The offending token.
        token: String,
    },
    /// A query point's dimensionality does not match the index.
    WrongDim {
        /// Coordinates supplied.
        got: usize,
        /// Index dimensionality.
        want: usize,
    },
    /// A scan fraction outside `[0, 1]`.
    BadFrac(String),
    /// `knn 0 …`: zero neighbours requested.
    BadKnnK,
    /// A radius that is negative or not finite.
    BadRadius(String),
    /// An unrecognised `key=value` option.
    BadOption(String),
    /// The same option given twice.
    DuplicateOption(&'static str),
    /// Unexpected tokens after a complete frame (e.g. `end now`).
    Trailing(String),
    /// `begin` while a batch is already open.
    NestedBegin,
    /// A query line outside `begin`/`end`.
    StrayQuery,
    /// `end` without an open batch.
    StrayEnd,
    /// Input ended inside an open batch.
    TruncatedBatch {
        /// Id of the batch left open.
        id: String,
        /// Queries queued when input ended.
        queued: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::OversizedLine { len, max } => {
                write!(f, "line too long ({len} bytes, max {max})")
            }
            ProtocolError::UnknownVerb(verb) => {
                write!(f, "unknown verb {verb:?} (expected begin/knn/range/end)")
            }
            ProtocolError::Missing(what) => write!(f, "missing {what}"),
            ProtocolError::BadNumber { what, token } => {
                write!(f, "bad {what}: {token:?}")
            }
            ProtocolError::WrongDim { got, want } => {
                write!(f, "wrong dimensionality: got {got} coordinates, index has {want}")
            }
            ProtocolError::BadFrac(token) => {
                write!(f, "bad frac {token:?} (need a finite value in [0,1])")
            }
            ProtocolError::BadKnnK => write!(f, "knn k must be at least 1"),
            ProtocolError::BadRadius(token) => {
                write!(f, "bad radius {token:?} (need a finite nonnegative value)")
            }
            ProtocolError::BadOption(opt) => write!(f, "unknown option {opt:?}"),
            ProtocolError::DuplicateOption(opt) => write!(f, "duplicate option {opt}"),
            ProtocolError::Trailing(tok) => write!(f, "unexpected trailing token {tok:?}"),
            ProtocolError::NestedBegin => write!(f, "begin inside an open batch"),
            ProtocolError::StrayQuery => write!(f, "query outside begin/end"),
            ProtocolError::StrayEnd => write!(f, "end without an open batch"),
            ProtocolError::TruncatedBatch { id, queued } => {
                write!(f, "input ended inside batch {id:?} ({queued} queries queued)")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Line parser for a session against an index of `dim`-dimensional
/// points.
#[derive(Debug, Clone, Copy)]
pub struct LineParser {
    /// Dimensionality every query point must match.
    pub dim: usize,
    /// Per-line byte limit ([`DEFAULT_MAX_LINE_BYTES`] by default).
    pub max_line_bytes: usize,
}

fn parse_frac(token: &str) -> Result<f64, ProtocolError> {
    let frac: f64 = token.parse().map_err(|_| ProtocolError::BadFrac(token.to_string()))?;
    if frac.is_finite() && (0.0..=1.0).contains(&frac) {
        Ok(frac)
    } else {
        Err(ProtocolError::BadFrac(token.to_string()))
    }
}

fn set_once<T>(slot: &mut Option<T>, value: T, name: &'static str) -> Result<(), ProtocolError> {
    if slot.is_some() {
        return Err(ProtocolError::DuplicateOption(name));
    }
    *slot = Some(value);
    Ok(())
}

impl LineParser {
    /// A parser for `dim`-dimensional query points with the default
    /// line-length limit.
    pub fn new(dim: usize) -> Self {
        Self { dim, max_line_bytes: DEFAULT_MAX_LINE_BYTES }
    }

    /// Parses one raw input line (CR/LF already or not yet stripped —
    /// both accepted).  Total: never panics.
    pub fn parse(&self, raw: &str) -> Result<Frame, ProtocolError> {
        if raw.len() > self.max_line_bytes {
            return Err(ProtocolError::OversizedLine { len: raw.len(), max: self.max_line_bytes });
        }
        let line = raw.trim_end_matches(['\r', '\n']).trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(Frame::Blank);
        }
        let mut tokens = line.split_ascii_whitespace();
        // Total even if the emptiness check above ever drifts: no first
        // token is just a blank line.
        let Some(verb) = tokens.next() else {
            return Ok(Frame::Blank);
        };
        match verb {
            "begin" => self.parse_begin(tokens),
            "knn" => {
                let token = tokens.next().ok_or(ProtocolError::Missing("knn k"))?;
                let k: usize = token.parse().map_err(|_| ProtocolError::BadNumber {
                    what: "knn k",
                    token: token.to_string(),
                })?;
                if k == 0 {
                    return Err(ProtocolError::BadKnnK);
                }
                self.parse_query(QueryKind::Knn { k }, tokens)
            }
            "range" => {
                let token = tokens.next().ok_or(ProtocolError::Missing("range radius"))?;
                let radius: f64 = token.parse().map_err(|_| ProtocolError::BadNumber {
                    what: "range radius",
                    token: token.to_string(),
                })?;
                if !radius.is_finite() || radius < 0.0 {
                    return Err(ProtocolError::BadRadius(token.to_string()));
                }
                self.parse_query(QueryKind::Range { radius }, tokens)
            }
            "end" => match tokens.next() {
                None => Ok(Frame::End),
                Some(tok) => Err(ProtocolError::Trailing(tok.to_string())),
            },
            other => Err(ProtocolError::UnknownVerb(other.to_string())),
        }
    }

    fn parse_begin<'a>(
        &self,
        mut tokens: impl Iterator<Item = &'a str>,
    ) -> Result<Frame, ProtocolError> {
        let id = tokens.next().ok_or(ProtocolError::Missing("batch id"))?.to_string();
        let mut deadline_ms = None;
        let mut frac = None;
        for tok in tokens {
            if let Some(value) = tok.strip_prefix("deadline-ms=") {
                let ms: u64 = value.parse().map_err(|_| ProtocolError::BadNumber {
                    what: "deadline-ms",
                    token: value.to_string(),
                })?;
                set_once(&mut deadline_ms, ms, "deadline-ms")?;
            } else if let Some(value) = tok.strip_prefix("frac=") {
                set_once(&mut frac, parse_frac(value)?, "frac")?;
            } else {
                return Err(ProtocolError::BadOption(tok.to_string()));
            }
        }
        Ok(Frame::Begin { id, deadline_ms, frac })
    }

    fn parse_query<'a>(
        &self,
        kind: QueryKind,
        tokens: impl Iterator<Item = &'a str>,
    ) -> Result<Frame, ProtocolError> {
        let mut frac = None;
        let mut point = Vec::with_capacity(self.dim);
        for tok in tokens {
            if let Some(value) = tok.strip_prefix("frac=") {
                if !point.is_empty() {
                    // Options live before coordinates; a frac= in the
                    // middle of a point is a malformed coordinate.
                    return Err(ProtocolError::BadNumber {
                        what: "coordinate",
                        token: tok.to_string(),
                    });
                }
                set_once(&mut frac, parse_frac(value)?, "frac")?;
            } else {
                let coord: f64 = tok.parse().map_err(|_| ProtocolError::BadNumber {
                    what: "coordinate",
                    token: tok.to_string(),
                })?;
                if !coord.is_finite() {
                    return Err(ProtocolError::BadNumber {
                        what: "coordinate",
                        token: tok.to_string(),
                    });
                }
                point.push(coord);
            }
        }
        if point.len() != self.dim {
            return Err(ProtocolError::WrongDim { got: point.len(), want: self.dim });
        }
        Ok(Frame::Query { kind, frac, point })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p3() -> LineParser {
        LineParser::new(3)
    }

    #[test]
    fn begin_with_options() {
        assert_eq!(
            p3().parse("begin b1 deadline-ms=50 frac=0.25"),
            Ok(Frame::Begin { id: "b1".into(), deadline_ms: Some(50), frac: Some(0.25) })
        );
        assert_eq!(
            p3().parse("begin q"),
            Ok(Frame::Begin { id: "q".into(), deadline_ms: None, frac: None })
        );
        assert_eq!(p3().parse("begin"), Err(ProtocolError::Missing("batch id")));
        assert_eq!(p3().parse("begin b1 nope=1"), Err(ProtocolError::BadOption("nope=1".into())));
        assert_eq!(
            p3().parse("begin b1 frac=0.1 frac=0.2"),
            Err(ProtocolError::DuplicateOption("frac"))
        );
    }

    #[test]
    fn knn_and_range_queries() {
        assert_eq!(
            p3().parse("knn 3 0.1 0.2 0.8"),
            Ok(Frame::Query {
                kind: QueryKind::Knn { k: 3 },
                frac: None,
                point: vec![0.1, 0.2, 0.8]
            })
        );
        assert_eq!(
            p3().parse("range 0.5 frac=0.3 0 0 0"),
            Ok(Frame::Query {
                kind: QueryKind::Range { radius: 0.5 },
                frac: Some(0.3),
                point: vec![0.0, 0.0, 0.0]
            })
        );
        assert_eq!(p3().parse("knn 0 1 2 3"), Err(ProtocolError::BadKnnK));
        assert_eq!(p3().parse("range -1 0 0 0"), Err(ProtocolError::BadRadius("-1".into())));
        assert_eq!(p3().parse("range nan 0 0 0"), Err(ProtocolError::BadRadius("nan".into())));
        assert_eq!(p3().parse("knn 2 1 2"), Err(ProtocolError::WrongDim { got: 2, want: 3 }));
        assert_eq!(
            p3().parse("knn 2 1 2 inf"),
            Err(ProtocolError::BadNumber { what: "coordinate", token: "inf".into() })
        );
    }

    #[test]
    fn blanks_comments_crlf_and_end() {
        assert_eq!(p3().parse(""), Ok(Frame::Blank));
        assert_eq!(p3().parse("   \t "), Ok(Frame::Blank));
        assert_eq!(p3().parse("# a comment"), Ok(Frame::Blank));
        assert_eq!(p3().parse("end\r\n"), Ok(Frame::End));
        assert_eq!(p3().parse("end"), Ok(Frame::End));
        assert_eq!(p3().parse("end now"), Err(ProtocolError::Trailing("now".into())));
        assert_eq!(
            p3().parse("knn 1 0.5 0.5 0.5\r"),
            Ok(Frame::Query {
                kind: QueryKind::Knn { k: 1 },
                frac: None,
                point: vec![0.5, 0.5, 0.5]
            })
        );
    }

    #[test]
    fn garbage_yields_typed_errors() {
        assert!(matches!(p3().parse("frobnicate 1 2 3"), Err(ProtocolError::UnknownVerb(_))));
        assert!(matches!(
            p3().parse("knn three 1 2 3"),
            Err(ProtocolError::BadNumber { what: "knn k", .. })
        ));
        assert!(matches!(p3().parse("knn"), Err(ProtocolError::Missing("knn k"))));
        assert!(matches!(p3().parse("knn 2 a b c"), Err(ProtocolError::BadNumber { .. })));
        assert!(matches!(p3().parse("begin b frac=2.0"), Err(ProtocolError::BadFrac(_))));
        assert!(matches!(p3().parse("begin b frac=nan"), Err(ProtocolError::BadFrac(_))));
    }

    #[test]
    fn oversized_lines_rejected_before_tokenizing() {
        let parser = LineParser { dim: 3, max_line_bytes: 16 };
        let long = "knn 1 ".to_string() + &"9 ".repeat(50);
        assert_eq!(
            parser.parse(&long),
            Err(ProtocolError::OversizedLine { len: long.len(), max: 16 })
        );
        // At the limit is fine.
        assert!(parser.parse("knn 1 1 2 3").is_ok());
    }

    #[test]
    fn errors_render_one_line_diagnostics() {
        for err in [
            ProtocolError::OversizedLine { len: 99, max: 16 },
            ProtocolError::UnknownVerb("zap".into()),
            ProtocolError::Missing("batch id"),
            ProtocolError::BadNumber { what: "knn k", token: "x".into() },
            ProtocolError::WrongDim { got: 2, want: 3 },
            ProtocolError::BadFrac("7".into()),
            ProtocolError::BadKnnK,
            ProtocolError::BadRadius("-1".into()),
            ProtocolError::BadOption("zz=1".into()),
            ProtocolError::DuplicateOption("frac"),
            ProtocolError::Trailing("now".into()),
            ProtocolError::NestedBegin,
            ProtocolError::StrayQuery,
            ProtocolError::StrayEnd,
            ProtocolError::TruncatedBatch { id: "b".into(), queued: 2 },
        ] {
            let rendered = err.to_string();
            assert!(!rendered.is_empty());
            assert!(!rendered.contains('\n'), "diagnostic must be one line: {rendered:?}");
        }
    }
}
