//! Burkhard–Keller tree for integer-valued metrics.
//!
//! The Table 2 dictionary databases live under Levenshtein distance,
//! whose values are small integers — exactly the setting of the classic
//! BK-tree (Burkhard & Keller 1973): each node stores one element and
//! indexes its children by their *exact distance* to it, so a query at
//! distance d from a node with search radius r can, by the triangle
//! inequality, only have answers under child edges in [d−r, d+r].
//!
//! Included as the discrete-metric baseline alongside the distance-based
//! structures ([`crate::VpTree`], [`crate::GhTree`]): on dictionaries it
//! is the natural comparator for the permutation index's evaluation
//! counts.

use crate::api::{ProximityIndex, Searcher};
use crate::counting::CountingMetric;
use crate::query::{KnnHeap, Neighbor, QueryStats};
use dp_metric::Metric;

#[derive(Debug, Clone)]
struct Node {
    point: usize,
    /// (edge distance to parent’s point, child node index), sorted by edge.
    children: Vec<(u32, u32)>,
}

/// A BK-tree over an owned database with an integer metric.
#[derive(Debug, Clone)]
pub struct BkTree<P, M: Metric<P, Dist = u32>> {
    metric: M,
    points: Vec<P>,
    nodes: Vec<Node>,
}

impl<P, M: Metric<P, Dist = u32>> BkTree<P, M> {
    /// Builds the tree by inserting elements in database order.
    ///
    /// Expected build cost is O(n log n) metric evaluations on
    /// discriminating metrics; duplicate-distance chains degrade towards
    /// O(n²) exactly as in the original structure.
    pub fn build(metric: M, points: Vec<P>) -> Self {
        let mut tree = Self { metric, points, nodes: Vec::new() };
        for i in 0..tree.points.len() {
            tree.insert(i);
        }
        tree
    }

    fn insert(&mut self, point: usize) {
        if self.nodes.is_empty() {
            self.nodes.push(Node { point, children: Vec::new() });
            return;
        }
        let mut at = 0usize;
        loop {
            let d = self.metric.distance(&self.points[self.nodes[at].point], &self.points[point]);
            match self.nodes[at].children.binary_search_by_key(&d, |&(e, _)| e) {
                Ok(pos) => at = self.nodes[at].children[pos].1 as usize,
                Err(pos) => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node { point, children: Vec::new() });
                    self.nodes[at].children.insert(pos, (d, idx));
                    return;
                }
            }
        }
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// A reusable query session: the traversal stack is allocated once
    /// and reused across queries.
    pub fn session(&self) -> BkSearcher<'_, P, M> {
        BkSearcher { index: self, stack: Vec::new() }
    }

    /// All elements within `radius` (inclusive; exact).
    pub fn range(&self, query: &P, radius: u32) -> Vec<Neighbor<u32>> {
        self.session().range(query, radius).0
    }

    /// The k nearest neighbours (exact; identical to a linear scan).
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<u32>> {
        self.session().knn(query, k).0
    }

    fn knn_walk(&self, at: usize, query: &P, heap: &mut KnnHeap<u32>, evals: &mut u64) {
        let node = &self.nodes[at];
        *evals += 1;
        let d = self.metric.distance(&self.points[node.point], query);
        heap.push(node.point, d);
        // Visit children by |edge − d| ascending: likeliest answers first.
        let mut order: Vec<(u32, u32)> =
            node.children.iter().map(|&(e, child)| (e.abs_diff(d), child)).collect();
        order.sort_unstable();
        for (gap, child) in order {
            match heap.bound() {
                Some(b) if gap > b => break,
                _ => self.knn_walk(child as usize, query, heap, evals),
            }
        }
    }

    /// Index storage in bits: one element id plus one (edge, child)
    /// pair per edge — no stored distances to non-parents.
    pub fn storage_bits(&self) -> u64 {
        let edges = self.nodes.iter().map(|n| n.children.len() as u64).sum::<u64>();
        (self.nodes.len() as u64) * 64 + edges * (32 + 32)
    }
}

impl<P, M: Metric<P, Dist = u32>> BkTree<P, CountingMetric<M>> {
    /// Metric evaluations performed since the wrapped counter's last
    /// reset.
    pub fn evaluations(&self) -> u64 {
        self.metric.count()
    }
}

/// Query session over a [`BkTree`].
#[derive(Debug, Clone)]
pub struct BkSearcher<'a, P, M: Metric<P, Dist = u32>> {
    index: &'a BkTree<P, M>,
    stack: Vec<usize>,
}

impl<P, M: Metric<P, Dist = u32>> BkSearcher<'_, P, M> {
    /// The underlying index.
    pub fn index(&self) -> &BkTree<P, M> {
        self.index
    }

    /// Exact k-NN with triangle-inequality edge pruning.
    pub fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<u32>>, QueryStats) {
        let index = self.index;
        if index.nodes.is_empty() || k == 0 {
            return (Vec::new(), QueryStats::default());
        }
        let mut heap = KnnHeap::new(k.min(index.points.len()));
        let mut evals = 0u64;
        // Depth-first with the shrinking k-th-best bound; visiting the
        // closest child edges first tightens the bound early.
        index.knn_walk(0, query, &mut heap, &mut evals);
        (heap.into_sorted(), QueryStats::new(evals))
    }

    /// Exact range query with triangle-inequality edge pruning.
    pub fn range(&mut self, query: &P, radius: u32) -> (Vec<Neighbor<u32>>, QueryStats) {
        let index = self.index;
        let mut out = Vec::new();
        if index.nodes.is_empty() {
            return (out, QueryStats::default());
        }
        let mut evals = 0u64;
        self.stack.clear();
        self.stack.push(0);
        while let Some(at) = self.stack.pop() {
            let node = &index.nodes[at];
            evals += 1;
            let d = index.metric.distance(&index.points[node.point], query);
            if d <= radius {
                out.push(Neighbor { id: node.point, dist: d });
            }
            let lo = d.saturating_sub(radius);
            let hi = d.saturating_add(radius);
            let start = node.children.partition_point(|&(e, _)| e < lo);
            for &(e, child) in &node.children[start..] {
                if e > hi {
                    break;
                }
                self.stack.push(child as usize);
            }
        }
        out.sort_unstable();
        (out, QueryStats::new(evals))
    }
}

impl<P: Sync, M: Metric<P, Dist = u32> + Sync> ProximityIndex<P> for BkTree<P, M> {
    type Dist = u32;
    type Searcher<'s>
        = BkSearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> BkSearcher<'_, P, M> {
        self.session()
    }
}

impl<P: Sync, M: Metric<P, Dist = u32> + Sync> Searcher<P> for BkSearcher<'_, P, M> {
    type Dist = u32;

    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<u32>>, QueryStats) {
        BkSearcher::knn(self, query, k)
    }

    fn range(&mut self, query: &P, radius: u32) -> (Vec<Neighbor<u32>>, QueryStats) {
        BkSearcher::range(self, query, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dp_metric::{Hamming, Levenshtein};

    fn words() -> Vec<String> {
        [
            "book", "books", "boo", "boon", "cook", "cake", "cape", "cart", "care", "case", "cast",
            "cat", "cut", "gut", "hut", "hat", "hot", "hop", "top", "tops", "stop", "stoop",
            "troop", "loop", "look", "lock", "rock", "rack",
        ]
        .map(String::from)
        .to_vec()
    }

    #[test]
    fn range_matches_linear_scan() {
        let db = words();
        let scan = LinearScan::new(Levenshtein, db.clone());
        let tree = BkTree::build(Levenshtein, db);
        for q in ["bock", "tool", "caste", "zzzz", ""] {
            let q = q.to_string();
            for r in 0..=4u32 {
                assert_eq!(tree.range(&q, r), scan.range(&q, r), "q={q} r={r}");
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        let db = words();
        let scan = LinearScan::new(Levenshtein, db.clone());
        let tree = BkTree::build(Levenshtein, db);
        for q in ["bock", "stop", "carrot", ""] {
            let q = q.to_string();
            for k in [1usize, 3, 7] {
                assert_eq!(tree.knn(&q, k), scan.knn(&q, k), "q={q} k={k}");
            }
        }
    }

    #[test]
    fn native_stats_prune_on_small_radii() {
        let db: Vec<String> = (0..800).map(|i| format!("{:06b}{:04}", i % 64, i)).collect();
        let n = db.len() as u64;
        let tree = BkTree::build(Levenshtein, db);
        let (_, stats) = tree.session().range(&"000000zzzz".to_string(), 2);
        assert!(stats.metric_evals < n, "no pruning: {} >= {n}", stats.metric_evals);
    }

    #[test]
    fn native_stats_agree_with_counting_metric() {
        let db = words();
        let tree = BkTree::build(CountingMetric::new(Levenshtein), db);
        for q in ["bock", "stop", ""] {
            let q = q.to_string();
            tree.metric().reset();
            let (_, stats) = tree.session().knn(&q, 3);
            assert_eq!(stats.metric_evals, tree.evaluations());
            tree.metric().reset();
            let (_, stats) = tree.session().range(&q, 2);
            assert_eq!(stats.metric_evals, tree.evaluations());
        }
    }

    #[test]
    fn works_under_hamming() {
        let db: Vec<String> =
            ["0000", "0001", "0011", "0111", "1111", "1000", "1100"].map(String::from).to_vec();
        let scan = LinearScan::new(Hamming, db.clone());
        let tree = BkTree::build(Hamming, db);
        let q = "0101".to_string();
        assert_eq!(tree.range(&q, 2), scan.range(&q, 2));
        assert_eq!(tree.knn(&q, 3), scan.knn(&q, 3));
    }

    #[test]
    fn empty_and_singleton() {
        let tree = BkTree::build(Levenshtein, Vec::<String>::new());
        assert!(tree.is_empty());
        assert!(tree.range(&"x".to_string(), 5).is_empty());
        assert!(tree.knn(&"x".to_string(), 3).is_empty());
        let tree = BkTree::build(Levenshtein, vec!["solo".to_string()]);
        assert_eq!(tree.knn(&"sole".to_string(), 2).len(), 1);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn duplicates_are_all_reported() {
        let db = vec!["dup".to_string(), "dup".to_string(), "dup".to_string()];
        let tree = BkTree::build(Levenshtein, db);
        let hits = tree.range(&"dup".to_string(), 0);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|n| n.dist == 0));
    }

    #[test]
    fn storage_accounts_nodes_and_edges() {
        let db = words();
        let n = db.len() as u64;
        let tree = BkTree::build(Levenshtein, db);
        let bits = tree.storage_bits();
        // n node ids + (n − 1) edges of 64 bits each.
        assert_eq!(bits, n * 64 + (n - 1) * 64);
    }
}
