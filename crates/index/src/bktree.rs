//! Burkhard–Keller tree for integer-valued metrics.
//!
//! The Table 2 dictionary databases live under Levenshtein distance,
//! whose values are small integers — exactly the setting of the classic
//! BK-tree (Burkhard & Keller 1973): each node stores one element and
//! indexes its children by their *exact distance* to it, so a query at
//! distance d from a node with search radius r can, by the triangle
//! inequality, only have answers under child edges in [d−r, d+r].
//!
//! Included as the discrete-metric baseline alongside the distance-based
//! structures ([`crate::VpTree`], [`crate::GhTree`]): on dictionaries it
//! is the natural comparator for the permutation index's evaluation
//! counts.

use crate::counting::CountingMetric;
use crate::query::{KnnHeap, Neighbor};
use dp_metric::Metric;

#[derive(Debug, Clone)]
struct Node {
    point: usize,
    /// (edge distance to parent’s point, child node index), sorted by edge.
    children: Vec<(u32, u32)>,
}

/// A BK-tree over an owned database with an integer metric.
#[derive(Debug, Clone)]
pub struct BkTree<P, M: Metric<P, Dist = u32>> {
    metric: M,
    points: Vec<P>,
    nodes: Vec<Node>,
}

impl<P, M: Metric<P, Dist = u32>> BkTree<P, M> {
    /// Builds the tree by inserting elements in database order.
    ///
    /// Expected build cost is O(n log n) metric evaluations on
    /// discriminating metrics; duplicate-distance chains degrade towards
    /// O(n²) exactly as in the original structure.
    pub fn build(metric: M, points: Vec<P>) -> Self {
        let mut tree = Self { metric, points, nodes: Vec::new() };
        for i in 0..tree.points.len() {
            tree.insert(i);
        }
        tree
    }

    fn insert(&mut self, point: usize) {
        if self.nodes.is_empty() {
            self.nodes.push(Node { point, children: Vec::new() });
            return;
        }
        let mut at = 0usize;
        loop {
            let d = self.metric.distance(&self.points[self.nodes[at].point], &self.points[point]);
            match self.nodes[at].children.binary_search_by_key(&d, |&(e, _)| e) {
                Ok(pos) => at = self.nodes[at].children[pos].1 as usize,
                Err(pos) => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(Node { point, children: Vec::new() });
                    self.nodes[at].children.insert(pos, (d, idx));
                    return;
                }
            }
        }
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// All elements within `radius` (inclusive; exact).
    pub fn range(&self, query: &P, radius: u32) -> Vec<Neighbor<u32>> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![0usize];
        while let Some(at) = stack.pop() {
            let node = &self.nodes[at];
            let d = self.metric.distance(&self.points[node.point], query);
            if d <= radius {
                out.push(Neighbor { id: node.point, dist: d });
            }
            let lo = d.saturating_sub(radius);
            let hi = d.saturating_add(radius);
            let start = node.children.partition_point(|&(e, _)| e < lo);
            for &(e, child) in &node.children[start..] {
                if e > hi {
                    break;
                }
                stack.push(child as usize);
            }
        }
        out.sort_unstable();
        out
    }

    /// The k nearest neighbours (exact; identical to a linear scan).
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<u32>> {
        if self.nodes.is_empty() {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k.min(self.points.len()));
        // Depth-first with the shrinking k-th-best bound; visiting the
        // closest child edges first tightens the bound early.
        self.knn_walk(0, query, &mut heap);
        heap.into_sorted()
    }

    fn knn_walk(&self, at: usize, query: &P, heap: &mut KnnHeap<u32>) {
        let node = &self.nodes[at];
        let d = self.metric.distance(&self.points[node.point], query);
        heap.push(node.point, d);
        // Visit children by |edge − d| ascending: likeliest answers first.
        let mut order: Vec<(u32, u32)> =
            node.children.iter().map(|&(e, child)| (e.abs_diff(d), child)).collect();
        order.sort_unstable();
        for (gap, child) in order {
            match heap.bound() {
                Some(b) if gap > b => break,
                _ => self.knn_walk(child as usize, query, heap),
            }
        }
    }

    /// Index storage in bits: one element id plus one (edge, child)
    /// pair per edge — no stored distances to non-parents.
    pub fn storage_bits(&self) -> u64 {
        let edges = self.nodes.iter().map(|n| n.children.len() as u64).sum::<u64>();
        (self.nodes.len() as u64) * 64 + edges * (32 + 32)
    }
}

impl<P, M: Metric<P, Dist = u32>> BkTree<P, CountingMetric<M>> {
    /// Metric evaluations performed since the wrapped counter's last
    /// reset.
    pub fn evaluations(&self) -> u64 {
        self.metric.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dp_metric::{Hamming, Levenshtein};

    fn words() -> Vec<String> {
        [
            "book", "books", "boo", "boon", "cook", "cake", "cape", "cart", "care", "case", "cast",
            "cat", "cut", "gut", "hut", "hat", "hot", "hop", "top", "tops", "stop", "stoop",
            "troop", "loop", "look", "lock", "rock", "rack",
        ]
        .map(String::from)
        .to_vec()
    }

    #[test]
    fn range_matches_linear_scan() {
        let db = words();
        let scan = LinearScan::new(db.clone());
        let tree = BkTree::build(Levenshtein, db);
        for q in ["bock", "tool", "caste", "zzzz", ""] {
            let q = q.to_string();
            for r in 0..=4u32 {
                assert_eq!(tree.range(&q, r), scan.range(&Levenshtein, &q, r), "q={q} r={r}");
            }
        }
    }

    #[test]
    fn knn_matches_linear_scan() {
        let db = words();
        let scan = LinearScan::new(db.clone());
        let tree = BkTree::build(Levenshtein, db);
        for q in ["bock", "stop", "carrot", ""] {
            let q = q.to_string();
            for k in [1usize, 3, 7] {
                assert_eq!(tree.knn(&q, k), scan.knn(&Levenshtein, &q, k), "q={q} k={k}");
            }
        }
    }

    #[test]
    fn prunes_on_small_radii() {
        let db: Vec<String> = (0..800).map(|i| format!("{:06b}{:04}", i % 64, i)).collect();
        let n = db.len() as u64;
        let tree = BkTree::build(CountingMetric::new(Levenshtein), db);
        tree.metric().reset();
        let _ = tree.range(&"000000zzzz".to_string(), 2);
        let evals = tree.evaluations();
        assert!(evals < n, "no pruning: {evals} >= {n}");
    }

    #[test]
    fn works_under_hamming() {
        let db: Vec<String> =
            ["0000", "0001", "0011", "0111", "1111", "1000", "1100"].map(String::from).to_vec();
        let scan = LinearScan::new(db.clone());
        let tree = BkTree::build(Hamming, db);
        let q = "0101".to_string();
        assert_eq!(tree.range(&q, 2), scan.range(&Hamming, &q, 2));
        assert_eq!(tree.knn(&q, 3), scan.knn(&Hamming, &q, 3));
    }

    #[test]
    fn empty_and_singleton() {
        let tree = BkTree::build(Levenshtein, Vec::<String>::new());
        assert!(tree.is_empty());
        assert!(tree.range(&"x".to_string(), 5).is_empty());
        assert!(tree.knn(&"x".to_string(), 3).is_empty());
        let tree = BkTree::build(Levenshtein, vec!["solo".to_string()]);
        assert_eq!(tree.knn(&"sole".to_string(), 2).len(), 1);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn duplicates_are_all_reported() {
        let db = vec!["dup".to_string(), "dup".to_string(), "dup".to_string()];
        let tree = BkTree::build(Levenshtein, db);
        let hits = tree.range(&"dup".to_string(), 0);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|n| n.dist == 0));
    }

    #[test]
    fn storage_accounts_nodes_and_edges() {
        let db = words();
        let n = db.len() as u64;
        let tree = BkTree::build(Levenshtein, db);
        let bits = tree.storage_bits();
        // n node ids + (n − 1) edges of 64 bits each.
        assert_eq!(bits, n * 64 + (n - 1) * 64);
    }
}
