//! Query result types and shared k-NN bookkeeping.

use dp_metric::Distance;
use std::collections::BinaryHeap;

/// One answer to a proximity query: a database id and its distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor<D> {
    /// Index of the element in the database the index was built over.
    pub id: usize,
    /// Distance from the query.
    pub dist: D,
}

impl<D: Distance> PartialOrd for Neighbor<D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<D: Distance> Ord for Neighbor<D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // (distance, id): deterministic total order mirrors the paper's
        // distance-permutation tie-break.
        self.dist.cmp(&other.dist).then(self.id.cmp(&other.id))
    }
}

/// A bounded max-heap tracking the k nearest candidates seen so far.
#[derive(Debug, Clone)]
pub struct KnnHeap<D> {
    k: usize,
    heap: BinaryHeap<Neighbor<D>>,
}

impl<D: Distance> KnnHeap<D> {
    /// Creates a collector for the `k` nearest neighbours.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-NN with k = 0");
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers a candidate.
    pub fn push(&mut self, id: usize, dist: D) {
        self.heap.push(Neighbor { id, dist });
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Current pruning bound: the k-th best distance, if k candidates have
    /// been seen.
    pub fn bound(&self) -> Option<D> {
        (self.heap.len() == self.k).then(|| self.heap.peek().expect("non-empty").dist)
    }

    /// True iff a candidate at distance `d` could still enter the result.
    pub fn admits(&self, d: D) -> bool {
        match self.bound() {
            None => true,
            // Strict comparison on (dist, id) handled by callers; a tie on
            // distance with a larger id loses, but admitting it is safe.
            Some(b) => d <= b,
        }
    }

    /// Finishes the query: neighbours sorted by (distance, id).
    pub fn into_sorted(self) -> Vec<Neighbor<D>> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut h = KnnHeap::new(3);
        for (id, d) in [(0, 50u64), (1, 10), (2, 40), (3, 20), (4, 30)] {
            h.push(id, d);
        }
        let out = h.into_sorted();
        assert_eq!(
            out,
            vec![
                Neighbor { id: 1, dist: 10 },
                Neighbor { id: 3, dist: 20 },
                Neighbor { id: 4, dist: 30 }
            ]
        );
    }

    #[test]
    fn bound_appears_once_full() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.bound(), None);
        h.push(0, 5u64);
        assert_eq!(h.bound(), None);
        h.push(1, 9);
        assert_eq!(h.bound(), Some(9));
        h.push(2, 1);
        assert_eq!(h.bound(), Some(5));
    }

    #[test]
    fn ties_resolved_by_id() {
        let mut h = KnnHeap::new(2);
        h.push(7, 3u64);
        h.push(2, 3);
        h.push(5, 3);
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![2, 5]);
    }

    #[test]
    fn admits_respects_bound() {
        let mut h = KnnHeap::new(1);
        assert!(h.admits(100u64));
        h.push(0, 10);
        assert!(h.admits(10));
        assert!(!h.admits(11));
    }

    #[test]
    #[should_panic(expected = "k = 0")]
    fn zero_k_rejected() {
        let _ = KnnHeap::<u64>::new(0);
    }
}
