//! Query result types, per-query statistics and shared k-NN bookkeeping.

use dp_metric::Distance;
use std::collections::BinaryHeap;

/// One answer to a proximity query: a database id and its distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor<D> {
    /// Index of the element in the database the index was built over.
    pub id: usize,
    /// Distance from the query.
    pub dist: D,
}

impl<D: Distance> PartialOrd for Neighbor<D> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<D: Distance> Ord for Neighbor<D> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // (distance, id): deterministic total order mirrors the paper's
        // distance-permutation tie-break.
        self.dist.cmp(&other.dist).then(self.id.cmp(&other.id))
    }
}

/// Cost accounting for one proximity query.
///
/// Proximity-search research compares index structures by **metric
/// evaluations per query** — the metric is assumed to dominate every
/// other cost.  Each [`crate::Searcher`] counts its own evaluations with
/// a plain integer and returns them here, so the count rides along with
/// the answer instead of living in a shared-interior-mutability wrapper
/// ([`crate::CountingMetric`] remains for instrumenting *build* costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStats {
    /// Metric (distance-function) evaluations performed for this query.
    pub metric_evals: u64,
}

impl QueryStats {
    /// Stats for a query that performed `metric_evals` evaluations.
    pub const fn new(metric_evals: u64) -> Self {
        Self { metric_evals }
    }

    /// Accumulates another query's stats into this one.
    pub fn merge(&mut self, other: QueryStats) {
        self.metric_evals += other.metric_evals;
    }
}

impl std::ops::Add for QueryStats {
    type Output = QueryStats;

    fn add(mut self, rhs: QueryStats) -> QueryStats {
        self.merge(rhs);
        self
    }
}

impl std::iter::Sum for QueryStats {
    fn sum<I: Iterator<Item = QueryStats>>(iter: I) -> QueryStats {
        iter.fold(QueryStats::default(), |acc, s| acc + s)
    }
}

/// A bounded max-heap tracking the k nearest candidates seen so far.
#[derive(Debug, Clone)]
pub struct KnnHeap<D> {
    k: usize,
    heap: BinaryHeap<Neighbor<D>>,
}

impl<D: Distance> KnnHeap<D> {
    /// Creates a collector for the `k` nearest neighbours.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-NN with k = 0");
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers a candidate.
    pub fn push(&mut self, id: usize, dist: D) {
        self.heap.push(Neighbor { id, dist });
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Current pruning bound: the k-th best distance, if k candidates have
    /// been seen.
    pub fn bound(&self) -> Option<D> {
        (self.heap.len() == self.k).then(|| self.heap.peek().expect("non-empty").dist)
    }

    /// True iff a candidate at distance `d` could still enter the result.
    ///
    /// **Contract: deliberately inclusive on distance ties.**  The heap
    /// orders candidates by `(distance, id)`, so when the heap is full a
    /// candidate at exactly the bound distance displaces the incumbent
    /// only if its id is smaller; with a larger id, [`Self::push`]
    /// immediately pops it back out and [`Self::into_sorted`] never sees
    /// it.  `admits` cannot know the candidate's id, so it must say *yes*
    /// to every distance tie:
    ///
    /// * admitting a tie that loses is harmless (one wasted evaluation —
    ///   the push is a no-op for the final answer);
    /// * **rejecting** a tie would be a correctness bug: a smaller-id tie
    ///   must be able to enter, or exact indexes would disagree with
    ///   [`crate::LinearScan`]'s `(distance, id)` order on tied
    ///   distances.
    pub fn admits(&self, d: D) -> bool {
        match self.bound() {
            None => true,
            Some(b) => d <= b,
        }
    }

    /// Finishes the query: neighbours sorted by (distance, id).
    pub fn into_sorted(self) -> Vec<Neighbor<D>> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

/// Fills `order` with `(key, id)` pairs from `keys` so that the first
/// `budget` entries equal the first `budget` entries of a full sort —
/// the budgeted candidate-ordering fast path shared by the
/// permutation-family searchers.
///
/// Keys are `(key, id)`, which are distinct, so partitioning with
/// `select_nth_unstable` and sorting only the prefix yields **exactly**
/// the same prefix as sorting all n — O(n + budget·log budget) instead
/// of O(n·log n) when the scan budget is below n.
pub(crate) fn budgeted_order(
    keys: impl Iterator<Item = u64>,
    budget: usize,
    order: &mut Vec<(u64, usize)>,
) {
    order.clear();
    order.extend(keys.enumerate().map(|(i, key)| (key, i)));
    // Defensive clamp, pinning the contract the branches below already
    // satisfy: a budget at or above the candidate count (including
    // budget > 0 over an empty candidate list) degrades to a plain full
    // sort.  The select_nth_unstable pivot below must stay in range even
    // if the branch conditions are ever reshuffled.
    let budget = budget.min(order.len());
    if budget == 0 {
        return;
    }
    if budget < order.len() {
        order.select_nth_unstable(budget - 1);
        order[..budget].sort_unstable();
    } else {
        order.sort_unstable();
    }
}

/// Validates a scan-budget fraction (shared by every budgeted scan).
#[inline]
pub(crate) fn assert_frac(frac: f64) {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1], got {frac}");
}

/// Scan budget for budgeted k-NN: `⌈frac·n⌉` clamped to `[min(k, n), n]`.
#[inline]
pub(crate) fn knn_budget(n: usize, k: usize, frac: f64) -> usize {
    ((frac * n as f64).ceil() as usize).clamp(k.min(n), n)
}

/// Scan budget for budgeted range queries: `⌈frac·n⌉` clamped to `n`
/// (no k floor).
#[inline]
pub(crate) fn range_budget(n: usize, frac: f64) -> usize {
    ((frac * n as f64).ceil() as usize).min(n)
}

/// The shared budgeted k-NN scan of the permutation-family searchers
/// ([`crate::DistPermSearcher`], [`crate::FlatDistPermSearcher`],
/// [`crate::PrefixPermSearcher`]): validate `frac`, clamp the budget to
/// `[min(k, n), n]`, fill the candidate order via `order_with(budget,
/// order)`, measure the first `budget` candidates with `dist`, and
/// account `sites_k + budget` metric evaluations.
///
/// `n == 0` and `k == 0` short-circuit to an empty answer with zero
/// evaluations (before any candidate ordering runs).
pub(crate) fn budgeted_knn_scan<D: Distance>(
    n: usize,
    k: usize,
    frac: f64,
    sites_k: usize,
    order: &mut Vec<(u64, usize)>,
    order_with: impl FnOnce(usize, &mut Vec<(u64, usize)>),
    mut dist: impl FnMut(usize) -> D,
) -> (Vec<Neighbor<D>>, QueryStats) {
    assert_frac(frac);
    if n == 0 || k == 0 {
        return (Vec::new(), QueryStats::default());
    }
    let budget = knn_budget(n, k, frac);
    order_with(budget, order);
    let mut heap = KnnHeap::new(k.min(n));
    for &(_, i) in order.iter().take(budget) {
        heap.push(i, dist(i));
    }
    (heap.into_sorted(), QueryStats::new((sites_k + budget) as u64))
}

/// The budgeted range-query counterpart of [`budgeted_knn_scan`]:
/// budget is `⌈frac·n⌉` (no k floor), every measured candidate within
/// `radius` is reported, sorted by `(distance, id)`.
pub(crate) fn budgeted_range_scan<D: Distance>(
    n: usize,
    frac: f64,
    sites_k: usize,
    radius: D,
    order: &mut Vec<(u64, usize)>,
    order_with: impl FnOnce(usize, &mut Vec<(u64, usize)>),
    mut dist: impl FnMut(usize) -> D,
) -> (Vec<Neighbor<D>>, QueryStats) {
    assert_frac(frac);
    if n == 0 {
        return (Vec::new(), QueryStats::default());
    }
    let budget = range_budget(n, frac);
    order_with(budget, order);
    let mut out: Vec<Neighbor<D>> = order
        .iter()
        .take(budget)
        .filter_map(|&(_, i)| {
            let d = dist(i);
            (d <= radius).then_some(Neighbor { id: i, dist: d })
        })
        .collect();
    out.sort_unstable();
    (out, QueryStats::new((sites_k + budget) as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut h = KnnHeap::new(3);
        for (id, d) in [(0, 50u64), (1, 10), (2, 40), (3, 20), (4, 30)] {
            h.push(id, d);
        }
        let out = h.into_sorted();
        assert_eq!(
            out,
            vec![
                Neighbor { id: 1, dist: 10 },
                Neighbor { id: 3, dist: 20 },
                Neighbor { id: 4, dist: 30 }
            ]
        );
    }

    #[test]
    fn bound_appears_once_full() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.bound(), None);
        h.push(0, 5u64);
        assert_eq!(h.bound(), None);
        h.push(1, 9);
        assert_eq!(h.bound(), Some(9));
        h.push(2, 1);
        assert_eq!(h.bound(), Some(5));
    }

    #[test]
    fn ties_resolved_by_id() {
        let mut h = KnnHeap::new(2);
        h.push(7, 3u64);
        h.push(2, 3);
        h.push(5, 3);
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![2, 5]);
    }

    #[test]
    fn admits_respects_bound() {
        let mut h = KnnHeap::new(1);
        assert!(h.admits(100u64));
        h.push(0, 10);
        assert!(h.admits(10));
        assert!(!h.admits(11));
    }

    #[test]
    fn admits_is_inclusive_on_ties_and_push_resolves_them_by_id() {
        // Regression test for the admits/into_sorted contract: a full heap
        // admits every candidate at exactly the bound distance, but only
        // smaller-id ties actually displace the incumbent.
        let mut h = KnnHeap::new(2);
        h.push(3, 5u64);
        h.push(6, 5);
        assert_eq!(h.bound(), Some(5));
        assert!(h.admits(5), "distance ties must be admitted");

        // Larger-id tie: admitted, pushed, silently dropped.
        h.push(9, 5);
        assert_eq!(h.clone().into_sorted().iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 6]);

        // Smaller-id tie: admitted and *must* displace the largest-id
        // incumbent — this is why admits cannot use a strict comparison.
        h.push(1, 5);
        assert_eq!(h.into_sorted().iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "k = 0")]
    fn zero_k_rejected() {
        let _ = KnnHeap::<u64>::new(0);
    }

    #[test]
    fn query_stats_sum_and_merge() {
        let total: QueryStats =
            [QueryStats::new(3), QueryStats::new(4), QueryStats::default()].into_iter().sum();
        assert_eq!(total, QueryStats::new(7));
        let mut s = QueryStats::new(1);
        s.merge(QueryStats::new(2));
        assert_eq!(s + QueryStats::new(10), QueryStats::new(13));
    }

    #[test]
    fn budgeted_order_clamps_budget_to_candidate_count() {
        // Regression suite for the select_nth_unstable pivot: budgets at
        // n − 1, n, and n + 1 must all produce the full-sort prefix, and
        // an empty candidate list must accept any budget.
        let keys: Vec<u64> = (0..10).map(|i| (i * 37) % 11).collect();
        let n = keys.len();
        let mut full = Vec::new();
        budgeted_order(keys.iter().copied(), n, &mut full);
        full.sort_unstable();
        for budget in [n - 1, n, n + 1, n + 100] {
            let mut got = Vec::new();
            budgeted_order(keys.iter().copied(), budget, &mut got);
            let shown = budget.min(n);
            assert_eq!(&got[..shown], &full[..shown], "budget {budget}");
        }
        // n = 0: every budget is fine and yields an empty order.
        for budget in [0usize, 1, 5] {
            let mut got = vec![(0u64, 0usize)];
            budgeted_order(std::iter::empty(), budget, &mut got);
            assert!(got.is_empty(), "budget {budget} over empty candidates");
        }
    }

    #[test]
    fn budget_helpers_clamp_to_database_size() {
        assert_eq!(knn_budget(10, 3, 1.0), 10);
        assert_eq!(knn_budget(10, 3, 0.0), 3);
        assert_eq!(knn_budget(10, 25, 0.0), 10, "k > n floors at n");
        assert_eq!(knn_budget(10, 25, 1.0), 10);
        assert_eq!(range_budget(10, 1.0), 10);
        assert_eq!(range_budget(10, 0.0), 0);
        assert_eq!(range_budget(3, 0.5), 2);
    }

    #[test]
    fn budgeted_order_matches_full_sort_prefix() {
        let keys: Vec<u64> = (0..97).map(|i| (i * 7919) % 1000).collect();
        let mut full = Vec::new();
        budgeted_order(keys.iter().copied(), keys.len(), &mut full);
        for budget in [0usize, 1, 13, 96, 97] {
            let mut got = Vec::new();
            budgeted_order(keys.iter().copied(), budget, &mut got);
            assert_eq!(&got[..budget], &full[..budget], "budget {budget}");
        }
    }
}
