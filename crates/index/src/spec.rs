//! Build-by-name: [`IndexSpec`] parsing and the [`AnyIndex`] dispatcher.
//!
//! Experiment harnesses and the CLI want to construct "any index type"
//! from a string like `laesa:16` or `distperm:12` and then serve queries
//! through one uniform surface.  [`IndexSpec`] is the parsed name;
//! [`AnyIndex`] is the built product — an enum over the generic index
//! types that itself implements [`ProximityIndex`] (with an enum
//! searcher), so one generic loop covers every variant and the per-type
//! match statements that used to live in `search_eval`, the `indexes`
//! bench and the CLI collapse into a single `AnyIndex::build` call.
//!
//! Two index types cannot live in the generic enum and are handled by
//! their callers directly: [`crate::BkTree`] requires an integer-valued
//! metric (`Dist = u32`), and [`crate::FlatDistPermIndex`] requires flat
//! [`dp_datasets::VectorSet`] storage.  [`IndexSpec`] still parses both
//! so front ends can dispatch on the spec.

use crate::api::{ApproxIndex, ApproxSearcher, ProximityIndex, Searcher};
use crate::laesa::PivotSelection;
use crate::query::{Neighbor, QueryStats};
use crate::{
    Aesa, AesaSearcher, DistPermIndex, DistPermSearcher, GhSearcher, GhTree, IAesa, IAesaSearcher,
    Laesa, LaesaSearcher, LinearScan, LinearSearcher, PrefixPermIndex, PrefixPermSearcher,
    VpSearcher, VpTree,
};
use dp_metric::Metric;
use dp_permutation::MAX_K;
use std::fmt;

/// Default site/pivot count for specs given without an explicit `:k`.
pub const DEFAULT_K: usize = 12;

/// A parsed index specification: which structure to build, with its
/// structural parameters (site counts, prefix lengths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexSpec {
    /// `linear` — the n-evaluation baseline.
    Linear,
    /// `aesa` — full-matrix AESA.
    Aesa,
    /// `laesa:<k>` — k-pivot LAESA.
    Laesa {
        /// Pivot count.
        k: usize,
    },
    /// `iaesa:<k>` — permutation-ordered AESA with k sites.
    IAesa {
        /// Site count.
        k: usize,
    },
    /// `distperm:<k>` — the paper's distance-permutation index.
    DistPerm {
        /// Site count.
        k: usize,
    },
    /// `prefixperm:<k>:<l>` — length-l permutation prefixes over k sites.
    PrefixPerm {
        /// Site count.
        k: usize,
        /// Stored prefix length (≤ k).
        prefix_len: usize,
    },
    /// `flatperm:<k>` — distperm over flat vector storage
    /// ([`crate::FlatDistPermIndex`]; vector databases only).
    FlatDistPerm {
        /// Site count.
        k: usize,
    },
    /// `vptree` — vantage-point tree.
    VpTree,
    /// `ghtree` — generalised-hyperplane tree.
    GhTree,
    /// `bktree` — Burkhard–Keller tree (integer metrics only).
    BkTree,
}

/// Error from [`IndexSpec::parse`] or [`AnyIndex::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl SpecError {
    fn new(msg: impl Into<String>) -> Self {
        SpecError(msg.into())
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn parse_param(spec: &str, name: &str, value: &str) -> Result<usize, SpecError> {
    value
        .parse::<usize>()
        .map_err(|e| SpecError::new(format!("bad {name} in index spec `{spec}`: {e}")))
}

impl IndexSpec {
    /// Parses a spec string: a structure name, optionally followed by
    /// `:`-separated parameters.
    ///
    /// Accepted forms: `linear`, `aesa`, `laesa[:k]`, `iaesa[:k]`,
    /// `distperm[:k]`, `prefixperm[:k[:l]]`, `flatperm[:k]`, `vptree`,
    /// `ghtree`, `bktree`.  Omitted `k` defaults to [`DEFAULT_K`]; an
    /// omitted prefix length defaults to `k / 2` (rounded up).
    pub fn parse(spec: &str) -> Result<IndexSpec, SpecError> {
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or_default();
        let params: Vec<&str> = parts.collect();
        let arity = |max: usize| {
            if params.len() > max {
                Err(SpecError::new(format!("too many parameters in index spec `{spec}`")))
            } else {
                Ok(())
            }
        };
        let k_param = |idx: usize| -> Result<usize, SpecError> {
            match params.get(idx) {
                None => Ok(DEFAULT_K),
                Some(v) => parse_param(spec, "site count", v),
            }
        };
        let parsed = match name {
            "linear" | "scan" => {
                arity(0)?;
                IndexSpec::Linear
            }
            "aesa" => {
                arity(0)?;
                IndexSpec::Aesa
            }
            "laesa" => {
                arity(1)?;
                IndexSpec::Laesa { k: k_param(0)? }
            }
            "iaesa" => {
                arity(1)?;
                IndexSpec::IAesa { k: k_param(0)? }
            }
            "distperm" => {
                arity(1)?;
                IndexSpec::DistPerm { k: k_param(0)? }
            }
            "prefixperm" => {
                arity(2)?;
                let k = k_param(0)?;
                let prefix_len = match params.get(1) {
                    None => k.div_ceil(2),
                    Some(v) => parse_param(spec, "prefix length", v)?,
                };
                IndexSpec::PrefixPerm { k, prefix_len }
            }
            "flatperm" => {
                arity(1)?;
                IndexSpec::FlatDistPerm { k: k_param(0)? }
            }
            "vptree" | "vp" => {
                arity(0)?;
                IndexSpec::VpTree
            }
            "ghtree" | "gh" => {
                arity(0)?;
                IndexSpec::GhTree
            }
            "bktree" | "bk" => {
                arity(0)?;
                IndexSpec::BkTree
            }
            other => {
                return Err(SpecError::new(format!(
                    "unknown index type `{other}` (want linear, aesa, laesa[:k], iaesa[:k], \
                     distperm[:k], prefixperm[:k[:l]], flatperm[:k], vptree, ghtree, bktree)"
                )))
            }
        };
        parsed.validate(spec)?;
        Ok(parsed)
    }

    fn validate(self, spec: &str) -> Result<(), SpecError> {
        let perm_k = match self {
            IndexSpec::IAesa { k }
            | IndexSpec::DistPerm { k }
            | IndexSpec::FlatDistPerm { k }
            | IndexSpec::PrefixPerm { k, .. } => Some(k),
            _ => None,
        };
        if let Some(k) = perm_k {
            if k > MAX_K {
                return Err(SpecError::new(format!(
                    "site count {k} exceeds MAX_K = {MAX_K} in index spec `{spec}`"
                )));
            }
        }
        if let IndexSpec::PrefixPerm { k, prefix_len } = self {
            if prefix_len > k {
                return Err(SpecError::new(format!(
                    "prefix length {prefix_len} exceeds site count {k} in index spec `{spec}`"
                )));
            }
        }
        Ok(())
    }

    /// Canonical display name (`laesa:16`, `prefixperm:12:6`, …).
    pub fn name(&self) -> String {
        match *self {
            IndexSpec::Linear => "linear".into(),
            IndexSpec::Aesa => "aesa".into(),
            IndexSpec::Laesa { k } => format!("laesa:{k}"),
            IndexSpec::IAesa { k } => format!("iaesa:{k}"),
            IndexSpec::DistPerm { k } => format!("distperm:{k}"),
            IndexSpec::PrefixPerm { k, prefix_len } => format!("prefixperm:{k}:{prefix_len}"),
            IndexSpec::FlatDistPerm { k } => format!("flatperm:{k}"),
            IndexSpec::VpTree => "vptree".into(),
            IndexSpec::GhTree => "ghtree".into(),
            IndexSpec::BkTree => "bktree".into(),
        }
    }

    /// Number of pivots/sites this spec asks for, if the structure uses
    /// any (for validating against the database size).
    pub fn pivot_count(&self) -> Option<usize> {
        match *self {
            IndexSpec::Laesa { k }
            | IndexSpec::IAesa { k }
            | IndexSpec::DistPerm { k }
            | IndexSpec::FlatDistPerm { k }
            | IndexSpec::PrefixPerm { k, .. } => Some(k),
            _ => None,
        }
    }

    /// True iff the built index honours a query-time scan budget
    /// (`frac < 1` changes its answers).
    pub fn supports_budget(&self) -> bool {
        matches!(
            self,
            IndexSpec::DistPerm { .. }
                | IndexSpec::PrefixPerm { .. }
                | IndexSpec::FlatDistPerm { .. }
        )
    }
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Any generic proximity index, built from an [`IndexSpec`].
///
/// Covers the eight structures that work over an owned `Vec<P>` with an
/// arbitrary metric.  Implements [`ProximityIndex`] by dispatching to
/// the wrapped index, so generic serving and evaluation code does not
/// care which structure it got.
#[derive(Debug, Clone)]
pub enum AnyIndex<P, M: Metric<P>> {
    /// Linear scan.
    Linear(LinearScan<P, M>),
    /// AESA.
    Aesa(Aesa<P, M>),
    /// LAESA.
    Laesa(Laesa<P, M>),
    /// iAESA.
    IAesa(IAesa<P, M>),
    /// Distance-permutation index.
    DistPerm(DistPermIndex<P, M>),
    /// Prefix-permutation index.
    PrefixPerm(PrefixPermIndex<P, M>),
    /// Vantage-point tree.
    VpTree(VpTree<P, M>),
    /// GH-tree.
    GhTree(GhTree<P, M>),
}

macro_rules! dispatch_index {
    ($self:expr, $idx:ident => $body:expr) => {
        match $self {
            AnyIndex::Linear($idx) => $body,
            AnyIndex::Aesa($idx) => $body,
            AnyIndex::Laesa($idx) => $body,
            AnyIndex::IAesa($idx) => $body,
            AnyIndex::DistPerm($idx) => $body,
            AnyIndex::PrefixPerm($idx) => $body,
            AnyIndex::VpTree($idx) => $body,
            AnyIndex::GhTree($idx) => $body,
        }
    };
}

impl<P: Clone, M: Metric<P>> AnyIndex<P, M> {
    /// Builds the structure named by `spec` over `points`.
    ///
    /// `strategy` selects pivots/sites for the structures that use them.
    /// Returns an error for specs that need a different storage or
    /// metric shape (`flatperm`, `bktree`) or ask for more pivots than
    /// there are points — build-by-name is a front-end path, so those
    /// are reported, not panicked.
    pub fn build(
        spec: IndexSpec,
        metric: M,
        points: Vec<P>,
        strategy: PivotSelection,
    ) -> Result<Self, SpecError> {
        if let Some(k) = spec.pivot_count() {
            if k > points.len() {
                return Err(SpecError::new(format!(
                    "index spec `{spec}` asks for {k} pivots from {} points",
                    points.len()
                )));
            }
        }
        Ok(match spec {
            IndexSpec::Linear => AnyIndex::Linear(LinearScan::new(metric, points)),
            IndexSpec::Aesa => AnyIndex::Aesa(Aesa::build(metric, points)),
            IndexSpec::Laesa { k } => AnyIndex::Laesa(Laesa::build(metric, points, k, strategy)),
            IndexSpec::IAesa { k } => AnyIndex::IAesa(IAesa::build(metric, points, k, strategy)),
            IndexSpec::DistPerm { k } => {
                AnyIndex::DistPerm(DistPermIndex::build(metric, points, k, strategy))
            }
            IndexSpec::PrefixPerm { k, prefix_len } => AnyIndex::PrefixPerm(
                PrefixPermIndex::build(metric, points, k, prefix_len, strategy),
            ),
            IndexSpec::VpTree => AnyIndex::VpTree(VpTree::build(metric, points)),
            IndexSpec::GhTree => AnyIndex::GhTree(GhTree::build(metric, points)),
            IndexSpec::FlatDistPerm { .. } => {
                return Err(SpecError::new(
                    "index spec `flatperm` requires flat vector storage; build \
                     FlatDistPermIndex directly",
                ))
            }
            IndexSpec::BkTree => {
                return Err(SpecError::new(
                    "index spec `bktree` requires an integer-valued metric; build BkTree \
                     directly",
                ))
            }
        })
    }
}

impl<P, M: Metric<P>> AnyIndex<P, M> {
    /// The spec this index was built from (modulo pivot strategy).
    pub fn spec(&self) -> IndexSpec {
        match self {
            AnyIndex::Linear(_) => IndexSpec::Linear,
            AnyIndex::Aesa(_) => IndexSpec::Aesa,
            AnyIndex::Laesa(i) => IndexSpec::Laesa { k: i.pivots().len() },
            AnyIndex::IAesa(i) => IndexSpec::IAesa { k: i.site_ids().len() },
            AnyIndex::DistPerm(i) => IndexSpec::DistPerm { k: i.k() },
            AnyIndex::PrefixPerm(i) => {
                IndexSpec::PrefixPerm { k: i.k(), prefix_len: i.prefix_len() }
            }
            AnyIndex::VpTree(_) => IndexSpec::VpTree,
            AnyIndex::GhTree(_) => IndexSpec::GhTree,
        }
    }

    /// Database size.
    pub fn len(&self) -> usize {
        dispatch_index!(self, i => i.len())
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff queries honour a scan budget (see
    /// [`IndexSpec::supports_budget`]).
    pub fn supports_budget(&self) -> bool {
        self.spec().supports_budget()
    }
}

/// Query session over an [`AnyIndex`], dispatching to the wrapped
/// searcher.
#[derive(Debug, Clone)]
pub enum AnySearcher<'a, P, M: Metric<P>> {
    /// Linear-scan session.
    Linear(LinearSearcher<'a, P, M>),
    /// AESA session.
    Aesa(AesaSearcher<'a, P, M>),
    /// LAESA session.
    Laesa(LaesaSearcher<'a, P, M>),
    /// iAESA session.
    IAesa(IAesaSearcher<'a, P, M>),
    /// distperm session.
    DistPerm(DistPermSearcher<'a, P, M>),
    /// prefixperm session.
    PrefixPerm(PrefixPermSearcher<'a, P, M>),
    /// VP-tree session.
    VpTree(VpSearcher<'a, P, M>),
    /// GH-tree session.
    GhTree(GhSearcher<'a, P, M>),
}

macro_rules! dispatch_searcher {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            AnySearcher::Linear($s) => $body,
            AnySearcher::Aesa($s) => $body,
            AnySearcher::Laesa($s) => $body,
            AnySearcher::IAesa($s) => $body,
            AnySearcher::DistPerm($s) => $body,
            AnySearcher::PrefixPerm($s) => $body,
            AnySearcher::VpTree($s) => $body,
            AnySearcher::GhTree($s) => $body,
        }
    };
}

impl<P: Sync, M: Metric<P> + Sync> ProximityIndex<P> for AnyIndex<P, M> {
    type Dist = M::Dist;
    type Searcher<'s>
        = AnySearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.len()
    }

    fn searcher(&self) -> AnySearcher<'_, P, M> {
        match self {
            AnyIndex::Linear(i) => AnySearcher::Linear(i.session()),
            AnyIndex::Aesa(i) => AnySearcher::Aesa(i.session()),
            AnyIndex::Laesa(i) => AnySearcher::Laesa(i.session()),
            AnyIndex::IAesa(i) => AnySearcher::IAesa(i.session()),
            AnyIndex::DistPerm(i) => AnySearcher::DistPerm(i.session()),
            AnyIndex::PrefixPerm(i) => AnySearcher::PrefixPerm(i.session()),
            AnyIndex::VpTree(i) => AnySearcher::VpTree(i.session()),
            AnyIndex::GhTree(i) => AnySearcher::GhTree(i.session()),
        }
    }
}

impl<P: Sync, M: Metric<P> + Sync> Searcher<P> for AnySearcher<'_, P, M> {
    type Dist = M::Dist;

    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        dispatch_searcher!(self, s => Searcher::knn(s, query, k))
    }

    fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        dispatch_searcher!(self, s => Searcher::range(s, query, radius))
    }
}

/// Budgeted queries through the dispatcher.
///
/// Only the permutation-family variants honour `frac`; the exact
/// structures have no scan-budget knob, so for them the budgeted calls
/// fall back to the exact query (their answers do not depend on
/// `frac`).  Callers that need to distinguish should consult
/// [`AnyIndex::supports_budget`].
impl<P: Sync, M: Metric<P> + Sync> ApproxSearcher<P> for AnySearcher<'_, P, M> {
    fn knn_approx(
        &mut self,
        query: &P,
        k: usize,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        // Validate uniformly so a bad budget fails on every variant, not
        // just the ones that consume it (the ApproxSearcher contract).
        assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1], got {frac}");
        match self {
            AnySearcher::DistPerm(s) => s.knn_approx(query, k, frac),
            AnySearcher::PrefixPerm(s) => s.knn_approx(query, k, frac),
            other => Searcher::knn(other, query, k),
        }
    }

    fn range_approx(
        &mut self,
        query: &P,
        radius: M::Dist,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1], got {frac}");
        match self {
            AnySearcher::DistPerm(s) => s.range_approx(query, radius, frac),
            AnySearcher::PrefixPerm(s) => s.range_approx(query, radius, frac),
            other => Searcher::range(other, query, radius),
        }
    }
}

impl<P: Sync, M: Metric<P> + Sync> ApproxIndex<P> for AnyIndex<P, M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::L2;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn parse_roundtrips_canonical_names() {
        for spec in [
            "linear",
            "aesa",
            "laesa:16",
            "iaesa:8",
            "distperm:12",
            "prefixperm:12:6",
            "flatperm:10",
            "vptree",
            "ghtree",
            "bktree",
        ] {
            let parsed = IndexSpec::parse(spec).unwrap();
            assert_eq!(parsed.name(), spec, "canonical roundtrip");
            assert_eq!(IndexSpec::parse(&parsed.name()).unwrap(), parsed);
        }
    }

    #[test]
    fn parse_applies_defaults_and_aliases() {
        assert_eq!(IndexSpec::parse("laesa").unwrap(), IndexSpec::Laesa { k: DEFAULT_K });
        assert_eq!(
            IndexSpec::parse("prefixperm:9").unwrap(),
            IndexSpec::PrefixPerm { k: 9, prefix_len: 5 }
        );
        assert_eq!(IndexSpec::parse("vp").unwrap(), IndexSpec::VpTree);
        assert_eq!(IndexSpec::parse("bk").unwrap(), IndexSpec::BkTree);
        assert_eq!(IndexSpec::parse("scan").unwrap(), IndexSpec::Linear);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["frobnicate", "laesa:x", "laesa:1:2", "aesa:3", "prefixperm:4:9", "distperm:99"]
        {
            assert!(IndexSpec::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn build_rejects_wrong_shape_specs_gracefully() {
        let pts = random_points(20, 2, 1);
        let err = AnyIndex::build(IndexSpec::BkTree, L2, pts.clone(), PivotSelection::Prefix)
            .unwrap_err();
        assert!(err.to_string().contains("bktree"), "{err}");
        let err = AnyIndex::build(
            IndexSpec::FlatDistPerm { k: 4 },
            L2,
            pts.clone(),
            PivotSelection::Prefix,
        )
        .unwrap_err();
        assert!(err.to_string().contains("flatperm"), "{err}");
        let err = AnyIndex::build(IndexSpec::Laesa { k: 30 }, L2, pts, PivotSelection::Prefix)
            .unwrap_err();
        assert!(err.to_string().contains("30 pivots"), "{err}");
    }

    #[test]
    fn every_generic_variant_is_exact_through_the_dispatcher() {
        let pts = random_points(150, 3, 2);
        let queries = random_points(10, 3, 3);
        let truth = LinearScan::new(L2, pts.clone());
        let specs = [
            IndexSpec::Linear,
            IndexSpec::Aesa,
            IndexSpec::Laesa { k: 6 },
            IndexSpec::IAesa { k: 6 },
            IndexSpec::DistPerm { k: 6 },
            IndexSpec::PrefixPerm { k: 6, prefix_len: 3 },
            IndexSpec::VpTree,
            IndexSpec::GhTree,
        ];
        for spec in specs {
            let idx = AnyIndex::build(spec, L2, pts.clone(), PivotSelection::MaxMin).unwrap();
            assert_eq!(idx.spec(), spec);
            assert_eq!(idx.size(), 150);
            let mut searcher = idx.searcher();
            for q in &queries {
                let (got, stats) = searcher.knn(q, 4);
                assert_eq!(got, truth.knn(q, 4), "{spec}");
                assert!(stats.metric_evals > 0, "{spec} reported no work");
            }
        }
    }

    #[test]
    fn k_zero_returns_empty_on_every_variant() {
        let pts = random_points(60, 2, 5);
        let q = vec![0.5, 0.5];
        let specs = [
            IndexSpec::Linear,
            IndexSpec::Aesa,
            IndexSpec::Laesa { k: 4 },
            IndexSpec::IAesa { k: 4 },
            IndexSpec::DistPerm { k: 4 },
            IndexSpec::PrefixPerm { k: 4, prefix_len: 2 },
            IndexSpec::VpTree,
            IndexSpec::GhTree,
        ];
        for spec in specs {
            let idx = AnyIndex::build(spec, L2, pts.clone(), PivotSelection::Prefix).unwrap();
            let (out, stats) = idx.searcher().knn(&q, 0);
            assert!(out.is_empty(), "{spec}: k = 0 must return no neighbours");
            assert_eq!(stats, QueryStats::default(), "{spec}: k = 0 must do no work");
        }
    }

    #[test]
    #[should_panic(expected = "frac must be in [0,1]")]
    fn out_of_range_frac_panics_even_on_exact_variants() {
        let pts = random_points(30, 2, 6);
        let vp = AnyIndex::build(IndexSpec::VpTree, L2, pts, PivotSelection::Prefix).unwrap();
        let _ = vp.searcher().knn_approx(&vec![0.5, 0.5], 2, 7.0);
    }

    #[test]
    fn budget_falls_back_to_exact_on_non_budget_variants() {
        let pts = random_points(100, 2, 4);
        let q = vec![0.5, 0.5];
        let vp =
            AnyIndex::build(IndexSpec::VpTree, L2, pts.clone(), PivotSelection::Prefix).unwrap();
        assert!(!vp.supports_budget());
        let mut s = vp.searcher();
        assert_eq!(s.knn_approx(&q, 3, 0.05).0, s.knn(&q, 3).0);
        let dp =
            AnyIndex::build(IndexSpec::DistPerm { k: 5 }, L2, pts, PivotSelection::Prefix).unwrap();
        assert!(dp.supports_budget());
        let (_, stats) = dp.searcher().knn_approx(&q, 3, 0.1);
        assert_eq!(stats.metric_evals, 5 + 10);
    }
}
