//! The paper's `distperm` index: one distance permutation per element.
//!
//! A "minor modification of the library's `pivots` index type" (§5):
//! instead of storing k pivot *distances* per element, store only the
//! *permutation* of the sites sorted by distance.  Storage drops from
//! O(nk log n) to O(nk log k) bits — and, via the permutation codebook,
//! to ⌈log₂ N⌉ bits per element where N is the number of distinct
//! permutations that actually occur (the paper's central quantity).
//!
//! Search follows Chávez–Figueroa–Navarro: order candidates by the
//! Spearman footrule between their stored permutation and the query's,
//! then measure true distances in that order.  Permutations carry no
//! lower bound, so a budgeted scan is *approximate*; the full budget
//! (`frac = 1.0`) is exact — which is how the index satisfies the exact
//! [`crate::ProximityIndex`] contract while also implementing the
//! budgeted [`crate::ApproxSearcher`] surface.

use crate::api::{ApproxIndex, ApproxSearcher, ProximityIndex, Searcher};
use crate::laesa::{choose_pivots, PivotSelection};
use crate::query::{budgeted_knn_scan, budgeted_order, budgeted_range_scan, Neighbor, QueryStats};
use dp_metric::Metric;
use dp_permutation::encoding::Codebook;
use dp_permutation::permdist::{cayley, kendall_tau, spearman_footrule, spearman_rho_sq};
use dp_permutation::{DistPermComputer, Permutation, PermutationCounter};

/// Permutation-similarity measures available for candidate ordering.
///
/// Chávez–Figueroa–Navarro use the Spearman footrule; rho and Kendall
/// tau are the standard alternatives, and Cayley is the cheap
/// coarse-grained one.  The `permdist_ablation` harness measures what
/// the choice costs in recall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingKind {
    /// Spearman footrule (CFN's choice; the default).
    #[default]
    Footrule,
    /// Sum of squared rank displacements (Spearman rho, unnormalised).
    RhoSq,
    /// Kendall tau (discordant pairs).
    KendallTau,
    /// Cayley distance (transpositions).
    Cayley,
}

impl OrderingKind {
    /// Evaluates the measure between two permutations.
    pub fn distance(self, a: &Permutation, b: &Permutation) -> u64 {
        match self {
            OrderingKind::Footrule => spearman_footrule(a, b),
            OrderingKind::RhoSq => spearman_rho_sq(a, b),
            OrderingKind::KendallTau => kendall_tau(a, b),
            OrderingKind::Cayley => cayley(a, b),
        }
    }

    /// All variants, for sweeps.
    pub const ALL: [OrderingKind; 4] = [
        OrderingKind::Footrule,
        OrderingKind::RhoSq,
        OrderingKind::KendallTau,
        OrderingKind::Cayley,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            OrderingKind::Footrule => "footrule",
            OrderingKind::RhoSq => "rho_sq",
            OrderingKind::KendallTau => "kendall",
            OrderingKind::Cayley => "cayley",
        }
    }
}

/// Distance-permutation index over an owned database.
///
/// The k site points are **materialised once at build time** (`sites`),
/// so a query costs exactly k metric evaluations plus permutation
/// comparisons — no per-query cloning.  For bulk query streams,
/// [`Self::searcher`] additionally reuses the permutation scratch and the
/// candidate-order buffer across queries.
#[derive(Debug, Clone)]
pub struct DistPermIndex<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    site_ids: Vec<usize>,
    sites: Vec<P>,
    perms: Vec<Permutation>,
}

impl<P: Clone, M: Metric<P>> DistPermIndex<P, M> {
    /// Builds the index: chooses `k` sites, then computes each element's
    /// distance permutation (k·n metric evaluations, like LAESA's build).
    pub fn build(metric: M, points: Vec<P>, k: usize, strategy: PivotSelection) -> Self {
        let site_ids = choose_pivots(&metric, &points, k, strategy);
        Self::build_with_sites(metric, points, site_ids)
    }

    /// Builds with explicitly provided site ids (the Table 3 protocol:
    /// random distinct database elements as sites).
    pub fn build_with_sites(metric: M, points: Vec<P>, site_ids: Vec<usize>) -> Self {
        assert!(site_ids.iter().all(|&i| i < points.len()), "site id out of range");
        let sites: Vec<P> = site_ids.iter().map(|&i| points[i].clone()).collect();
        let mut computer = DistPermComputer::new(site_ids.len());
        let perms = points.iter().map(|p| computer.compute(&metric, &sites, p)).collect();
        Self { metric, points, site_ids, sites, perms }
    }
}

impl<P, M: Metric<P>> DistPermIndex<P, M> {
    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of sites k.
    pub fn k(&self) -> usize {
        self.site_ids.len()
    }

    /// The site element ids.
    pub fn site_ids(&self) -> &[usize] {
        &self.site_ids
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The stored permutations, parallel to the database.
    pub fn permutations(&self) -> &[Permutation] {
        &self.perms
    }

    /// Occurrence counter over the stored permutations — the paper's
    /// measurement (distinct count, occupancy).
    pub fn counter(&self) -> PermutationCounter {
        let mut c = PermutationCounter::new();
        for &p in &self.perms {
            c.insert(p);
        }
        c
    }

    /// Number of distinct permutations in the index
    /// (|{Π_y : y ∈ database}|).
    pub fn distinct_permutations(&self) -> usize {
        self.counter().distinct()
    }

    /// A codebook over the stored permutations plus the id stream — the
    /// paper's compact storage layout.
    pub fn codebook(&self) -> (Codebook, Vec<u32>) {
        let mut cb = Codebook::new();
        let ids = self.perms.iter().map(|&p| cb.intern(p)).collect();
        (cb, ids)
    }

    /// Raw permutation storage bits: n·k·⌈log₂ k⌉ (the CFN layout).
    pub fn storage_bits_raw(&self) -> u64 {
        use dp_permutation::encoding::element_bits;
        self.len() as u64 * self.k() as u64 * u64::from(element_bits(self.k()))
    }

    /// Codebook storage bits: n·⌈log₂ N⌉ ids plus the N-permutation
    /// table — the paper's improved layout (Θ(nd log k) in d-dimensional
    /// Euclidean space by Corollary 8).
    pub fn storage_bits_codebook(&self) -> u64 {
        use dp_permutation::encoding::element_bits;
        let n_distinct = self.distinct_permutations();
        let ids = self.len() as u64 * u64::from(element_bits(n_distinct));
        let table = n_distinct as u64 * self.k() as u64 * u64::from(element_bits(self.k()));
        ids + table
    }

    /// ASCII export of the permutations, one per line in the order of the
    /// database — the output format of the paper's `build-distperm-*`
    /// programs (count distinct with `sort | uniq | wc -l`).
    pub fn export_ascii(&self) -> String {
        let mut out = String::with_capacity(self.perms.len() * (2 * self.k() + 1));
        for p in &self.perms {
            for (i, e) in p.as_slice().iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&(e + 1).to_string());
            }
            out.push('\n');
        }
        out
    }

    /// The cached site points, parallel to [`Self::site_ids`].
    pub fn sites(&self) -> &[P] {
        &self.sites
    }

    /// The query's distance permutation (k metric evaluations, against
    /// the sites cached at build time).
    pub fn query_permutation(&self, query: &P) -> Permutation {
        let mut computer = DistPermComputer::new(self.k());
        computer.compute(&self.metric, &self.sites, query)
    }

    /// A reusable query cursor borrowing this index: permutation scratch
    /// and candidate buffers are allocated once and reused across
    /// queries, which is the right shape for serving query streams.
    pub fn session(&self) -> DistPermSearcher<'_, P, M> {
        DistPermSearcher {
            index: self,
            computer: DistPermComputer::new(self.k()),
            order: Vec::new(),
        }
    }

    /// Approximate k-NN: measure the fraction `frac` of the database most
    /// similar (by Spearman footrule) to the query's permutation.
    ///
    /// `frac = 1.0` measures everything and is exact.  Metric cost:
    /// k + ⌈frac·n⌉ evaluations.
    pub fn knn_approx(&self, query: &P, k: usize, frac: f64) -> Vec<Neighbor<M::Dist>> {
        self.session().knn_approx(query, k, frac).0
    }

    /// [`Self::knn_approx`] with an explicit candidate-ordering measure.
    pub fn knn_approx_ordered(
        &self,
        query: &P,
        k: usize,
        frac: f64,
        ordering: OrderingKind,
    ) -> Vec<Neighbor<M::Dist>> {
        self.session().knn_approx_ordered(query, k, frac, ordering).0
    }

    /// Approximate range query: report elements within `radius` among the
    /// `frac` permutation-nearest fraction of the database.
    ///
    /// A subset of the true answer (no false positives — every reported
    /// element is measured); `frac = 1.0` is exact.
    pub fn range_approx(&self, query: &P, radius: M::Dist, frac: f64) -> Vec<Neighbor<M::Dist>> {
        self.session().range_approx(query, radius, frac).0
    }
}

/// Reusable query cursor over a [`DistPermIndex`].
///
/// Holds the permutation scratch and the candidate-order buffer so a
/// stream of queries performs no per-query allocation beyond the result
/// vector.  Obtained from [`DistPermIndex::session`] (or the trait's
/// `searcher`); each thread of a query-serving loop should own one.
#[derive(Debug, Clone)]
pub struct DistPermSearcher<'a, P, M: Metric<P>> {
    index: &'a DistPermIndex<P, M>,
    computer: DistPermComputer<M::Dist>,
    order: Vec<(u64, usize)>,
}

impl<P, M: Metric<P>> DistPermSearcher<'_, P, M> {
    /// The underlying index.
    pub fn index(&self) -> &DistPermIndex<P, M> {
        self.index
    }

    /// The query's distance permutation (k metric evaluations), using
    /// the cursor's scratch.
    pub fn query_permutation(&mut self, query: &P) -> Permutation {
        self.computer.compute(&self.index.metric, &self.index.sites, query)
    }

    /// Budgeted k-NN with the default footrule ordering; returns the
    /// neighbours and the native evaluation count (k + budget).
    pub fn knn_approx(
        &mut self,
        query: &P,
        k: usize,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        self.knn_approx_ordered(query, k, frac, OrderingKind::Footrule)
    }

    /// [`Self::knn_approx`] with an explicit candidate-ordering measure.
    pub fn knn_approx_ordered(
        &mut self,
        query: &P,
        k: usize,
        frac: f64,
        ordering: OrderingKind,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        let computer = &mut self.computer;
        budgeted_knn_scan(
            index.points.len(),
            k,
            frac,
            index.k(),
            &mut self.order,
            |budget, order| {
                let qperm = computer.compute(&index.metric, &index.sites, query);
                order_candidates(&index.perms, &qperm, ordering, budget, order);
            },
            |i| index.metric.distance(query, &index.points[i]),
        )
    }

    /// Budgeted range query; a subset of the true answer, exact at
    /// `frac = 1.0`.
    pub fn range_approx(
        &mut self,
        query: &P,
        radius: M::Dist,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        let computer = &mut self.computer;
        budgeted_range_scan(
            index.points.len(),
            frac,
            index.k(),
            radius,
            &mut self.order,
            |budget, order| {
                let qperm = computer.compute(&index.metric, &index.sites, query);
                order_candidates(&index.perms, &qperm, OrderingKind::Footrule, budget, order);
            },
            |i| index.metric.distance(query, &index.points[i]),
        )
    }
}

/// Fills `order` so that its first `budget` entries are the budget
/// permutation-nearest database ids in full-sort order — the shared
/// budget fast path of [`DistPermSearcher`] and
/// [`crate::flatperm::FlatDistPermSearcher`]; see
/// [`crate::query`]'s `budgeted_order` for the select-then-sort-prefix
/// argument.
pub(crate) fn order_candidates(
    perms: &[Permutation],
    qperm: &Permutation,
    ordering: OrderingKind,
    budget: usize,
    order: &mut Vec<(u64, usize)>,
) {
    budgeted_order(perms.iter().map(|p| ordering.distance(qperm, p)), budget, order);
}

impl<P: Sync, M: Metric<P> + Sync> ProximityIndex<P> for DistPermIndex<P, M> {
    type Dist = M::Dist;
    type Searcher<'s>
        = DistPermSearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> DistPermSearcher<'_, P, M> {
        self.session()
    }
}

impl<P: Sync, M: Metric<P> + Sync> Searcher<P> for DistPermSearcher<'_, P, M> {
    type Dist = M::Dist;

    /// Exact k-NN as the full-budget scan (k + n evaluations).
    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        self.knn_approx(query, k, 1.0)
    }

    /// Exact range query as the full-budget scan (k + n evaluations).
    fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        DistPermSearcher::range_approx(self, query, radius, 1.0)
    }
}

impl<P: Sync, M: Metric<P> + Sync> ApproxSearcher<P> for DistPermSearcher<'_, P, M> {
    fn knn_approx(
        &mut self,
        query: &P,
        k: usize,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        DistPermSearcher::knn_approx(self, query, k, frac)
    }

    fn range_approx(
        &mut self,
        query: &P,
        radius: M::Dist,
        frac: f64,
    ) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        DistPermSearcher::range_approx(self, query, radius, frac)
    }
}

impl<P: Sync, M: Metric<P> + Sync> ApproxIndex<P> for DistPermIndex<P, M> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use crate::linear::LinearScan;
    use crate::query::KnnHeap;
    use dp_metric::L2;
    use dp_permutation::counter::count_distinct;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn distinct_count_matches_direct_computation() {
        let pts = random_points(400, 2, 1);
        let idx = DistPermIndex::build(L2, pts.clone(), 6, PivotSelection::Prefix);
        let sites: Vec<Vec<f64>> = (0..6).map(|i| pts[i].clone()).collect();
        assert_eq!(idx.distinct_permutations(), count_distinct(&L2, &sites, &pts));
    }

    #[test]
    fn distinct_count_respects_euclidean_bound() {
        // 2-D data, k = 5: at most N_{2,2}(5) = 46 distinct permutations.
        let pts = random_points(3000, 2, 2);
        let idx = DistPermIndex::build(L2, pts, 5, PivotSelection::MaxMin);
        assert!(idx.distinct_permutations() <= 46);
        assert!(idx.distinct_permutations() > 10, "suspiciously few cells hit");
    }

    #[test]
    fn full_budget_knn_is_exact() {
        let pts = random_points(200, 3, 3);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = DistPermIndex::build(L2, pts, 8, PivotSelection::MaxMin);
        for q in random_points(10, 3, 4) {
            assert_eq!(idx.knn_approx(&q, 5, 1.0), scan.knn(&q, 5));
        }
    }

    #[test]
    fn budgeted_knn_has_reasonable_recall() {
        let pts = random_points(1000, 3, 5);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = DistPermIndex::build(L2, pts, 12, PivotSelection::MaxMin);
        let queries = random_points(30, 3, 6);
        let mut hits = 0usize;
        for q in &queries {
            let exact: Vec<usize> = scan.knn(q, 1).iter().map(|n| n.id).collect();
            let approx: Vec<usize> = idx.knn_approx(q, 1, 0.1).iter().map(|n| n.id).collect();
            hits += usize::from(exact == approx);
        }
        // Permutation ordering should find the true NN far more often than
        // the 10% a random scan of the same budget would.
        assert!(hits >= 20, "recall {hits}/30");
    }

    #[test]
    fn native_stats_count_budget_plus_sites() {
        let pts = random_points(500, 2, 7);
        let idx = DistPermIndex::build(CountingMetric::new(L2), pts, 10, PivotSelection::Prefix);
        idx.metric().reset();
        let q = vec![0.5, 0.5];
        let (_, stats) = idx.session().knn_approx(&q, 3, 0.2);
        // k site evaluations + ceil(0.2 * 500) = 10 + 100, natively and
        // through the legacy counting wrapper alike.
        assert_eq!(stats, QueryStats::new(10 + 100));
        assert_eq!(idx.metric().count(), 10 + 100);
    }

    #[test]
    fn export_ascii_is_one_based_lines() {
        let pts = vec![vec![0.0], vec![1.0], vec![0.9]];
        let idx = DistPermIndex::build(L2, pts, 2, PivotSelection::Prefix);
        let text = idx.export_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "1 2");
        assert_eq!(lines[1], "2 1");
        assert_eq!(lines[2], "2 1");
    }

    #[test]
    fn codebook_roundtrips() {
        let pts = random_points(300, 2, 8);
        let idx = DistPermIndex::build(L2, pts, 5, PivotSelection::MaxMin);
        let (cb, ids) = idx.codebook();
        assert_eq!(ids.len(), idx.len());
        assert_eq!(cb.len(), idx.distinct_permutations());
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(cb.permutation(id), Some(&idx.permutations()[i]));
        }
    }

    #[test]
    fn range_approx_full_budget_matches_linear_scan() {
        let pts = random_points(300, 2, 11);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = DistPermIndex::build(L2, pts, 8, PivotSelection::MaxMin);
        for q in random_points(10, 2, 12) {
            let radius = dp_metric::F64Dist::new(0.25);
            assert_eq!(idx.range_approx(&q, radius, 1.0), scan.range(&q, radius));
        }
    }

    #[test]
    fn range_approx_budgeted_is_subset_of_truth() {
        let pts = random_points(500, 3, 13);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = DistPermIndex::build(L2, pts, 10, PivotSelection::MaxMin);
        for q in random_points(10, 3, 14) {
            let radius = dp_metric::F64Dist::new(0.3);
            let truth = scan.range(&q, radius);
            let approx = idx.range_approx(&q, radius, 0.2);
            assert!(approx.len() <= truth.len());
            for n in &approx {
                assert!(truth.contains(n), "false positive {n:?}");
            }
        }
    }

    #[test]
    fn every_ordering_kind_is_exact_at_full_budget() {
        let pts = random_points(150, 3, 21);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = DistPermIndex::build(L2, pts, 8, PivotSelection::MaxMin);
        for q in random_points(5, 3, 22) {
            let truth = scan.knn(&q, 3);
            for kind in OrderingKind::ALL {
                assert_eq!(idx.knn_approx_ordered(&q, 3, 1.0, kind), truth, "{kind:?}");
            }
        }
    }

    #[test]
    fn ordering_kinds_give_sane_budgeted_recall() {
        let pts = random_points(800, 3, 23);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = DistPermIndex::build(L2, pts, 10, PivotSelection::MaxMin);
        let queries = random_points(30, 3, 24);
        for kind in OrderingKind::ALL {
            let hits = queries
                .iter()
                .filter(|q| {
                    let truth = scan.knn(q, 1)[0].id;
                    idx.knn_approx_ordered(q, 1, 0.1, kind).first().map(|n| n.id) == Some(truth)
                })
                .count();
            // All measures should massively beat the 10% random baseline.
            assert!(hits >= 15, "{kind:?}: recall {hits}/30");
        }
    }

    #[test]
    fn ordering_kind_distances_match_permdist() {
        use dp_permutation::permdist;
        let a = Permutation::from_slice(&[2, 0, 3, 1]).unwrap();
        let b = Permutation::from_slice(&[1, 3, 0, 2]).unwrap();
        assert_eq!(OrderingKind::Footrule.distance(&a, &b), permdist::spearman_footrule(&a, &b));
        assert_eq!(OrderingKind::RhoSq.distance(&a, &b), permdist::spearman_rho_sq(&a, &b));
        assert_eq!(OrderingKind::KendallTau.distance(&a, &b), permdist::kendall_tau(&a, &b));
        assert_eq!(OrderingKind::Cayley.distance(&a, &b), permdist::cayley(&a, &b));
    }

    #[test]
    fn budgeted_order_matches_full_sort_prefix() {
        // The select_nth fast path must scan exactly the same candidates,
        // in the same order, as a full sort truncated to the budget.
        let pts = random_points(700, 3, 31);
        let idx = DistPermIndex::build(L2, pts.clone(), 9, PivotSelection::MaxMin);
        for (qi, q) in random_points(8, 3, 32).iter().enumerate() {
            let qperm = idx.query_permutation(q);
            for kind in OrderingKind::ALL {
                // Reference: full sort of (distance, id), then truncate.
                let mut full: Vec<(u64, usize)> = idx
                    .permutations()
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (kind.distance(&qperm, p), i))
                    .collect();
                full.sort_unstable();
                for budget_frac in [0.05f64, 0.33, 0.8] {
                    let budget = ((budget_frac * 700.0).ceil() as usize).max(3);
                    let expected: Vec<Neighbor<_>> = {
                        let mut heap = KnnHeap::new(3);
                        for &(_, i) in full.iter().take(budget) {
                            heap.push(i, L2.distance(q, &pts[i]));
                        }
                        heap.into_sorted()
                    };
                    let got = idx.knn_approx_ordered(q, 3, budget_frac, kind);
                    assert_eq!(got, expected, "query {qi}, {kind:?}, frac {budget_frac}");
                }
            }
        }
    }

    #[test]
    fn searcher_reuse_matches_one_shot_queries() {
        let pts = random_points(400, 2, 33);
        let idx = DistPermIndex::build(L2, pts, 8, PivotSelection::MaxMin);
        let mut searcher = idx.session();
        for q in random_points(12, 2, 34) {
            assert_eq!(searcher.knn_approx(&q, 4, 0.25).0, idx.knn_approx(&q, 4, 0.25));
            assert_eq!(searcher.query_permutation(&q), idx.query_permutation(&q));
            let radius = dp_metric::F64Dist::new(0.2);
            assert_eq!(searcher.range_approx(&q, radius, 0.5).0, idx.range_approx(&q, radius, 0.5));
        }
    }

    #[test]
    fn trait_surface_is_exact_and_counts_full_scan() {
        let pts = random_points(120, 2, 36);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = DistPermIndex::build(L2, pts, 6, PivotSelection::MaxMin);
        for q in random_points(6, 2, 37) {
            let (got, stats) = idx.query_knn(&q, 4);
            assert_eq!(got, scan.knn(&q, 4));
            assert_eq!(stats, QueryStats::new(6 + 120));
            let radius = dp_metric::F64Dist::new(0.3);
            let (got, _) = idx.query_range(&q, radius);
            assert_eq!(got, scan.range(&q, radius));
        }
    }

    #[test]
    fn cached_sites_match_site_ids() {
        let pts = random_points(100, 2, 35);
        let idx = DistPermIndex::build(L2, pts.clone(), 5, PivotSelection::MaxMin);
        let expected: Vec<Vec<f64>> = idx.site_ids().iter().map(|&i| pts[i].clone()).collect();
        assert_eq!(idx.sites(), &expected[..]);
    }

    #[test]
    fn sites_have_identity_prefix_property() {
        // A site's own permutation starts with itself.
        let pts = random_points(50, 2, 9);
        let idx = DistPermIndex::build(L2, pts, 6, PivotSelection::MaxMin);
        for (rank, &sid) in idx.site_ids().iter().enumerate() {
            assert_eq!(idx.permutations()[sid].get(0) as usize, rank, "site {rank}");
        }
    }
}
