//! Pivot (site) selection beyond the classical heuristics.
//!
//! The paper's counting results carry a design hint for permutation
//! indexes: the information in a stored permutation is ⌈log₂ N⌉ bits,
//! where N is the number of distinct permutations the chosen sites
//! actually realise over the data.  Two site sets of equal size can
//! differ wildly in N (Table 2 vs Table 3), so
//! [`perm_diversity_pivots`] selects sites *greedily maximising the
//! distinct-permutation count* over a data sample — directly optimising
//! the quantity the paper counts.  [`random_pivots`] reproduces the
//! paper's Table 3 protocol (sites are random database elements).
//!
//! Both are deterministic in their seed; randomness comes from a local
//! SplitMix64 so this crate stays free of RNG dependencies.

use dp_metric::{Distance, Metric};
use dp_permutation::fxhash::FxHashSet;
use dp_permutation::{Permutation, MAX_K};

/// SplitMix64 step — the standard 64-bit mixer (Steele–Lea–Flood).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `count` distinct indices sampled uniformly from `0..n`, deterministic
/// in `seed` (partial Fisher–Yates).
///
/// # Panics
/// Panics if `count > n`.
pub fn sample_distinct(n: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(count <= n, "cannot sample {count} distinct from {n}");
    let mut state = seed;
    // Partial Fisher–Yates over a lazily materialised identity map: only
    // touched slots are stored, so sampling k of n costs O(k) memory.
    let mut swapped: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let j = i + (splitmix64(&mut state) % (n - i) as u64) as usize;
        let vi = swapped.get(&i).copied().unwrap_or(i);
        let vj = swapped.get(&j).copied().unwrap_or(j);
        out.push(vj);
        swapped.insert(j, vi);
    }
    out
}

/// The Table 3 site protocol: k distinct random database elements.
pub fn random_pivots(n: usize, k: usize, seed: u64) -> Vec<usize> {
    sample_distinct(n, k, seed)
}

/// Greedy distinct-permutation-maximising site selection.
///
/// Draws a candidate pool C and an evaluation sample S from the data
/// (sizes scale with k, capped for cost), precomputes the |C|×|S|
/// distance matrix (the only metric evaluations), then greedily adds the
/// candidate whose inclusion maximises |{Π_y : y ∈ S}|, breaking ties by
/// smaller element id.  Metric cost: |C|·|S| evaluations.
///
/// # Panics
/// Panics if `k > points.len()` or `k > MAX_K`.
pub fn perm_diversity_pivots<P, M: Metric<P>>(
    metric: &M,
    points: &[P],
    k: usize,
    seed: u64,
) -> Vec<usize> {
    let n = points.len();
    assert!(k <= n, "asked for {k} pivots from {n} points");
    assert!(k <= MAX_K, "k = {k} exceeds MAX_K = {MAX_K}");
    if k == 0 {
        return Vec::new();
    }
    let pool = (4 * k).clamp(k, 48).min(n);
    let sample = 512.min(n);
    let candidates = sample_distinct(n, pool, seed);
    let sample_ids = sample_distinct(n, sample, seed ^ 0xA5A5_A5A5_A5A5_A5A5);

    // dist[c][s] = d(candidate c, sample s): the full metric budget.
    let dist: Vec<Vec<f64>> = candidates
        .iter()
        .map(|&c| {
            sample_ids.iter().map(|&s| metric.distance(&points[c], &points[s]).to_f64()).collect()
        })
        .collect();

    let mut chosen: Vec<usize> = Vec::with_capacity(k); // indices into `candidates`
    let mut scratch: Vec<(f64, u8)> = Vec::with_capacity(k);
    while chosen.len() < k {
        let mut best: Option<(usize, usize)> = None; // (distinct, candidate idx)
        for (ci, &cid) in candidates.iter().enumerate() {
            if chosen.contains(&ci) {
                continue;
            }
            let mut seen: FxHashSet<Permutation> = FxHashSet::default();
            for (s, &cand_d) in dist[ci].iter().enumerate() {
                scratch.clear();
                for (rank, &prev) in chosen.iter().enumerate() {
                    scratch.push((dist[prev][s], rank as u8));
                }
                scratch.push((cand_d, chosen.len() as u8));
                scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                let items: Vec<u8> = scratch.iter().map(|&(_, i)| i).collect();
                seen.insert(Permutation::from_slice(&items).expect("ranks are a permutation"));
            }
            let better = match best {
                None => true,
                Some((bd, bc)) => seen.len() > bd || (seen.len() == bd && cid < candidates[bc]),
            };
            if better {
                best = Some((seen.len(), ci));
            }
        }
        let (_, ci) = best.expect("candidate pool non-empty");
        chosen.push(ci);
    }
    chosen.into_iter().map(|ci| candidates[ci]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use dp_metric::L2;
    use dp_permutation::counter::count_distinct;

    fn grid_points(n: usize) -> Vec<Vec<f64>> {
        // Deterministic low-discrepancy-ish 2-D points.
        (0..n)
            .map(|i| {
                let x = (i as f64 * 0.754_877_666_246_7) % 1.0;
                let y = (i as f64 * 0.569_840_290_998_0) % 1.0;
                vec![x, y]
            })
            .collect()
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        for (n, c, seed) in [(10, 10, 1u64), (100, 7, 2), (5, 0, 3), (1, 1, 4)] {
            let s = sample_distinct(n, c, seed);
            assert_eq!(s.len(), c);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), c, "duplicates from n={n} c={c}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_distinct_deterministic_and_seed_sensitive() {
        let a = sample_distinct(1000, 20, 42);
        let b = sample_distinct(1000, 20, 42);
        let c = sample_distinct(1000, 20, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_rejected() {
        sample_distinct(3, 4, 0);
    }

    #[test]
    fn diversity_selection_beats_clustered_sites() {
        // All candidates equal: the greedy pick must at least match the
        // distinct count of a *clustered* (adversarially bad) site set.
        let pts = grid_points(600);
        let sites_div = perm_diversity_pivots(&L2, &pts, 5, 7);
        let clustered: Vec<usize> = (0..5).collect(); // first 5 points
        let div_sites: Vec<Vec<f64>> = sites_div.iter().map(|&i| pts[i].clone()).collect();
        let clu_sites: Vec<Vec<f64>> = clustered.iter().map(|&i| pts[i].clone()).collect();
        let nd = count_distinct(&L2, &div_sites, &pts);
        let nc = count_distinct(&L2, &clu_sites, &pts);
        assert!(nd >= nc, "diversity {nd} < clustered {nc}");
        // And it respects the Euclidean ceiling N_{2,2}(5) = 46.
        assert!(nd <= 46);
    }

    #[test]
    fn diversity_metric_budget_is_pool_times_sample() {
        let pts = grid_points(200);
        let metric = CountingMetric::new(L2);
        let k = 4;
        let _ = perm_diversity_pivots(&metric, &pts, k, 1);
        let pool = (4 * k).clamp(k, 48).min(200);
        assert_eq!(metric.count() as usize, pool * 200);
    }

    #[test]
    fn diversity_handles_edge_sizes() {
        let pts = grid_points(6);
        assert!(perm_diversity_pivots(&L2, &pts, 0, 1).is_empty());
        let all = perm_diversity_pivots(&L2, &pts, 6, 1);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "must use every point: {all:?}");
    }

    #[test]
    fn random_pivots_via_enum() {
        use crate::laesa::{choose_pivots, PivotSelection};
        let pts = grid_points(50);
        let a = choose_pivots(&L2, &pts, 5, PivotSelection::Random(9));
        let b = choose_pivots(&L2, &pts, 5, PivotSelection::Random(9));
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 5);
    }
}
