//! Metric-evaluation counting for *build* costs.
//!
//! Proximity-search research assumes the metric dominates all other costs,
//! so data structures are compared by evaluations per query.  **Query**
//! costs are counted natively by every [`crate::Searcher`] and returned
//! in [`crate::QueryStats`] — no wrapper on the hot path, and nothing
//! `!Sync` in a serving session.  [`CountingMetric`] remains for the
//! costs the searcher cannot see: index *construction* (`build` takes
//! the metric by value, so wrap it to count build evaluations) and
//! ad-hoc instrumentation in tests.  It counts through a
//! [`std::cell::Cell`], which deliberately makes it `!Sync`: an index
//! wrapped in it cannot enter the [`crate::ProximityIndex`] family, so
//! the legacy wrapper can never leak into parallel serving.

use dp_metric::Metric;
use std::cell::Cell;

/// A metric wrapper that counts evaluations.
#[derive(Debug, Default)]
pub struct CountingMetric<M> {
    inner: M,
    count: Cell<u64>,
}

impl<M> CountingMetric<M> {
    /// Wraps `inner` with a fresh zero counter.
    pub fn new(inner: M) -> Self {
        Self { inner, count: Cell::new(0) }
    }

    /// Evaluations since construction or the last [`Self::reset`].
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.count.replace(0)
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<P: ?Sized, M: Metric<P>> Metric<P> for CountingMetric<M> {
    type Dist = M::Dist;

    #[inline]
    fn distance(&self, a: &P, b: &P) -> M::Dist {
        self.count.set(self.count.get() + 1);
        self.inner.distance(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_metric::L2;

    #[test]
    fn counts_every_evaluation() {
        let m = CountingMetric::new(L2);
        let a = vec![0.0, 0.0];
        let b = vec![3.0, 4.0];
        assert_eq!(m.count(), 0);
        let d = m.distance(&a, &b);
        assert_eq!(d.get(), 5.0);
        assert_eq!(m.count(), 1);
        for _ in 0..9 {
            let _ = m.distance(&a, &b);
        }
        assert_eq!(m.count(), 10);
    }

    #[test]
    fn reset_returns_previous() {
        let m = CountingMetric::new(L2);
        let a = vec![0.0];
        let _ = m.distance(&a, &a);
        assert_eq!(m.reset(), 1);
        assert_eq!(m.count(), 0);
    }

    #[test]
    fn works_through_reference() {
        let m = CountingMetric::new(L2);
        let r = &m;
        let a = vec![1.0];
        let _ = Metric::distance(&r, &a, &a);
        assert_eq!(m.count(), 1);
    }
}
