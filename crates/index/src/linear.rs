//! The naive baseline: measure the distance to everything.

use crate::query::{KnnHeap, Neighbor};
use dp_metric::Metric;

/// Linear scan over an owned database; n metric evaluations per query.
///
/// Serves as ground truth for every other index in the crate's tests.
#[derive(Debug, Clone)]
pub struct LinearScan<P> {
    points: Vec<P>,
}

impl<P> LinearScan<P> {
    /// Wraps a database.
    pub fn new(points: Vec<P>) -> Self {
        Self { points }
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying points.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// All elements within distance `radius` of `query` (inclusive),
    /// sorted by (distance, id).
    pub fn range<M: Metric<P>>(
        &self,
        metric: &M,
        query: &P,
        radius: M::Dist,
    ) -> Vec<Neighbor<M::Dist>> {
        let mut out: Vec<Neighbor<M::Dist>> = self
            .points
            .iter()
            .enumerate()
            .filter_map(|(id, p)| {
                let d = metric.distance(query, p);
                (d <= radius).then_some(Neighbor { id, dist: d })
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// The k nearest neighbours of `query`, sorted by (distance, id).
    pub fn knn<M: Metric<P>>(&self, metric: &M, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        let mut heap = KnnHeap::new(k.min(self.points.len()).max(1));
        for (id, p) in self.points.iter().enumerate() {
            heap.push(id, metric.distance(query, p));
        }
        if self.points.is_empty() {
            return Vec::new();
        }
        heap.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use dp_metric::L2;

    fn db() -> LinearScan<Vec<f64>> {
        LinearScan::new(vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0], vec![5.0, 5.0]])
    }

    #[test]
    fn knn_orders_by_distance() {
        let ids: Vec<usize> = db().knn(&L2, &vec![0.1, 0.0], 3).iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn range_is_inclusive() {
        let r = db().range(&L2, &vec![0.0, 0.0], dp_metric::F64Dist::new(2.0));
        assert_eq!(r.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn knn_costs_exactly_n_evaluations() {
        let m = CountingMetric::new(L2);
        let s = db();
        let _ = s.knn(&m, &vec![0.0, 0.0], 2);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn empty_database() {
        let s: LinearScan<Vec<f64>> = LinearScan::new(vec![]);
        assert!(s.is_empty());
        assert!(s.knn(&L2, &vec![0.0], 3).is_empty());
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let out = db().knn(&L2, &vec![0.0, 0.0], 10);
        assert_eq!(out.len(), 4);
    }
}
