//! The naive baseline: measure the distance to everything.

use crate::api::{ProximityIndex, Searcher};
use crate::query::{KnnHeap, Neighbor, QueryStats};
use dp_metric::Metric;

/// Linear scan over an owned database; n metric evaluations per query.
///
/// Serves as ground truth for every other index in the crate's tests:
/// the [`ProximityIndex`] contract is "identical answers to
/// [`LinearScan`], hopefully with fewer evaluations".
#[derive(Debug, Clone)]
pub struct LinearScan<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
}

impl<P, M: Metric<P>> LinearScan<P, M> {
    /// Wraps a database and its metric.
    pub fn new(metric: M, points: Vec<P>) -> Self {
        Self { metric, points }
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the database is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The underlying points.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// The owned metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// A reusable query session (the linear scan needs no scratch, but
    /// the session carries the native evaluation counter).
    pub fn session(&self) -> LinearSearcher<'_, P, M> {
        LinearSearcher { index: self }
    }

    /// All elements within distance `radius` of `query` (inclusive),
    /// sorted by (distance, id).
    pub fn range(&self, query: &P, radius: M::Dist) -> Vec<Neighbor<M::Dist>> {
        self.session().range(query, radius).0
    }

    /// The k nearest neighbours of `query`, sorted by (distance, id).
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        self.session().knn(query, k).0
    }
}

/// Query session over a [`LinearScan`].
#[derive(Debug, Clone)]
pub struct LinearSearcher<'a, P, M: Metric<P>> {
    index: &'a LinearScan<P, M>,
}

impl<P, M: Metric<P>> LinearSearcher<'_, P, M> {
    /// The underlying index.
    pub fn index(&self) -> &LinearScan<P, M> {
        self.index
    }

    /// Exact k-NN; always n metric evaluations.
    pub fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let points = &self.index.points;
        if points.is_empty() || k == 0 {
            return (Vec::new(), QueryStats::default());
        }
        let mut heap = KnnHeap::new(k.min(points.len()));
        for (id, p) in points.iter().enumerate() {
            heap.push(id, self.index.metric.distance(query, p));
        }
        (heap.into_sorted(), QueryStats::new(points.len() as u64))
    }

    /// Exact range query; always n metric evaluations.
    pub fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let points = &self.index.points;
        let mut out: Vec<Neighbor<M::Dist>> = points
            .iter()
            .enumerate()
            .filter_map(|(id, p)| {
                let d = self.index.metric.distance(query, p);
                (d <= radius).then_some(Neighbor { id, dist: d })
            })
            .collect();
        out.sort_unstable();
        (out, QueryStats::new(points.len() as u64))
    }
}

impl<P: Sync, M: Metric<P> + Sync> ProximityIndex<P> for LinearScan<P, M> {
    type Dist = M::Dist;
    type Searcher<'s>
        = LinearSearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> LinearSearcher<'_, P, M> {
        self.session()
    }
}

impl<P: Sync, M: Metric<P> + Sync> Searcher<P> for LinearSearcher<'_, P, M> {
    type Dist = M::Dist;

    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        LinearSearcher::knn(self, query, k)
    }

    fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        LinearSearcher::range(self, query, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use dp_metric::L2;

    fn db() -> LinearScan<Vec<f64>, L2> {
        LinearScan::new(L2, vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0], vec![5.0, 5.0]])
    }

    #[test]
    fn knn_orders_by_distance() {
        let ids: Vec<usize> = db().knn(&vec![0.1, 0.0], 3).iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn range_is_inclusive() {
        let r = db().range(&vec![0.0, 0.0], dp_metric::F64Dist::new(2.0));
        assert_eq!(r.iter().map(|n| n.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn stats_report_exactly_n_evaluations() {
        let (out, stats) = db().query_knn(&vec![0.0, 0.0], 2);
        assert_eq!(out.len(), 2);
        assert_eq!(stats, QueryStats::new(4));
        let (_, stats) = db().query_range(&vec![0.0, 0.0], dp_metric::F64Dist::new(1.0));
        assert_eq!(stats.metric_evals, 4);
    }

    #[test]
    fn counting_metric_agrees_with_native_stats() {
        let s = LinearScan::new(
            CountingMetric::new(L2),
            vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0], vec![5.0, 5.0]],
        );
        let _ = s.knn(&vec![0.0, 0.0], 2);
        assert_eq!(s.metric().count(), 4);
    }

    #[test]
    fn empty_database() {
        let s: LinearScan<Vec<f64>, L2> = LinearScan::new(L2, vec![]);
        assert!(s.is_empty());
        assert!(s.knn(&vec![0.0], 3).is_empty());
        assert_eq!(s.query_knn(&vec![0.0], 3).1, QueryStats::default());
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let out = db().knn(&vec![0.0, 0.0], 10);
        assert_eq!(out.len(), 4);
    }
}
