//! iAESA (Figueroa–Chávez–Navarro–Paredes, WEA'06).
//!
//! AESA picks its next candidate by smallest triangle-inequality lower
//! bound; iAESA instead picks the unexamined element whose *distance
//! permutation* (w.r.t. a fixed site set) is most similar to the query's —
//! "distance permutations are also used to select pivot elements,
//! providing a further improvement in search speed over AESA" (§1).
//! Elimination still uses the full AESA matrix, so results stay exact.

use crate::api::{ProximityIndex, Searcher};
use crate::laesa::{choose_pivots, PivotSelection};
use crate::query::{KnnHeap, Neighbor, QueryStats};
use dp_metric::{Distance, Metric};
use dp_permutation::permdist::spearman_footrule;
use dp_permutation::{DistPermComputer, Permutation};

/// iAESA index: the AESA matrix plus per-element distance permutations.
///
/// The k site points are materialised once at build time, so computing a
/// query's permutation costs k metric evaluations and no cloning.
#[derive(Debug, Clone)]
pub struct IAesa<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    matrix: Vec<M::Dist>,
    site_ids: Vec<usize>,
    sites: Vec<P>,
    perms: Vec<Permutation>,
}

impl<P: Clone, M: Metric<P>> IAesa<P, M> {
    /// Builds the index: full matrix plus k-site permutations.
    pub fn build(metric: M, points: Vec<P>, k: usize, strategy: PivotSelection) -> Self {
        let n = points.len();
        let mut matrix = vec![M::Dist::ZERO; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.distance(&points[i], &points[j]);
                matrix[i * n + j] = d;
                matrix[j * n + i] = d;
            }
        }
        let site_ids = choose_pivots(&metric, &points, k, strategy);
        let sites: Vec<P> = site_ids.iter().map(|&i| points[i].clone()).collect();
        // Permutations can be read off the matrix — no extra metric cost.
        let mut perms = Vec::with_capacity(n);
        let mut scratch: Vec<(M::Dist, u8)> = Vec::with_capacity(k);
        for i in 0..n {
            scratch.clear();
            for (s, &sid) in site_ids.iter().enumerate() {
                scratch.push((matrix[i * n + sid], s as u8));
            }
            scratch.sort_unstable();
            let items: Vec<u8> = scratch.iter().map(|&(_, s)| s).collect();
            perms.push(Permutation::from_slice(&items).expect("valid by construction"));
        }
        Self { metric, points, matrix, site_ids, sites, perms }
    }
}

impl<P, M: Metric<P>> IAesa<P, M> {
    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The site element ids.
    pub fn site_ids(&self) -> &[usize] {
        &self.site_ids
    }

    /// The cached site points, parallel to [`Self::site_ids`].
    pub fn sites(&self) -> &[P] {
        &self.sites
    }

    fn stored(&self, i: usize, j: usize) -> M::Dist {
        self.matrix[i * self.points.len() + j]
    }

    /// A reusable query session: permutation scratch, similarity column
    /// and elimination state are allocated once and reused.
    pub fn session(&self) -> IAesaSearcher<'_, P, M> {
        IAesaSearcher {
            index: self,
            computer: DistPermComputer::new(self.site_ids.len()),
            similarity: Vec::new(),
            lb: Vec::new(),
            alive: Vec::new(),
            examined: Vec::new(),
        }
    }

    /// Exact k nearest neighbours with permutation-guided candidate order.
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        self.session().knn(query, k).0
    }

    /// All elements within `radius` (inclusive; exact), examined in
    /// permutation-similarity order with AESA elimination.
    pub fn range(&self, query: &P, radius: M::Dist) -> Vec<Neighbor<M::Dist>> {
        self.session().range(query, radius).0
    }
}

/// Query session over an [`IAesa`] index.
#[derive(Debug, Clone)]
pub struct IAesaSearcher<'a, P, M: Metric<P>> {
    index: &'a IAesa<P, M>,
    computer: DistPermComputer<M::Dist>,
    similarity: Vec<u64>,
    lb: Vec<f64>,
    alive: Vec<bool>,
    examined: Vec<bool>,
}

impl<P, M: Metric<P>> IAesaSearcher<'_, P, M> {
    /// The underlying index.
    pub fn index(&self) -> &IAesa<P, M> {
        self.index
    }

    /// Query permutation (k evaluations) + footrule similarity column.
    fn prepare(&mut self, query: &P) -> u64 {
        let index = self.index;
        let n = index.points.len();
        let qperm = self.computer.compute(&index.metric, &index.sites, query);
        self.similarity.clear();
        self.similarity.extend(index.perms.iter().map(|p| spearman_footrule(&qperm, p)));
        self.lb.clear();
        self.lb.resize(n, 0.0);
        self.alive.clear();
        self.alive.resize(n, true);
        self.examined.clear();
        self.examined.resize(n, false);
        index.sites.len() as u64
    }

    /// Candidate: most permutation-similar alive unexamined element
    /// (footrule ascending; lower bound as tie-break).
    fn next_candidate(&self) -> Option<usize> {
        let mut next: Option<(usize, u64, f64)> = None;
        for i in 0..self.similarity.len() {
            if self.alive[i] && !self.examined[i] {
                let better = match next {
                    None => true,
                    Some((_, s, b)) => {
                        self.similarity[i] < s || (self.similarity[i] == s && self.lb[i] < b)
                    }
                };
                if better {
                    next = Some((i, self.similarity[i], self.lb[i]));
                }
            }
        }
        next.map(|(i, _, _)| i)
    }

    /// Exact k-NN with permutation-guided candidate order.
    pub fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        if index.points.is_empty() || k == 0 {
            return (Vec::new(), QueryStats::default());
        }
        let n = index.points.len();
        let mut evals = self.prepare(query);
        let mut heap = KnnHeap::new(k.min(n));
        while let Some(c) = self.next_candidate() {
            self.examined[c] = true;
            evals += 1;
            let d = index.metric.distance(query, &index.points[c]);
            heap.push(c, d);
            let bound = heap.bound().map(Distance::to_f64);
            let df = d.to_f64();
            for i in 0..n {
                if self.alive[i] && !self.examined[i] {
                    let b = (df - index.stored(c, i).to_f64()).abs();
                    if b > self.lb[i] {
                        self.lb[i] = b;
                    }
                    if let Some(bd) = bound {
                        if self.lb[i] > bd {
                            self.alive[i] = false;
                        }
                    }
                }
            }
        }
        (heap.into_sorted(), QueryStats::new(evals))
    }

    /// Exact range query: same candidate order, elimination against the
    /// fixed radius.
    pub fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        let index = self.index;
        if index.points.is_empty() {
            return (Vec::new(), QueryStats::default());
        }
        let n = index.points.len();
        let r = radius.to_f64();
        let mut evals = self.prepare(query);
        let mut out = Vec::new();
        while let Some(c) = self.next_candidate() {
            self.examined[c] = true;
            evals += 1;
            let d = index.metric.distance(query, &index.points[c]);
            if d <= radius {
                out.push(Neighbor { id: c, dist: d });
            }
            let df = d.to_f64();
            for i in 0..n {
                if self.alive[i] && !self.examined[i] {
                    let b = (df - index.stored(c, i).to_f64()).abs();
                    if b > self.lb[i] {
                        self.lb[i] = b;
                    }
                    if self.lb[i] > r {
                        self.alive[i] = false;
                    }
                }
            }
        }
        out.sort_unstable();
        (out, QueryStats::new(evals))
    }
}

impl<P: Sync, M: Metric<P> + Sync> ProximityIndex<P> for IAesa<P, M> {
    type Dist = M::Dist;
    type Searcher<'s>
        = IAesaSearcher<'s, P, M>
    where
        Self: 's;

    fn size(&self) -> usize {
        self.points.len()
    }

    fn searcher(&self) -> IAesaSearcher<'_, P, M> {
        self.session()
    }
}

impl<P: Sync, M: Metric<P> + Sync> Searcher<P> for IAesaSearcher<'_, P, M> {
    type Dist = M::Dist;

    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        IAesaSearcher::knn(self, query, k)
    }

    fn range(&mut self, query: &P, radius: M::Dist) -> (Vec<Neighbor<M::Dist>>, QueryStats) {
        IAesaSearcher::range(self, query, radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dp_metric::{F64Dist, L2};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn knn_matches_linear_scan() {
        let pts = random_points(120, 3, 1);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = IAesa::build(L2, pts, 6, PivotSelection::MaxMin);
        for q in random_points(20, 3, 2) {
            assert_eq!(idx.knn(&q, 4), scan.knn(&q, 4));
        }
    }

    #[test]
    fn range_matches_linear_scan() {
        let pts = random_points(120, 2, 6);
        let scan = LinearScan::new(L2, pts.clone());
        let idx = IAesa::build(L2, pts, 5, PivotSelection::MaxMin);
        for q in random_points(15, 2, 7) {
            for r in [0.1, 0.3, 0.7] {
                let radius = F64Dist::new(r);
                assert_eq!(idx.range(&q, radius), scan.range(&q, radius), "r={r}");
            }
        }
    }

    #[test]
    fn evaluation_count_is_competitive_with_aesa() {
        let pts = random_points(300, 2, 3);
        let iaesa = IAesa::build(L2, pts.clone(), 8, PivotSelection::MaxMin);
        let aesa = crate::Aesa::build(L2, pts);
        let queries = random_points(25, 2, 4);
        let mut si = iaesa.session();
        let mut sa = aesa.session();
        let ei: u64 = queries.iter().map(|q| si.knn(q, 1).1.metric_evals).sum();
        let ea: u64 = queries.iter().map(|q| sa.knn(q, 1).1.metric_evals).sum();
        // iAESA pays k extra site evaluations per query but selects
        // candidates better; allow generous slack, require both to be far
        // below linear scan.
        assert!(ei < 25 * 150, "iAESA mean {}", ei / 25);
        assert!(ea < 25 * 150, "AESA mean {}", ea / 25);
    }

    #[test]
    fn native_stats_agree_with_counting_metric() {
        use crate::counting::CountingMetric;
        let pts = random_points(150, 2, 8);
        let idx = IAesa::build(CountingMetric::new(L2), pts, 6, PivotSelection::MaxMin);
        let mut session = idx.session();
        for q in random_points(10, 2, 9) {
            idx.metric().reset();
            let (_, stats) = session.knn(&q, 3);
            assert_eq!(stats.metric_evals, idx.metric().count(), "knn");
            idx.metric().reset();
            let (_, stats) = session.range(&q, F64Dist::new(0.25));
            assert_eq!(stats.metric_evals, idx.metric().count(), "range");
        }
    }

    #[test]
    fn perms_match_direct_computation() {
        let pts = random_points(60, 2, 5);
        let idx = IAesa::build(L2, pts.clone(), 5, PivotSelection::Prefix);
        let sites: Vec<Vec<f64>> = (0..5).map(|i| pts[i].clone()).collect();
        let direct = dp_permutation::compute::database_permutations(&L2, &sites, &pts);
        assert_eq!(idx.perms, direct);
        assert_eq!(idx.sites(), &sites[..]);
    }

    #[test]
    fn empty_database() {
        let idx: IAesa<Vec<f64>, L2> = IAesa::build(L2, vec![], 0, PivotSelection::Prefix);
        assert!(idx.knn(&vec![0.0], 3).is_empty());
        assert!(idx.range(&vec![0.0], F64Dist::new(1.0)).is_empty());
    }
}
