//! iAESA (Figueroa–Chávez–Navarro–Paredes, WEA'06).
//!
//! AESA picks its next candidate by smallest triangle-inequality lower
//! bound; iAESA instead picks the unexamined element whose *distance
//! permutation* (w.r.t. a fixed site set) is most similar to the query's —
//! "distance permutations are also used to select pivot elements,
//! providing a further improvement in search speed over AESA" (§1).
//! Elimination still uses the full AESA matrix, so results stay exact.

use crate::laesa::{choose_pivots, PivotSelection};
use crate::query::{KnnHeap, Neighbor};
use dp_metric::{Distance, Metric};
use dp_permutation::permdist::spearman_footrule;
use dp_permutation::{DistPermComputer, Permutation};

/// iAESA index: the AESA matrix plus per-element distance permutations.
#[derive(Debug, Clone)]
pub struct IAesa<P, M: Metric<P>> {
    metric: M,
    points: Vec<P>,
    matrix: Vec<M::Dist>,
    site_ids: Vec<usize>,
    perms: Vec<Permutation>,
}

impl<P: Clone, M: Metric<P>> IAesa<P, M> {
    /// Builds the index: full matrix plus k-site permutations.
    pub fn build(metric: M, points: Vec<P>, k: usize, strategy: PivotSelection) -> Self {
        let n = points.len();
        let mut matrix = vec![M::Dist::ZERO; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.distance(&points[i], &points[j]);
                matrix[i * n + j] = d;
                matrix[j * n + i] = d;
            }
        }
        let site_ids = choose_pivots(&metric, &points, k, strategy);
        // Permutations can be read off the matrix — no extra metric cost.
        let mut perms = Vec::with_capacity(n);
        let mut scratch: Vec<(M::Dist, u8)> = Vec::with_capacity(k);
        for i in 0..n {
            scratch.clear();
            for (s, &sid) in site_ids.iter().enumerate() {
                scratch.push((matrix[i * n + sid], s as u8));
            }
            scratch.sort_unstable();
            let items: Vec<u8> = scratch.iter().map(|&(_, s)| s).collect();
            perms.push(Permutation::from_slice(&items).expect("valid by construction"));
        }
        Self { metric, points, matrix, site_ids, perms }
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owned metric (for evaluation counting).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    fn stored(&self, i: usize, j: usize) -> M::Dist {
        self.matrix[i * self.points.len() + j]
    }

    /// Exact k nearest neighbours with permutation-guided candidate order.
    pub fn knn(&self, query: &P, k: usize) -> Vec<Neighbor<M::Dist>> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let n = self.points.len();
        // Query permutation: k evaluations against the site elements.
        let sites: Vec<P> = self.site_ids.iter().map(|&i| self.points[i].clone()).collect();
        let mut computer = DistPermComputer::new(self.site_ids.len());
        let qperm = computer.compute(&self.metric, &sites, query);
        let similarity: Vec<u64> =
            self.perms.iter().map(|p| spearman_footrule(&qperm, p)).collect();

        let mut heap = KnnHeap::new(k.min(n));
        let mut lb = vec![0.0f64; n];
        let mut alive = vec![true; n];
        let mut examined = vec![false; n];
        loop {
            // Candidate: most permutation-similar alive unexamined element
            // (footrule ascending; lower bound as tie-break).
            let mut next: Option<(usize, u64, f64)> = None;
            for i in 0..n {
                if alive[i] && !examined[i] {
                    let better = match next {
                        None => true,
                        Some((_, s, b)) => similarity[i] < s || (similarity[i] == s && lb[i] < b),
                    };
                    if better {
                        next = Some((i, similarity[i], lb[i]));
                    }
                }
            }
            let Some((c, _, _)) = next else { break };
            examined[c] = true;
            let d = self.metric.distance(query, &self.points[c]);
            heap.push(c, d);
            let bound = heap.bound().map(Distance::to_f64);
            let df = d.to_f64();
            for i in 0..n {
                if alive[i] && !examined[i] {
                    let b = (df - self.stored(c, i).to_f64()).abs();
                    if b > lb[i] {
                        lb[i] = b;
                    }
                    if let Some(bd) = bound {
                        if lb[i] > bd {
                            alive[i] = false;
                        }
                    }
                }
            }
        }
        heap.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::CountingMetric;
    use crate::linear::LinearScan;
    use dp_metric::L2;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..d).map(|_| rng.random::<f64>()).collect()).collect()
    }

    #[test]
    fn knn_matches_linear_scan() {
        let pts = random_points(120, 3, 1);
        let scan = LinearScan::new(pts.clone());
        let idx = IAesa::build(L2, pts, 6, PivotSelection::MaxMin);
        for q in random_points(20, 3, 2) {
            assert_eq!(idx.knn(&q, 4), scan.knn(&L2, &q, 4));
        }
    }

    #[test]
    fn evaluation_count_is_competitive_with_aesa() {
        let pts = random_points(300, 2, 3);
        let iaesa = IAesa::build(CountingMetric::new(L2), pts.clone(), 8, PivotSelection::MaxMin);
        let aesa = crate::Aesa::build(CountingMetric::new(L2), pts);
        let queries = random_points(25, 2, 4);
        let (mut ei, mut ea) = (0u64, 0u64);
        for q in &queries {
            iaesa.metric().reset();
            let _ = iaesa.knn(q, 1);
            ei += iaesa.metric().count();
            aesa.metric().reset();
            let _ = aesa.knn(q, 1);
            ea += aesa.metric().count();
        }
        // iAESA pays k extra site evaluations per query but selects
        // candidates better; allow generous slack, require both to be far
        // below linear scan.
        assert!(ei < 25 * 150, "iAESA mean {}", ei / 25);
        assert!(ea < 25 * 150, "AESA mean {}", ea / 25);
    }

    #[test]
    fn perms_match_direct_computation() {
        let pts = random_points(60, 2, 5);
        let idx = IAesa::build(L2, pts.clone(), 5, PivotSelection::Prefix);
        let sites: Vec<Vec<f64>> = (0..5).map(|i| pts[i].clone()).collect();
        let direct = dp_permutation::compute::database_permutations(&L2, &sites, &pts);
        assert_eq!(idx.perms, direct);
    }

    #[test]
    fn empty_database() {
        let idx: IAesa<Vec<f64>, L2> = IAesa::build(L2, vec![], 0, PivotSelection::Prefix);
        assert!(idx.knn(&vec![0.0], 3).is_empty());
    }
}
