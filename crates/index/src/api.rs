//! The unified proximity-query API: [`ProximityIndex`] / [`Searcher`]
//! and their budgeted counterparts [`ApproxIndex`] / [`ApproxSearcher`].
//!
//! Every index type in this crate answers queries through the same
//! two-level surface:
//!
//! * the **index** is the immutable, shareable (`Sync`) build product —
//!   points, pivot tables, trees, permutations;
//! * a **searcher** is a cheap per-session cursor obtained from
//!   [`ProximityIndex::searcher`].  It owns all per-query scratch
//!   (permutation computers, lower-bound arrays, candidate buffers), so a
//!   stream of queries through one searcher performs no per-query
//!   allocation beyond the result vector, and a searcher is `Send` — one
//!   per worker thread is exactly the shape of
//!   [`crate::serve::query_batch_parallel`].
//!
//! Every query returns `(Vec<Neighbor>, QueryStats)`: the field's cost
//! model (metric evaluations per query) is counted natively by the
//! searcher and travels with the answer, so no interior-mutability
//! metric wrapper sits on the hot path.
//!
//! Exactness contract: [`Searcher::knn`] and [`Searcher::range`] return
//! answers identical to [`crate::LinearScan`] over the same database
//! (sorted by `(distance, id)`); the property suite enforces this for
//! every index type.  The permutation-family indexes additionally
//! implement [`ApproxSearcher`], whose budgeted queries trade recall for
//! evaluations and coincide with the exact answers at `frac = 1.0`.

use crate::query::{Neighbor, QueryStats};
use dp_metric::Distance;

/// An immutable proximity-search index over points of type `P`.
///
/// The index owns its metric and database; queries run through a
/// [`Searcher`] session created by [`Self::searcher`].  Implementations
/// are `Sync`, so one index can serve many concurrent searchers.
pub trait ProximityIndex<P: ?Sized>: Sync {
    /// The totally ordered distance values this index's metric produces.
    type Dist: Distance;

    /// The per-session query cursor; owns all per-query scratch and is
    /// `Send` so sessions can be handed to worker threads.
    type Searcher<'s>: Searcher<P, Dist = Self::Dist> + Send
    where
        Self: 's;

    /// Number of indexed elements.
    fn size(&self) -> usize;

    /// Creates a query session.  Sessions are cheap, independent, and
    /// reusable: a searcher serving its thousandth query returns exactly
    /// what a fresh searcher would.
    fn searcher(&self) -> Self::Searcher<'_>;

    /// One-shot exact k-NN (builds a throwaway session).
    fn query_knn(&self, query: &P, k: usize) -> (Vec<Neighbor<Self::Dist>>, QueryStats) {
        self.searcher().knn(query, k)
    }

    /// One-shot exact range query (builds a throwaway session).
    fn query_range(
        &self,
        query: &P,
        radius: Self::Dist,
    ) -> (Vec<Neighbor<Self::Dist>>, QueryStats) {
        self.searcher().range(query, radius)
    }
}

/// A reusable query session over some [`ProximityIndex`].
///
/// Methods take `&mut self` only to reuse scratch buffers; a searcher
/// holds no answer-relevant state between queries.
pub trait Searcher<P: ?Sized> {
    /// The distance type of the underlying index.
    type Dist: Distance;

    /// The k nearest neighbours of `query`, sorted by `(distance, id)` —
    /// identical to a linear scan's answer.
    ///
    /// `k = 0` returns an empty result with zero evaluations; this holds
    /// uniformly across implementations.
    fn knn(&mut self, query: &P, k: usize) -> (Vec<Neighbor<Self::Dist>>, QueryStats);

    /// All elements within `radius` of `query` (inclusive), sorted by
    /// `(distance, id)` — identical to a linear scan's answer.
    fn range(&mut self, query: &P, radius: Self::Dist) -> (Vec<Neighbor<Self::Dist>>, QueryStats);
}

/// A query session that also supports budgeted (approximate) queries.
///
/// `frac` is the fraction of the database the searcher may measure true
/// distances against, chosen in candidate-similarity order
/// (Chávez–Figueroa–Navarro).  `frac = 1.0` measures everything and is
/// exact; smaller budgets trade recall for evaluations.  Range results
/// are always a subset of the true answer (no false positives).
pub trait ApproxSearcher<P: ?Sized>: Searcher<P> {
    /// Budgeted k-NN over the `frac` most similar fraction of the
    /// database.
    ///
    /// # Panics
    /// Panics if `frac` is outside `[0, 1]`.
    fn knn_approx(
        &mut self,
        query: &P,
        k: usize,
        frac: f64,
    ) -> (Vec<Neighbor<Self::Dist>>, QueryStats);

    /// Budgeted range query over the `frac` most similar fraction of the
    /// database.
    ///
    /// # Panics
    /// Panics if `frac` is outside `[0, 1]`.
    fn range_approx(
        &mut self,
        query: &P,
        radius: Self::Dist,
        frac: f64,
    ) -> (Vec<Neighbor<Self::Dist>>, QueryStats);
}

/// Marker + convenience surface for indexes whose sessions support
/// budgeted queries (the permutation family).
///
/// The searcher bound lives on the methods (at the borrow's concrete
/// lifetime) rather than on the trait, so implementations and generic
/// code avoid higher-ranked `for<'s>` obligations.  Generic code over an
/// `ApproxIndex` names the borrow lifetime explicitly:
///
/// ```text
/// fn sweep<'i, P, I>(idx: &'i I)
/// where
///     I: ApproxIndex<P>,
///     I::Searcher<'i>: ApproxSearcher<P>,
/// { ... }
/// ```
pub trait ApproxIndex<P: ?Sized>: ProximityIndex<P> {
    /// One-shot budgeted k-NN (builds a throwaway session).
    fn query_knn_approx<'a>(
        &'a self,
        query: &P,
        k: usize,
        frac: f64,
    ) -> (Vec<Neighbor<Self::Dist>>, QueryStats)
    where
        Self::Searcher<'a>: ApproxSearcher<P>,
    {
        self.searcher().knn_approx(query, k, frac)
    }

    /// One-shot budgeted range query (builds a throwaway session).
    fn query_range_approx<'a>(
        &'a self,
        query: &P,
        radius: Self::Dist,
        frac: f64,
    ) -> (Vec<Neighbor<Self::Dist>>, QueryStats)
    where
        Self::Searcher<'a>: ApproxSearcher<P>,
    {
        self.searcher().range_approx(query, radius, frac)
    }
}
