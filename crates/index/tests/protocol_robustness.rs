//! Adversarial property suite for the serve protocol parser and the
//! session loop's malformed-input hardening.
//!
//! The parser's contract is **totality**: every byte sequence maps to a
//! `Frame` or a typed `ProtocolError`, never a panic — and a serving
//! session fed arbitrary garbage replies with `error` lines and keeps
//! answering well-formed batches.  These properties run the parser and
//! a live session over truncated frames, CRLF endings, oversized lines,
//! and interleaved garbage.

use dp_index::serve::{
    serve_session, FaultPlan, Frame, LineParser, ProtocolError, QueryKind, SessionConfig,
};
use dp_index::{DistPermIndex, PivotSelection};
use dp_metric::L2;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn parser(dim: usize) -> LineParser {
    LineParser::new(dim)
}

fn printable(rng: &mut TestRng, max_len: usize) -> String {
    let len = (rng.next_u64() % (max_len as u64 + 1)) as usize;
    (0..len).map(|_| char::from(b' ' + (rng.next_u64() % 95) as u8)).collect()
}

fn pick<'a>(rng: &mut TestRng, items: &'a [&'a str]) -> &'a str {
    items[(rng.next_u64() % items.len() as u64) as usize]
}

/// Arbitrary single lines: random printable garbage, protocol-shaped
/// prefixes, and byte noise with whitespace.
fn arb_line() -> impl Strategy<Value = String> {
    (0usize..4).prop_perturb(|variant, mut rng| match variant {
        // Pure printable garbage.
        0 => printable(&mut rng, 80),
        // Protocol-shaped: verb plus random tail (truncations included).
        1 => {
            let verb = pick(&mut rng, &["begin", "knn", "range", "end", "#", ""]);
            let tail = printable(&mut rng, 40);
            format!("{verb} {tail}")
        }
        // Numeric soup that stresses the coordinate parser.
        2 => {
            let tokens =
                ["1.5", "-0", "nan", "inf", "1e308", "frac=0.5", "frac=x", "deadline-ms=10", "--"];
            let n = (rng.next_u64() % 8) as usize;
            let soup: Vec<&str> = (0..n).map(|_| pick(&mut rng, &tokens)).collect();
            format!("knn 2 {}", soup.join(" "))
        }
        // Whitespace and line-ending torture.
        _ => {
            let ws = |rng: &mut TestRng| " \t".repeat((rng.next_u64() % 3) as usize);
            let core = pick(&mut rng, &["end", "begin b", "knn 1 0 0"]).to_string();
            let cr = if rng.next_u64() % 2 == 0 { "\r" } else { "" };
            format!("{}{core}{}{cr}", ws(&mut rng), ws(&mut rng))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Totality: the parser classifies every line, never panics.
    #[test]
    fn parser_is_total_on_arbitrary_lines(line in arb_line(), dim in 0usize..5) {
        let result = std::panic::catch_unwind(|| parser(dim).parse(&line));
        let outcome = result.expect("parser must never panic");
        if let Err(e) = outcome {
            // Every error renders as a one-line diagnostic.
            let msg = e.to_string();
            prop_assert!(!msg.is_empty());
            prop_assert!(!msg.contains('\n'));
        }
    }

    // CRLF endings parse identically to bare LF content.
    #[test]
    fn crlf_is_transparent(line in "[ -~]{0,60}") {
        let p = parser(2);
        prop_assert_eq!(p.parse(&line), p.parse(&format!("{line}\r")));
        prop_assert_eq!(p.parse(&line), p.parse(&format!("{line}\r\n")));
    }

    // Oversized lines are rejected by length, whatever their content.
    #[test]
    fn oversized_lines_always_rejected(filler in "[a-z0-9 ]{1,64}") {
        let p = LineParser { dim: 2, max_line_bytes: 32 };
        let long = filler.repeat(1 + 64 / filler.len());
        prop_assume!(long.len() > 32);
        match p.parse(&long) {
            Err(ProtocolError::OversizedLine { len, max }) => {
                prop_assert_eq!(len, long.len());
                prop_assert_eq!(max, 32);
            }
            other => prop_assert!(false, "expected OversizedLine, got {:?}", other),
        }
    }

    // Well-formed knn lines round-trip exactly.
    #[test]
    fn valid_knn_round_trips(
        k in 1usize..100,
        coords in proptest::collection::vec(-1e6f64..1e6, 1..6),
    ) {
        let line = format!(
            "knn {k} {}",
            coords.iter().map(f64::to_string).collect::<Vec<_>>().join(" ")
        );
        match parser(coords.len()).parse(&line) {
            Ok(Frame::Query { kind: QueryKind::Knn { k: got }, frac: None, point }) => {
                prop_assert_eq!(got, k);
                prop_assert_eq!(point, coords);
            }
            other => prop_assert!(false, "expected knn frame, got {:?}", other),
        }
    }

    // A session fed interleaved garbage and one valid batch always
    // answers the batch, replies to every garbage line, and says bye.
    #[test]
    fn session_survives_interleaved_garbage(
        garbage in proptest::collection::vec(arb_line(), 0..12),
        split in 0usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<Vec<f64>> =
            (0..60).map(|_| (0..2).map(|_| rng.random::<f64>()).collect()).collect();
        let index = DistPermIndex::build(L2, pts, 4, PivotSelection::MaxMin);

        // Garbage outside the batch only: inside, error lines attach to
        // the batch but `begin`/`end` tokens inside the garbage could
        // legitimately restructure batches — this property pins the
        // *outside* hardening.
        let split = split.min(garbage.len());
        let mut input = String::new();
        for g in &garbage[..split] {
            input.push_str(g);
            input.push('\n');
        }
        input.push_str("begin ok\nknn 1 0.5 0.5\nend\n");
        for g in &garbage[split..] {
            input.push_str(g);
            input.push('\n');
        }

        let mut out = Vec::new();
        let summary = serve_session::<Vec<f64>, _, _, _>(
            &index,
            2,
            input.as_bytes(),
            &mut out,
            &SessionConfig::default(),
            &FaultPlan::none(),
        )
        .expect("in-memory io");
        let text = String::from_utf8(out).expect("utf8 replies");
        // The valid batch is always served...
        prop_assert!(summary.batches >= 1, "{}", text);
        prop_assert!(summary.ok + summary.degraded + summary.failed >= 1, "{}", text);
        // ...and the session always shuts down cleanly.
        prop_assert!(text.ends_with('\n'), "{}", text);
        prop_assert!(text.lines().last().expect("bye line").starts_with("bye "), "{}", text);
    }
}

#[test]
fn truncated_batches_at_every_prefix_are_contained() {
    // Cutting the input at any byte boundary inside a valid transcript
    // must never panic the session, and always ends in `bye`.
    let mut rng = StdRng::seed_from_u64(10);
    let pts: Vec<Vec<f64>> =
        (0..50).map(|_| (0..2).map(|_| rng.random::<f64>()).collect()).collect();
    let index = DistPermIndex::build(L2, pts, 4, PivotSelection::MaxMin);
    let full = "begin b1 deadline-ms=5 frac=0.5\nknn 2 0.25 0.75\nrange 0.3 0.5 0.5\nend\n";
    for cut in 0..=full.len() {
        let mut out = Vec::new();
        let summary = serve_session::<Vec<f64>, _, _, _>(
            &index,
            2,
            full.as_bytes()[..cut].to_vec().as_slice(),
            &mut out,
            &SessionConfig::default(),
            &FaultPlan::none(),
        )
        .expect("in-memory io");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.lines().last().expect("reply").starts_with("bye "), "cut={cut}: {text}");
        if cut == full.len() {
            assert_eq!(summary.batches, 1, "full transcript serves the batch");
        }
    }
}
