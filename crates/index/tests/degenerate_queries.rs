//! Degenerate-input regression tests for the query and serving paths:
//! every combination a serving worker can receive — k = 0, k > n, empty
//! databases, empty batches, thread counts of 0 or far beyond the batch
//! — must answer (or error) without panicking.

use dp_datasets::VectorSet;
use dp_index::serve::{query_batch_parallel, Request};
use dp_index::{DistPermIndex, FlatDistPermIndex, PivotSelection, ProximityIndex};
use dp_metric::L2;

fn pts(n: usize, d: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| (0..d).map(|j| ((i * d + j) as f64).sin()).collect()).collect()
}

#[test]
fn knn_with_k_beyond_database_size() {
    let p = pts(5, 2);
    let idx = DistPermIndex::build(L2, p.clone(), 3, PivotSelection::Prefix);
    let flat =
        FlatDistPermIndex::build(L2, VectorSet::from_nested(&p), 3, PivotSelection::Prefix, 1);
    for k in [4usize, 5, 6, 100] {
        let out = idx.knn_approx(&vec![0.0, 0.0], k, 1.0);
        assert_eq!(out.len(), 5.min(k), "k = {k}");
        assert_eq!(flat.knn_approx(&[0.0, 0.0], k, 1.0), out, "flat, k = {k}");
    }
}

#[test]
fn knn_with_tiny_fraction_on_tiny_database() {
    let p = pts(3, 2);
    let idx = DistPermIndex::build(L2, p, 2, PivotSelection::Prefix);
    assert_eq!(idx.knn_approx(&vec![0.0, 0.0], 1, 0.0001).len(), 1);
}

#[test]
fn empty_databases_answer_empty() {
    let idx = DistPermIndex::build_with_sites(L2, Vec::<Vec<f64>>::new(), vec![]);
    assert!(idx.knn_approx(&vec![0.0, 0.0], 3, 0.5).is_empty());
    let flat = FlatDistPermIndex::build_with_sites(L2, VectorSet::new(2), vec![], 1);
    assert!(flat.knn_approx(&[0.0, 0.0], 3, 0.5).is_empty());
}

#[test]
fn k_zero_queries_answer_empty() {
    let p = pts(5, 2);
    let idx = DistPermIndex::build(L2, p.clone(), 3, PivotSelection::Prefix);
    let (out, stats) = idx.query_knn(&vec![0.0, 0.0], 0);
    assert!(out.is_empty());
    assert_eq!(stats.metric_evals, 0);
    let flat =
        FlatDistPermIndex::build(L2, VectorSet::from_nested(&p), 3, PivotSelection::Prefix, 1);
    let (out, stats) = flat.session().knn_approx(&[0.0, 0.0], 0, 0.5);
    assert!(out.is_empty());
    assert_eq!(stats.metric_evals, 0);
}

#[test]
fn serving_degenerate_thread_and_batch_combinations() {
    let p = pts(3, 2);
    let idx = DistPermIndex::build(L2, p, 2, PivotSelection::Prefix);
    let queries = pts(2, 2);
    let seq = query_batch_parallel(&idx, &queries, Request::Knn { k: 1 }, 1);
    for threads in [0usize, 7, 100] {
        assert_eq!(
            query_batch_parallel(&idx, &queries, Request::Knn { k: 1 }, threads),
            seq,
            "threads = {threads}"
        );
    }
    let none: Vec<Vec<f64>> = Vec::new();
    assert!(query_batch_parallel(&idx, &none, Request::Knn { k: 1 }, 8).is_empty());
}
