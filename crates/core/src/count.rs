//! The measurement at the heart of the paper: |{Π_y : y ∈ database}|.
//!
//! Two equivalent engines are provided:
//!
//! * the generic per-point path ([`count_permutations`]) for any metric
//!   over any point type (strings, trees, sparse vectors, …);
//! * the flat batched path ([`count_permutations_flat`]) for real-vector
//!   data in [`VectorSet`] storage — site-transposed, 4-wide strip-mined
//!   distance kernels feeding the width-generic packed sorted-run
//!   counter (LSD radix sort over the `5k` significant key bits,
//!   run-length scan; the parallel variant radix-sorts per-chunk key
//!   buffers in the workers and merges the sorted runs), identical
//!   results, several times the throughput.  This is the engine behind
//!   the Table 3 protocol in [`crate::experiments`].
//!
//! The flat path dispatches once per workload over the packed-key width
//! ([`CountEngine::for_k`]): `u64` keys for k ≤ 12, `u128` keys for
//! k ≤ 25, and the hash counter over materialised permutations beyond
//! that.  All three engines produce bit-identical reports.

use dp_datasets::VectorSet;
use dp_metric::{BatchDistance, Metric, TransposedSites};
use dp_permutation::compute::{
    collect_counter_flat, collect_counter_flat_parallel, collect_packed_flat,
    collect_packed_flat_parallel, collect_sharded_flat_parallel, PACKED_MAX_K, WIDE_MAX_K,
};
use dp_permutation::counter::collect_counter;
use dp_permutation::{DistPermComputer, PackedCountSummary, PackedKey, PermutationCounter};

/// Summary of one counting run.
#[derive(Debug, Clone, PartialEq)]
pub struct CountReport {
    /// Number of distinct distance permutations observed.
    pub distinct: usize,
    /// Database size scanned.
    pub total: u64,
    /// Mean database elements per observed permutation ("about 10 database
    /// points per permutation", §5).
    pub mean_occupancy: f64,
}

impl From<&PermutationCounter> for CountReport {
    fn from(c: &PermutationCounter) -> Self {
        CountReport { distinct: c.distinct(), total: c.total(), mean_occupancy: c.mean_occupancy() }
    }
}

impl<K: PackedKey> From<&PackedCountSummary<K>> for CountReport {
    fn from(c: &PackedCountSummary<K>) -> Self {
        CountReport { distinct: c.distinct(), total: c.total(), mean_occupancy: c.mean_occupancy() }
    }
}

/// Which counting engine the flat path selects for a given site count.
///
/// The selection is a property of `k` alone, made once per workload, so
/// the monomorphized kernels under it contain no width branches.  All
/// three engines produce bit-identical [`CountReport`]s — the packed
/// paths are faster, never different.  The CLI reports the chosen
/// engine's [`name`](CountEngine::name) so a k that silently leaves the
/// packed range is visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountEngine {
    /// Sorted-run counting over `u64` packed keys (k ≤ 12).
    PackedU64,
    /// Sorted-run counting over `u128` packed keys (13 ≤ k ≤ 25).
    PackedU128,
    /// Hash counting over materialised permutations (k ≥ 26).
    Hash,
}

impl CountEngine {
    /// The engine the flat counting and survey paths run at `k` sites.
    pub fn for_k(k: usize) -> Self {
        if k <= PACKED_MAX_K {
            CountEngine::PackedU64
        } else if k <= WIDE_MAX_K {
            CountEngine::PackedU128
        } else {
            CountEngine::Hash
        }
    }

    /// Stable lower-case label for logs and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            CountEngine::PackedU64 => "packed-u64",
            CountEngine::PackedU128 => "packed-u128",
            CountEngine::Hash => "hash",
        }
    }
}

/// Counts distinct distance permutations of `database` w.r.t. `sites`.
///
/// Exactly `sites.len() * database.len()` metric evaluations.
pub fn count_permutations<P, M: Metric<P>>(metric: &M, sites: &[P], database: &[P]) -> CountReport {
    CountReport::from(&collect_counter(metric, sites, database))
}

/// Parallel version: splits the database across `threads` scoped workers
/// and merges the per-chunk counters.  Deterministic: the merged distinct
/// set is independent of the split.
pub fn count_permutations_parallel<P, M>(
    metric: &M,
    sites: &[P],
    database: &[P],
    threads: usize,
) -> CountReport
where
    P: Sync,
    M: Metric<P> + Sync,
{
    let threads = threads.max(1).min(database.len().max(1));
    if threads <= 1 || database.len() < 1024 {
        return count_permutations(metric, sites, database);
    }
    let chunk = database.len().div_ceil(threads);
    let mut counters: Vec<PermutationCounter> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = database
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    let mut computer = DistPermComputer::new(sites.len());
                    let mut counter = PermutationCounter::new();
                    for y in part {
                        counter.insert(computer.compute(metric, sites, y));
                    }
                    counter
                })
            })
            .collect();
        for h in handles {
            counters.push(h.join().expect("counting worker panicked"));
        }
    })
    .expect("crossbeam scope");
    let mut merged = PermutationCounter::new();
    for c in &counters {
        merged.merge(c);
    }
    CountReport::from(&merged)
}

/// Counts distinct distance permutations over flat vector storage.
///
/// Batched equivalent of [`count_permutations`]: same `distinct`,
/// `total` and `mean_occupancy` (distances are bit-for-bit identical),
/// computed by the site-transposed block kernel.
///
/// # Panics
/// Panics if the site and database dimensions disagree (when both are
/// non-empty).
pub fn count_permutations_flat<M: BatchDistance>(
    metric: &M,
    sites: &VectorSet,
    database: &VectorSet,
) -> CountReport {
    flat_counter(metric, sites, database)
}

/// Parallel [`count_permutations_flat`]: splits the database rows across
/// `threads` scoped workers and merges the per-chunk counters.
/// Deterministic — the report is independent of the split.
pub fn count_permutations_flat_parallel<M: BatchDistance + Sync>(
    metric: &M,
    sites: &VectorSet,
    database: &VectorSet,
    threads: usize,
) -> CountReport {
    check_flat_dims(sites, database);
    let sites_t = transpose_sites(sites, database);
    let flat = database.as_flat();
    dp_permutation::for_packed_k!(
        sites.len(),
        K => {
            let counter = collect_packed_flat_parallel::<K, _>(metric, &sites_t, flat, threads);
            CountReport::from(&counter.finalize())
        },
        _ => CountReport::from(&collect_counter_flat_parallel(metric, &sites_t, flat, threads)),
    )
}

/// [`count_permutations_flat_parallel`] with bounded memory: packed
/// keys stream through a [`dp_permutation::ShardedCounter`] per worker
/// (each holding at most `shard_rows` keys plus the distinct-run
/// frontier) instead of buffering all n keys before the sort.
/// `shard_rows = 0` means "in-memory" and delegates to the buffering
/// engine.  The report is bit-identical either way — sharding changes
/// the working set, never the counts.
///
/// Beyond [`WIDE_MAX_K`] there is no packed key to shard on, so the
/// hash engine runs regardless of `shard_rows` (its working set is
/// already one entry per distinct permutation).
pub fn count_permutations_flat_sharded<M: BatchDistance + Sync>(
    metric: &M,
    sites: &VectorSet,
    database: &VectorSet,
    threads: usize,
    shard_rows: usize,
) -> CountReport {
    if shard_rows == 0 {
        return count_permutations_flat_parallel(metric, sites, database, threads);
    }
    check_flat_dims(sites, database);
    let sites_t = transpose_sites(sites, database);
    let flat = database.as_flat();
    dp_permutation::for_packed_k!(
        sites.len(),
        K => {
            let summary =
                collect_sharded_flat_parallel::<K, _>(metric, &sites_t, flat, threads, shard_rows);
            CountReport::from(&summary)
        },
        _ => CountReport::from(&collect_counter_flat_parallel(metric, &sites_t, flat, threads)),
    )
}

fn flat_counter<M: BatchDistance>(
    metric: &M,
    sites: &VectorSet,
    database: &VectorSet,
) -> CountReport {
    check_flat_dims(sites, database);
    let sites_t = transpose_sites(sites, database);
    dp_permutation::for_packed_k!(
        sites.len(),
        K => CountReport::from(
            &collect_packed_flat::<K, _>(metric, &sites_t, database.as_flat()).finalize(),
        ),
        _ => CountReport::from(&collect_counter_flat(metric, &sites_t, database.as_flat())),
    )
}

pub(crate) fn check_flat_dims(sites: &VectorSet, database: &VectorSet) {
    assert!(
        sites.is_empty() || database.is_empty() || sites.dim() == database.dim(),
        "site dimension {} != database dimension {}",
        sites.dim(),
        database.dim()
    );
}

/// Sites transposed with a definite dimension: an empty site set adopts
/// the database's dimension so the kernels can still split rows.
pub(crate) fn transpose_sites(sites: &VectorSet, database: &VectorSet) -> TransposedSites {
    let dim = if sites.is_empty() { database.dim() } else { sites.dim() };
    TransposedSites::from_rows(sites.as_flat(), dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_datasets::{uniform_unit_cube, uniform_unit_cube_flat};
    use dp_metric::{L2Squared, L2};

    #[test]
    fn report_fields() {
        let sites = vec![vec![0.0], vec![1.0]];
        let db: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0]).collect();
        let r = count_permutations(&L2, &sites, &db);
        assert_eq!(r.distinct, 2);
        assert_eq!(r.total, 10);
        assert!((r.mean_occupancy - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = uniform_unit_cube(5000, 3, 1);
        let sites = uniform_unit_cube(8, 3, 2);
        let seq = count_permutations(&L2, &sites, &db);
        for threads in [2, 3, 8] {
            let par = count_permutations_parallel(&L2, &sites, &db, threads);
            assert_eq!(par.distinct, seq.distinct, "threads={threads}");
            assert_eq!(par.total, seq.total);
        }
    }

    #[test]
    fn l2_and_squared_l2_agree() {
        // Monotone transforms of the metric preserve permutations.
        let db = uniform_unit_cube(2000, 2, 3);
        let sites = uniform_unit_cube(6, 2, 4);
        assert_eq!(
            count_permutations(&L2, &sites, &db).distinct,
            count_permutations(&L2Squared, &sites, &db).distinct
        );
    }

    #[test]
    fn flat_matches_nested_exactly() {
        // Same seed → identical coordinates → the reports must agree in
        // every field, for several (d, k) shapes and all three metrics.
        for (d, k, seed) in [(2usize, 6usize, 10u64), (6, 12, 11), (1, 3, 12)] {
            let db = uniform_unit_cube(3000, d, seed);
            let sites = uniform_unit_cube(k, d, seed ^ 1);
            let db_flat = uniform_unit_cube_flat(3000, d, seed);
            let sites_flat = uniform_unit_cube_flat(k, d, seed ^ 1);
            let nested = count_permutations(&L2Squared, &sites, &db);
            let flat = count_permutations_flat(&L2Squared, &sites_flat, &db_flat);
            assert_eq!(flat, nested, "d={d} k={k}");
            assert_eq!(
                count_permutations_flat(&dp_metric::L1, &sites_flat, &db_flat),
                count_permutations(&dp_metric::L1, &sites, &db)
            );
            assert_eq!(
                count_permutations_flat(&dp_metric::LInf, &sites_flat, &db_flat),
                count_permutations(&dp_metric::LInf, &sites, &db)
            );
        }
    }

    #[test]
    fn empty_site_set_matches_nested_semantics() {
        // k = 0: every point has the empty permutation — one distinct,
        // total = n (NOT n·d; regression for the zero-dim site case).
        let db = uniform_unit_cube(500, 3, 30);
        let db_flat = uniform_unit_cube_flat(500, 3, 30);
        let nested = count_permutations(&L2, &Vec::<Vec<f64>>::new(), &db);
        let flat = count_permutations_flat(&L2, &dp_datasets::VectorSet::new(0), &db_flat);
        assert_eq!(flat, nested);
        assert_eq!(flat.total, 500);
        assert_eq!(flat.distinct, 1);
    }

    #[test]
    fn flat_parallel_deterministic_in_thread_count() {
        let db = uniform_unit_cube_flat(20_000, 3, 21);
        let sites = uniform_unit_cube_flat(8, 3, 22);
        let seq = count_permutations_flat(&L2Squared, &sites, &db);
        for threads in [2, 3, 5, 8] {
            assert_eq!(
                count_permutations_flat_parallel(&L2Squared, &sites, &db, threads),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn engine_selection_matches_the_dispatch_macro() {
        for k in 0usize..=32 {
            let expected = dp_permutation::for_packed_k!(
                k,
                K => if K::BITS == 64 { CountEngine::PackedU64 } else { CountEngine::PackedU128 },
                _ => CountEngine::Hash,
            );
            assert_eq!(CountEngine::for_k(k), expected, "k = {k}");
        }
        assert_eq!(CountEngine::for_k(12), CountEngine::PackedU64);
        assert_eq!(CountEngine::for_k(13), CountEngine::PackedU128);
        assert_eq!(CountEngine::for_k(25), CountEngine::PackedU128);
        assert_eq!(CountEngine::for_k(26), CountEngine::Hash);
        assert_eq!(CountEngine::for_k(13).name(), "packed-u128");
    }

    #[test]
    fn flat_matches_nested_across_the_width_seams() {
        // k = 12/13 (u64 → u128) and k = 25/26 (u128 → hash): every
        // engine must agree with the nested per-point path in every
        // field, including the f64 occupancy bits.
        for k in [12usize, 13, 14, 25, 26] {
            let db = uniform_unit_cube(1500, 4, 40 + k as u64);
            let sites = uniform_unit_cube(k, 4, 41 ^ k as u64);
            let db_flat = uniform_unit_cube_flat(1500, 4, 40 + k as u64);
            let sites_flat = uniform_unit_cube_flat(k, 4, 41 ^ k as u64);
            let nested = count_permutations(&L2Squared, &sites, &db);
            let flat = count_permutations_flat(&L2Squared, &sites_flat, &db_flat);
            assert_eq!(flat, nested, "k = {k} ({})", CountEngine::for_k(k).name());
            assert_eq!(flat.mean_occupancy.to_bits(), nested.mean_occupancy.to_bits(), "k = {k}");
        }
    }

    #[test]
    fn wide_flat_parallel_deterministic_in_thread_count() {
        let db = uniform_unit_cube_flat(8_000, 3, 42);
        let sites = uniform_unit_cube_flat(16, 3, 43);
        let seq = count_permutations_flat(&L2Squared, &sites, &db);
        for threads in [2, 3, 5, 8] {
            assert_eq!(
                count_permutations_flat_parallel(&L2Squared, &sites, &db, threads),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn count_bounded_by_theory() {
        let db = uniform_unit_cube(20_000, 2, 5);
        let sites = uniform_unit_cube(6, 2, 6);
        let r = count_permutations_parallel(&L2, &sites, &db, 4);
        // N_{2,2}(6) = 101.
        assert!(r.distinct <= 101, "{}", r.distinct);
        assert!(r.distinct >= 50, "{} cells hit of 101", r.distinct);
    }
}
