//! The measurement at the heart of the paper: |{Π_y : y ∈ database}|.

use dp_metric::Metric;
use dp_permutation::counter::collect_counter;
use dp_permutation::{DistPermComputer, PermutationCounter};

/// Summary of one counting run.
#[derive(Debug, Clone, PartialEq)]
pub struct CountReport {
    /// Number of distinct distance permutations observed.
    pub distinct: usize,
    /// Database size scanned.
    pub total: u64,
    /// Mean database elements per observed permutation ("about 10 database
    /// points per permutation", §5).
    pub mean_occupancy: f64,
}

impl From<&PermutationCounter> for CountReport {
    fn from(c: &PermutationCounter) -> Self {
        CountReport { distinct: c.distinct(), total: c.total(), mean_occupancy: c.mean_occupancy() }
    }
}

/// Counts distinct distance permutations of `database` w.r.t. `sites`.
///
/// Exactly `sites.len() * database.len()` metric evaluations.
pub fn count_permutations<P, M: Metric<P>>(
    metric: &M,
    sites: &[P],
    database: &[P],
) -> CountReport {
    CountReport::from(&collect_counter(metric, sites, database))
}

/// Parallel version: splits the database across `threads` scoped workers
/// and merges the per-chunk counters.  Deterministic: the merged distinct
/// set is independent of the split.
pub fn count_permutations_parallel<P, M>(
    metric: &M,
    sites: &[P],
    database: &[P],
    threads: usize,
) -> CountReport
where
    P: Sync,
    M: Metric<P> + Sync,
{
    let threads = threads.max(1).min(database.len().max(1));
    if threads <= 1 || database.len() < 1024 {
        return count_permutations(metric, sites, database);
    }
    let chunk = database.len().div_ceil(threads);
    let mut counters: Vec<PermutationCounter> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = database
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move |_| {
                    let mut computer = DistPermComputer::new(sites.len());
                    let mut counter = PermutationCounter::new();
                    for y in part {
                        counter.insert(computer.compute(metric, sites, y));
                    }
                    counter
                })
            })
            .collect();
        for h in handles {
            counters.push(h.join().expect("counting worker panicked"));
        }
    })
    .expect("crossbeam scope");
    let mut merged = PermutationCounter::new();
    for c in &counters {
        merged.merge(c);
    }
    CountReport::from(&merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_datasets::uniform_unit_cube;
    use dp_metric::{L2, L2Squared};

    #[test]
    fn report_fields() {
        let sites = vec![vec![0.0], vec![1.0]];
        let db: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0]).collect();
        let r = count_permutations(&L2, &sites, &db);
        assert_eq!(r.distinct, 2);
        assert_eq!(r.total, 10);
        assert!((r.mean_occupancy - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = uniform_unit_cube(5000, 3, 1);
        let sites = uniform_unit_cube(8, 3, 2);
        let seq = count_permutations(&L2, &sites, &db);
        for threads in [2, 3, 8] {
            let par = count_permutations_parallel(&L2, &sites, &db, threads);
            assert_eq!(par.distinct, seq.distinct, "threads={threads}");
            assert_eq!(par.total, seq.total);
        }
    }

    #[test]
    fn l2_and_squared_l2_agree() {
        // Monotone transforms of the metric preserve permutations.
        let db = uniform_unit_cube(2000, 2, 3);
        let sites = uniform_unit_cube(6, 2, 4);
        assert_eq!(
            count_permutations(&L2, &sites, &db).distinct,
            count_permutations(&L2Squared, &sites, &db).distinct
        );
    }

    #[test]
    fn count_bounded_by_theory() {
        let db = uniform_unit_cube(20_000, 2, 5);
        let sites = uniform_unit_cube(6, 2, 6);
        let r = count_permutations_parallel(&L2, &sites, &db, 4);
        // N_{2,2}(6) = 101.
        assert!(r.distinct <= 101, "{}", r.distinct);
        assert!(r.distinct >= 50, "{} cells hit of 101", r.distinct);
    }
}
