//! The §5 survey on the flat batched engine — same report, several
//! times the throughput.
//!
//! [`survey_database_flat`] is the [`crate::survey::survey_database`]
//! protocol specialised to [`VectorSet`] storage: ρ sampling runs over
//! row views with the identical pair stream, and every per-k counting
//! pass runs through the site-transposed, 4-wide strip-mined
//! [`BatchDistance`] kernels with
//! the branchless k²/2 ranking — width-generic packed sort+scan
//! counting (`u64` keys for k ≤ [`PACKED_MAX_K`], `u128` keys for
//! k ≤ [`WIDE_MAX_K`]), the hash counter beyond.  Distances, counts,
//! frequency tables and therefore **every field of the returned
//! [`DatabaseSurvey`] are bit-for-bit identical** to the generic
//! per-point path; the workspace property suite
//! (`tests/survey_equivalence.rs`) enforces that, and the
//! `survey` bench records the speedup (`BENCH_survey.json`).
//!
//! [`survey_database_flat_parallel`] splits each counting scan across
//! crossbeam-scoped workers; merged counts are independent of the
//! split, so the report is also identical at any thread count.

use crate::count::CountReport;
use crate::survey::{
    build_ksurvey, counter_freqs, dimension_estimate, DatabaseSurvey, KSurvey, SurveyConfig,
};
use dp_datasets::VectorSet;
use dp_metric::{BatchDistance, TransposedSites};
use dp_permutation::compute::{
    collect_counter_flat_parallel, collect_packed_flat_parallel, collect_sharded_flat_parallel,
    PACKED_MAX_K, WIDE_MAX_K,
};
use dp_permutation::{PackedKey, RadixSorter};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Radix scratch buffers at both key widths.  One pair serves every
/// per-k finalize and codebook-order sort in a survey, so a k sweep
/// crossing the u64/u128 seam reallocates nothing per k.
#[derive(Debug, Default)]
struct FlatSurveySorters {
    narrow: RadixSorter<u64>,
    wide: RadixSorter<u128>,
}

/// [`crate::survey::survey_database`] over flat vector storage: ρ plus
/// per-k permutation counts and storage costs through the batched
/// engine.  Bit-identical to the generic path on equal coordinates.
///
/// # Panics
/// Panics if the database has fewer than two points or any `k` exceeds
/// the database size or [`dp_permutation::MAX_K`].
pub fn survey_database_flat<M: BatchDistance + Sync>(
    metric: &M,
    database: &VectorSet,
    config: &SurveyConfig,
) -> DatabaseSurvey {
    survey_database_flat_parallel(metric, database, config, 1)
}

/// Parallel [`survey_database_flat`]: each per-k counting scan is split
/// across `threads` scoped workers.  Deterministic — the survey is
/// independent of the thread count.
pub fn survey_database_flat_parallel<M: BatchDistance + Sync>(
    metric: &M,
    database: &VectorSet,
    config: &SurveyConfig,
    threads: usize,
) -> DatabaseSurvey {
    survey_database_flat_sharded(metric, database, config, threads, 0)
}

/// [`survey_database_flat_parallel`] with bounded counting memory: for
/// `shard_rows > 0`, every packed per-k scan streams through
/// [`dp_permutation::ShardedCounter`]s holding at most `shard_rows`
/// keys each plus the distinct-run frontier, instead of buffering all
/// n keys per k.  `shard_rows = 0` is the in-memory engine.  The survey
/// is **bit-identical** either way — counts, codebook sizes and the
/// floating-point Huffman/entropy sums all derive from the same
/// distinct-key/occupancy table, which sharding reproduces exactly
/// (`tests/sharded_equivalence.rs` pins every field).
pub fn survey_database_flat_sharded<M: BatchDistance + Sync>(
    metric: &M,
    database: &VectorSet,
    config: &SurveyConfig,
    threads: usize,
    shard_rows: usize,
) -> DatabaseSurvey {
    assert!(database.len() >= 2, "survey needs at least two points");
    let rho = dp_datasets::intrinsic_dimensionality_flat(
        metric,
        database,
        config.rho_pairs,
        config.seed ^ 0x9E37_79B9,
    );
    let mut per_k = Vec::with_capacity(config.ks.len());
    let mut sorters = FlatSurveySorters::default();
    for (i, &k) in config.ks.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
        let site_ids = dp_datasets::vectors::choose_distinct_indices(database.len(), k, &mut rng);
        let sites = database.gather(&site_ids);
        per_k.push(survey_one_k(
            metric,
            database,
            &sites,
            k,
            site_ids,
            threads,
            shard_rows,
            &mut sorters,
        ));
    }
    let dimension_estimate = dimension_estimate(&per_k, config);
    DatabaseSurvey { n: database.len(), rho, per_k, dimension_estimate }
}

/// One per-k measurement through the flat engine.  For k within a
/// packed range (either key width) the distinct/occupancy scan is the
/// radix-sorted-run counter and the frequency table comes from
/// [`dp_permutation::PackedCountSummary::lexicographic_counts`], which
/// matches the generic path's codebook order exactly without decoding a
/// single permutation; beyond [`WIDE_MAX_K`] the hash counter feeds the
/// same sorted-count frequency table the generic path uses.
#[allow(clippy::too_many_arguments)]
fn survey_one_k<M: BatchDistance + Sync>(
    metric: &M,
    database: &VectorSet,
    sites: &VectorSet,
    k: usize,
    site_ids: Vec<usize>,
    threads: usize,
    shard_rows: usize,
    sorters: &mut FlatSurveySorters,
) -> KSurvey {
    crate::count::check_flat_dims(sites, database);
    let sites_t = crate::count::transpose_sites(sites, database);
    if k <= PACKED_MAX_K {
        survey_one_k_packed::<u64, M>(
            metric,
            database,
            &sites_t,
            k,
            site_ids,
            threads,
            shard_rows,
            &mut sorters.narrow,
        )
    } else if k <= WIDE_MAX_K {
        survey_one_k_packed::<u128, M>(
            metric,
            database,
            &sites_t,
            k,
            site_ids,
            threads,
            shard_rows,
            &mut sorters.wide,
        )
    } else {
        let counter = collect_counter_flat_parallel(metric, &sites_t, database.as_flat(), threads);
        let report = CountReport::from(&counter);
        build_ksurvey(k, site_ids, report, &counter_freqs(&counter))
    }
}

/// The packed arm of [`survey_one_k`], monomorphized per key width so
/// the per-row loops carry no width branch.  `shard_rows > 0` selects
/// the streaming sharded collector (which owns its bounded scratch);
/// 0 the buffering collector finalized through the shared sorter.
#[allow(clippy::too_many_arguments)]
fn survey_one_k_packed<K: PackedKey, M: BatchDistance + Sync>(
    metric: &M,
    database: &VectorSet,
    sites_t: &TransposedSites,
    k: usize,
    site_ids: Vec<usize>,
    threads: usize,
    shard_rows: usize,
    sorter: &mut RadixSorter<K>,
) -> KSurvey {
    let flat = database.as_flat();
    let summary = if shard_rows > 0 {
        collect_sharded_flat_parallel::<K, M>(metric, sites_t, flat, threads, shard_rows)
    } else {
        collect_packed_flat_parallel::<K, M>(metric, sites_t, flat, threads).finalize_with(sorter)
    };
    let report = CountReport::from(&summary);
    build_ksurvey(k, site_ids, report, &summary.lexicographic_counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survey::survey_database;
    use dp_datasets::vectors::{uniform_unit_cube, uniform_unit_cube_flat};
    use dp_metric::L2;

    /// Field-by-field bit comparison (f64s by `to_bits`).
    fn assert_surveys_identical(a: &DatabaseSurvey, b: &DatabaseSurvey) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.rho.to_bits(), b.rho.to_bits(), "rho differs");
        assert_eq!(a.dimension_estimate.map(f64::to_bits), b.dimension_estimate.map(f64::to_bits));
        assert_eq!(a.per_k.len(), b.per_k.len());
        for (x, y) in a.per_k.iter().zip(b.per_k.iter()) {
            assert_eq!(x.k, y.k);
            assert_eq!(x.site_ids, y.site_ids, "k = {}", x.k);
            assert_eq!(x.report.distinct, y.report.distinct, "k = {}", x.k);
            assert_eq!(x.report.total, y.report.total);
            assert_eq!(x.report.mean_occupancy.to_bits(), y.report.mean_occupancy.to_bits());
            assert_eq!(x.naive_bits, y.naive_bits);
            assert_eq!(x.raw_bits, y.raw_bits);
            assert_eq!(x.codebook_bits, y.codebook_bits);
            assert_eq!(x.huffman_bits.to_bits(), y.huffman_bits.to_bits(), "k = {}", x.k);
            assert_eq!(x.entropy_bits.to_bits(), y.entropy_bits.to_bits(), "k = {}", x.k);
            assert_eq!(x.min_euclidean_dim, y.min_euclidean_dim);
        }
    }

    #[test]
    fn flat_survey_matches_generic_bit_for_bit() {
        let nested = uniform_unit_cube(2500, 3, 23);
        let flat = uniform_unit_cube_flat(2500, 3, 23);
        let cfg = SurveyConfig { ks: vec![4, 7, 12], rho_pairs: 4000, ..Default::default() };
        let generic = survey_database(&L2, &nested, &cfg);
        let fast = survey_database_flat(&L2, &flat, &cfg);
        assert_surveys_identical(&generic, &fast);
    }

    #[test]
    fn parallel_flat_survey_is_thread_count_invariant() {
        let flat = uniform_unit_cube_flat(3000, 2, 29);
        let cfg = SurveyConfig { ks: vec![5], rho_pairs: 2000, ..Default::default() };
        let seq = survey_database_flat(&L2, &flat, &cfg);
        for threads in [2, 3, 8] {
            let par = survey_database_flat_parallel(&L2, &flat, &cfg, threads);
            assert_surveys_identical(&seq, &par);
        }
    }

    #[test]
    fn flat_survey_crosses_the_packed_boundaries() {
        // k = 13 crosses the u64/u128 seam onto the wide packed engine;
        // k = 26 exceeds WIDE_MAX_K and lands on the hash-counter arm.
        // Every arm must produce the same report as the generic path,
        // bit-for-bit including the Huffman and entropy f64 sums.
        let nested = uniform_unit_cube(1500, 4, 31);
        let flat = uniform_unit_cube_flat(1500, 4, 31);
        let cfg = SurveyConfig { ks: vec![12, 13, 25, 26], rho_pairs: 1500, ..Default::default() };
        assert_surveys_identical(
            &survey_database(&L2, &nested, &cfg),
            &survey_database_flat(&L2, &flat, &cfg),
        );
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn tiny_flat_database_rejected() {
        let db = uniform_unit_cube_flat(1, 2, 1);
        survey_database_flat(&L2, &db, &SurveyConfig::default());
    }
}
