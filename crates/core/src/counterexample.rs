//! Eq. 12: the paper's counterexample sites.
//!
//! §5 reports that a uniform-vector experiment found five sites in
//! three-dimensional L1 space realising **108** distance permutations in
//! the test database — exceeding N_{3,2}(5) = 96, so the hypothesis
//! N_{d,p}(k) = N_{d,2}(k) is false.  The exact sites are printed in the
//! paper (Eq. 12) and reproduced here verbatim; similar counterexamples
//! exist for 3-D L1 k=6, 3-D L∞ k=5 and 4-D L1 k=6, for which a
//! randomised search is provided.

use crate::count::count_permutations_parallel;
use dp_datasets::uniform_unit_cube;
use dp_metric::{LInf, Metric, L1};
use dp_theory::n_euclidean;

/// The five 3-D sites of Eq. 12, exactly as printed in the paper.
pub fn eq12_sites() -> Vec<Vec<f64>> {
    vec![
        vec![0.205281, 0.621547, 0.332507],
        vec![0.053421, 0.344351, 0.260859],
        vec![0.418166, 0.207143, 0.119789],
        vec![0.735218, 0.653301, 0.650154],
        vec![0.527133, 0.814207, 0.704307],
    ]
}

/// Outcome of a counterexample check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterexampleReport {
    /// Distinct permutations observed by sampling.
    pub observed: usize,
    /// The Euclidean maximum N_{d,2}(k) being compared against.
    pub euclidean_max: u128,
}

impl CounterexampleReport {
    /// True iff the observation exceeds the Euclidean maximum.
    pub fn exceeds_euclidean(&self) -> bool {
        self.observed as u128 > self.euclidean_max
    }
}

/// Counts permutations of the Eq. 12 sites under L1 over `samples`
/// uniform points in the unit cube.  With enough samples the count
/// exceeds 96 (the paper observed 108 with its 10⁶-point database).
pub fn verify_eq12(samples: usize, seed: u64, threads: usize) -> CounterexampleReport {
    let sites = eq12_sites();
    let db = uniform_unit_cube(samples, 3, seed);
    let observed = count_permutations_parallel(&L1, &sites, &db, threads).distinct;
    CounterexampleReport { observed, euclidean_max: n_euclidean(3, 5).expect("small") }
}

/// Which metric a counterexample search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMetric {
    /// Manhattan.
    L1,
    /// Chebyshev.
    LInf,
}

/// Randomised search for site sets whose sampled permutation count
/// exceeds the Euclidean maximum — the protocol that found Eq. 12 and the
/// further cases the paper lists (L1 d=3 k=6, L∞ d=3 k=5, L1 d=4 k=6).
///
/// Returns the best `(sites, observed)` found and whether it exceeds
/// N_{d,2}(k).
pub fn search_counterexample(
    metric: SearchMetric,
    d: usize,
    k: usize,
    trials: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> (Vec<Vec<f64>>, CounterexampleReport) {
    let euclidean_max = n_euclidean(d as u32, k as u32).expect("practical range");
    let db = uniform_unit_cube(samples, d, seed);
    let mut best: Option<(Vec<Vec<f64>>, usize)> = None;
    for t in 0..trials {
        let sites = uniform_unit_cube(k, d, seed ^ (0xC0FFEE + t as u64));
        let observed = match metric {
            SearchMetric::L1 => count_permutations_parallel(&L1, &sites, &db, threads).distinct,
            SearchMetric::LInf => count_permutations_parallel(&LInf, &sites, &db, threads).distinct,
        };
        if best.as_ref().is_none_or(|&(_, b)| observed > b) {
            best = Some((sites, observed));
        }
        // Early exit once the Euclidean bound is beaten.
        if best.as_ref().expect("set above").1 as u128 > euclidean_max {
            break;
        }
    }
    let (sites, observed) = best.expect("trials > 0");
    (sites, CounterexampleReport { observed, euclidean_max })
}

/// Counts permutations of arbitrary sites under any vector metric by
/// uniform sampling — the general-purpose probe behind the search.
pub fn sampled_count<M: Metric<Vec<f64>> + Sync>(
    metric: &M,
    sites: &[Vec<f64>],
    d: usize,
    samples: usize,
    seed: u64,
    threads: usize,
) -> usize {
    let db = uniform_unit_cube(samples, d, seed);
    count_permutations_parallel(metric, sites, &db, threads).distinct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq12_sites_match_paper_text() {
        let s = eq12_sites();
        assert_eq!(s.len(), 5);
        assert_eq!(s[0][0], 0.205281);
        assert_eq!(s[2][2], 0.119789);
        assert_eq!(s[4], vec![0.527133, 0.814207, 0.704307]);
    }

    #[test]
    fn eq12_exceeds_euclidean_maximum() {
        // The paper's headline counterexample: with a dense enough sample
        // the Eq. 12 sites must beat N_{3,2}(5) = 96.  200k samples keep
        // the test quick while leaving a comfortable margin (the paper saw
        // 108 at 10^6).
        let report = verify_eq12(200_000, 42, 4);
        assert_eq!(report.euclidean_max, 96);
        assert!(report.exceeds_euclidean(), "only {} permutations observed", report.observed);
    }

    #[test]
    fn eq12_count_is_stable_across_seeds() {
        let a = verify_eq12(100_000, 1, 4);
        let b = verify_eq12(100_000, 2, 4);
        // Both samplings undercount the same cell system; they must agree
        // within a few cells.
        let diff = a.observed.abs_diff(b.observed);
        assert!(diff <= 6, "{} vs {}", a.observed, b.observed);
    }

    #[test]
    fn sampled_count_monotone_in_samples() {
        // More samples can only discover more cells (same seed family).
        let sites = eq12_sites();
        let small = sampled_count(&L1, &sites, 3, 20_000, 9, 4);
        let large = sampled_count(&L1, &sites, 3, 120_000, 9, 4);
        assert!(large >= small, "{large} < {small}");
        assert!(small > 60, "sampling far too sparse: {small}");
    }
}
