//! Permutation-based dimensionality estimation (§5).
//!
//! "By comparing numbers from Table 2 with the values for Euclidean spaces
//! in Table 3 … In this way we can characterise the dimensionality of a
//! database in a highly general way."  Concretely: build the reference
//! curve d ↦ mean distinct permutations for uniform Euclidean data at the
//! same k, then place an observed count on that curve by log-space
//! interpolation.  Unlike ρ, this estimator depends only on which points
//! *can* occur, not on their probability distribution.

use crate::experiments::{sweep_dimensions, MetricKind};

/// A reference curve: mean permutation count per Euclidean dimension.
#[derive(Debug, Clone)]
pub struct ReferenceProfile {
    /// Number of sites the profile was built for.
    pub k: usize,
    /// Database size per run.
    pub n: usize,
    /// `(d, mean distinct permutations)`, increasing in d.
    pub curve: Vec<(usize, f64)>,
}

impl ReferenceProfile {
    /// Builds the reference curve for dimensions `1..=max_d` with the
    /// uniform-vector protocol.
    pub fn build(k: usize, n: usize, max_d: usize, runs: usize, seed: u64, threads: usize) -> Self {
        let sweep = sweep_dimensions(1..=max_d, MetricKind::L2, k, n, runs, seed, threads);
        let curve = sweep.into_iter().map(|e| (e.d, e.mean)).collect();
        Self { k, n, curve }
    }

    /// Builds a profile from precomputed `(d, mean)` pairs (e.g. the
    /// paper's own Table 3 numbers).
    pub fn from_curve(k: usize, n: usize, curve: Vec<(usize, f64)>) -> Self {
        assert!(curve.len() >= 2, "need at least two reference dimensions");
        assert!(curve.windows(2).all(|w| w[0].0 < w[1].0), "dimensions must increase");
        Self { k, n, curve }
    }
}

/// Places `observed` (a distinct-permutation count for k sites) on the
/// reference curve, returning a fractional dimension estimate.
///
/// Counts below the d = 1 reference clamp to the smallest dimension;
/// counts above the last reference clamp to the largest.  Interpolation
/// is linear in log-count, since counts grow geometrically in d.
pub fn estimate_dimension(observed: usize, profile: &ReferenceProfile) -> f64 {
    let curve = &profile.curve;
    let obs = (observed.max(1)) as f64;
    if obs <= curve[0].1 {
        return curve[0].0 as f64;
    }
    for w in curve.windows(2) {
        let (d0, c0) = w[0];
        let (d1, c1) = w[1];
        if obs <= c1 {
            if c1 <= c0 {
                return d1 as f64; // flat segment (saturated at k!)
            }
            let t = (obs.ln() - c0.ln()) / (c1.ln() - c0.ln());
            return d0 as f64 + t * (d1 - d0) as f64;
        }
    }
    curve.last().expect("non-empty").0 as f64
}

/// The theoretical variant: the smallest Euclidean dimension whose exact
/// maximum N_{d,2}(k) admits the observed count.  A lower bound on the
/// dimension of any Euclidean space containing the data.
pub fn min_euclidean_dimension(observed: usize, k: u32) -> u32 {
    let mut d = 0u32;
    loop {
        match dp_theory::n_euclidean(d, k) {
            Some(max) if max >= observed as u128 => return d,
            Some(_) => d += 1,
            None => return d, // beyond u128: any larger count fits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_datasets::vectors::{curve_embedded, uniform_unit_cube};
    use dp_metric::L2;

    fn small_profile() -> ReferenceProfile {
        ReferenceProfile::build(6, 3000, 5, 3, 77, 4)
    }

    #[test]
    fn uniform_data_lands_near_its_true_dimension() {
        let profile = small_profile();
        for d in [1usize, 2, 3] {
            let db = uniform_unit_cube(3000, d, 1000 + d as u64);
            let sites: Vec<Vec<f64>> = db[..6].to_vec();
            let observed = crate::count::count_permutations(&L2, &sites, &db).distinct;
            let est = estimate_dimension(observed, &profile);
            assert!(
                (est - d as f64).abs() <= 1.0,
                "true d={d}, estimated {est} from count {observed}"
            );
        }
    }

    #[test]
    fn embedded_curve_reads_as_low_dimensional() {
        // 6-dimensional embedding of a 1-parameter curve: the estimator
        // must report far below 6.
        let profile = small_profile();
        let db = curve_embedded(3000, 6, 5);
        let sites: Vec<Vec<f64>> = db[..6].to_vec();
        let observed = crate::count::count_permutations(&L2, &sites, &db).distinct;
        let est = estimate_dimension(observed, &profile);
        assert!(est < 2.5, "estimated {est} for an intrinsically 1-D set");
    }

    #[test]
    fn interpolation_is_monotone_and_clamped() {
        let profile =
            ReferenceProfile::from_curve(8, 100_000, vec![(1, 29.0), (2, 262.0), (3, 1465.0)]);
        assert_eq!(estimate_dimension(10, &profile), 1.0);
        assert_eq!(estimate_dimension(29, &profile), 1.0);
        let e_mid = estimate_dimension(100, &profile);
        assert!(e_mid > 1.0 && e_mid < 2.0, "{e_mid}");
        let e_hi = estimate_dimension(1465, &profile);
        assert!((e_hi - 3.0).abs() < 1e-9);
        assert_eq!(estimate_dimension(99_999, &profile), 3.0);
        let lo = estimate_dimension(50, &profile);
        let hi = estimate_dimension(200, &profile);
        assert!(lo < hi);
    }

    #[test]
    fn min_euclidean_dimension_inverts_table1() {
        // N_{2,2}(5) = 46, N_{3,2}(5) = 96.
        assert_eq!(min_euclidean_dimension(46, 5), 2);
        assert_eq!(min_euclidean_dimension(47, 5), 3);
        assert_eq!(min_euclidean_dimension(96, 5), 3);
        assert_eq!(min_euclidean_dimension(1, 5), 0);
        // 108 observed in L1 needs d >= 4 if it were Euclidean — the
        // paper's counterexample in one line.
        assert_eq!(min_euclidean_dimension(108, 5), 4);
    }
}
