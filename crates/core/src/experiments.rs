//! The Table 3 protocol: uniform random vectors, random sites.
//!
//! For each dimension d, metric Lp and site count k, the paper draws 10⁶
//! points uniformly from the unit cube, picks k of them at random as
//! sites, counts distinct distance permutations, and repeats 100 times,
//! reporting the mean and the maximum.  This module implements that
//! protocol with the scale (n, runs) as parameters; runs execute in
//! parallel via crossbeam scoped threads.

use crate::count::count_permutations_flat;
use dp_datasets::vectors::{choose_distinct_indices, uniform_unit_cube_flat};
use dp_datasets::VectorSet;
use dp_metric::{L2Squared, LInf, L1};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which Minkowski metric a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Manhattan.
    L1,
    /// Euclidean (evaluated via monotone-equivalent squared distances).
    L2,
    /// Chebyshev.
    LInf,
}

impl MetricKind {
    /// All three metrics in the paper's Table 3 order.
    pub const ALL: [MetricKind; 3] = [MetricKind::L1, MetricKind::L2, MetricKind::LInf];

    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::L1 => "L1",
            MetricKind::L2 => "L2",
            MetricKind::LInf => "Linf",
        }
    }

    fn count(self, sites: &VectorSet, db: &VectorSet) -> usize {
        match self {
            MetricKind::L1 => count_permutations_flat(&L1, sites, db).distinct,
            MetricKind::L2 => count_permutations_flat(&L2Squared, sites, db).distinct,
            MetricKind::LInf => count_permutations_flat(&LInf, sites, db).distinct,
        }
    }
}

/// Result of one (d, metric, k) cell of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformExperiment {
    /// Dimension.
    pub d: usize,
    /// Metric.
    pub metric: MetricKind,
    /// Number of sites.
    pub k: usize,
    /// Database size per run.
    pub n: usize,
    /// Number of runs.
    pub runs: usize,
    /// Mean distinct permutations over runs.
    pub mean: f64,
    /// Maximum distinct permutations over runs.
    pub max: usize,
}

/// Runs the Table 3 protocol for one (d, metric, k) cell.
///
/// Each run r draws a fresh uniform database (seed `seed + r`) and picks
/// `k` distinct random database elements as sites — exactly the paper's
/// setup.  Runs execute on `threads` scoped workers.
pub fn uniform_experiment(
    d: usize,
    metric: MetricKind,
    k: usize,
    n: usize,
    runs: usize,
    seed: u64,
    threads: usize,
) -> UniformExperiment {
    assert!(runs > 0 && n > k);
    let counts = run_counts(d, metric, k, n, runs, seed, threads);
    let mean = counts.iter().sum::<usize>() as f64 / runs as f64;
    let max = counts.into_iter().max().expect("runs > 0");
    UniformExperiment { d, metric, k, n, runs, mean, max }
}

fn run_counts(
    d: usize,
    metric: MetricKind,
    k: usize,
    n: usize,
    runs: usize,
    seed: u64,
    threads: usize,
) -> Vec<usize> {
    let threads = threads.clamp(1, runs);
    let mut results = vec![0usize; runs];
    crossbeam::thread::scope(|scope| {
        let mut rest: &mut [usize] = &mut results;
        let per = runs.div_ceil(threads);
        let mut start = 0usize;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let first_run = start;
            start += take;
            handles.push(scope.spawn(move |_| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let run = first_run + i;
                    *slot = single_run(d, metric, k, n, seed.wrapping_add(run as u64));
                }
            }));
        }
        for h in handles {
            h.join().expect("experiment worker panicked");
        }
    })
    .expect("crossbeam scope");
    results
}

fn single_run(d: usize, metric: MetricKind, k: usize, n: usize, seed: u64) -> usize {
    let db = uniform_unit_cube_flat(n, d, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD15_7AB1E);
    let site_ids = choose_distinct_indices(n, k, &mut rng);
    let sites = db.gather(&site_ids);
    metric.count(&sites, &db)
}

/// Mean distance permutations for a whole d-range at fixed k — the data
/// behind one column block of Table 3 and the reference curve for the
/// dimensionality estimator.
pub fn sweep_dimensions(
    dims: std::ops::RangeInclusive<usize>,
    metric: MetricKind,
    k: usize,
    n: usize,
    runs: usize,
    seed: u64,
    threads: usize,
) -> Vec<UniformExperiment> {
    dims.map(|d| uniform_experiment(d, metric, k, n, runs, seed ^ ((d as u64) << 32), threads))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_permutation::lehmer::factorial;
    use dp_theory::n_euclidean;

    #[test]
    fn one_dimension_matches_paper_row_exactly() {
        // Table 3, d = 1: mean and max are (essentially) C(k,2)+1 for all
        // metrics — a dense-enough uniform database hits every cell.
        for metric in MetricKind::ALL {
            let e = uniform_experiment(1, metric, 4, 4000, 5, 42, 4);
            assert_eq!(e.max, 7, "{metric:?}");
            assert!(e.mean > 6.5, "{:?} mean {}", metric, e.mean);
        }
    }

    #[test]
    fn counts_bounded_by_factorial_and_euclidean_theory() {
        let e = uniform_experiment(2, MetricKind::L2, 4, 3000, 6, 7, 4);
        assert!(e.max as u128 <= n_euclidean(2, 4).unwrap());
        assert!((e.mean as u128) < factorial(4));
        assert!(e.mean > 6.0, "mean {}", e.mean);
    }

    #[test]
    fn high_dimension_saturates_at_factorial() {
        // d >= k-1: all k! permutations achievable, and with k=4 a few
        // thousand points nearly saturate 24.
        let e = uniform_experiment(5, MetricKind::L2, 4, 4000, 4, 11, 4);
        assert!(e.max <= 24);
        assert!(e.mean > 20.0, "mean {}", e.mean);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = uniform_experiment(2, MetricKind::L1, 5, 1000, 3, 5, 2);
        let b = uniform_experiment(2, MetricKind::L1, 5, 1000, 3, 5, 3);
        assert_eq!(a.mean, b.mean, "thread count must not change results");
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn sweep_returns_monotone_trend() {
        let sweep = sweep_dimensions(1..=3, MetricKind::L2, 5, 2000, 3, 9, 4);
        assert_eq!(sweep.len(), 3);
        // Counts grow with dimension (statistically robust at these sizes).
        assert!(sweep[0].mean < sweep[1].mean);
        assert!(sweep[1].mean < sweep[2].mean);
    }
}
