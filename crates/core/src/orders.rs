//! The refinement chain of §2: Voronoi diagrams of every order from the
//! same permutation data.
//!
//! The division of a space by full distance permutations *refines* the
//! classical nearest-neighbour Voronoi diagram (Fig 1: the length-1
//! prefix), the order-j Voronoi diagrams (Fig 2: the **unordered** set of
//! the j nearest sites), and the ordered-prefix diagrams in between.
//! Counting distinct keys at every truncation length measures that chain
//! on real data.

use dp_metric::Metric;
use dp_permutation::fxhash::FxHashSet;
use dp_permutation::{DistPermComputer, Permutation};

/// How a truncated permutation identifies a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixKind {
    /// The j nearest sites *in order* — the ordered-prefix diagram.
    Ordered,
    /// The j nearest sites as a set — the classical order-j Voronoi
    /// diagram (Fig 2 for j = 2).
    Unordered,
}

fn prefix_key(p: &Permutation, len: usize, kind: PrefixKind) -> u64 {
    debug_assert!(len <= p.len() && len <= 8, "prefix keys pack 8 elements max");
    let mut items = [0u8; 8];
    items[..len].copy_from_slice(&p.as_slice()[..len]);
    if kind == PrefixKind::Unordered {
        items[..len].sort_unstable();
    }
    u64::from_le_bytes(items)
}

/// Counts distinct length-`len` prefixes of the database's distance
/// permutations.
///
/// `len = 1` counts occupied nearest-neighbour Voronoi cells; `len = k`
/// (ordered) equals the paper's full distinct-permutation count.
///
/// # Panics
/// Panics if `len` is 0, exceeds `sites.len()`, or exceeds 8 (order-8
/// diagrams are far past anything the analysis uses).
pub fn count_distinct_prefixes<P, M: Metric<P>>(
    metric: &M,
    sites: &[P],
    database: &[P],
    len: usize,
    kind: PrefixKind,
) -> usize {
    assert!(len >= 1 && len <= sites.len() && len <= 8, "invalid prefix length {len}");
    let mut computer = DistPermComputer::new(sites.len());
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    for y in database {
        let p = computer.compute(metric, sites, y);
        seen.insert(prefix_key(&p, len, kind));
    }
    seen.len()
}

/// The whole refinement chain: distinct ordered-prefix counts for
/// `len = 1..=max_len` in one database pass.
pub fn refinement_chain<P, M: Metric<P>>(
    metric: &M,
    sites: &[P],
    database: &[P],
    max_len: usize,
) -> Vec<usize> {
    assert!(max_len >= 1 && max_len <= sites.len() && max_len <= 8);
    let mut computer = DistPermComputer::new(sites.len());
    let mut seen: Vec<FxHashSet<u64>> = (0..max_len).map(|_| FxHashSet::default()).collect();
    for y in database {
        let p = computer.compute(metric, sites, y);
        for (j, set) in seen.iter_mut().enumerate() {
            set.insert(prefix_key(&p, j + 1, PrefixKind::Ordered));
        }
    }
    seen.into_iter().map(|s| s.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_permutations;
    use dp_datasets::uniform_unit_cube;
    use dp_metric::L2;

    fn setup() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let db = uniform_unit_cube(20_000, 2, 3);
        let sites: Vec<Vec<f64>> = db[..5].to_vec();
        (db, sites)
    }

    #[test]
    fn length_one_counts_voronoi_cells() {
        let (db, sites) = setup();
        let cells = count_distinct_prefixes(&L2, &sites, &db, 1, PrefixKind::Ordered);
        assert!(cells <= 5);
        assert!(cells >= 4, "a dense uniform sample hits almost every Voronoi cell");
        // Ordered and unordered coincide at length 1.
        assert_eq!(cells, count_distinct_prefixes(&L2, &sites, &db, 1, PrefixKind::Unordered));
    }

    #[test]
    fn ordered_chain_is_monotone_and_ends_at_full_count() {
        let (db, sites) = setup();
        let chain = refinement_chain(&L2, &sites, &db, 5);
        assert_eq!(chain.len(), 5);
        for w in chain.windows(2) {
            assert!(w[0] <= w[1], "refinement can only split cells: {chain:?}");
        }
        let full = count_permutations(&L2, &sites, &db).distinct;
        assert_eq!(*chain.last().unwrap(), full);
    }

    #[test]
    fn unordered_is_coarser_than_ordered() {
        let (db, sites) = setup();
        for len in 2..=4usize {
            let unordered = count_distinct_prefixes(&L2, &sites, &db, len, PrefixKind::Unordered);
            let ordered = count_distinct_prefixes(&L2, &sites, &db, len, PrefixKind::Ordered);
            assert!(unordered <= ordered, "len={len}: {unordered} > {ordered}");
        }
    }

    #[test]
    fn fig2_second_order_cells_are_few() {
        // Order-2 Voronoi diagram of 4 generic sites in the plane has at
        // most C(4,2) = 6 distinct unordered pairs occupied (plus nothing
        // else); the refinement into full permutations reaches 18.
        let db = uniform_unit_cube(40_000, 2, 9);
        let sites: Vec<Vec<f64>> = vec![
            vec![0.9867, 0.5630],
            vec![0.3364, 0.5875],
            vec![0.4702, 0.8210],
            vec![0.8423, 0.3812],
        ];
        let pairs = count_distinct_prefixes(&L2, &sites, &db, 2, PrefixKind::Unordered);
        assert!(pairs <= 6);
        let full = count_permutations(&L2, &sites, &db).distinct;
        assert!(full > pairs);
    }

    #[test]
    #[should_panic(expected = "invalid prefix length")]
    fn zero_length_rejected() {
        let (db, sites) = setup();
        let _ = count_distinct_prefixes(&L2, &sites, &db[..10], 0, PrefixKind::Ordered);
    }
}
