//! Per-space theoretical maxima (the paper's results, dispatched).

use dp_permutation::lehmer::factorial;
use dp_theory::{l1_bound, linf_bound, n_euclidean, tree_bound};

/// The space families the paper analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// A (weighted) tree metric space — Theorem 4.
    Tree,
    /// d-dimensional real vectors with L1 — Theorem 9 (upper bound only).
    L1 { d: u32 },
    /// d-dimensional real vectors with L2 — Theorem 7 (exact).
    Euclidean { d: u32 },
    /// d-dimensional real vectors with L∞ — Theorem 9 (upper bound only).
    LInf { d: u32 },
    /// An arbitrary metric space — all k! permutations possible
    /// (Theorem 6 realises them in Lp with d = k−1).
    General,
}

/// The paper's best upper bound on the number of distance permutations of
/// `k` sites in the given space (`None` if it overflows u128).
///
/// For `Euclidean` the value is exact (achieved by generic sites); for
/// `Tree` it is exact for spaces with long paths (Corollary 5); for
/// `L1`/`LInf` it is Theorem 9's bound, never smaller than the truth and
/// capped at k!.
pub fn theoretical_max(space: SpaceKind, k: u32) -> Option<u128> {
    let fact = (k <= 33).then(|| factorial(k as usize));
    let cap = |v: u128| fact.map_or(v, |f| v.min(f));
    match space {
        SpaceKind::Tree => Some(tree_bound(k)),
        SpaceKind::Euclidean { d } => n_euclidean(d, k),
        SpaceKind::L1 { d } => l1_bound(d, k).map(cap),
        SpaceKind::LInf { d } => linf_bound(d, k).map(cap),
        SpaceKind::General => fact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_matches_theorems() {
        assert_eq!(theoretical_max(SpaceKind::Tree, 12), Some(67));
        assert_eq!(theoretical_max(SpaceKind::Euclidean { d: 3 }, 5), Some(96));
        assert_eq!(theoretical_max(SpaceKind::General, 5), Some(120));
    }

    #[test]
    fn lp_bounds_capped_at_factorial() {
        // Theorem 9's hyperplane bound can exceed k!; the truth cannot.
        let b = theoretical_max(SpaceKind::L1 { d: 3 }, 4).unwrap();
        assert!(b <= 24);
    }

    #[test]
    fn l1_bound_admits_known_counterexample() {
        // 108 permutations were observed in 3-D L1 with k = 5 (§5); the
        // bound must allow it while Euclidean's exact value forbids it.
        let l1 = theoretical_max(SpaceKind::L1 { d: 3 }, 5).unwrap();
        let l2 = theoretical_max(SpaceKind::Euclidean { d: 3 }, 5).unwrap();
        assert!(l1 >= 108);
        assert_eq!(l2, 96);
    }

    #[test]
    fn tree_bound_is_smallest_for_large_k() {
        for k in [6u32, 9, 12] {
            let tree = theoretical_max(SpaceKind::Tree, k).unwrap();
            let e2 = theoretical_max(SpaceKind::Euclidean { d: 2 }, k).unwrap();
            let gen = theoretical_max(SpaceKind::General, k).unwrap();
            assert!(tree <= e2 && e2 <= gen);
        }
    }
}
