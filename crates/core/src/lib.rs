//! # dp-core — counting distance permutations
//!
//! The primary contribution of Skala's *Counting distance permutations*
//! (SISAP'08 / JDA 2009) as a library: given k sites in a metric space,
//! **how many distinct distance permutations occur**, measured exactly,
//! bounded theoretically, and exploited for storage and for
//! dimensionality estimation.
//!
//! * [`count`] — the measurement: distinct-permutation counts over any
//!   database/metric, sequential or parallel;
//! * [`experiments`] — the Table 3 protocol: uniform random vectors,
//!   random database elements as sites, mean/max over runs, for
//!   L1/L2/L∞ and d = 1..10;
//! * [`spaces`] — `theoretical_max`: the paper's per-space maxima
//!   (Theorem 4 for trees, Theorem 7 for Euclidean, Theorem 9 bounds for
//!   L1/L∞, k! in general);
//! * [`dimension`] — the paper's §5 suggestion: estimate a database's
//!   effective dimension by locating its permutation count among the
//!   uniform-vector reference curves;
//! * [`counterexample`] — Eq. 12: the five 3-D L1 sites exceeding the
//!   Euclidean maximum (disproving N_{d,p}(k) = N_{d,2}(k)), plus a
//!   randomised search for further counterexamples;
//! * [`orders`] — §2's refinement chain: nearest-site (Fig 1), order-j
//!   Voronoi (Fig 2) and ordered-prefix cell counts from the same
//!   permutation scan;
//! * [`survey`] — the §5 analysis as one call: ρ, per-k permutation
//!   counts, every storage layout's cost, and the dimension estimates;
//! * [`survey_flat`] — the same survey on flat [`dp_datasets::VectorSet`]
//!   storage through the batched site-transposed kernels and
//!   width-generic packed counting (`u64` keys for k ≤ 12, `u128` keys
//!   for k ≤ 25, hash counting beyond; see [`count::CountEngine`]),
//!   with ranking and key packing fused into one register-resident tile
//!   pass — bit-identical report, several times the throughput; this is
//!   the engine the CLI uses for vector databases.
//!
//! Both the counting and survey measurements come in two equivalent
//! engines: the generic per-point path for any metric over any point
//! type, and the flat batched path for real-vector data.  The flat path
//! is not an approximation — distances, counts and derived statistics
//! are bit-for-bit equal (enforced by the workspace property suites),
//! so callers may pick purely on storage layout.
//!
//! The flat engines additionally come in a **streaming** flavour with
//! bounded memory: [`count_permutations_flat_sharded`] and
//! [`survey_flat::survey_database_flat_sharded`] stream packed keys
//! through fixed-size shards (at most `shard_rows` buffered keys plus
//! one `(key, count)` run per distinct permutation) instead of
//! buffering every key before the sort.  `shard_rows = 0` means
//! in-memory; any other value changes the working set, never the
//! report — sharded output is bit-identical, floats included, which the
//! root `sharded_equivalence` suite enforces.  On the command line this
//! is `distperm count/survey --shard-rows <n>`.

#![forbid(unsafe_code)]

pub mod count;
pub mod counterexample;
pub mod dimension;
pub mod experiments;
pub mod orders;
pub mod spaces;
pub mod survey;
pub mod survey_flat;

pub use count::{
    count_permutations, count_permutations_flat, count_permutations_flat_parallel,
    count_permutations_flat_sharded, count_permutations_parallel, CountEngine, CountReport,
};
pub use counterexample::{eq12_sites, verify_eq12};
pub use dimension::{estimate_dimension, ReferenceProfile};
pub use experiments::{uniform_experiment, MetricKind, UniformExperiment};
pub use orders::{count_distinct_prefixes, refinement_chain, PrefixKind};
pub use spaces::{theoretical_max, SpaceKind};
pub use survey::{survey_database, DatabaseSurvey, SurveyConfig};
pub use survey_flat::{
    survey_database_flat, survey_database_flat_parallel, survey_database_flat_sharded,
};
