//! One-call database characterisation — the paper's §5 analysis as an API.
//!
//! Given a database and its metric, [`survey_database`] measures
//! everything the paper reports per database: cardinality, intrinsic
//! dimensionality ρ (Chávez–Navarro, given "for reference only" as in
//! §5), the distinct distance-permutation count for each requested k
//! (sites drawn as random database elements, the Table 2/3 protocol),
//! occupancy, the implied storage costs of every layout this workspace
//! implements (unrestricted ⌈log₂ k!⌉, raw k·⌈log₂ k⌉, codebook
//! ⌈log₂ N⌉, Huffman, and the entropy floor), and the permutation-based
//! dimensionality estimates of §5.
//!
//! The `Display` rendering is a plain-text report, the thing a downstream
//! user actually wants from the paper.
//!
//! This module is the generic per-point engine, usable with any metric
//! over any point type.  Real-vector databases in flat storage should
//! prefer [`crate::survey_flat::survey_database_flat`], which produces
//! the identical `DatabaseSurvey` (bit for bit) through the batched
//! kernels several times faster.

use crate::count::CountReport;
use crate::dimension::{estimate_dimension, min_euclidean_dimension, ReferenceProfile};
use dp_metric::Metric;
use dp_permutation::counter::collect_counter;
use dp_permutation::encoding::element_bits;
use dp_permutation::huffman::{entropy_bits, HuffmanCode};
use dp_permutation::PermutationCounter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Configuration for [`survey_database`].
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    /// Site counts to measure (the paper uses 3..=12; default 4, 8, 12).
    pub ks: Vec<usize>,
    /// Seed for site selection and ρ sampling.
    pub seed: u64,
    /// Pairs sampled for the ρ estimate.
    pub rho_pairs: usize,
    /// Optional uniform-vector reference curve; enables the fractional
    /// dimension estimate at the profile's k.
    pub reference: Option<ReferenceProfile>,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        Self { ks: vec![4, 8, 12], seed: 0x5EED, rho_pairs: 20_000, reference: None }
    }
}

/// Per-k measurements of one database.
#[derive(Debug, Clone)]
pub struct KSurvey {
    /// Number of sites.
    pub k: usize,
    /// The counting result (distinct, total, occupancy).
    pub report: CountReport,
    /// The site element ids used (random distinct database elements).
    pub site_ids: Vec<usize>,
    /// ⌈log₂ k!⌉ — bits for an unrestricted permutation.
    pub naive_bits: u32,
    /// k·⌈log₂ k⌉ — the raw positional layout (CFN).
    pub raw_bits: u32,
    /// ⌈log₂ N⌉ — the paper's codebook layout, N = observed distinct.
    pub codebook_bits: u32,
    /// Mean bits per element under a Huffman code on the observed
    /// distribution (§4's "more sophisticated structure").
    pub huffman_bits: f64,
    /// The empirical entropy — the floor for any layout.
    pub entropy_bits: f64,
    /// Smallest Euclidean dimension whose Theorem 7 maximum admits the
    /// observed count.
    pub min_euclidean_dim: u32,
}

/// The full report of [`survey_database`].
#[derive(Debug, Clone)]
pub struct DatabaseSurvey {
    /// Database cardinality.
    pub n: usize,
    /// Chávez–Navarro intrinsic dimensionality ρ = μ²/(2σ²).
    pub rho: f64,
    /// One row per requested k.
    pub per_k: Vec<KSurvey>,
    /// Fractional dimension estimate from the reference profile, if one
    /// was supplied and its k was among the measured ks.
    pub dimension_estimate: Option<f64>,
}

/// Measures a database: ρ plus per-k permutation counts and storage
/// costs.  Sites are `k` random distinct database elements (deterministic
/// in `config.seed`); metric cost is `Σ_k k·n` plus the ρ sample.
///
/// # Panics
/// Panics if the database has fewer than two points or any `k` exceeds
/// the database size or [`dp_permutation::MAX_K`].
pub fn survey_database<P, M: Metric<P>>(
    metric: &M,
    database: &[P],
    config: &SurveyConfig,
) -> DatabaseSurvey
where
    P: Clone,
{
    assert!(database.len() >= 2, "survey needs at least two points");
    let rho = dp_datasets::intrinsic_dimensionality(
        metric,
        database,
        config.rho_pairs,
        config.seed ^ 0x9E37_79B9,
    );
    let mut per_k = Vec::with_capacity(config.ks.len());
    for (i, &k) in config.ks.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
        let site_ids = dp_datasets::vectors::choose_distinct_indices(database.len(), k, &mut rng);
        let sites: Vec<P> = site_ids.iter().map(|&i| database[i].clone()).collect();
        let counter = collect_counter(metric, &sites, database);
        let report = CountReport::from(&counter);
        per_k.push(build_ksurvey(k, site_ids, report, &counter_freqs(&counter)));
    }
    let dimension_estimate = dimension_estimate(&per_k, config);
    DatabaseSurvey { n: database.len(), rho, per_k, dimension_estimate }
}

/// The occupancy distribution of a counter, indexed by codebook id —
/// i.e. ordered by the lexicographic rank of each distinct permutation.
/// Both survey engines produce their frequency tables in this order, so
/// the entropy/Huffman sums run over identical vectors (bit-identical
/// results).
///
/// [`PermutationCounter::sorted_counts`] emits exactly this order (ids
/// of a codebook interned from the sorted permutations are `0..N` in
/// sequence), so no codebook — flat or hashed — needs to be built here.
pub(crate) fn counter_freqs(counter: &PermutationCounter) -> Vec<u64> {
    counter.sorted_counts().into_iter().map(|(_, c)| c).collect()
}

/// Assembles one [`KSurvey`] row from a counting result and its
/// frequency table (the shared tail of both survey engines).
pub(crate) fn build_ksurvey(
    k: usize,
    site_ids: Vec<usize>,
    report: CountReport,
    freqs: &[u64],
) -> KSurvey {
    let huffman = HuffmanCode::from_frequencies(freqs);
    KSurvey {
        k,
        site_ids,
        naive_bits: naive_permutation_bits(k),
        raw_bits: k as u32 * element_bits(k),
        codebook_bits: element_bits(report.distinct),
        huffman_bits: huffman.mean_bits(freqs),
        entropy_bits: entropy_bits(freqs),
        min_euclidean_dim: min_euclidean_dimension(report.distinct, k as u32),
        report,
    }
}

/// Resolves the fractional dimension estimate against the measured rows.
pub(crate) fn dimension_estimate(per_k: &[KSurvey], config: &SurveyConfig) -> Option<f64> {
    config.reference.as_ref().and_then(|profile| {
        per_k
            .iter()
            .find(|s| s.k == profile.k)
            .map(|s| estimate_dimension(s.report.distinct, profile))
    })
}

/// ⌈log₂ k!⌉: bits for an unrestricted permutation of k sites.
pub fn naive_permutation_bits(k: usize) -> u32 {
    let mut log = 0.0f64;
    for i in 2..=k as u64 {
        log += (i as f64).log2();
    }
    log.ceil() as u32
}

impl fmt::Display for DatabaseSurvey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "database survey: n = {}, rho = {:.3}", self.n, self.rho)?;
        if let Some(d) = self.dimension_estimate {
            writeln!(f, "permutation dimension estimate: {d:.2}")?;
        }
        writeln!(
            f,
            "{:>4} {:>10} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>6}",
            "k", "distinct", "occup", "naive", "raw", "codebook", "huffman", "entropy", "minEd"
        )?;
        for s in &self.per_k {
            writeln!(
                f,
                "{:>4} {:>10} {:>9.2} {:>8} {:>8} {:>9} {:>9.3} {:>9.3} {:>6}",
                s.k,
                s.report.distinct,
                s.report.mean_occupancy,
                s.naive_bits,
                s.raw_bits,
                s.codebook_bits,
                s.huffman_bits,
                s.entropy_bits,
                s.min_euclidean_dim,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_datasets::vectors::{curve_embedded, uniform_unit_cube};
    use dp_metric::{Levenshtein, L2};

    #[test]
    fn survey_uniform_2d() {
        let db = uniform_unit_cube(5000, 2, 11);
        let cfg = SurveyConfig { ks: vec![4, 6], ..Default::default() };
        let s = survey_database(&L2, &db, &cfg);
        assert_eq!(s.n, 5000);
        assert_eq!(s.per_k.len(), 2);
        let k6 = &s.per_k[1];
        // 2-D data: N ≤ N_{2,2}(6) = 101, and minEd should say ~2.
        assert!(k6.report.distinct <= 101);
        assert!(k6.min_euclidean_dim <= 2, "minEd = {}", k6.min_euclidean_dim);
        // ρ of uniform 2-D data is around 1–3.
        assert!(s.rho > 0.5 && s.rho < 4.0, "rho = {}", s.rho);
    }

    #[test]
    fn storage_hierarchy_is_ordered() {
        // entropy ≤ huffman < codebook + 1; codebook ≤ raw ≤ naive·k…
        // verify the inequalities the report is meant to demonstrate.
        let db = uniform_unit_cube(4000, 3, 13);
        let cfg = SurveyConfig { ks: vec![8], ..Default::default() };
        let s = survey_database(&L2, &db, &cfg);
        let k8 = &s.per_k[0];
        assert!(k8.entropy_bits <= k8.huffman_bits + 1e-9);
        assert!(k8.huffman_bits < f64::from(k8.codebook_bits) + 1.0);
        assert!(k8.codebook_bits <= k8.raw_bits);
        assert!(k8.naive_bits <= k8.raw_bits, "⌈log₂ k!⌉ ≤ k⌈log₂ k⌉");
        // And the headline: codebook beats the naive permutation once the
        // space is low-dimensional.
        assert!(k8.codebook_bits < k8.naive_bits);
    }

    #[test]
    fn survey_runs_on_strings() {
        let words: Vec<String> =
            (0..300).map(|i| format!("w{:03}{}", i % 50, "x".repeat(i % 7))).collect();
        let cfg = SurveyConfig { ks: vec![5], rho_pairs: 2000, ..Default::default() };
        let s = survey_database(&Levenshtein, &words, &cfg);
        assert!(s.per_k[0].report.distinct >= 1);
        assert!(s.rho.is_finite());
    }

    #[test]
    fn dimension_estimate_present_when_profile_matches() {
        let profile = ReferenceProfile::build(6, 2000, 4, 2, 5, 4);
        let db = curve_embedded(2000, 5, 21);
        let cfg = SurveyConfig {
            ks: vec![6],
            reference: Some(profile),
            rho_pairs: 5000,
            ..Default::default()
        };
        let s = survey_database(&L2, &db, &cfg);
        let est = s.dimension_estimate.expect("profile k matches a surveyed k");
        assert!(est < 3.0, "curve data estimated at {est}");
    }

    #[test]
    fn dimension_estimate_absent_when_k_mismatch() {
        let profile = ReferenceProfile::from_curve(7, 100, vec![(1, 10.0), (2, 50.0)]);
        let db = uniform_unit_cube(500, 2, 3);
        let cfg = SurveyConfig {
            ks: vec![4],
            reference: Some(profile),
            rho_pairs: 1000,
            ..Default::default()
        };
        assert!(survey_database(&L2, &db, &cfg).dimension_estimate.is_none());
    }

    #[test]
    fn naive_bits_examples() {
        assert_eq!(naive_permutation_bits(1), 0);
        assert_eq!(naive_permutation_bits(2), 1);
        // 12! = 479001600 -> 29 bits (the paper's O(k log k) side).
        assert_eq!(naive_permutation_bits(12), 29);
    }

    #[test]
    fn display_renders_rows() {
        let db = uniform_unit_cube(800, 2, 17);
        let cfg = SurveyConfig { ks: vec![4], rho_pairs: 1000, ..Default::default() };
        let text = survey_database(&L2, &db, &cfg).to_string();
        assert!(text.contains("database survey: n = 800"));
        assert!(text.contains("codebook"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn tiny_database_rejected() {
        let db = vec![vec![0.0]];
        survey_database(&L2, &db, &SurveyConfig::default());
    }
}
