//! Serializing a [`FlatDistPermIndex`] into the container format.
//!
//! The writer emits the **canonical** layout the reader requires: the
//! TOC directly after the header, sections in id order at the lowest
//! 64-byte-aligned offset past the previous section, zero padding
//! between, and the file ending exactly at the last payload byte.
//! Canonical placement means every byte of the file is accounted for —
//! header, TOC, payload or (zero) padding — which is what lets the
//! robustness suite assert that *any* flipped byte yields a typed
//! error.  Output is deterministic and platform-independent: every
//! multi-byte field is written little-endian, floats as their IEEE-754
//! bit patterns.

use crate::format::{
    fnv1a64, MetricTag, SectionId, StoreMetric, ENDIAN_TAG, FORMAT_VERSION, HEADER_LEN, MAGIC,
    SECTION_ALIGN, TOC_ENTRY_LEN,
};
use crate::StoreError;
use dp_index::FlatDistPermIndex;
use std::io::Write;
use std::path::Path;

/// Serializes the index into an in-memory store image.
pub fn store_to_bytes<M: StoreMetric>(index: &FlatDistPermIndex<M>) -> Vec<u8> {
    let payloads = [
        meta_payload(index),
        f64_payload(index.points().as_flat()),
        f64_payload(index.sites_transposed().as_flat()),
        perms_payload(index),
    ];

    let header_and_toc = HEADER_LEN as usize + SectionId::ALL.len() * TOC_ENTRY_LEN as usize;
    let mut buf = vec![0u8; header_and_toc];

    // Sections: canonical aligned placement, zero padding in between.
    let mut toc = Vec::with_capacity(header_and_toc - HEADER_LEN as usize);
    for (section, payload) in SectionId::ALL.iter().zip(payloads.iter()) {
        let offset = buf.len().div_ceil(SECTION_ALIGN as usize) * SECTION_ALIGN as usize;
        buf.resize(offset, 0);
        buf.extend_from_slice(payload);
        toc.extend_from_slice(&section.code().to_le_bytes());
        toc.extend_from_slice(&0u32.to_le_bytes());
        toc.extend_from_slice(&(offset as u64).to_le_bytes());
        toc.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        toc.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    }
    buf[HEADER_LEN as usize..header_and_toc].copy_from_slice(&toc);

    // Header, checksummed last so it covers every other header field.
    let file_len = buf.len() as u64;
    let toc_checksum = fnv1a64(&buf[HEADER_LEN as usize..header_and_toc]);
    let header = &mut buf[..HEADER_LEN as usize];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
    header[16..20].copy_from_slice(&(SectionId::ALL.len() as u32).to_le_bytes());
    // 20..24 reserved = 0.
    header[24..32].copy_from_slice(&HEADER_LEN.to_le_bytes());
    header[32..40].copy_from_slice(&file_len.to_le_bytes());
    header[40..48].copy_from_slice(&toc_checksum.to_le_bytes());
    // 48..56 reserved = 0.
    let header_checksum = fnv1a64(&header[..56]);
    header[56..64].copy_from_slice(&header_checksum.to_le_bytes());
    buf
}

/// Writes the store image to `out`.
pub fn write_store<M: StoreMetric>(
    index: &FlatDistPermIndex<M>,
    out: &mut dyn Write,
) -> Result<(), StoreError> {
    out.write_all(&store_to_bytes(index))?;
    Ok(())
}

/// Writes the store image to a file, returning its size in bytes.
pub fn save_store<M: StoreMetric>(
    index: &FlatDistPermIndex<M>,
    path: &Path,
) -> Result<u64, StoreError> {
    let bytes = store_to_bytes(index);
    std::fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

fn meta_payload<M: StoreMetric>(index: &FlatDistPermIndex<M>) -> Vec<u8> {
    let tag: MetricTag = index.metric().metric_tag();
    let mut meta = Vec::with_capacity(40 + 8 * index.k());
    meta.extend_from_slice(&(index.len() as u64).to_le_bytes());
    meta.extend_from_slice(&(index.points().dim() as u64).to_le_bytes());
    meta.extend_from_slice(&(index.k() as u64).to_le_bytes());
    meta.extend_from_slice(&tag.code().to_le_bytes());
    meta.extend_from_slice(&0u32.to_le_bytes());
    meta.extend_from_slice(&tag.param_bits().to_le_bytes());
    for &site in index.site_ids() {
        meta.extend_from_slice(&(site as u64).to_le_bytes());
    }
    meta
}

fn f64_payload(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

fn perms_payload<M: StoreMetric>(index: &FlatDistPermIndex<M>) -> Vec<u8> {
    let k = index.k();
    let mut out = Vec::with_capacity(index.len() * k);
    for perm in index.permutations() {
        out.extend_from_slice(perm.as_slice());
    }
    out
}
