//! The total, typed-error store reader.
//!
//! [`read_store`] validates **every** header, TOC and checksum field
//! before touching a payload byte, in a fixed order (see the crate
//! docs): header presence → magic → version → endianness → header
//! checksum → reserved fields → TOC placement → recorded file length →
//! TOC checksum → per-entry layout (ids, alignment, canonical offsets,
//! coverage) → zero padding → per-section checksums → META geometry →
//! payload content.  Only after all of that does it assemble a
//! [`FlatDistPermIndex`] via `from_parts`, whose inputs are by then
//! fully validated.
//!
//! The reader is **total**: every slice access is bounds-checked
//! (`get`), every offset computation uses checked arithmetic, and every
//! failure is a [`StoreError`] — hostile bytes can never reach a panic.
//! dplint's panic-boundary pass polices this lexically; the release-mode
//! robustness suite (`tests/store_robustness.rs`) proves it dynamically
//! by truncating at every byte prefix and corrupting every byte offset.

use crate::format::{
    fnv1a64, MetricTag, SectionId, ENDIAN_TAG, FORMAT_VERSION, HEADER_LEN, MAGIC, TOC_ENTRY_LEN,
};
use crate::StoreError;
use dp_datasets::VectorSet;
use dp_index::FlatDistPermIndex;
use dp_metric::{L2Squared, LInf, Lp, TransposedSites, L1, L2};
use dp_permutation::{Permutation, MAX_K};
use std::path::Path;

/// A loaded index, tagged by the metric the store recorded.
///
/// The variants carry fully assembled [`FlatDistPermIndex`] values that
/// are field-for-field identical to the freshly built originals, so
/// every query answers bit-identically to an in-process build.
#[derive(Debug, Clone)]
pub enum StoredIndex {
    /// Manhattan metric.
    L1(FlatDistPermIndex<L1>),
    /// Euclidean metric.
    L2(FlatDistPermIndex<L2>),
    /// Squared-Euclidean metric.
    L2Squared(FlatDistPermIndex<L2Squared>),
    /// Chebyshev metric.
    LInf(FlatDistPermIndex<LInf>),
    /// Minkowski metric with recorded exponent.
    Lp(FlatDistPermIndex<Lp>),
}

impl StoredIndex {
    /// The metric tag recorded in the store.
    pub fn metric_tag(&self) -> MetricTag {
        match self {
            StoredIndex::L1(_) => MetricTag::L1,
            StoredIndex::L2(_) => MetricTag::L2,
            StoredIndex::L2Squared(_) => MetricTag::L2Squared,
            StoredIndex::LInf(_) => MetricTag::LInf,
            StoredIndex::Lp(i) => MetricTag::Lp(i.metric().p()),
        }
    }

    /// Database size n.
    pub fn len(&self) -> usize {
        match self {
            StoredIndex::L1(i) => i.len(),
            StoredIndex::L2(i) => i.len(),
            StoredIndex::L2Squared(i) => i.len(),
            StoredIndex::LInf(i) => i.len(),
            StoredIndex::Lp(i) => i.len(),
        }
    }

    /// True iff the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sites k.
    pub fn k(&self) -> usize {
        match self {
            StoredIndex::L1(i) => i.k(),
            StoredIndex::L2(i) => i.k(),
            StoredIndex::L2Squared(i) => i.k(),
            StoredIndex::LInf(i) => i.k(),
            StoredIndex::Lp(i) => i.k(),
        }
    }

    /// Point dimension d.
    pub fn dim(&self) -> usize {
        match self {
            StoredIndex::L1(i) => i.points().dim(),
            StoredIndex::L2(i) => i.points().dim(),
            StoredIndex::L2Squared(i) => i.points().dim(),
            StoredIndex::LInf(i) => i.points().dim(),
            StoredIndex::Lp(i) => i.points().dim(),
        }
    }

    /// The index-spec name of the loaded structure (`flatperm:k`).
    pub fn spec_name(&self) -> String {
        format!("flatperm:{}", self.k())
    }
}

/// Reads and validates a store file from disk.
pub fn load_store(path: &Path) -> Result<StoredIndex, StoreError> {
    let bytes = std::fs::read(path)?;
    read_store(&bytes)
}

/// Validates a store image and assembles the index it describes.
pub fn read_store(bytes: &[u8]) -> Result<StoredIndex, StoreError> {
    let sections = validate_container(bytes)?;
    let meta = parse_meta(sections.payload(bytes, SectionId::Meta))?;
    let vectors = parse_vectors(sections.payload(bytes, SectionId::Vectors), &meta)?;
    let sites_t = parse_sites_t(sections.payload(bytes, SectionId::SitesT), &meta, &vectors)?;
    let perms = parse_perms(sections.payload(bytes, SectionId::Perms), &meta)?;

    let points = VectorSet::from_raw(meta.dim, vectors);
    let sites_t = TransposedSites::from_transposed(meta.k, meta.dim, sites_t);
    let Meta { site_ids, tag, .. } = meta;
    Ok(match tag {
        MetricTag::L1 => {
            StoredIndex::L1(FlatDistPermIndex::from_parts(L1, points, site_ids, sites_t, perms))
        }
        MetricTag::L2 => {
            StoredIndex::L2(FlatDistPermIndex::from_parts(L2, points, site_ids, sites_t, perms))
        }
        MetricTag::L2Squared => StoredIndex::L2Squared(FlatDistPermIndex::from_parts(
            L2Squared, points, site_ids, sites_t, perms,
        )),
        MetricTag::LInf => {
            StoredIndex::LInf(FlatDistPermIndex::from_parts(LInf, points, site_ids, sites_t, perms))
        }
        MetricTag::Lp(p) => StoredIndex::Lp(FlatDistPermIndex::from_parts(
            Lp::new(p),
            points,
            site_ids,
            sites_t,
            perms,
        )),
    })
}

/// Validated section placement: payload ranges for the four sections,
/// in [`SectionId::ALL`] order.
struct Sections {
    ranges: [(usize, usize); 4],
}

impl Sections {
    fn payload<'a>(&self, bytes: &'a [u8], section: SectionId) -> &'a [u8] {
        // Ranges were bounds-checked during container validation; an
        // out-of-range get here is unreachable, and the empty-slice
        // fallback keeps the reader total rather than trusting that.
        let (start, end) = self.ranges[section.code() as usize - 1];
        bytes.get(start..end).unwrap_or(&[])
    }
}

/// Header + TOC + checksum + padding validation (steps before any
/// payload content is interpreted).
fn validate_container(bytes: &[u8]) -> Result<Sections, StoreError> {
    let actual = bytes.len() as u64;

    // Header presence and identity fields, in diagnostic order.
    let header = bytes.get(..HEADER_LEN as usize).ok_or(StoreError::TooShort { actual })?;
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&header[0..8]);
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = u32_at(header, 8).ok_or(StoreError::TooShort { actual })?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let endian = u32_at(header, 12).ok_or(StoreError::TooShort { actual })?;
    if endian != ENDIAN_TAG {
        return Err(StoreError::BadEndianness { found: endian });
    }

    // The header checksum covers bytes 0..56, i.e. every other header
    // field including the reserved ones; verify it before trusting any
    // of them.
    let stored_header_sum = u64_at(header, 56).ok_or(StoreError::TooShort { actual })?;
    let computed_header_sum = fnv1a64(&header[..56]);
    if stored_header_sum != computed_header_sum {
        return Err(StoreError::HeaderChecksum {
            stored: stored_header_sum,
            computed: computed_header_sum,
        });
    }

    let section_count = u32_at(header, 16).ok_or(StoreError::TooShort { actual })?;
    let reserved_a = u32_at(header, 20).ok_or(StoreError::TooShort { actual })?;
    let toc_offset = u64_at(header, 24).ok_or(StoreError::TooShort { actual })?;
    let stored_len = u64_at(header, 32).ok_or(StoreError::TooShort { actual })?;
    let stored_toc_sum = u64_at(header, 40).ok_or(StoreError::TooShort { actual })?;
    let reserved_b = u64_at(header, 48).ok_or(StoreError::TooShort { actual })?;
    if reserved_a != 0 {
        return Err(StoreError::BadLayout {
            detail: "header reserved field is nonzero",
            value: u64::from(reserved_a),
        });
    }
    if reserved_b != 0 {
        return Err(StoreError::BadLayout {
            detail: "header reserved field is nonzero",
            value: reserved_b,
        });
    }
    if toc_offset != HEADER_LEN {
        return Err(StoreError::BadLayout {
            detail: "TOC does not start directly after the header",
            value: toc_offset,
        });
    }
    if stored_len != actual {
        return Err(StoreError::LengthMismatch { stored: stored_len, actual });
    }
    if section_count as usize != SectionId::ALL.len() {
        return Err(StoreError::BadLayout {
            detail: "a version-1 store holds exactly four sections",
            value: u64::from(section_count),
        });
    }

    // TOC bytes and their checksum.
    let toc_len = SectionId::ALL.len() * TOC_ENTRY_LEN as usize;
    let toc_end = HEADER_LEN as usize + toc_len;
    let toc = bytes
        .get(HEADER_LEN as usize..toc_end)
        .ok_or(StoreError::BadLayout { detail: "TOC extends past end of file", value: actual })?;
    let computed_toc_sum = fnv1a64(toc);
    if stored_toc_sum != computed_toc_sum {
        return Err(StoreError::TocChecksum { stored: stored_toc_sum, computed: computed_toc_sum });
    }

    // Entries: required ids in order, canonical aligned offsets, exact
    // file coverage.
    let mut ranges = [(0usize, 0usize); 4];
    let mut cursor = toc_end as u64;
    for (i, section) in SectionId::ALL.iter().enumerate() {
        let base = i * TOC_ENTRY_LEN as usize;
        let id = u32_at(toc, base).ok_or(toc_short(actual))?;
        let reserved = u32_at(toc, base + 4).ok_or(toc_short(actual))?;
        let offset = u64_at(toc, base + 8).ok_or(toc_short(actual))?;
        let len = u64_at(toc, base + 16).ok_or(toc_short(actual))?;
        if id != section.code() {
            return Err(StoreError::BadLayout {
                detail: "TOC section ids must be 1,2,3,4 in order",
                value: u64::from(id),
            });
        }
        if reserved != 0 {
            return Err(StoreError::BadLayout {
                detail: "TOC reserved field is nonzero",
                value: u64::from(reserved),
            });
        }
        let expected_offset = crate::format::align_up(cursor)
            .ok_or(StoreError::BadLayout { detail: "section offset overflows", value: cursor })?;
        if offset != expected_offset {
            return Err(StoreError::BadLayout {
                detail: "section offset is not the canonical aligned placement",
                value: offset,
            });
        }
        let end = offset
            .checked_add(len)
            .ok_or(StoreError::BadLayout { detail: "section end overflows", value: len })?;
        if end > actual {
            return Err(StoreError::BadLayout {
                detail: "section extends past end of file",
                value: end,
            });
        }
        // In-range u64 → usize conversions: end ≤ actual = bytes.len(),
        // which fits usize by construction, so the fallback is
        // unreachable and merely keeps the conversion total.
        let start_us = usize::try_from(offset).unwrap_or(usize::MAX);
        let end_us = usize::try_from(end).unwrap_or(usize::MAX);
        ranges[i] = (start_us, end_us);

        // Zero padding between the previous section (or TOC) and this one.
        let pad = bytes.get(cursor as usize..start_us).unwrap_or(&[]);
        for (j, &b) in pad.iter().enumerate() {
            if b != 0 {
                return Err(StoreError::NonZeroPadding { offset: cursor + j as u64 });
            }
        }
        cursor = end;
    }
    if cursor != actual {
        return Err(StoreError::BadLayout {
            detail: "sections do not cover the file exactly",
            value: cursor,
        });
    }

    // Per-section payload checksums, still content-agnostic.
    let sections = Sections { ranges };
    for (i, section) in SectionId::ALL.iter().enumerate() {
        let base = i * TOC_ENTRY_LEN as usize;
        let stored = u64_at(toc, base + 24).ok_or(toc_short(actual))?;
        let computed = fnv1a64(sections.payload(bytes, *section));
        if stored != computed {
            return Err(StoreError::SectionChecksum { section: *section, stored, computed });
        }
    }
    Ok(sections)
}

/// Decoded META section.
struct Meta {
    n: usize,
    dim: usize,
    k: usize,
    tag: MetricTag,
    site_ids: Vec<usize>,
}

fn parse_meta(meta: &[u8]) -> Result<Meta, StoreError> {
    let found = meta.len() as u64;
    if meta.len() < 40 {
        return Err(StoreError::BadSectionLength { section: SectionId::Meta, expected: 40, found });
    }
    let n64 = u64_at(meta, 0).ok_or(meta_short(found))?;
    let dim64 = u64_at(meta, 8).ok_or(meta_short(found))?;
    let k64 = u64_at(meta, 16).ok_or(meta_short(found))?;
    let n = usize::try_from(n64).map_err(|_| StoreError::BadMeta { field: "n", value: n64 })?;
    let dim =
        usize::try_from(dim64).map_err(|_| StoreError::BadMeta { field: "dim", value: dim64 })?;
    let k = usize::try_from(k64).map_err(|_| StoreError::BadMeta { field: "k", value: k64 })?;
    if k > MAX_K {
        return Err(StoreError::BadMeta { field: "k", value: k64 });
    }
    if n > 0 && dim == 0 {
        return Err(StoreError::BadMeta { field: "dim", value: 0 });
    }
    let expected = 40u64 + 8 * k64;
    if found != expected {
        return Err(StoreError::BadSectionLength { section: SectionId::Meta, expected, found });
    }
    let code = u32_at(meta, 24).ok_or(meta_short(found))?;
    let reserved = u32_at(meta, 28).ok_or(meta_short(found))?;
    if reserved != 0 {
        return Err(StoreError::BadMeta { field: "meta-reserved", value: u64::from(reserved) });
    }
    let param = u64_at(meta, 32).ok_or(meta_short(found))?;
    let tag = MetricTag::decode(code, param)?;
    let mut site_ids = Vec::with_capacity(k);
    for j in 0..k {
        let id64 = u64_at(meta, 40 + 8 * j).ok_or(meta_short(found))?;
        if id64 >= n64 {
            return Err(StoreError::BadMeta { field: "site-id", value: id64 });
        }
        // id64 < n64 and n fits usize, so this cannot truncate.
        let id = usize::try_from(id64).unwrap_or(usize::MAX);
        if site_ids.contains(&id) {
            return Err(StoreError::BadMeta { field: "site-id-duplicate", value: id64 });
        }
        site_ids.push(id);
    }
    Ok(Meta { n, dim, k, tag, site_ids })
}

fn parse_vectors(payload: &[u8], meta: &Meta) -> Result<Vec<f64>, StoreError> {
    let values = parse_f64s(payload, meta.n, meta.dim, SectionId::Vectors)?;
    for (i, v) in values.iter().enumerate() {
        if v.is_nan() {
            return Err(StoreError::NaNCoordinate { index: i });
        }
    }
    Ok(values)
}

fn parse_sites_t(payload: &[u8], meta: &Meta, vectors: &[f64]) -> Result<Vec<f64>, StoreError> {
    let values = parse_f64s(payload, meta.k, meta.dim, SectionId::SitesT)?;
    // The stored transpose must be the bitwise image of the site rows in
    // VECTORS: `values[c*k + j] == vectors[site_ids[j]*dim + c]`.  The
    // loaded buffer is still used directly (no re-transposition); this
    // is a consistency *check*, and since VECTORS is NaN-free, bitwise
    // equality makes SITES_T NaN-free too.
    for (j, &site) in meta.site_ids.iter().enumerate() {
        for c in 0..meta.dim {
            let stored = values.get(c * meta.k + j).map(|v| v.to_bits());
            let expected = vectors.get(site * meta.dim + c).map(|v| v.to_bits());
            if stored != expected || stored.is_none() {
                return Err(StoreError::InconsistentSites { index: c * meta.k + j });
            }
        }
    }
    Ok(values)
}

fn parse_perms(payload: &[u8], meta: &Meta) -> Result<Vec<Permutation>, StoreError> {
    let expected = (meta.n as u64).wrapping_mul(meta.k as u64);
    if payload.len() as u64 != expected {
        return Err(StoreError::BadSectionLength {
            section: SectionId::Perms,
            expected,
            found: payload.len() as u64,
        });
    }
    if meta.k == 0 {
        // `chunks_exact(0)` is not a thing; n empty permutations.
        let empty =
            Permutation::from_slice(&[]).map_err(|_| StoreError::BadPermutation { row: 0 })?;
        return Ok(vec![empty; meta.n]);
    }
    let mut perms = Vec::with_capacity(meta.n);
    for (row, chunk) in payload.chunks_exact(meta.k).enumerate() {
        let perm =
            Permutation::from_slice(chunk).map_err(|_| StoreError::BadPermutation { row })?;
        perms.push(perm);
    }
    Ok(perms)
}

/// Decodes a `rows × dim` f64 payload, first checking the byte length
/// against the META geometry with overflow-checked arithmetic.
fn parse_f64s(
    payload: &[u8],
    rows: usize,
    dim: usize,
    section: SectionId,
) -> Result<Vec<f64>, StoreError> {
    let count = (rows as u64).checked_mul(dim as u64).and_then(|c| c.checked_mul(8)).ok_or(
        StoreError::BadSectionLength { section, expected: u64::MAX, found: payload.len() as u64 },
    )?;
    if payload.len() as u64 != count {
        return Err(StoreError::BadSectionLength {
            section,
            expected: count,
            found: payload.len() as u64,
        });
    }
    let mut out = Vec::with_capacity(payload.len() / 8);
    for chunk in payload.chunks_exact(8) {
        let mut a = [0u8; 8];
        a.copy_from_slice(chunk);
        out.push(f64::from_bits(u64::from_le_bytes(a)));
    }
    Ok(out)
}

fn toc_short(actual: u64) -> StoreError {
    StoreError::BadLayout { detail: "TOC entry truncated", value: actual }
}

fn meta_short(found: u64) -> StoreError {
    StoreError::BadSectionLength { section: SectionId::Meta, expected: 40, found }
}

fn u32_at(bytes: &[u8], off: usize) -> Option<u32> {
    let end = off.checked_add(4)?;
    let slice = bytes.get(off..end)?;
    let mut a = [0u8; 4];
    a.copy_from_slice(slice);
    Some(u32::from_le_bytes(a))
}

fn u64_at(bytes: &[u8], off: usize) -> Option<u64> {
    let end = off.checked_add(8)?;
    let slice = bytes.get(off..end)?;
    let mut a = [0u8; 8];
    a.copy_from_slice(slice);
    Some(u64::from_le_bytes(a))
}
