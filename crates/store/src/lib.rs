//! Versioned on-disk container for distance-permutation indexes.
//!
//! `dp-store` persists a [`dp_index::FlatDistPermIndex`] (including its
//! [`dp_datasets::VectorSet`]) as a single binary file, so an index can
//! be built once (`distperm build`) and served many times
//! (`distperm search --load` / `distperm serve --load`) without paying
//! the k·n distance computations of a rebuild.  Loading reproduces the
//! in-memory structures **field for field** — the transposed site
//! matrix and the permutation rows are stored in their in-memory
//! layouts and loaded without re-transposition — so a loaded index
//! answers every query bit-identically to the freshly built original.
//!
//! # Format specification (version 1)
//!
//! All multi-byte integers are **little-endian**; floats are stored as
//! their IEEE-754 bit patterns (`f64::to_bits`, little-endian).  A file
//! is laid out as `header → TOC → sections`, with every section payload
//! starting on a 64-byte boundary:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     8  magic  "DPSTORE\0"
//!      8     4  format version            (u32, = 1)
//!     12     4  endianness tag            (u32, = 0x1A2B3C4D)
//!     16     4  section count             (u32, = 4 in version 1)
//!     20     4  reserved                  (u32, = 0)
//!     24     8  TOC offset                (u64, = 64)
//!     32     8  total file length         (u64)
//!     40     8  TOC checksum              (u64, FNV-1a 64 of the TOC)
//!     48     8  reserved                  (u64, = 0)
//!     56     8  header checksum           (u64, FNV-1a 64 of bytes 0..56)
//! ```
//!
//! The TOC is an array of `section count` 32-byte entries starting at
//! byte 64:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!     +0     4  section id                (u32)
//!     +4     4  reserved                  (u32, = 0)
//!     +8     8  payload offset            (u64, 64-byte aligned)
//!    +16     8  payload length            (u64, bytes)
//!    +24     8  payload checksum          (u64, FNV-1a 64)
//! ```
//!
//! Version 1 has exactly four sections, required to appear in id order:
//!
//! | id | name      | payload                                          |
//! |----|-----------|--------------------------------------------------|
//! | 1  | `META`    | geometry, metric tag, site ids (below)           |
//! | 2  | `VECTORS` | the row-major `VectorSet` buffer, n·d f64        |
//! | 3  | `SITES_T` | the coordinate-major `TransposedSites` buffer, k·d f64 |
//! | 4  | `PERMS`   | permutation items, one length-k u8 row per point |
//!
//! Ids 5 (packed permutation keys) and 6 (an mmap page index) are
//! reserved for future versions.  `META` is `40 + 8k` bytes:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     8  n    — database size      (u64)
//!      8     8  d    — point dimension    (u64)
//!     16     8  k    — number of sites    (u64, ≤ 32)
//!     24     4  metric code               (u32: 1=L1 2=L2 3=L2² 4=L∞ 5=Lp)
//!     28     4  reserved                  (u32, = 0)
//!     32     8  metric parameter          (u64, f64 bits; 0 unless Lp)
//!     40    8k  site ids                  (k × u64, distinct, < n)
//! ```
//!
//! ## Canonical layout
//!
//! The writer's placement is the *only* accepted one: the TOC directly
//! after the header, each payload at the lowest 64-byte-aligned offset
//! past the previous one (the first at offset 192), zero bytes in the
//! alignment gaps, and the file ending exactly at the last payload
//! byte.  Canonical placement means every byte of a valid file is
//! covered by a checksummed region or by verified-zero padding — which
//! is what lets `tests/store_robustness.rs` assert that **any** flipped
//! byte at **any** offset yields a typed [`StoreError`].  The checksum
//! is FNV-1a 64 ([`fnv1a64`]), chosen because every single-byte
//! substitution provably changes it (see its docs).
//!
//! ## Reader totality
//!
//! [`read_store`] validates in a fixed order — file length → magic →
//! version → endianness → header checksum → reserved fields → TOC
//! placement → recorded length → TOC checksum → entry layout → padding
//! → section checksums → META geometry → payload content (NaN-free
//! vectors, valid permutation rows, `SITES_T` bitwise-consistent with
//! the site rows of `VECTORS`) — and never panics on hostile bytes.
//! dplint's panic-boundary pass polices the module lexically; the
//! robustness suite pins it dynamically under `--release`.

#![forbid(unsafe_code)]

mod error;
pub mod format;
pub mod reader;
pub mod writer;

pub use error::StoreError;
pub use format::{
    fnv1a64, MetricTag, SectionId, StoreMetric, ENDIAN_TAG, FORMAT_VERSION, HEADER_LEN, MAGIC,
    SECTION_ALIGN, TOC_ENTRY_LEN,
};
pub use reader::{load_store, read_store, StoredIndex};
pub use writer::{save_store, store_to_bytes, write_store};
