//! Format constants, section identifiers, metric tags and the checksum.
//!
//! The byte-level layout is specified in the crate docs ([`crate`]);
//! this module is the single source of truth for every constant in it.

use crate::StoreError;
use dp_metric::{BatchDistance, L2Squared, LInf, Lp, L1, L2};

/// The first eight bytes of every store file.
pub const MAGIC: [u8; 8] = *b"DPSTORE\0";

/// The format version this crate writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Endianness sentinel: written little-endian, so a store produced on a
/// big-endian writer reads back as a different value and is rejected
/// before any payload field is trusted.
pub const ENDIAN_TAG: u32 = 0x1A2B_3C4D;

/// Fixed header size in bytes.
pub const HEADER_LEN: u64 = 64;

/// Size of one TOC entry in bytes.
pub const TOC_ENTRY_LEN: u64 = 32;

/// Section payload alignment: offsets are cache-line aligned so the
/// f64/u64 payloads land aligned when the file is block-read (or
/// mmapped, a planned follow-up) straight into their in-memory layouts.
pub const SECTION_ALIGN: u64 = 64;

/// The sections of a version-1 store, in their required TOC order.
///
/// A v1 file contains exactly these four, each once, ascending by id.
/// Ids 5 (packed permutation keys for the searcher-side key cache) and
/// 6 (a page index for mmap loading) are reserved for future versions —
/// adding a section is a format-version bump, never a silent extension.
///
/// Since the PR 9 width-generic refactor, packed keys come in two
/// widths (`u64` for k ≤ 12, `u128` for k ≤ 25), so a future section 5
/// must carry a key-width byte (8 or 16) in its payload header and its
/// element size follows that byte — it is **not** a fixed-stride u64
/// array.  `FlatDistPermIndex::from_parts` currently rebuilds its
/// ordering-key cache from the PERMS section at load, so section 5
/// stays an optimisation, never a correctness input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionId {
    /// Geometry, metric tag and site ids.
    Meta = 1,
    /// The row-major `VectorSet` buffer (n·d f64).
    Vectors = 2,
    /// The coordinate-major `TransposedSites` buffer (k·d f64).
    SitesT = 3,
    /// Permutation items, one length-k row of u8 per point.
    Perms = 4,
}

impl SectionId {
    /// All v1 sections in required order.
    pub const ALL: [SectionId; 4] =
        [SectionId::Meta, SectionId::Vectors, SectionId::SitesT, SectionId::Perms];

    /// The on-disk id.
    pub fn code(self) -> u32 {
        self as u32
    }
}

impl std::fmt::Display for SectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SectionId::Meta => "META",
            SectionId::Vectors => "VECTORS",
            SectionId::SitesT => "SITES_T",
            SectionId::Perms => "PERMS",
        };
        f.write_str(name)
    }
}

/// Which metric a store was built under, as recorded in META.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricTag {
    /// Manhattan distance.
    L1,
    /// Euclidean distance.
    L2,
    /// Squared Euclidean distance.
    L2Squared,
    /// Chebyshev distance.
    LInf,
    /// Minkowski distance with exponent p ≥ 1.
    Lp(f64),
}

impl MetricTag {
    /// The on-disk metric code.
    pub fn code(self) -> u32 {
        match self {
            MetricTag::L1 => 1,
            MetricTag::L2 => 2,
            MetricTag::L2Squared => 3,
            MetricTag::LInf => 4,
            MetricTag::Lp(_) => 5,
        }
    }

    /// The on-disk metric parameter (f64 bits; zero for all but Lp).
    pub fn param_bits(self) -> u64 {
        match self {
            MetricTag::Lp(p) => p.to_bits(),
            _ => 0,
        }
    }

    /// Decodes a (code, param) pair, rejecting unknown codes, nonzero
    /// parameters on parameterless metrics, and Lp exponents outside
    /// the metric domain (NaN, infinite, or < 1).
    pub fn decode(code: u32, param_bits: u64) -> Result<Self, StoreError> {
        let tag = match code {
            1 => MetricTag::L1,
            2 => MetricTag::L2,
            3 => MetricTag::L2Squared,
            4 => MetricTag::LInf,
            5 => {
                let p = f64::from_bits(param_bits);
                if !p.is_finite() || p < 1.0 {
                    return Err(StoreError::BadMeta { field: "metric-param", value: param_bits });
                }
                return Ok(MetricTag::Lp(p));
            }
            other => {
                return Err(StoreError::BadMeta { field: "metric-code", value: u64::from(other) })
            }
        };
        if param_bits != 0 {
            return Err(StoreError::BadMeta { field: "metric-param", value: param_bits });
        }
        Ok(tag)
    }

    /// Human-readable name, matching the CLI's metric naming.
    pub fn name(self) -> String {
        match self {
            MetricTag::L1 => "L1".into(),
            MetricTag::L2 => "L2".into(),
            MetricTag::L2Squared => "L2sq".into(),
            MetricTag::LInf => "Linf".into(),
            MetricTag::Lp(p) => format!("L{p}"),
        }
    }
}

/// Metrics the store can persist: every batched vector metric, each
/// knowing its own [`MetricTag`].
pub trait StoreMetric: BatchDistance + Sync {
    /// This metric's on-disk tag.
    fn metric_tag(&self) -> MetricTag;
}

impl StoreMetric for L1 {
    fn metric_tag(&self) -> MetricTag {
        MetricTag::L1
    }
}

impl StoreMetric for L2 {
    fn metric_tag(&self) -> MetricTag {
        MetricTag::L2
    }
}

impl StoreMetric for L2Squared {
    fn metric_tag(&self) -> MetricTag {
        MetricTag::L2Squared
    }
}

impl StoreMetric for LInf {
    fn metric_tag(&self) -> MetricTag {
        MetricTag::LInf
    }
}

impl StoreMetric for Lp {
    fn metric_tag(&self) -> MetricTag {
        MetricTag::Lp(self.p())
    }
}

/// FNV-1a 64 over a byte slice — the store's checksum.
///
/// Chosen over a CRC not for speed but for a provable property the
/// robustness suite leans on: the absorb step `h = (h ^ b) * PRIME` is
/// a bijection of the 64-bit state for every fixed byte `b` (the prime
/// is odd, so multiplication is invertible mod 2⁶⁴), and substituting
/// `b` changes `h ^ b`.  Therefore **any single-byte substitution
/// changes the digest with certainty**, not merely with probability
/// 1 − 2⁻⁶⁴ — every one-byte corruption of a checksummed region is
/// guaranteed to be caught.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET_BASIS;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Rounds `offset` up to the next [`SECTION_ALIGN`] boundary.
///
/// Returns `None` on u64 overflow (only reachable from hostile TOC
/// values; the writer's offsets are bounded by real buffer sizes).
pub fn align_up(offset: u64) -> Option<u64> {
    let rem = offset % SECTION_ALIGN;
    if rem == 0 {
        Some(offset)
    } else {
        offset.checked_add(SECTION_ALIGN - rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_single_byte_substitutions() {
        let base = vec![0u8; 256];
        let h0 = fnv1a64(&base);
        for i in 0..base.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupt = base.clone();
                corrupt[i] ^= flip;
                assert_ne!(fnv1a64(&corrupt), h0, "byte {i} flip {flip:02x}");
            }
        }
    }

    #[test]
    fn metric_tag_roundtrip() {
        for tag in [
            MetricTag::L1,
            MetricTag::L2,
            MetricTag::L2Squared,
            MetricTag::LInf,
            MetricTag::Lp(3.5),
        ] {
            let decoded = MetricTag::decode(tag.code(), tag.param_bits()).unwrap();
            assert_eq!(decoded, tag);
        }
    }

    #[test]
    fn metric_tag_rejects_bad_codes_and_params() {
        assert!(MetricTag::decode(0, 0).is_err());
        assert!(MetricTag::decode(6, 0).is_err());
        // Nonzero parameter on a parameterless metric.
        assert!(MetricTag::decode(2, 1).is_err());
        // Lp exponents outside the metric domain.
        assert!(MetricTag::decode(5, 0.5f64.to_bits()).is_err());
        assert!(MetricTag::decode(5, f64::NAN.to_bits()).is_err());
        assert!(MetricTag::decode(5, f64::INFINITY.to_bits()).is_err());
    }

    #[test]
    fn align_up_is_canonical() {
        assert_eq!(align_up(0), Some(0));
        assert_eq!(align_up(1), Some(64));
        assert_eq!(align_up(64), Some(64));
        assert_eq!(align_up(65), Some(128));
        assert_eq!(align_up(u64::MAX), None);
    }
}
